//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the API subset the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, [`collection::vec()`], [`Just`], the [`proptest!`] macro with an
//! optional `proptest_config`, and the `prop_assert*`/`prop_assume!` macros.
//!
//! Each case is generated from a deterministic seed derived from the test's
//! module path, name and case index, and a failure reports that case index,
//! so failures are exactly reproducible by rerunning the test.
//!
//! Failing cases are **shrunk** before reporting, binary-search style:
//! integer strategies propose their lower bound, the midpoint toward it and
//! a single decrement; `collection::vec` halves its length toward the
//! minimum, drops the last element, and shrinks elements in place; tuples
//! shrink component-wise. A candidate is adopted whenever the test still
//! *fails* on it (`prop_assume!` rejections count as passing), and the loop
//! repeats until no candidate fails or a step budget is exhausted. Unlike
//! real proptest there is no value tree, so `prop_map`/`prop_flat_map`
//! outputs are opaque and not shrunk — put the raw integer/vec structure in
//! the test's parameter list when minimization matters.

use core::ops::{Range, RangeInclusive};

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Per-test configuration (subset: number of cases).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count actually run: the `BSS_PROPTEST_CASES` environment
    /// variable (when set to a positive integer) overrides the per-suite
    /// value, so CI's nightly job can raise coverage without code changes.
    #[must_use]
    pub fn effective_cases(&self) -> u32 {
        std::env::var("BSS_PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped, not failed.
    Reject,
    /// A `prop_assert*!` failed with the given message.
    Fail(String),
}

impl TestCaseError {
    /// Convenience constructor used by the assertion macros.
    #[must_use]
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// The deterministic generator handed to strategies; seeded per test case.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from the test's identity and case index (FNV-1a over the name).
    #[must_use]
    pub fn deterministic(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ (u64::from(case) << 1) ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, width: u64) -> u64 {
        if width <= 1 {
            return 0;
        }
        let zone = u64::MAX - (u64::MAX % width + 1) % width;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % width;
            }
        }
    }

    fn below_u128(&mut self, width: u128) -> u128 {
        if width <= 1 {
            return 0;
        }
        if let Ok(w) = u64::try_from(width) {
            return u128::from(self.below(w));
        }
        let zone = u128::MAX - (u128::MAX % width + 1) % width;
        loop {
            let v = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
            if v <= zone {
                return v % width;
            }
        }
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of random values; the heart of the API.
///
/// Unlike real proptest there is no value tree: `generate` draws a sample
/// directly and failures are not shrunk.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one sample.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Proposes strictly "smaller" candidates for a failing `value`, most
    /// aggressive first (binary-search style). The default — for opaque
    /// strategies like [`Strategy::prop_map`] — proposes nothing.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Applies `f` to every generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, builds a dependent strategy from it, and samples
    /// that.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Binary-search shrink candidates for an integer `v` generated from a
/// range with lower bound `lo`: the bound itself, the midpoint toward it,
/// and one decrement (exact-minimum last step). Computed in `i128`, so the
/// arithmetic is overflow-free for every integer type the strategies cover.
fn int_shrink_candidates(lo: i128, v: i128) -> Vec<i128> {
    if v <= lo {
        return Vec::new();
    }
    let mut out = vec![lo];
    let mid = lo + (v - lo) / 2;
    if mid != lo && mid != v {
        out.push(mid);
    }
    if v - 1 != lo && Some(&(v - 1)) != out.last() {
        out.push(v - 1);
    }
    out
}

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let off = rng.below_u128(width);
                (self.start as i128).wrapping_add(off as i128) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                int_shrink_candidates(self.start as i128, *value as i128)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi as i128).wrapping_sub(lo as i128) as u128;
                let off = rng.below_u128(width.wrapping_add(1));
                (lo as i128).wrapping_add(off as i128) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                int_shrink_candidates(*self.start() as i128, *value as i128)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// i128 spans can exceed u128's modelling above only for the full i128 range,
// which no strategy in this workspace uses; handle it with a direct impl.
impl Strategy for Range<i128> {
    type Value = i128;
    fn generate(&self, rng: &mut TestRng) -> i128 {
        assert!(self.start < self.end, "empty range strategy");
        let width = self.end.wrapping_sub(self.start) as u128;
        self.start.wrapping_add(rng.below_u128(width) as i128)
    }
    fn shrink(&self, value: &i128) -> Vec<i128> {
        // Spans that overflow `i128` subtraction (full-range strategies) are
        // left unshrunk rather than risking wrap-around.
        match value.checked_sub(self.start) {
            Some(_) => int_shrink_candidates(self.start, *value),
            None => Vec::new(),
        }
    }
}

impl Strategy for RangeInclusive<i128> {
    type Value = i128;
    fn generate(&self, rng: &mut TestRng) -> i128 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        let width = hi.wrapping_sub(lo) as u128;
        lo.wrapping_add(rng.below_u128(width.wrapping_add(1)) as i128)
    }
    fn shrink(&self, value: &i128) -> Vec<i128> {
        match value.checked_sub(*self.start()) {
            Some(_) => int_shrink_candidates(*self.start(), *value),
            None => Vec::new(),
        }
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone),+
        {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )*};
}

tuple_strategy! {
    (A:0)
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
    (A:0, B:1, C:2, D:3, E:4)
    (A:0, B:1, C:2, D:3, E:4, F:5)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use core::ops::{Range, RangeInclusive};

    /// Size specification for [`vec()`]: a fixed size or a (half-open or
    /// inclusive) range of sizes.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s of values drawn from `element`, with a length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span + 1) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            // Length first, binary-search toward the minimum: halve the
            // excess, then a single pop (exact-minimum last step).
            if value.len() > self.size.lo {
                let half = self.size.lo + (value.len() - self.size.lo) / 2;
                out.push(value[..half].to_vec());
                if value.len() - 1 > half {
                    out.push(value[..value.len() - 1].to_vec());
                }
            }
            // Then elements in place (the two most aggressive candidates
            // each; deeper refinement happens across adoption rounds).
            for (i, v) in value.iter().enumerate() {
                for cand in self.element.shrink(v).into_iter().take(2) {
                    let mut next = value.clone();
                    next[i] = cand;
                    out.push(next);
                }
            }
            out
        }
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the subset of real proptest syntax this workspace uses: an
/// optional leading `#![proptest_config(...)]`, then any number of test
/// functions with `pattern in strategy` parameters.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Cap on candidate evaluations per failing case — shrinking is a
/// diagnostic aid, not a license to rerun the test body unboundedly.
#[doc(hidden)]
pub const MAX_SHRINK_STEPS: usize = 512;

/// Runs one generated case and, on failure, the shrink loop: adopt any
/// candidate on which the body still *fails* (rejections count as passing),
/// restart from it, stop when no candidate fails or the budget is spent.
/// Panics with the minimized failure.
#[doc(hidden)]
pub fn __run_all<S, F>(strategy: &S, test_id: &str, cases: u32, run: F)
where
    S: Strategy,
    S::Value: Clone + core::fmt::Debug,
    F: Fn(&S::Value) -> Result<(), TestCaseError>,
{
    for case in 0..cases {
        __run_case(strategy, test_id, case, cases, &run);
    }
}

#[doc(hidden)]
pub fn __run_case<S: Strategy>(
    strategy: &S,
    test_id: &str,
    case: u32,
    cases: u32,
    run: &dyn Fn(&S::Value) -> Result<(), TestCaseError>,
) where
    S::Value: Clone + core::fmt::Debug,
{
    let mut rng = TestRng::deterministic(test_id, case);
    let value = strategy.generate(&mut rng);
    let Err(TestCaseError::Fail(mut msg)) = run(&value) else {
        return;
    };
    let mut minimal = value;
    let mut steps = 0usize;
    let mut adoptions = 0usize;
    'minimize: while steps < MAX_SHRINK_STEPS {
        for cand in strategy.shrink(&minimal) {
            steps += 1;
            if let Err(TestCaseError::Fail(m)) = run(&cand) {
                minimal = cand;
                msg = m;
                adoptions += 1;
                continue 'minimize; // restart from the smaller failure
            }
            if steps >= MAX_SHRINK_STEPS {
                break;
            }
        }
        break; // no candidate still fails: minimal is locally minimal
    }
    panic!(
        "{test_id}: case {case}/{cases} failed: {msg}\n\
         minimal input (after {adoptions} shrink adoptions, {steps} candidates tried): \
         {minimal:?}"
    );
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $( $pat:pat in $strat:expr ),+ $(,)? ) $body:block )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let cases = config.effective_cases();
            let test_id = concat!(module_path!(), "::", stringify!($name));
            // All parameters fold into one tuple strategy so the shrinker
            // can minimize them jointly, component by component.
            let strategy = ($($strat,)+);
            $crate::__run_all(&strategy, test_id, cases, |__values| {
                let ($($pat,)+) = ::core::clone::Clone::clone(__values);
                $body
                ::core::result::Result::Ok(())
            });
        }
    )*};
}

/// Like `assert!`, but reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Like `assert_eq!`, but reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(lhs == rhs) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                lhs, rhs
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(lhs == rhs) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                lhs,
                rhs,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Like `assert_ne!`, but reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if lhs == rhs {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                lhs, rhs
            )));
        }
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{collection, Strategy, TestRng};

    #[test]
    fn ranges_and_vec_stay_in_bounds() {
        let mut rng = TestRng::deterministic("self-test", 0);
        for _ in 0..1000 {
            let v = (1u64..8).generate(&mut rng);
            assert!((1..8).contains(&v));
            let w = (-5i128..=5).generate(&mut rng);
            assert!((-5..=5).contains(&w));
            let xs = collection::vec(0usize..4, 1..5).generate(&mut rng);
            assert!((1..5).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < 4));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::deterministic("self-test", 1);
        let s = (1usize..4).prop_flat_map(|n| {
            (Just(n), collection::vec(0u64..10, n..=n)).prop_map(|(n, xs)| (n, xs))
        });
        for _ in 0..200 {
            let (n, xs) = s.generate(&mut rng);
            assert_eq!(xs.len(), n);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_end_to_end(a in 1u64..100, (b, c) in (0usize..4, 1i32..5)) {
            prop_assume!(a != 13);
            prop_assert!(a >= 1 && b < 4);
            prop_assert_eq!(c - c, 0);
            prop_assert_ne!(a, 0);
        }
    }

    // Deliberately failing properties, defined without #[test] so the
    // shrinker can be exercised under catch_unwind.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        fn failing_integer(a in 0u64..1000) {
            prop_assert!(a < 17, "a = {}", a);
        }

        fn failing_vec(xs in collection::vec(0u64..100, 0..20)) {
            prop_assert!(xs.iter().sum::<u64>() < 50, "sum too large");
        }

        fn failing_pair(a in 0u64..100, b in 0u64..100) {
            prop_assert!(a + b < 10, "a + b = {}", a + b);
        }

        fn assume_survives_shrinking(a in 0u64..1000) {
            // Shrink candidates below 100 are rejected, not treated as
            // passing failures; the minimum reportable failure is 150.
            prop_assume!(a >= 100);
            prop_assert!(a < 150);
        }
    }

    fn failure_message(f: fn()) -> String {
        let err = std::panic::catch_unwind(f).expect_err("property must fail");
        err.downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .expect("panic payload is a string")
    }

    #[test]
    fn shrinker_minimizes_integer_to_the_boundary() {
        let msg = failure_message(failing_integer);
        assert!(msg.contains("minimal input"), "{msg}");
        // Binary search toward the range floor lands exactly on the
        // smallest failing value.
        assert!(msg.contains("(17,)"), "{msg}");
        assert!(msg.contains("a = 17"), "{msg}");
    }

    #[test]
    fn shrinker_minimizes_vecs() {
        let msg = failure_message(failing_vec);
        assert!(msg.contains("minimal input"), "{msg}");
        // The reported vector is still a failure (sum >= 50) but short:
        // length shrinking halves to at most a handful of elements.
        let inner = msg.split("minimal input").nth(1).expect("suffix");
        let count = inner.matches(',').count();
        assert!(count <= 4, "expected a short minimal vec: {msg}");
    }

    #[test]
    fn shrinker_minimizes_tuples_component_wise() {
        let msg = failure_message(failing_pair);
        assert!(msg.contains("minimal input"), "{msg}");
        // At the fixpoint every decrement passes, so the pair sums to
        // exactly the boundary.
        assert!(msg.contains("a + b = 10"), "{msg}");
    }

    #[test]
    fn shrinker_respects_assumptions() {
        let msg = failure_message(assume_survives_shrinking);
        assert!(msg.contains("minimal input"), "{msg}");
        // Values below the assumption are rejected (not failing), so the
        // minimum is the assumption floor + boundary: exactly 150.
        assert!(msg.contains("(150,)"), "{msg}");
    }

    #[test]
    fn passing_properties_stay_silent() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]
            fn all_good(a in 0u64..5) {
                prop_assert!(a < 5);
            }
        }
        all_good();
    }
}
