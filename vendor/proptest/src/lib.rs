//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the API subset the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, [`collection::vec()`], [`Just`], the [`proptest!`] macro with an
//! optional `proptest_config`, and the `prop_assert*`/`prop_assume!` macros.
//!
//! Semantics differ from real proptest in one deliberate way: failing cases
//! are **not shrunk**. Each case is generated from a deterministic seed
//! derived from the test's module path, name and case index, and a failure
//! reports that case index, so failures are exactly reproducible by rerunning
//! the test.

use core::ops::{Range, RangeInclusive};

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Per-test configuration (subset: number of cases).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count actually run: the `BSS_PROPTEST_CASES` environment
    /// variable (when set to a positive integer) overrides the per-suite
    /// value, so CI's nightly job can raise coverage without code changes.
    #[must_use]
    pub fn effective_cases(&self) -> u32 {
        std::env::var("BSS_PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped, not failed.
    Reject,
    /// A `prop_assert*!` failed with the given message.
    Fail(String),
}

impl TestCaseError {
    /// Convenience constructor used by the assertion macros.
    #[must_use]
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// The deterministic generator handed to strategies; seeded per test case.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from the test's identity and case index (FNV-1a over the name).
    #[must_use]
    pub fn deterministic(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ (u64::from(case) << 1) ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, width: u64) -> u64 {
        if width <= 1 {
            return 0;
        }
        let zone = u64::MAX - (u64::MAX % width + 1) % width;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % width;
            }
        }
    }

    fn below_u128(&mut self, width: u128) -> u128 {
        if width <= 1 {
            return 0;
        }
        if let Ok(w) = u64::try_from(width) {
            return u128::from(self.below(w));
        }
        let zone = u128::MAX - (u128::MAX % width + 1) % width;
        loop {
            let v = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
            if v <= zone {
                return v % width;
            }
        }
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of random values; the heart of the API.
///
/// Unlike real proptest there is no value tree: `generate` draws a sample
/// directly and failures are not shrunk.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one sample.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Applies `f` to every generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, builds a dependent strategy from it, and samples
    /// that.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let off = rng.below_u128(width);
                (self.start as i128).wrapping_add(off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi as i128).wrapping_sub(lo as i128) as u128;
                let off = rng.below_u128(width.wrapping_add(1));
                (lo as i128).wrapping_add(off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// i128 spans can exceed u128's modelling above only for the full i128 range,
// which no strategy in this workspace uses; handle it with a direct impl.
impl Strategy for Range<i128> {
    type Value = i128;
    fn generate(&self, rng: &mut TestRng) -> i128 {
        assert!(self.start < self.end, "empty range strategy");
        let width = self.end.wrapping_sub(self.start) as u128;
        self.start.wrapping_add(rng.below_u128(width) as i128)
    }
}

impl Strategy for RangeInclusive<i128> {
    type Value = i128;
    fn generate(&self, rng: &mut TestRng) -> i128 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        let width = hi.wrapping_sub(lo) as u128;
        lo.wrapping_add(rng.below_u128(width.wrapping_add(1)) as i128)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use core::ops::{Range, RangeInclusive};

    /// Size specification for [`vec()`]: a fixed size or a (half-open or
    /// inclusive) range of sizes.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s of values drawn from `element`, with a length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span + 1) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the subset of real proptest syntax this workspace uses: an
/// optional leading `#![proptest_config(...)]`, then any number of test
/// functions with `pattern in strategy` parameters.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $( $pat:pat in $strat:expr ),+ $(,)? ) $body:block )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let cases = config.effective_cases();
            let test_id = concat!(module_path!(), "::", stringify!($name));
            for case in 0..cases {
                let mut rng = $crate::TestRng::deterministic(test_id, case);
                let outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $( let $pat = $crate::Strategy::generate(&($strat), &mut rng); )+
                    $body
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("{test_id}: case {case}/{cases} failed: {msg}");
                    }
                }
            }
        }
    )*};
}

/// Like `assert!`, but reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Like `assert_eq!`, but reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(lhs == rhs) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                lhs, rhs
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(lhs == rhs) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                lhs,
                rhs,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Like `assert_ne!`, but reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if lhs == rhs {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                lhs, rhs
            )));
        }
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{collection, Strategy, TestRng};

    #[test]
    fn ranges_and_vec_stay_in_bounds() {
        let mut rng = TestRng::deterministic("self-test", 0);
        for _ in 0..1000 {
            let v = (1u64..8).generate(&mut rng);
            assert!((1..8).contains(&v));
            let w = (-5i128..=5).generate(&mut rng);
            assert!((-5..=5).contains(&w));
            let xs = collection::vec(0usize..4, 1..5).generate(&mut rng);
            assert!((1..5).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < 4));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::deterministic("self-test", 1);
        let s = (1usize..4).prop_flat_map(|n| {
            (Just(n), collection::vec(0u64..10, n..=n)).prop_map(|(n, xs)| (n, xs))
        });
        for _ in 0..200 {
            let (n, xs) = s.generate(&mut rng);
            assert_eq!(xs.len(), n);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_end_to_end(a in 1u64..100, (b, c) in (0usize..4, 1i32..5)) {
            prop_assume!(a != 13);
            prop_assert!(a >= 1 && b < 4);
            prop_assert_eq!(c - c, 0);
            prop_assert_ne!(a, 0);
        }
    }
}
