//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the API subset the workspace's benches use: `Criterion`,
//! benchmark groups with `sample_size`/`bench_function`/`bench_with_input`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros.
//!
//! Measurement is deliberately simple — per benchmark it runs one warm-up
//! batch and `sample_size` timed batches, then prints min/median/mean wall
//! time. No statistical analysis, plots, or baseline comparison; wire the
//! real criterion back in once the environment has registry access.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

const DEFAULT_SAMPLE_SIZE: usize = 100;

/// Sample-count cap from the `BSS_BENCH_SAMPLES` environment variable.
///
/// CI's bench-smoke job sets `BSS_BENCH_SAMPLES=1` so every target runs its
/// warm-up plus a single timed sample — enough to catch compile or runtime
/// rot without spending minutes on statistics. Unset or unparsable values
/// leave the configured sample sizes untouched; `0` is clamped to `1` (a
/// benchmark cannot run fewer than one sample).
fn sample_cap() -> Option<usize> {
    std::env::var("BSS_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|v| v.max(1))
}

fn effective_samples(configured: usize) -> usize {
    match sample_cap() {
        Some(cap) => configured.min(cap),
        None => configured,
    }
}

/// Entry point handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        run_benchmark(&id.into().label, DEFAULT_SAMPLE_SIZE, f);
    }
}

/// A named set of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 1, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, f);
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Identifier for one benchmark, optionally carrying a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl core::fmt::Display, parameter: impl core::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Timer handed to the benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, recording one sample per call.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        black_box(f());
        self.samples.push(start.elapsed());
    }
}

fn run_benchmark(label: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let sample_size = effective_samples(sample_size);
    // Warm-up batch (not recorded).
    let mut warmup = Bencher {
        samples: Vec::new(),
    };
    f(&mut warmup);
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
    };
    while bencher.samples.len() < sample_size {
        f(&mut bencher);
    }
    let mut sorted = bencher.samples.clone();
    sorted.sort_unstable();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let total: Duration = sorted.iter().sum();
    let mean = total / sorted.len() as u32;
    println!(
        "  {label:<48} min {min:>12.3?}  median {median:>12.3?}  mean {mean:>12.3?}  ({} samples)",
        sorted.len()
    );
}

/// Bundles benchmark functions into one runner function, like criterion's.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Expands to `main`, running every group and ignoring harness CLI flags.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes `--bench` (and possibly filters); this
            // minimal harness runs everything and ignores the arguments.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(c: &mut Criterion) {
        let mut g = c.benchmark_group("self-test");
        g.sample_size(5);
        g.bench_function("square", |b| b.iter(|| black_box(7u64) * black_box(7u64)));
        g.bench_with_input(BenchmarkId::new("with-input", 3), &3u64, |b, &x| {
            b.iter(|| x * x)
        });
        g.finish();
    }

    criterion_group!(benches, square);

    #[test]
    fn harness_runs() {
        benches();
    }
}
