//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements exactly the API subset the workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer and float
//! ranges, [`Rng::gen`] for a few primitives, and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — deterministic in the
//! seed, with distribution quality far beyond what seeded test workloads need.
//! The streams differ from the real `rand`'s `StdRng` (ChaCha12), which is
//! fine: nothing in the workspace depends on a particular stream, only on
//! determinism.

use core::ops::{Range, RangeInclusive};

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Samples a value of a primitive type from its "standard" distribution
    /// (`f64` in `[0, 1)`, integers uniform over the whole type).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<G: RngCore> Rng for G {}

/// SplitMix64 step; used for seeding and as a stream expander.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ generator (the workspace's deterministic `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Uniform sampling over a half-open span of `width` values (`width >= 1`),
/// bias-free via rejection on the top partial block.
fn uniform_below<G: RngCore>(g: &mut G, width: u64) -> u64 {
    debug_assert!(width >= 1);
    if width == 1 {
        return 0;
    }
    // Zone is the largest multiple of `width` that fits in u64.
    let zone = u64::MAX - (u64::MAX % width + 1) % width;
    loop {
        let v = g.next_u64();
        if v <= zone {
            return v % width;
        }
    }
}

/// A range that can be sampled; mirrors `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from<G: RngCore>(self, g: &mut G) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: RngCore>(self, g: &mut G) -> $t {
                assert!(self.start < self.end, "empty range");
                let width = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add(uniform_below(g, width) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: RngCore>(self, g: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let width = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if width == u64::MAX {
                    return g.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(g, width + 1) as $t)
            }
        }
    )*};
}

int_sample_range!(
    u64 => u64,
    u32 => u32,
    usize => usize,
    i64 => u64,
    i32 => u32,
);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<G: RngCore>(self, g: &mut G) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::sample_standard(g) * (self.end - self.start)
    }
}

/// Primitive types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples from the type's standard distribution.
    fn sample_standard<G: RngCore>(g: &mut G) -> Self;
}

impl Standard for u64 {
    fn sample_standard<G: RngCore>(g: &mut G) -> Self {
        g.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<G: RngCore>(g: &mut G) -> Self {
        (g.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_standard<G: RngCore>(g: &mut G) -> Self {
        g.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<G: RngCore>(g: &mut G) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (g.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

pub mod seq {
    use super::RngCore;

    /// Slice helpers (subset: `shuffle` only).
    pub trait SliceRandom {
        /// Fisher-Yates shuffle.
        fn shuffle<G: RngCore>(&mut self, rng: &mut G);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<G: RngCore>(&mut self, rng: &mut G) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u64..=9);
            assert!((3..=9).contains(&v));
            let w = rng.gen_range(5usize..8);
            assert!((5..8).contains(&w));
            let f = rng.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {c}");
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
