//! Batched multi-instance solving on a per-core workspace pool.
//!
//! [`bss_core`]'s speculative search parallelizes *one* solve's probe
//! ladder; this crate parallelizes *across* solves. A [`SolvePool`] owns one
//! long-lived [`DualWorkspace`] per worker, so a batch of instances — a
//! sweep, a service queue, a replay — is solved with warm buffers and zero
//! per-item allocation churn: worker `i` always probes on workspace `i`
//! (workspace affinity), and the pool outlives any number of batches.
//!
//! Scheduling reuses the chunked work-stealing layout of
//! [`bss_report::parallel_map`] via the shared [`chunk_plan`]: items are
//! pre-split into contiguous chunks (several per worker, so expensive
//! instances still balance) claimed through one atomic cursor, and tiny
//! batches never spawn more threads than items.
//!
//! Guarantees:
//!
//! * **Bit-identity** — each item's result is exactly what
//!   [`bss_core::solve_budgeted_with`] returns for it, at every thread
//!   count. Parallelism buys throughput, never different answers.
//! * **Per-item isolation** — a panicking solve (a bug, an overflow, an
//!   injected chaos fault) comes back as that item's typed
//!   [`SolveError`]; its workspace is reset and the rest of the batch is
//!   unaffected.
//! * **Cooperative budgets** — [`SolvePool::solve_batch_budgeted`] polls the
//!   shared [`SolveBudget`] before every item; once it trips, remaining
//!   items are skipped (`None`) and the interrupt is reported, while
//!   finished items keep their results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use bss_budget::{Interrupt, SolveBudget};
use bss_core::{solve_budgeted_with, Algorithm, DualWorkspace, Solution, SolveError};
use bss_instance::{Instance, Variant};
use bss_report::chunk_plan;

/// The outcome of [`SolvePool::solve_batch_budgeted`]: one slot per input
/// item, in input order.
///
/// `None` marks an item skipped because the budget had already tripped when
/// its turn came; `Some(Err(_))` an item whose solve panicked (isolated);
/// `Some(Ok(_))` a solved item — possibly [degraded], when the budget
/// expired *mid*-solve rather than between items.
///
/// [degraded]: bss_core::Completion::Degraded
#[derive(Debug)]
pub struct BatchOutcome {
    /// Per-item results, in input order.
    pub results: Vec<Option<Result<Solution, SolveError>>>,
    /// The first interrupt that stopped the batch, if any.
    pub interrupt: Option<Interrupt>,
}

/// A pool of per-worker [`DualWorkspace`]s for batched solving.
///
/// Workspaces are created lazily (a pool sized for 8 threads that only ever
/// sees 3-item batches allocates 3 workspaces) and kept warm across batches:
/// the buffers grown by one batch's largest instance are reused by the next.
#[derive(Debug)]
pub struct SolvePool {
    workspaces: Vec<DualWorkspace>,
    threads: usize,
}

impl SolvePool {
    /// A pool sized to the machine's available parallelism.
    #[must_use]
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        Self::with_threads(threads)
    }

    /// A pool with an explicit worker count (`1` solves batches
    /// sequentially, on one warm workspace).
    ///
    /// # Panics
    /// If `threads == 0`.
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads > 0, "a solve pool needs at least one worker");
        SolvePool {
            workspaces: Vec::new(),
            threads,
        }
    }

    /// The pool's worker-thread budget (an upper bound; tiny batches use
    /// fewer — see [`chunk_plan`]).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Solves every instance under an unlimited budget.
    ///
    /// Per item, the result is bit-identical to
    /// [`bss_core::solve_budgeted_with`] (and hence, on `Ok`, to
    /// [`bss_core::solve_with`]) at every thread count. A panicking item
    /// comes back as its own `Err` without disturbing its neighbours.
    pub fn solve_batch(
        &mut self,
        insts: &[Instance],
        variant: Variant,
        algo: Algorithm,
    ) -> Vec<Result<Solution, SolveError>> {
        let out = self.solve_batch_budgeted(insts, variant, algo, &SolveBudget::unlimited());
        debug_assert!(out.interrupt.is_none(), "unlimited budget never interrupts");
        out.results
            .into_iter()
            .map(|r| r.expect("unlimited budget processes every item"))
            .collect()
    }

    /// [`SolvePool::solve_batch`] under a cooperative [`SolveBudget`]
    /// shared by the whole batch.
    ///
    /// The budget is polled before every item; once it trips, the remaining
    /// items are skipped (`None`) and the first interrupt is reported in
    /// [`BatchOutcome::interrupt`]. An item *in flight* when the budget
    /// expires degrades gracefully instead (its solution is returned with
    /// the appropriate [`Completion`](bss_core::Completion)), exactly as a
    /// standalone [`solve_budgeted_with`] would.
    pub fn solve_batch_budgeted(
        &mut self,
        insts: &[Instance],
        variant: Variant,
        algo: Algorithm,
        budget: &SolveBudget,
    ) -> BatchOutcome {
        let n = insts.len();
        if n == 0 {
            return BatchOutcome {
                results: Vec::new(),
                interrupt: None,
            };
        }
        let plan = chunk_plan(n, self.threads);
        self.ensure_workspaces(plan.workers);
        if plan.workers == 1 {
            let ws = &mut self.workspaces[0];
            let mut results = Vec::with_capacity(n);
            let mut interrupt = None;
            for inst in insts {
                if interrupt.is_none() {
                    match budget.poll() {
                        Ok(()) => {
                            results
                                .push(Some(solve_budgeted_with(ws, inst, variant, algo, budget)));
                            continue;
                        }
                        Err(i) => interrupt = Some(i),
                    }
                }
                results.push(None);
            }
            return BatchOutcome { results, interrupt };
        }

        // Chunked claiming as in `bss_report::parallel_map`: result slots
        // travel as disjoint `&mut` slices (no per-item locks); the
        // per-chunk mutex is taken exactly once, to move a chunk out.
        let mut result_slots: Vec<Option<Result<Solution, SolveError>>> =
            (0..n).map(|_| None).collect();
        type Chunk<'a> = (usize, &'a mut [Option<Result<Solution, SolveError>>]);
        let chunks: Vec<Mutex<Option<Chunk<'_>>>> = {
            let mut out = Vec::with_capacity(plan.chunks);
            let mut base = 0usize;
            let mut rest = result_slots.as_mut_slice();
            while !rest.is_empty() {
                let take = plan.chunk_len.min(rest.len());
                let (chunk, tail) = rest.split_at_mut(take);
                out.push(Mutex::new(Some((base, chunk))));
                rest = tail;
                base += take;
            }
            out
        };
        let cursor = AtomicUsize::new(0);
        let aborted = AtomicBool::new(false);
        let interrupted: Mutex<Option<Interrupt>> = Mutex::new(None);

        std::thread::scope(|scope| {
            let chunks = &chunks;
            let cursor = &cursor;
            let aborted = &aborted;
            let interrupted = &interrupted;
            for ws in &mut self.workspaces[..plan.workers] {
                scope.spawn(move || loop {
                    if aborted.load(Ordering::Relaxed) {
                        break;
                    }
                    let chunk_idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if chunk_idx >= chunks.len() {
                        break;
                    }
                    let Some((_, result_chunk)) =
                        chunks[chunk_idx].lock().expect("chunk lock").take()
                    else {
                        continue;
                    };
                    let base = chunk_idx * plan.chunk_len;
                    for (off, slot) in result_chunk.iter_mut().enumerate() {
                        if let Err(i) = budget.poll() {
                            let mut first = interrupted.lock().expect("interrupt lock");
                            if first.is_none() {
                                *first = Some(i);
                            }
                            aborted.store(true, Ordering::Relaxed);
                            return;
                        }
                        // Panics are isolated one level down (the budgeted
                        // driver catches, resets `ws`, returns `Err`), so a
                        // failing item never takes the worker out.
                        *slot = Some(solve_budgeted_with(
                            ws,
                            &insts[base + off],
                            variant,
                            algo,
                            budget,
                        ));
                    }
                });
            }
        });

        BatchOutcome {
            results: result_slots,
            interrupt: interrupted.into_inner().expect("interrupt lock"),
        }
    }

    /// Solves a *heterogeneous* batch — per-item variant, algorithm and
    /// (optional) budget — on the same warm per-worker workspaces.
    ///
    /// This is the service entry point: `bss-serve`'s dispatcher drains its
    /// request queue into one `solve_items` call, so queued requests that
    /// arrived together are solved together across the pool (micro-batching)
    /// while each keeps its own deadline. Items without a budget run
    /// unlimited. Per item the result is bit-identical to a standalone
    /// [`bss_core::solve_budgeted_with`] under the same budget, at every
    /// thread count, and a panicking item is isolated exactly as in
    /// [`SolvePool::solve_batch`].
    ///
    /// Unlike [`SolvePool::solve_batch_budgeted`] there is no batch-wide
    /// interrupt: every item is always attempted (admission control and
    /// shedding happen *before* items reach the pool).
    pub fn solve_items(&mut self, items: &[SolveItem<'_>]) -> Vec<Result<Solution, SolveError>> {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let unlimited = SolveBudget::unlimited();
        let solve_one = |ws: &mut DualWorkspace, item: &SolveItem<'_>| {
            let budget = item.budget.unwrap_or(&unlimited);
            solve_budgeted_with(ws, item.instance, item.variant, item.algo, budget)
        };
        let plan = chunk_plan(n, self.threads);
        self.ensure_workspaces(plan.workers);
        if plan.workers == 1 {
            let ws = &mut self.workspaces[0];
            return items.iter().map(|item| solve_one(ws, item)).collect();
        }

        let mut result_slots: Vec<Option<Result<Solution, SolveError>>> =
            (0..n).map(|_| None).collect();
        type Slot = Option<Result<Solution, SolveError>>;
        let chunks: Vec<Mutex<Option<&mut [Slot]>>> = {
            let mut out = Vec::with_capacity(plan.chunks);
            let mut rest = result_slots.as_mut_slice();
            while !rest.is_empty() {
                let take = plan.chunk_len.min(rest.len());
                let (chunk, tail) = rest.split_at_mut(take);
                out.push(Mutex::new(Some(chunk)));
                rest = tail;
            }
            out
        };
        let cursor = AtomicUsize::new(0);

        std::thread::scope(|scope| {
            let chunks = &chunks;
            let cursor = &cursor;
            let solve_one = &solve_one;
            for ws in &mut self.workspaces[..plan.workers] {
                scope.spawn(move || loop {
                    let chunk_idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if chunk_idx >= chunks.len() {
                        break;
                    }
                    let Some(result_chunk) = chunks[chunk_idx].lock().expect("chunk lock").take()
                    else {
                        continue;
                    };
                    let base = chunk_idx * plan.chunk_len;
                    for (off, slot) in result_chunk.iter_mut().enumerate() {
                        *slot = Some(solve_one(ws, &items[base + off]));
                    }
                });
            }
        });

        result_slots
            .into_iter()
            .map(|slot| slot.expect("every chunk is claimed and filled"))
            .collect()
    }

    fn ensure_workspaces(&mut self, k: usize) {
        while self.workspaces.len() < k {
            self.workspaces.push(DualWorkspace::new());
        }
    }
}

/// One item of a heterogeneous [`SolvePool::solve_items`] batch.
#[derive(Debug, Clone, Copy)]
pub struct SolveItem<'a> {
    /// The instance to solve.
    pub instance: &'a Instance,
    /// The problem variant.
    pub variant: Variant,
    /// The algorithm to run.
    pub algo: Algorithm,
    /// This item's own budget (`None` = unlimited). Deadlines stay honest
    /// per request even when many requests share one pool batch.
    pub budget: Option<&'a SolveBudget>,
}

impl Default for SolvePool {
    fn default() -> Self {
        SolvePool::new()
    }
}

#[cfg(test)]
mod tests {
    use bss_budget::CancelToken;
    use bss_chaos::assert_bit_identical;

    use super::*;

    const ALGOS: [Algorithm; 3] = [
        Algorithm::EpsilonSearch { eps_log2: 6 },
        Algorithm::ThreeHalves,
        Algorithm::Portfolio,
    ];

    fn batch(seeds: std::ops::Range<u64>) -> Vec<Instance> {
        seeds
            .map(|s| bss_gen::uniform(40 + (s as usize % 13), 6, 3, s))
            .collect()
    }

    #[test]
    fn batch_matches_sequential_solves_at_every_thread_count() {
        let insts = batch(0..9);
        for variant in Variant::ALL {
            for algo in ALGOS {
                let mut ws = DualWorkspace::new();
                let reference: Vec<Solution> = insts
                    .iter()
                    .map(|i| bss_core::solve_with(&mut ws, i, variant, algo))
                    .collect();
                for threads in [1, 2, 4, 8] {
                    let mut pool = SolvePool::with_threads(threads);
                    let got = pool.solve_batch(&insts, variant, algo);
                    assert_eq!(got.len(), reference.len());
                    for (i, (g, want)) in got.iter().zip(&reference).enumerate() {
                        let g = g.as_ref().expect("no panics in this batch");
                        assert_bit_identical(
                            &format!("{variant} {algo:?} t={threads} item {i}"),
                            g,
                            want,
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn pool_reuses_workspaces_across_batches() {
        let insts = batch(0..6);
        let mut pool = SolvePool::with_threads(3);
        let first = pool.solve_batch(&insts, Variant::Preemptive, Algorithm::ThreeHalves);
        let second = pool.solve_batch(&insts, Variant::Preemptive, Algorithm::ThreeHalves);
        for (a, b) in first.iter().zip(&second) {
            assert_bit_identical(
                "warm vs cold batch",
                a.as_ref().expect("ok"),
                b.as_ref().expect("ok"),
            );
        }
        // Lazily grown: 6 items on 3 threads needs exactly 3 workspaces.
        assert_eq!(pool.workspaces.len(), 3);
    }

    #[test]
    fn tiny_batch_spawns_at_most_one_workspace_per_item() {
        let insts = batch(0..2);
        let mut pool = SolvePool::with_threads(16);
        let got = pool.solve_batch(&insts, Variant::Splittable, Algorithm::TwoApprox);
        assert_eq!(got.len(), 2);
        assert!(
            pool.workspaces.len() <= 2,
            "2 items grew {} workspaces",
            pool.workspaces.len()
        );
    }

    #[test]
    fn empty_batch() {
        let mut pool = SolvePool::with_threads(4);
        let got = pool.solve_batch(&[], Variant::Preemptive, Algorithm::Portfolio);
        assert!(got.is_empty());
        assert!(pool.workspaces.is_empty());
    }

    #[test]
    fn cancellation_skips_the_tail_and_keeps_finished_items() {
        let insts = batch(0..32);
        let token = CancelToken::new();
        let budget = SolveBudget::unlimited().with_cancel(&token);
        token.cancel();
        let mut pool = SolvePool::with_threads(4);
        let out =
            pool.solve_batch_budgeted(&insts, Variant::Preemptive, Algorithm::ThreeHalves, &budget);
        assert_eq!(out.interrupt, Some(Interrupt::Cancelled));
        assert_eq!(out.results.len(), 32);
        assert!(out.results.iter().all(Option::is_none));
    }

    #[test]
    fn mid_batch_cancellation_reports_the_interrupt() {
        let insts = batch(0..24);
        let token = CancelToken::new();
        let budget = SolveBudget::unlimited().with_cancel(&token);
        let mut pool = SolvePool::with_threads(4);
        // Cancel from a side thread while the batch runs; regardless of
        // where it lands, every slot is either a full solved item or a
        // skipped `None`, and the interrupt is reported.
        let out = std::thread::scope(|s| {
            s.spawn(|| token.cancel());
            pool.solve_batch_budgeted(&insts, Variant::Preemptive, Algorithm::Portfolio, &budget)
        });
        assert_eq!(out.results.len(), 24);
        if out.results.iter().any(Option::is_none) {
            assert_eq!(out.interrupt, Some(Interrupt::Cancelled));
        }
        let mut ws = DualWorkspace::new();
        for (i, r) in out.results.iter().enumerate() {
            if let Some(Ok(sol)) = r {
                if sol.completion.is_full() {
                    let want = bss_core::solve_with(
                        &mut ws,
                        &insts[i],
                        Variant::Preemptive,
                        Algorithm::Portfolio,
                    );
                    assert_bit_identical(&format!("cancelled batch item {i}"), sol, &want);
                }
            }
        }
    }

    #[test]
    fn injected_panic_is_isolated_to_its_item() {
        use bss_budget::{Fault, FaultPlan};
        let insts = batch(0..8);
        // The fault fires at one global checkpoint index; whichever item's
        // solve reaches it panics, is caught, and comes back as a typed
        // error — the rest of the batch is untouched. threads=1 makes the
        // hit deterministic (the first item); more threads still must
        // isolate it.
        for threads in [1, 4] {
            let budget = SolveBudget::unlimited().with_fault(FaultPlan {
                at: 3,
                fault: Fault::Panic,
            });
            let mut pool = SolvePool::with_threads(threads);
            let out = pool.solve_batch_budgeted(
                &insts,
                Variant::Preemptive,
                Algorithm::EpsilonSearch { eps_log2: 6 },
                &budget,
            );
            assert_eq!(out.interrupt, None, "a panic is not an interrupt");
            let errs = out
                .results
                .iter()
                .filter(|r| matches!(r, Some(Err(_))))
                .count();
            assert_eq!(errs, 1, "exactly one item absorbs the fault");
            assert!(
                out.results
                    .iter()
                    .all(|r| matches!(r, Some(Ok(_)) | Some(Err(_)))),
                "no item is skipped by a neighbour's panic"
            );
            // The surviving items are bit-identical to standalone solves:
            // the panicking item reset its workspace before reuse.
            let mut ws = DualWorkspace::new();
            for (i, r) in out.results.iter().enumerate() {
                if let Some(Ok(sol)) = r {
                    let want = bss_core::solve_with(
                        &mut ws,
                        &insts[i],
                        Variant::Preemptive,
                        Algorithm::EpsilonSearch { eps_log2: 6 },
                    );
                    assert_bit_identical(&format!("t={threads} survivor {i}"), sol, &want);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_is_rejected() {
        let _ = SolvePool::with_threads(0);
    }

    #[test]
    fn heterogeneous_items_match_standalone_solves() {
        let insts = batch(0..6);
        // A mixed service queue: every (instance, variant, algo) cell
        // different from its neighbours.
        let items: Vec<SolveItem<'_>> = insts
            .iter()
            .enumerate()
            .map(|(i, inst)| SolveItem {
                instance: inst,
                variant: Variant::ALL[i % 3],
                algo: ALGOS[i % ALGOS.len()],
                budget: None,
            })
            .collect();
        let mut ws = DualWorkspace::new();
        let reference: Vec<Solution> = items
            .iter()
            .map(|it| bss_core::solve_with(&mut ws, it.instance, it.variant, it.algo))
            .collect();
        for threads in [1, 2, 4, 8] {
            let mut pool = SolvePool::with_threads(threads);
            let got = pool.solve_items(&items);
            assert_eq!(got.len(), reference.len());
            for (i, (g, want)) in got.iter().zip(&reference).enumerate() {
                assert_bit_identical(
                    &format!("items t={threads} item {i}"),
                    g.as_ref().expect("no panics here"),
                    want,
                );
            }
        }
    }

    #[test]
    fn per_item_budgets_are_independent() {
        let insts = batch(0..4);
        // Item 1 gets a starved budget; its neighbours run unlimited and
        // must come back Full and bit-identical to standalone solves.
        let starved = SolveBudget::unlimited().with_work_limit(0);
        let items: Vec<SolveItem<'_>> = insts
            .iter()
            .enumerate()
            .map(|(i, inst)| SolveItem {
                instance: inst,
                variant: Variant::NonPreemptive,
                algo: Algorithm::EpsilonSearch { eps_log2: 8 },
                budget: (i == 1).then_some(&starved),
            })
            .collect();
        for threads in [1, 4] {
            let mut pool = SolvePool::with_threads(threads);
            let got = pool.solve_items(&items);
            let mut ws = DualWorkspace::new();
            for (i, g) in got.iter().enumerate() {
                let sol = g.as_ref().expect("starvation degrades, never errors");
                if i == 1 {
                    assert!(
                        !sol.completion.is_full(),
                        "t={threads}: the starved item must degrade"
                    );
                } else {
                    let want = bss_core::solve_with(
                        &mut ws,
                        &insts[i],
                        Variant::NonPreemptive,
                        Algorithm::EpsilonSearch { eps_log2: 8 },
                    );
                    assert_bit_identical(&format!("t={threads} unbudgeted item {i}"), sol, &want);
                }
            }
        }
    }

    #[test]
    fn empty_items_batch() {
        let mut pool = SolvePool::with_threads(4);
        assert!(pool.solve_items(&[]).is_empty());
        assert!(pool.workspaces.is_empty());
    }
}
