//! McNaughton's wrap-around rule for `P|pmtn|Cmax` (McNaughton 1959).
//!
//! The classic substrate that Batch Wrapping generalizes: `n` jobs without
//! setup times are scheduled preemptively on `m` machines with optimal
//! makespan `T* = max(t_max, (Σ t_j)/m)` by pouring the jobs into the
//! rectangle `m × T*` row by row and splitting at the border.

use bss_rational::Rational;

/// One scheduled piece of McNaughton's schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McPiece {
    /// Job index into the input slice.
    pub job: usize,
    /// Machine index.
    pub machine: usize,
    /// Start time.
    pub start: Rational,
    /// Duration.
    pub len: Rational,
}

/// The output of [`mcnaughton`]: the optimal makespan and the pieces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct McNaughtonSchedule {
    /// `max(t_max, ⌈Σt/m⌉-as-rational)` — the optimal preemptive makespan.
    pub makespan: Rational,
    /// All job pieces (at most `n + m - 1`).
    pub pieces: Vec<McPiece>,
}

/// Schedules `times` on `machines` machines by the wrap-around rule.
///
/// Runs in `O(n)` and produces at most `m - 1` preemptions. Jobs never
/// overlap themselves because every job fits within one column height `T*`.
///
/// # Panics
/// Panics if `machines == 0`.
#[must_use]
pub fn mcnaughton(machines: usize, times: &[u64]) -> McNaughtonSchedule {
    assert!(machines > 0, "need at least one machine");
    let total: u128 = times.iter().map(|&t| t as u128).sum();
    let avg = Rational::new(total as i128, machines as i128);
    let tmax = Rational::from(times.iter().copied().max().unwrap_or(0));
    let t_star = avg.max(tmax);
    let mut pieces = Vec::with_capacity(times.len() + machines);
    if t_star.is_zero() {
        return McNaughtonSchedule {
            makespan: t_star,
            pieces,
        };
    }
    let mut machine = 0usize;
    let mut t = Rational::ZERO;
    for (job, &time) in times.iter().enumerate() {
        let mut remaining = Rational::from(time);
        while remaining.is_positive() {
            let avail = t_star - t;
            if remaining <= avail {
                pieces.push(McPiece {
                    job,
                    machine,
                    start: t,
                    len: remaining,
                });
                t += remaining;
                remaining = Rational::ZERO;
            } else {
                if avail.is_positive() {
                    pieces.push(McPiece {
                        job,
                        machine,
                        start: t,
                        len: avail,
                    });
                    remaining -= avail;
                }
                machine += 1;
                t = Rational::ZERO;
                debug_assert!(machine < machines, "capacity argument guarantees fit");
            }
        }
    }
    McNaughtonSchedule {
        makespan: t_star,
        pieces,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn check_invariants(machines: usize, times: &[u64], s: &McNaughtonSchedule) {
        // Load conservation.
        for (job, &t) in times.iter().enumerate() {
            let placed: Rational = s
                .pieces
                .iter()
                .filter(|p| p.job == job)
                .map(|p| p.len)
                .fold(Rational::ZERO, |a, b| a + b);
            assert_eq!(placed, Rational::from(t), "job {job}");
        }
        // Machine exclusivity.
        for u in 0..machines {
            let mut row: Vec<_> = s.pieces.iter().filter(|p| p.machine == u).collect();
            row.sort_by_key(|p| p.start);
            for w in row.windows(2) {
                assert!(w[1].start >= w[0].start + w[0].len);
            }
        }
        // No self-parallelism.
        for job in 0..times.len() {
            let mut ivs: Vec<_> = s
                .pieces
                .iter()
                .filter(|p| p.job == job)
                .map(|p| (p.start, p.start + p.len))
                .collect();
            ivs.sort();
            for w in ivs.windows(2) {
                assert!(w[1].0 >= w[0].1, "job {job} self-parallel");
            }
        }
        // Makespan respected and optimal.
        for p in &s.pieces {
            assert!(p.start + p.len <= s.makespan);
        }
        let total: u128 = times.iter().map(|&t| t as u128).sum();
        let lb = Rational::new(total as i128, machines as i128)
            .max(Rational::from(times.iter().copied().max().unwrap_or(0)));
        assert_eq!(s.makespan, lb);
    }

    #[test]
    fn simple_even_split() {
        let s = mcnaughton(2, &[3, 3, 3, 3]);
        assert_eq!(s.makespan, Rational::from(6u64));
        check_invariants(2, &[3, 3, 3, 3], &s);
    }

    #[test]
    fn tmax_dominates() {
        let s = mcnaughton(3, &[10, 1, 1]);
        assert_eq!(s.makespan, Rational::from(10u64));
        check_invariants(3, &[10, 1, 1], &s);
    }

    #[test]
    fn fractional_average() {
        let s = mcnaughton(2, &[3, 3, 3]);
        assert_eq!(s.makespan, Rational::new(9, 2));
        check_invariants(2, &[3, 3, 3], &s);
    }

    #[test]
    fn preemption_count_bounded() {
        let s = mcnaughton(4, &[5; 13]);
        // At most m-1 splits → at most n + m - 1 pieces.
        assert!(s.pieces.len() < 13 + 4);
        check_invariants(4, &[5; 13], &s);
    }

    #[test]
    fn empty_jobs() {
        let s = mcnaughton(3, &[]);
        assert!(s.pieces.is_empty());
        assert_eq!(s.makespan, Rational::ZERO);
    }

    proptest! {
        #[test]
        fn prop_invariants(machines in 1usize..8, times in proptest::collection::vec(1u64..50, 0..40)) {
            let s = mcnaughton(machines, &times);
            check_invariants(machines, &times, &s);
        }
    }
}
