//! Batch Wrapping (Appendix A.1 of Deppert & Jansen, SPAA 2019).
//!
//! Batch Wrapping generalizes McNaughton's wrap-around rule to scheduling with
//! setup times. A [`Template`] is a list of *gaps* — free time windows
//! `[a_r, b_r)` on strictly increasing machines — and a [`WrapSequence`] is a
//! flat sequence of batches `[s_{i_1}, C'_1, s_{i_2}, C'_2, …]`. [`wrap`]
//! pours the sequence into the gaps in order; when an item hits a gap's upper
//! border `b_r`:
//!
//! * a **setup** is moved *below* the next gap (to `[a_{r+1} - s, a_{r+1})`),
//! * a **job piece** is split at the border (like McNaughton), and a fresh
//!   setup of its class is placed below the next gap so the continuation is
//!   covered (Algorithm 5, `Split`).
//!
//! The caller must guarantee Lemma 6's preconditions: enough capacity
//! (`S(ω) >= L(Q)`) and free time of at least the largest moved setup below
//! every gap but the first. [`wrap`] reports structural failures
//! ([`WrapError`]) instead of producing garbage.
//!
//! ## The parallel-gap fast path
//!
//! Templates store gaps as [`GapRun`]s — `count` identical gaps on
//! consecutive machines. When a job piece spans several identical gaps, the
//! run is emitted as **one** configuration group with a multiplicity
//! ([`bss_schedule::ConfigGroup`]), in `O(1)` rather than `O(count)`. This is
//! exactly the implementation trick the paper uses to reach `O(n)` for the
//! splittable dual algorithm (proof of Theorem 7) and `O(n)` for the simple
//! 2-approximation (Lemma 8); without it, wrapping costs `Θ(n + m)`.
//!
//! McNaughton's classic wrap-around rule for `P|pmtn|Cmax` — the ancestor of
//! Batch Wrapping — is provided as [`mcnaughton`].

mod mcnaughton;
#[cfg(test)]
mod proptests;
mod sequence;
mod template;
mod wrapper;

pub use mcnaughton::{mcnaughton, McNaughtonSchedule};
pub use sequence::{SeqItem, SeqKind, WrapSequence};
pub use template::{GapRun, Template};
pub use wrapper::{
    batch_items, wrap, wrap_append, wrap_explicit, wrap_into, wrap_iter_append, WrapError,
};
