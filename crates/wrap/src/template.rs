//! Wrap templates (Definition 2).

use bss_rational::Rational;

/// `count` identical gaps `[a, b)` on consecutive machines
/// `first_machine .. first_machine + count`.
///
/// A run with `count == 1` is an ordinary single gap; larger counts enable the
/// parallel-gap fast path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GapRun {
    /// First machine of the run.
    pub first_machine: usize,
    /// Number of consecutive machines, each carrying one gap.
    pub count: usize,
    /// Lower border of each gap (`0 <= a < b`).
    pub a: Rational,
    /// Upper border of each gap.
    pub b: Rational,
}

impl GapRun {
    /// A single gap on `machine`.
    #[must_use]
    pub fn single(machine: usize, a: Rational, b: Rational) -> Self {
        GapRun {
            first_machine: machine,
            count: 1,
            a,
            b,
        }
    }

    /// Provided time of one gap, `b - a`.
    #[must_use]
    pub fn height(&self) -> Rational {
        self.b - self.a
    }

    /// Provided time of the whole run.
    #[must_use]
    pub fn capacity(&self) -> Rational {
        self.height() * self.count
    }
}

/// A wrap template `ω`: a machine-ordered list of gap runs.
///
/// Invariants (checked by [`Template::new`]): machines strictly increase
/// across the flattened gap list, `0 <= a < b` in each run, counts positive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Template {
    runs: Vec<GapRun>,
}

impl Template {
    /// Builds a validated template.
    ///
    /// # Panics
    /// Panics on malformed runs (programming errors in the calling
    /// algorithm): non-positive counts, `a >= b`, negative `a`, or
    /// non-increasing machines.
    #[must_use]
    pub fn new(runs: Vec<GapRun>) -> Self {
        Template::check(&runs);
        Template { runs }
    }

    /// Asserts the template invariants on a raw run slice — used by the
    /// wrap entry points that take caller-owned (workspace-reused) run
    /// buffers instead of an owned [`Template`].
    ///
    /// # Panics
    /// Panics on malformed runs, like [`Template::new`].
    pub fn check(runs: &[GapRun]) {
        let mut next_free = 0usize;
        for run in runs {
            assert!(run.count > 0, "empty gap run");
            assert!(
                !run.a.is_negative() && run.a < run.b,
                "malformed gap [{}, {})",
                run.a,
                run.b
            );
            assert!(
                run.first_machine >= next_free,
                "gap machines must strictly increase (machine {} after {})",
                run.first_machine,
                next_free
            );
            next_free = run.first_machine + run.count;
        }
    }

    /// Template over single gaps, convenience for tests and simple callers.
    #[must_use]
    pub fn from_gaps(gaps: Vec<(usize, Rational, Rational)>) -> Self {
        Template::new(
            gaps.into_iter()
                .map(|(machine, a, b)| GapRun::single(machine, a, b))
                .collect(),
        )
    }

    /// The gap runs.
    #[must_use]
    pub fn runs(&self) -> &[GapRun] {
        &self.runs
    }

    /// Number of gaps `|ω|` (counting multiplicities).
    #[must_use]
    pub fn num_gaps(&self) -> usize {
        self.runs.iter().map(|r| r.count).sum()
    }

    /// Provided period of time `S(ω) = Σ (b_r - a_r)`.
    #[must_use]
    pub fn capacity(&self) -> Rational {
        self.runs
            .iter()
            .map(GapRun::capacity)
            .fold(Rational::ZERO, |x, y| x + y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(v: i128) -> Rational {
        Rational::from_int(v)
    }

    #[test]
    fn capacity_and_counts() {
        let t = Template::new(vec![
            GapRun::single(0, r(0), r(10)),
            GapRun {
                first_machine: 1,
                count: 3,
                a: r(2),
                b: r(10),
            },
        ]);
        assert_eq!(t.num_gaps(), 4);
        assert_eq!(t.capacity(), r(10 + 3 * 8));
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn rejects_machine_reuse() {
        let _ = Template::new(vec![
            GapRun::single(0, r(0), r(1)),
            GapRun::single(0, r(2), r(3)),
        ]);
    }

    #[test]
    #[should_panic(expected = "malformed gap")]
    fn rejects_empty_gap() {
        let _ = Template::new(vec![GapRun::single(0, r(5), r(5))]);
    }

    #[test]
    #[should_panic(expected = "empty gap run")]
    fn rejects_zero_count() {
        let _ = Template::new(vec![GapRun {
            first_machine: 0,
            count: 0,
            a: r(0),
            b: r(1),
        }]);
    }

    #[test]
    fn from_gaps_builds_singles() {
        let t = Template::from_gaps(vec![(2, r(0), r(4)), (5, r(1), r(4))]);
        assert_eq!(t.runs().len(), 2);
        assert_eq!(t.num_gaps(), 2);
        assert_eq!(t.capacity(), r(7));
    }
}
