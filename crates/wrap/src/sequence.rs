//! Wrap sequences (Definition 2): flat batch sequences `[s_i, C'_i]`.

use bss_instance::{ClassId, JobId};
use bss_rational::Rational;

/// Whether a sequence item is a setup or a job piece.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqKind {
    /// A setup of the item's class.
    Setup,
    /// A piece of the given job.
    Piece(JobId),
}

/// One item of a wrap sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeqItem {
    /// The class of the setup / job.
    pub class: ClassId,
    /// Setup or job piece.
    pub kind: SeqKind,
    /// Length; job pieces may have rational lengths (knapsack splits).
    pub len: Rational,
}

/// A wrap sequence `Q = [s_{i_l}, C'_l]_{l ∈ [k]}`.
///
/// Built batch by batch: a setup followed by the jobs (or job pieces) of that
/// class. Nothing forbids repeating a class later in the sequence — the
/// preemptive algorithm's bottom-of-large-machines wrap does exactly that.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WrapSequence {
    items: Vec<SeqItem>,
    load: Rational,
}

impl WrapSequence {
    /// An empty sequence.
    #[must_use]
    pub fn new() -> Self {
        WrapSequence::default()
    }

    /// Clears the sequence for reuse, keeping the item buffer's capacity
    /// (workspaces rebuild a fresh sequence per guess without reallocating).
    pub fn clear(&mut self) {
        self.items.clear();
        self.load = Rational::ZERO;
    }

    /// Appends a setup of `class` with length `len`.
    pub fn push_setup(&mut self, class: ClassId, len: Rational) {
        debug_assert!(len.is_positive(), "setups have positive length");
        self.items.push(SeqItem {
            class,
            kind: SeqKind::Setup,
            len,
        });
        self.load += len;
    }

    /// Appends a piece of `job` (class `class`) with length `len`.
    /// Zero-length pieces are dropped.
    pub fn push_piece(&mut self, class: ClassId, job: JobId, len: Rational) {
        debug_assert!(!len.is_negative(), "piece length must be non-negative");
        if len.is_positive() {
            self.items.push(SeqItem {
                class,
                kind: SeqKind::Piece(job),
                len,
            });
            self.load += len;
        }
    }

    /// Appends a whole batch: setup then pieces.
    pub fn push_batch(
        &mut self,
        class: ClassId,
        setup: Rational,
        pieces: impl IntoIterator<Item = (JobId, Rational)>,
    ) {
        self.push_setup(class, setup);
        for (job, len) in pieces {
            self.push_piece(class, job, len);
        }
    }

    /// The items in order.
    #[must_use]
    pub fn items(&self) -> &[SeqItem] {
        &self.items
    }

    /// Number of items `|Q|`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` iff the sequence has no items.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The load `L(Q) = Σ (s_{i_l} + P(C'_l))`.
    #[must_use]
    pub fn load(&self) -> Rational {
        self.load
    }

    /// Largest setup length in the sequence (`s^(Q)_max` of Lemma 6), zero if
    /// the sequence has no setups.
    #[must_use]
    pub fn max_setup(&self) -> Rational {
        self.items
            .iter()
            .filter(|i| matches!(i.kind, SeqKind::Setup))
            .map(|i| i.len)
            .max()
            .unwrap_or(Rational::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(v: i128) -> Rational {
        Rational::from_int(v)
    }

    #[test]
    fn batch_building_and_load() {
        let mut q = WrapSequence::new();
        q.push_batch(0, r(3), [(0, r(4)), (1, r(5))]);
        q.push_batch(1, r(1), [(2, r(2))]);
        assert_eq!(q.len(), 5);
        assert_eq!(q.load(), r(15));
        assert_eq!(q.max_setup(), r(3));
        assert!(!q.is_empty());
    }

    #[test]
    fn zero_length_pieces_dropped() {
        let mut q = WrapSequence::new();
        q.push_batch(0, r(1), [(0, r(0)), (1, r(2))]);
        assert_eq!(q.len(), 2);
        assert_eq!(q.load(), r(3));
    }

    #[test]
    fn empty_sequence() {
        let q = WrapSequence::new();
        assert!(q.is_empty());
        assert_eq!(q.load(), Rational::ZERO);
        assert_eq!(q.max_setup(), Rational::ZERO);
    }
}
