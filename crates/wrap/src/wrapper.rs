//! The `Wrap` algorithm with `Split` (Algorithm 5) and the parallel-gap fast
//! path.
//!
//! The wrapper is generic over its *emission target* ([`WrapEmit`]): the same
//! placement logic either appends configuration groups to a
//! [`CompactSchedule`] ([`wrap`], [`wrap_append`]) or streams explicit
//! placements straight into a [`PlacementSink`] ([`wrap_into`]) — the
//! compact-first pipeline's way of writing a wrap result into its final
//! destination exactly once, with no intermediate `Schedule`.

use bss_instance::ClassId;
use bss_rational::Rational;
use bss_schedule::{
    CompactSchedule, ConfigItem, ItemKind, MachineConfig, Placement, PlacementSink,
};

use crate::{GapRun, SeqItem, SeqKind, Template, WrapSequence};

/// Structural failures of a wrap. Under Lemma 6's preconditions these never
/// occur; the dual algorithms treat them as "reject this makespan guess".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WrapError {
    /// The template ran out of gaps before the sequence was fully placed.
    OutOfSpace {
        /// Load that could not be placed.
        unplaced: Rational,
    },
    /// A setup moved below a gap would start before time 0 (the caller
    /// violated the free-time-below-gaps precondition).
    SetupBelowZero {
        /// The class whose setup did not fit.
        class: ClassId,
    },
}

impl core::fmt::Display for WrapError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WrapError::OutOfSpace { unplaced } => {
                write!(f, "wrap template exhausted with {unplaced} load unplaced")
            }
            WrapError::SetupBelowZero { class } => {
                write!(
                    f,
                    "setup of class {class} moved below a gap starts before time 0"
                )
            }
        }
    }
}

impl std::error::Error for WrapError {}

/// Where wrapped items go: one call per single-machine item, one call per
/// parallel-gap group. Machines arrive in non-decreasing order (gaps live on
/// strictly increasing machines).
trait WrapEmit {
    /// An item on a single machine.
    fn item(&mut self, machine: usize, item: ConfigItem);

    /// A `(setup, piece)` configuration repeated on `count` consecutive
    /// machines (the parallel-gap fast path).
    fn group(&mut self, first_machine: usize, count: usize, setup: ConfigItem, piece: ConfigItem);

    /// Called once after the sequence is fully placed.
    fn finish(&mut self);
}

/// Appends configuration groups to a [`CompactSchedule`]: single-machine
/// items stream into a group opened *in place* in the output (so every
/// allocation is output storage — no emit-side scratch); fast-path groups
/// pass through with their multiplicity.
struct GroupEmit<'a> {
    out: &'a mut CompactSchedule,
    machine: usize,
    open: bool,
}

impl<'a> GroupEmit<'a> {
    fn new(out: &'a mut CompactSchedule) -> Self {
        GroupEmit {
            out,
            machine: 0,
            open: false,
        }
    }

    fn close(&mut self) {
        if self.open {
            self.out.end_group();
            self.open = false;
        }
    }
}

impl WrapEmit for GroupEmit<'_> {
    fn item(&mut self, machine: usize, item: ConfigItem) {
        if !self.open || machine != self.machine {
            self.close();
            self.out.begin_group(machine, 1);
            self.machine = machine;
            self.open = true;
        }
        self.out.push_open_item(item);
    }

    fn group(&mut self, first_machine: usize, count: usize, setup: ConfigItem, piece: ConfigItem) {
        self.close();
        self.out.push_group(
            first_machine,
            count,
            MachineConfig {
                items: vec![setup, piece],
            },
        );
        self.machine = first_machine + count;
    }

    fn finish(&mut self) {
        self.close();
    }
}

/// Streams explicit placements into a [`PlacementSink`]; fast-path groups
/// are unrolled (that cost is exactly what any later expansion would pay —
/// paid once, at the final destination).
struct StreamEmit<'a, S: PlacementSink> {
    sink: &'a mut S,
}

impl<S: PlacementSink> WrapEmit for StreamEmit<'_, S> {
    fn item(&mut self, machine: usize, item: ConfigItem) {
        self.sink
            .place(Placement::new(machine, item.start, item.len, item.kind));
    }

    fn group(&mut self, first_machine: usize, count: usize, setup: ConfigItem, piece: ConfigItem) {
        for k in 0..count {
            let u = first_machine + k;
            self.sink
                .place(Placement::new(u, setup.start, setup.len, setup.kind));
            self.sink
                .place(Placement::new(u, piece.start, piece.len, piece.kind));
        }
    }

    fn finish(&mut self) {}
}

/// Cursor state of the wrapper: which gap we are in and what has been emitted.
struct Wrapper<'a, E: WrapEmit> {
    runs: &'a [GapRun],
    setups: &'a [u64],
    emit: E,
    /// Index of the current run.
    run: usize,
    /// Gap offset within the current run.
    offset: usize,
    /// Whether anything was emitted into the current gap yet (guards the
    /// parallel-gap fast path).
    gap_dirty: bool,
    /// Current fill time within the current gap.
    t: Rational,
    /// Class the current gap's machine is configured for (reset per gap —
    /// every gap lives on its own machine).
    configured: Option<ClassId>,
}

impl<'a, E: WrapEmit> Wrapper<'a, E> {
    fn new(runs: &'a [GapRun], setups: &'a [u64], emit: E) -> Self {
        let t = runs.first().map(|r| r.a).unwrap_or(Rational::ZERO);
        Wrapper {
            runs,
            setups,
            emit,
            run: 0,
            offset: 0,
            gap_dirty: false,
            t,
            configured: None,
        }
    }

    fn exhausted(&self) -> bool {
        self.run >= self.runs.len()
    }

    fn gap_a(&self) -> Rational {
        self.runs[self.run].a
    }

    fn gap_b(&self) -> Rational {
        self.runs[self.run].b
    }

    fn machine(&self) -> usize {
        let r = &self.runs[self.run];
        r.first_machine + self.offset
    }

    fn push(&mut self, item: ConfigItem) {
        let machine = self.machine();
        self.emit.item(machine, item);
        self.gap_dirty = true;
    }

    /// Moves to the next gap; `false` if the template is exhausted.
    fn advance(&mut self) -> bool {
        self.configured = None;
        self.gap_dirty = false;
        self.offset += 1;
        if self.offset >= self.runs[self.run].count {
            self.run += 1;
            self.offset = 0;
        }
        if self.exhausted() {
            false
        } else {
            self.t = self.gap_a();
            true
        }
    }

    /// Places a setup of `class` below the current gap (`[a - s, a)`).
    fn setup_below(&mut self, class: ClassId) -> Result<(), WrapError> {
        let s = Rational::from(self.setups[class]);
        let start = self.gap_a() - s;
        if start.is_negative() {
            return Err(WrapError::SetupBelowZero { class });
        }
        self.push(ConfigItem {
            start,
            len: s,
            kind: ItemKind::Setup(class),
        });
        self.configured = Some(class);
        Ok(())
    }

    fn place_setup(&mut self, class: ClassId, len: Rational) -> Result<(), WrapError> {
        if self.t + len > self.gap_b() {
            // Crossing setup: move it below the next gap.
            if !self.advance() {
                return Err(WrapError::OutOfSpace { unplaced: len });
            }
            self.setup_below(class)?;
        } else {
            self.push(ConfigItem {
                start: self.t,
                len,
                kind: ItemKind::Setup(class),
            });
            self.t += len;
            self.configured = Some(class);
        }
        Ok(())
    }

    fn place_piece(&mut self, class: ClassId, job: usize, len: Rational) -> Result<(), WrapError> {
        let mut remaining = len;
        loop {
            // A piece entering a fresh gap mid-class needs its setup below.
            if self.configured != Some(class) {
                self.setup_below(class)?;
            }
            let avail = self.gap_b() - self.t;
            if remaining <= avail {
                self.push(ConfigItem {
                    start: self.t,
                    len: remaining,
                    kind: ItemKind::Piece { job, class },
                });
                self.t += remaining;
                return Ok(());
            }
            if avail.is_positive() {
                self.push(ConfigItem {
                    start: self.t,
                    len: avail,
                    kind: ItemKind::Piece { job, class },
                });
                remaining -= avail;
            }
            if !self.advance() {
                return Err(WrapError::OutOfSpace {
                    unplaced: remaining,
                });
            }
            // Parallel-gap fast path: if the piece covers >= 1 whole gap and
            // the current run still has identical gaps left, emit them as one
            // configuration group with a multiplicity.
            let run = &self.runs[self.run];
            let full = run.b - run.a;
            if remaining >= full && !self.gap_dirty {
                let gaps_left = run.count - self.offset;
                let needed = (remaining / full).floor() as usize;
                let mult = needed.min(gaps_left);
                if mult >= 1 {
                    let s = Rational::from(self.setups[class]);
                    let below_start = run.a - s;
                    if below_start.is_negative() {
                        return Err(WrapError::SetupBelowZero { class });
                    }
                    self.emit.group(
                        run.first_machine + self.offset,
                        mult,
                        ConfigItem {
                            start: below_start,
                            len: s,
                            kind: ItemKind::Setup(class),
                        },
                        ConfigItem {
                            start: run.a,
                            len: full,
                            kind: ItemKind::Piece { job, class },
                        },
                    );
                    remaining -= full * mult;
                    // Skip the covered gaps.
                    self.offset += mult;
                    self.configured = None;
                    self.gap_dirty = false;
                    if self.offset >= run.count {
                        self.run += 1;
                        self.offset = 0;
                    }
                    if remaining.is_zero() {
                        // Position the cursor on the next gap (if any) for the
                        // following sequence item.
                        if !self.exhausted() {
                            self.t = self.gap_a();
                        } else {
                            // Fully used the template with an exact fit: mark
                            // the cursor exhausted-but-done.
                            self.t = Rational::ZERO;
                        }
                        return Ok(());
                    }
                    if self.exhausted() {
                        return Err(WrapError::OutOfSpace {
                            unplaced: remaining,
                        });
                    }
                    self.t = self.gap_a();
                }
            }
        }
    }
}

/// The shared driver behind every public entry point.
///
/// Generic over the item *source*: a materialized [`WrapSequence`]'s items
/// or any lazy iterator (the splittable builders stream their batches
/// straight from the instance without assembling a sequence first).
fn run_wrap<E: WrapEmit>(
    items: impl IntoIterator<Item = SeqItem>,
    runs: &[GapRun],
    setups: &[u64],
    emit: E,
) -> Result<(), WrapError> {
    Template::check(runs);
    let mut w = Wrapper::new(runs, setups, emit);
    for item in items {
        if w.exhausted() {
            return Err(WrapError::OutOfSpace { unplaced: item.len });
        }
        match item.kind {
            SeqKind::Setup => w.place_setup(item.class, item.len)?,
            SeqKind::Piece(job) => w.place_piece(item.class, job, item.len)?,
        }
    }
    w.emit.finish();
    Ok(())
}

/// One batch as a lazy item stream: the setup of `class` followed by its
/// pieces (zero-length pieces are dropped, matching
/// [`WrapSequence::push_batch`]). Chain several of these into
/// [`wrap_iter_append`] to wrap whole class families without materializing a
/// sequence.
pub fn batch_items(
    class: ClassId,
    setup: Rational,
    pieces: impl IntoIterator<Item = (usize, Rational)>,
) -> impl Iterator<Item = SeqItem> {
    debug_assert!(setup.is_positive(), "setups have positive length");
    core::iter::once(SeqItem {
        class,
        kind: SeqKind::Setup,
        len: setup,
    })
    .chain(pieces.into_iter().filter_map(move |(job, len)| {
        len.is_positive().then_some(SeqItem {
            class,
            kind: SeqKind::Piece(job),
            len,
        })
    }))
}

/// Wraps `seq` into `template` (the paper's `Wrap(Q, ω)`).
///
/// `setups[i]` is the setup time of class `i`, used for the fresh setups that
/// `Split` inserts below gaps. `machines` is the machine count of the target
/// schedule.
///
/// Runs in `O(|Q| + |runs(ω)|)` — note: runs, not gaps — and returns a
/// [`CompactSchedule`] whose stored size is of the same order.
pub fn wrap(
    seq: &WrapSequence,
    template: &Template,
    setups: &[u64],
    machines: usize,
) -> Result<CompactSchedule, WrapError> {
    let mut out = CompactSchedule::new(machines);
    wrap_append(seq, template.runs(), setups, &mut out)?;
    Ok(out)
}

/// Like [`wrap`], but appends the configuration groups to an existing
/// [`CompactSchedule`] — the builders' way of assembling one compact output
/// from several wraps without cloning groups.
///
/// `runs` must satisfy the [`Template`] invariants (checked; machine indices
/// of *this call* strictly increase — different calls may revisit machines).
///
/// # Errors
/// On [`WrapError`] the groups emitted so far remain in `out`; callers treat
/// wrap errors as a dual rejection and discard the whole output.
pub fn wrap_append(
    seq: &WrapSequence,
    runs: &[GapRun],
    setups: &[u64],
    out: &mut CompactSchedule,
) -> Result<(), WrapError> {
    wrap_iter_append(seq.items().iter().copied(), runs, setups, out)
}

/// [`wrap_append`] over a lazy item stream (see [`batch_items`]): wraps the
/// items without ever materializing a [`WrapSequence`] — the splittable
/// builders' hot path, where sequence assembly used to dominate the build.
///
/// # Errors
/// As [`wrap_append`]; on error the groups emitted so far remain in `out`.
pub fn wrap_iter_append(
    items: impl IntoIterator<Item = SeqItem>,
    runs: &[GapRun],
    setups: &[u64],
    out: &mut CompactSchedule,
) -> Result<(), WrapError> {
    run_wrap(items, runs, setups, GroupEmit::new(out))
}

/// Like [`wrap`], but streams the explicit placements of the wrap straight
/// into `sink` — one copy, no intermediate schedule. Parallel-gap groups are
/// unrolled per machine, so the cost is `O(|Q| + gaps touched)`.
///
/// # Errors
/// On [`WrapError`] the placements emitted so far remain in `sink`; callers
/// treat wrap errors as a dual rejection and discard the whole output.
pub fn wrap_into<S: PlacementSink>(
    seq: &WrapSequence,
    runs: &[GapRun],
    setups: &[u64],
    sink: &mut S,
) -> Result<(), WrapError> {
    // A template past the sink's machine bound is a programming error in
    // the calling algorithm; fail as loudly as the old expand() assert did.
    if let Some(m) = sink.machine_bound() {
        let last = runs.last().map_or(0, |r| r.first_machine + r.count);
        assert!(
            last <= m,
            "template addresses machine {} but the sink has {m} machines",
            last.saturating_sub(1),
        );
    }
    run_wrap(
        seq.items().iter().copied(),
        runs,
        setups,
        StreamEmit { sink },
    )
}

/// Like [`wrap`], but returns explicit placements (convenience for callers
/// that want the raw list; streams once, no `Schedule` round trip).
///
/// # Panics
/// Panics when the template addresses machines `>= machines` (a programming
/// error in the calling algorithm, like [`Template::new`]'s own invariants).
pub fn wrap_explicit(
    seq: &WrapSequence,
    template: &Template,
    setups: &[u64],
    machines: usize,
) -> Result<Vec<Placement>, WrapError> {
    let last = template
        .runs()
        .last()
        .map_or(0, |r| r.first_machine + r.count);
    assert!(
        last <= machines,
        "template addresses machine {} but the schedule has {machines} machines",
        last.saturating_sub(1),
    );
    let mut placements = Vec::new();
    wrap_into(seq, template.runs(), setups, &mut placements)?;
    Ok(placements)
}

#[cfg(test)]
mod tests {
    use bss_instance::Variant;
    use bss_rational::Rational;
    use bss_schedule::Schedule;

    use crate::{GapRun, Template, WrapSequence};

    use super::*;

    fn r(v: i128) -> Rational {
        Rational::from_int(v)
    }

    /// Wrap a single batch into one big gap: everything lands sequentially.
    #[test]
    fn single_gap_sequential() {
        let mut q = WrapSequence::new();
        q.push_batch(0, r(2), [(0, r(3)), (1, r(4))]);
        let template = Template::from_gaps(vec![(0, r(0), r(20))]);
        let out = wrap(&q, &template, &[2], 1).unwrap();
        let s = out.expand().unwrap();
        assert_eq!(s.machine_load(0), r(9));
        assert_eq!(s.makespan(), r(9));
        assert_eq!(s.num_setups(), 1);
    }

    /// A job crossing a gap border is split and a fresh setup is placed below
    /// the next gap.
    #[test]
    fn split_inserts_setup_below() {
        let mut q = WrapSequence::new();
        q.push_batch(0, r(2), [(0, r(10))]);
        // Gap 1: [0, 8) on machine 0; gap 2: [2, 10) on machine 1.
        let template = Template::from_gaps(vec![(0, r(0), r(8)), (1, r(2), r(10))]);
        let out = wrap(&q, &template, &[2], 2).unwrap();
        let s = out.expand().unwrap();
        // Machine 0: setup [0,2), piece [2,8) (6 units).
        assert_eq!(s.machine_load(0), r(8));
        // Machine 1: setup below gap [0,2), remaining piece [2,6) (4 units).
        assert_eq!(s.machine_load(1), r(6));
        assert_eq!(s.num_setups(), 2);
        // Job 0 fully scheduled.
        let total: Rational = s
            .placements()
            .iter()
            .filter(|p| !p.kind.is_setup())
            .map(|p| p.len)
            .fold(Rational::ZERO, |a, b| a + b);
        assert_eq!(total, r(10));
    }

    /// A crossing *setup* is moved below the next gap in one piece.
    #[test]
    fn crossing_setup_moves_below() {
        let mut q = WrapSequence::new();
        q.push_batch(0, r(2), [(0, r(5))]);
        q.push_batch(1, r(3), [(1, r(4))]);
        // Gap 1: [0, 8): holds setup 0 + job 0 (7) with 1 unit slack — setup 1
        // (3 units) crosses. Gap 2: [4, 12) on machine 1.
        let template = Template::from_gaps(vec![(0, r(0), r(8)), (1, r(4), r(12))]);
        let out = wrap(&q, &template, &[2, 3], 2).unwrap();
        let s = out.expand().unwrap();
        let tl = s.machine_timeline(1);
        // Setup of class 1 below gap 2: [1, 4), then job: [4, 8).
        assert_eq!(tl[0].kind, ItemKind::Setup(1));
        assert_eq!(tl[0].start, r(1));
        assert_eq!(tl[1].start, r(4));
        assert_eq!(tl[1].len, r(4));
    }

    /// A huge job spanning many identical gaps uses the fast path: the
    /// compact output must stay small while the expanded schedule is full.
    #[test]
    fn parallel_gap_fast_path_compactness() {
        let mut q = WrapSequence::new();
        q.push_batch(0, r(1), [(0, r(1000))]);
        let template = Template::new(vec![GapRun {
            first_machine: 0,
            count: 200,
            a: r(1),
            b: r(7),
        }]);
        let out = wrap(&q, &template, &[1], 200).unwrap();
        // 1000 = 6 (first gap after setup... first gap holds [1+1, 7) = 5) …
        // regardless of the exact split: compact storage must be O(1) groups.
        assert!(
            out.groups().len() <= 4,
            "expected O(1) groups, got {}",
            out.groups().len()
        );
        let s = out.expand().unwrap();
        let total: Rational = s
            .placements()
            .iter()
            .filter(|p| !p.kind.is_setup())
            .map(|p| p.len)
            .fold(Rational::ZERO, |a, b| a + b);
        assert_eq!(total, r(1000));
        // Every machine that holds a piece also holds a setup below the gap.
        for u in 0..200 {
            let tl = s.machine_timeline(u);
            if tl.iter().any(|p| !p.kind.is_setup()) {
                assert!(tl.iter().any(|p| p.kind.is_setup()), "machine {u}");
            }
        }
    }

    /// Exact fit at a gap border followed by another batch: the next batch's
    /// setup must cover its jobs (regression for the configured-class reset).
    #[test]
    fn exact_fit_then_new_batch() {
        let mut q = WrapSequence::new();
        q.push_batch(0, r(1), [(0, r(7))]); // exactly fills gap 1: 1 + 7 = 8
        q.push_batch(1, r(2), [(1, r(3))]);
        let template = Template::from_gaps(vec![(0, r(0), r(8)), (1, r(2), r(10))]);
        let out = wrap(&q, &template, &[1, 2], 2).unwrap();
        let s = out.expand().unwrap();
        let tl = s.machine_timeline(1);
        assert_eq!(tl[0].kind, ItemKind::Setup(1));
        assert_eq!(tl[1].kind, ItemKind::Piece { job: 1, class: 1 });
    }

    /// Same-class pieces continuing after an exact multi-gap fill get a fresh
    /// below-gap setup.
    #[test]
    fn exact_multi_gap_fill_then_same_class_piece() {
        let mut q = WrapSequence::new();
        // Two jobs of class 0: first exactly fills gaps (fast path), second
        // continues in a later gap and needs a below-setup.
        q.push_setup(0, r(1));
        q.push_piece(0, 0, r(9)); // gap1 holds 4 (after setup), gaps 2: 5 → exact
        q.push_piece(0, 1, r(3));
        let template = Template::new(vec![GapRun {
            first_machine: 0,
            count: 4,
            a: r(1),
            b: r(6),
        }]);
        let out = wrap(&q, &template, &[1], 4).unwrap();
        let s = out.expand().unwrap();
        // Job 1 must be covered by a setup on its machine.
        let inst_check = {
            // machine holding job 1's piece:
            let p = s
                .placements()
                .iter()
                .find(|p| matches!(p.kind, ItemKind::Piece { job: 1, .. }))
                .unwrap();
            s.machine_timeline(p.machine)
                .iter()
                .any(|q| q.kind == ItemKind::Setup(0))
        };
        assert!(inst_check);
        let total: Rational = s
            .placements()
            .iter()
            .filter(|p| !p.kind.is_setup())
            .map(|p| p.len)
            .fold(Rational::ZERO, |a, b| a + b);
        assert_eq!(total, r(12));
    }

    #[test]
    fn out_of_space_reported() {
        let mut q = WrapSequence::new();
        q.push_batch(0, r(1), [(0, r(100))]);
        let template = Template::from_gaps(vec![(0, r(0), r(5))]);
        let err = wrap(&q, &template, &[1], 1).unwrap_err();
        assert!(matches!(err, WrapError::OutOfSpace { .. }));
    }

    #[test]
    fn setup_below_zero_reported() {
        let mut q = WrapSequence::new();
        q.push_batch(0, r(3), [(0, r(10))]);
        // Second gap starts at 2 < s_0 = 3: moved setup would start below 0.
        let template = Template::from_gaps(vec![(0, r(0), r(6)), (1, r(2), r(9))]);
        let err = wrap(&q, &template, &[3], 2).unwrap_err();
        assert!(matches!(err, WrapError::SetupBelowZero { class: 0 }));
    }

    #[test]
    fn empty_sequence_empty_output() {
        let q = WrapSequence::new();
        let template = Template::from_gaps(vec![(0, r(0), r(5))]);
        let out = wrap(&q, &template, &[1], 1).unwrap();
        assert!(out.groups().is_empty());
    }

    /// The streaming sink path emits exactly the placements of the expanded
    /// compact path — bit-identical, in the same order.
    #[test]
    fn wrap_into_matches_wrap_expand() {
        let mut q = WrapSequence::new();
        q.push_batch(0, r(1), [(0, r(9)), (1, r(3))]);
        q.push_batch(1, r(2), [(2, r(4))]);
        let template = Template::new(vec![
            GapRun {
                first_machine: 0,
                count: 4,
                a: r(2),
                b: r(6),
            },
            GapRun::single(4, r(2), r(12)),
        ]);
        let setups = [1u64, 2];
        let compact = wrap(&q, &template, &setups, 5).unwrap();
        let expanded = compact.expand().unwrap();

        let mut streamed = Schedule::new(5);
        wrap_into(&q, template.runs(), &setups, &mut streamed).unwrap();
        assert_eq!(streamed, expanded);

        let explicit = wrap_explicit(&q, &template, &setups, 5).unwrap();
        assert_eq!(explicit, expanded.placements());
    }

    /// `wrap_append` into a pre-filled compact schedule extends it in place.
    #[test]
    fn wrap_append_extends_existing_output() {
        let setups = [2u64, 1];
        let mut out = CompactSchedule::new(3);
        let mut q = WrapSequence::new();
        q.push_batch(0, r(2), [(0, r(4))]);
        wrap_append(&q, &[GapRun::single(0, r(0), r(10))], &setups, &mut out).unwrap();
        let first_groups = out.groups().len();
        let mut q2 = WrapSequence::new();
        q2.push_batch(1, r(1), [(1, r(5))]);
        wrap_append(&q2, &[GapRun::single(1, r(0), r(10))], &setups, &mut out).unwrap();
        assert!(out.groups().len() > first_groups);
        let s = out.expand().unwrap();
        assert_eq!(s.machine_load(0), r(6));
        assert_eq!(s.machine_load(1), r(6));
    }

    /// McNaughton-style wholesale test: wrap a full instance's batches into
    /// per-machine gaps and validate the result as a splittable schedule —
    /// with both validators.
    #[test]
    fn wrap_validates_as_splittable_schedule() {
        use bss_instance::InstanceBuilder;

        let mut b = InstanceBuilder::new(4);
        b.add_batch(2, &[5, 3, 8]);
        b.add_batch(1, &[4, 4]);
        b.add_batch(3, &[6]);
        let inst = b.build().unwrap();

        // smax = 3; capacity per gap: N/m … use the Lemma 8 template.
        let n = inst.total_load_once(); // 2+1+3 + 5+3+8+4+4+6 = 36
        let per = Rational::from(n) / inst.machines(); // 9
        let smax = Rational::from(inst.smax());
        let template = Template::new(vec![GapRun {
            first_machine: 0,
            count: 4,
            a: smax,
            b: smax + per,
        }]);
        let mut q = WrapSequence::new();
        for i in 0..inst.num_classes() {
            q.push_batch(
                i,
                Rational::from(inst.setup(i)),
                inst.class_jobs(i)
                    .iter()
                    .map(|&j| (j, Rational::from(inst.job(j).time))),
            );
        }
        let out = wrap(&q, &template, inst.setups(), 4).unwrap();
        let compact_violations = bss_schedule::validate_compact(&out, &inst, Variant::Splittable);
        assert!(compact_violations.is_empty(), "{compact_violations:?}");
        let s: Schedule = out.expand().unwrap();
        let violations = bss_schedule::validate(&s, &inst, Variant::Splittable);
        assert!(violations.is_empty(), "{violations:?}");
        assert!(s.makespan() <= smax + per);
    }
}
