//! Property tests for `Wrap`: random capacity-sufficient templates and batch
//! sequences must always wrap into feasible, load-conserving placements.

#![cfg(test)]

use bss_rational::Rational;
use bss_schedule::ItemKind;
use proptest::prelude::*;

use crate::{wrap, GapRun, Template, WrapSequence};

/// A random template with gaps tall enough for the jobs and with room for
/// setups below every gap but the first (Lemma 6's preconditions), plus a
/// sequence of batches whose load does not exceed the capacity.
fn arb_case() -> impl Strategy<Value = (Template, WrapSequence, Vec<u64>, usize)> {
    // setups: 1..=smax_cap; gap band [a, b) with a >= smax, height >= tmax.
    (
        proptest::collection::vec(1u64..8, 1..5), // class setups
        proptest::collection::vec((0usize..4, 1u64..12), 1..25), // (class idx, job time)
        1usize..12,                               // gap count
    )
        .prop_map(|(setups, jobs, gaps)| {
            let smax = *setups.iter().max().expect("non-empty");
            let tmax = jobs.iter().map(|j| j.1).max().unwrap_or(1);
            let mut q = WrapSequence::new();
            let mut current: Option<usize> = None;
            for (cidx, t) in &jobs {
                let class = cidx % setups.len();
                if current != Some(class) {
                    q.push_setup(class, Rational::from(setups[class]));
                    current = Some(class);
                }
                q.push_piece(class, *cidx, Rational::from(*t));
            }
            // Height per gap: ceil(load/gaps) + tmax + smax keeps capacity
            // ample and every job within one gap height.
            let load = q.load();
            let height = Rational::from(tmax + smax) + load / gaps;
            let a = Rational::from(smax);
            let template = Template::new(vec![GapRun {
                first_machine: 0,
                count: gaps,
                a,
                b: a + height,
            }]);
            let machines = gaps;
            (template, q, setups, machines)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn wrap_succeeds_and_is_feasible((template, q, setups, machines) in arb_case()) {
        let out = wrap(&q, &template, &setups, machines).expect("capacity suffices");
        let s = out.expand().expect("wrap output is in machine range");
        // The streaming path must agree with expand bit for bit.
        let mut streamed = bss_schedule::Schedule::new(machines);
        crate::wrap_into(&q, template.runs(), &setups, &mut streamed)
            .expect("capacity suffices");
        prop_assert_eq!(&streamed, &s);
        // Load conservation: pieces total the sequence's job load.
        let placed: Rational = s
            .placements()
            .iter()
            .filter(|p| !p.kind.is_setup())
            .map(|p| p.len)
            .fold(Rational::ZERO, |x, y| x + y);
        let expected: Rational = q
            .items()
            .iter()
            .filter(|i| matches!(i.kind, crate::SeqKind::Piece(_)))
            .map(|i| i.len)
            .fold(Rational::ZERO, |x, y| x + y);
        prop_assert_eq!(placed, expected);
        // Machine exclusivity.
        for u in 0..machines {
            let tl = s.machine_timeline(u);
            for w in tl.windows(2) {
                prop_assert!(w[1].start >= w[0].end(), "overlap on machine {u}");
            }
        }
        // Setup coverage: walking each machine, every piece follows a setup
        // of its class.
        for u in 0..machines {
            let mut configured = None;
            for p in s.machine_timeline(u) {
                match p.kind {
                    ItemKind::Setup(c) => configured = Some(c),
                    ItemKind::Piece { class, .. } => {
                        prop_assert_eq!(configured, Some(class), "machine {}", u);
                    }
                }
            }
        }
        // Nothing starts below time 0; nothing inside the band exceeds b.
        for p in s.placements() {
            prop_assert!(!p.start.is_negative());
            if !p.kind.is_setup() {
                prop_assert!(p.end() <= template.runs()[0].b);
            }
        }
    }

    /// Compact output stays small: stored items are bounded by the sequence
    /// length plus a constant per run, never by the gap count.
    #[test]
    fn wrap_output_is_compact((template, q, setups, machines) in arb_case()) {
        let out = wrap(&q, &template, &setups, machines).expect("capacity suffices");
        prop_assert!(
            out.stored_items() <= 3 * q.len() + 8,
            "stored {} vs |Q| = {}",
            out.stored_items(),
            q.len()
        );
    }
}
