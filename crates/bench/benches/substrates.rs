//! Criterion studies of the substrates, including the DESIGN.md ablations.
//!
//! * `wrap_ablation` — the parallel-gap fast path (one `GapRun` of `m` gaps)
//!   vs the naive template (`m` single gaps): the fast path's output and time
//!   are independent of `m`, the naive one is `Θ(n + m)`.
//! * `knapsack` — continuous knapsack on rational weights.
//! * `mcnaughton` — the classic wrap-around substrate.
//! * `validate` — the feasibility validator (test-suite hot path).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use bss_instance::Variant;
use bss_knapsack::{continuous_knapsack, CkItem};
use bss_rational::Rational;
use bss_wrap::{mcnaughton, wrap, GapRun, Template, WrapSequence};

fn wrap_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("wrap_ablation");
    g.sample_size(20);
    // One giant splittable job over m identical gaps.
    for m in [1_000usize, 10_000, 100_000] {
        let height = Rational::from(10u64);
        let total = Rational::from(10u64 * (m as u64) - 5);
        let mut q = WrapSequence::new();
        q.push_setup(0, Rational::from(2u64));
        q.push_piece(0, 0, total - 2u64);
        let fast = Template::new(vec![GapRun {
            first_machine: 0,
            count: m,
            a: Rational::from(2u64),
            b: Rational::from(2u64) + height,
        }]);
        let naive = Template::new(
            (0..m)
                .map(|u| GapRun::single(u, Rational::from(2u64), Rational::from(12u64)))
                .collect(),
        );
        let setups = [2u64];
        g.bench_with_input(BenchmarkId::new("fast_path", m), &m, |b, _| {
            b.iter(|| black_box(wrap(&q, &fast, &setups, m).expect("fits")))
        });
        g.bench_with_input(BenchmarkId::new("naive_single_gaps", m), &m, |b, _| {
            b.iter(|| black_box(wrap(&q, &naive, &setups, m).expect("fits")))
        });
    }
    g.finish();
}

fn knapsack(c: &mut Criterion) {
    let mut g = c.benchmark_group("knapsack");
    for k in [100usize, 10_000] {
        let items: Vec<CkItem> = (0..k)
            .map(|i| CkItem {
                profit: (i as u64 * 7919) % 1000 + 1,
                weight: Rational::new(((i as i128 * 104729) % 5000) + 1, 3),
            })
            .collect();
        let cap = Rational::from(1000u64 * k as u64 / 4);
        g.bench_with_input(BenchmarkId::new("continuous", k), &items, |b, items| {
            b.iter(|| black_box(continuous_knapsack(items, cap)))
        });
    }
    g.finish();
}

fn mcnaughton_bench(c: &mut Criterion) {
    let times: Vec<u64> = (0..100_000u64).map(|i| i % 977 + 1).collect();
    c.bench_function("mcnaughton_100k", |b| {
        b.iter(|| black_box(mcnaughton(64, &times)))
    });
}

fn validate_bench(c: &mut Criterion) {
    let inst = bss_gen::uniform(50_000, 2_500, 32, 1);
    let sol = bss_core::solve(&inst, Variant::Preemptive, bss_core::Algorithm::ThreeHalves);
    c.bench_function("validate_preemptive_50k", |b| {
        b.iter(|| {
            black_box(bss_schedule::validate(
                sol.schedule(),
                &inst,
                Variant::Preemptive,
            ))
        })
    });
    // The compact-aware validator against the explicit walk on the same
    // splittable output: group-level checks never pay O(total_items + m).
    let split = bss_core::solve(&inst, Variant::Splittable, bss_core::Algorithm::ThreeHalves);
    let compact = split.compact().expect("splittable is compact");
    c.bench_function("validate_compact_splittable_50k", |b| {
        b.iter(|| {
            black_box(bss_schedule::validate_compact(
                compact,
                &inst,
                Variant::Splittable,
            ))
        })
    });
    c.bench_function("validate_explicit_splittable_50k", |b| {
        b.iter(|| {
            black_box(bss_schedule::validate(
                split.schedule(),
                &inst,
                Variant::Splittable,
            ))
        })
    });
}

criterion_group!(
    benches,
    wrap_ablation,
    knapsack,
    mcnaughton_bench,
    validate_bench
);
criterion_main!(benches);
