//! Criterion study of the exact certification backend: how much a closed
//! `OPT` costs, per variant, on oracle-gate-sized instances.
//!
//! Groups:
//! * `exact_root_bounds` — the rational root bounds (the per-node work the
//!   branch-and-bound repeats);
//! * `exact_close`       — a full closed solve per variant on a fixed
//!   oracle-gate cell (n = 12, m = 3, c = 4), the shape the portfolio's
//!   exact arm and the optgap study pay for;
//! * `exact_seqdep`      — the class-order branch-and-bound on a c = 6
//!   sequence-dependent cell.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use bss_exact::{bounds, solve_bss, solve_seqdep, ExactConfig, ExactStatus};
use bss_instance::{Instance, InstanceBuilder, Variant};

/// The fixed oracle-gate cell: 12 jobs over 4 classes on 3 machines,
/// deterministic by construction (no RNG — the bench must time the same
/// search tree on every run).
fn gate_cell() -> Instance {
    let mut b = InstanceBuilder::new(3);
    b.add_batch(7, &[3, 11, 5]);
    b.add_batch(4, &[8, 2, 6]);
    b.add_batch(9, &[1, 13, 4]);
    b.add_batch(2, &[10, 7, 5]);
    b.build().expect("valid by construction")
}

fn root_bounds(c: &mut Criterion) {
    let inst = gate_cell();
    let coverage = [0b111u32, 0b011, 0b101, 0b110];
    let mut g = c.benchmark_group("exact_root_bounds");
    g.bench_function("splittable_root", |b| {
        b.iter(|| black_box(bounds::splittable_root_bound(black_box(&inst))))
    });
    g.bench_function("nonpreemptive_root", |b| {
        b.iter(|| black_box(bounds::nonpreemptive_root_bound(black_box(&inst))))
    });
    g.bench_function("coverage_gale", |b| {
        b.iter(|| black_box(bounds::coverage_gale_bound(black_box(&inst), &coverage)))
    });
    g.finish();
}

fn close_bss(c: &mut Criterion) {
    let inst = gate_cell();
    let cfg = ExactConfig::default();
    // The bench times *closed* searches; assert once so a regression that
    // stops closure shows up as a failure, not as a silently faster bench.
    for variant in Variant::ALL {
        let ex = solve_bss(&inst, variant, &cfg).expect("gate cell fits the limits");
        assert_eq!(ex.status, ExactStatus::Closed, "{variant}");
    }
    let mut g = c.benchmark_group("exact_close");
    g.sample_size(10);
    for variant in Variant::ALL {
        g.bench_function(format!("{variant}"), |b| {
            b.iter(|| black_box(solve_bss(black_box(&inst), variant, &cfg).unwrap().upper))
        });
    }
    g.finish();
}

fn close_seqdep(c: &mut Criterion) {
    let sd = bss_gen::seqdep::tiny_seqdep(11);
    let cfg = ExactConfig::default();
    assert_eq!(
        solve_seqdep(&sd, &cfg)
            .expect("tiny fits the limits")
            .status,
        ExactStatus::Closed
    );
    let mut g = c.benchmark_group("exact_seqdep");
    g.sample_size(10);
    g.bench_function("class_order_bnb", |b| {
        b.iter(|| black_box(solve_seqdep(black_box(&sd), &cfg).unwrap().upper))
    });
    g.finish();
}

criterion_group!(benches, root_bounds, close_bss, close_seqdep);
criterion_main!(benches);
