//! Criterion studies of the sequence-dependent bridge.
//!
//! Groups:
//! * `seqdep_probe`  — one capacity-bounded greedy probe (the search kernel;
//!   `O(c·min(m,c))`, linear in the switch matrix);
//! * `seqdep_solve`  — full solves through the unified surface: the
//!   heuristic dual on general instances and the batch-setup reduction on
//!   uniform ones;
//! * `seqdep_reduce` — the two reduction adapters themselves.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use bss_core::{solve_seqdep_with, Algorithm, DualWorkspace, Problem, SeqDepProblem};
use bss_gen::seqdep::{triangle_violating, tsp_path, uniform_setups};
use bss_seqdep::reduce;

fn seqdep_probe(c: &mut Criterion) {
    let inst = triangle_violating(1_000, 16, 1);
    let mut ws = DualWorkspace::new();
    let problem = SeqDepProblem::new(&inst);
    let t = problem.t_safe();
    let mut g = c.benchmark_group("seqdep_probe");
    g.bench_function("triangle_1000c", |b| {
        b.iter(|| black_box(problem.probe(&mut ws, black_box(t))))
    });
    let tight = problem.t_min();
    g.bench_function("triangle_1000c_tight", |b| {
        b.iter(|| black_box(problem.probe(&mut ws, black_box(tight))))
    });
    g.finish();
}

fn seqdep_solve(c: &mut Criterion) {
    let mut ws = DualWorkspace::new();
    let mut g = c.benchmark_group("seqdep_solve");
    g.sample_size(20);
    let triangle = triangle_violating(1_000, 16, 1);
    g.bench_function("triangle_1000c", |b| {
        b.iter(|| {
            black_box(solve_seqdep_with(
                &mut ws,
                &triangle,
                Algorithm::ThreeHalves,
            ))
        })
    });
    let tsp = tsp_path(400, 2);
    g.bench_function("tsp_400c", |b| {
        b.iter(|| black_box(solve_seqdep_with(&mut ws, &tsp, Algorithm::ThreeHalves)))
    });
    // Uniform: routed through the non-preemptive Theorem-8 search on the
    // reduction — the proven-guarantee path.
    let uniform = uniform_setups(1_000, 16, 3);
    g.bench_function("uniform_1000c_via_reduction", |b| {
        b.iter(|| black_box(solve_seqdep_with(&mut ws, &uniform, Algorithm::ThreeHalves)))
    });
    g.finish();
}

fn seqdep_reduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("seqdep_reduce");
    let uniform = uniform_setups(2_000, 16, 5);
    g.bench_function("to_uniform_instance_2000c", |b| {
        b.iter(|| black_box(reduce::to_uniform_instance(black_box(&uniform)).unwrap()))
    });
    let bss = bss_gen::uniform(50_000, 2_500, 32, 1);
    g.bench_function("from_instance_2500c", |b| {
        b.iter(|| black_box(reduce::from_instance(black_box(&bss))))
    });
    // Probe-only sanity anchor: the reduction's solve must stay comparable
    // to a direct non-preemptive solve of the reduced instance.
    let reduced = reduce::to_uniform_instance(&uniform).unwrap();
    let mut ws = DualWorkspace::new();
    g.sample_size(20);
    g.bench_function("reduced_direct_nonpreemptive", |b| {
        b.iter(|| {
            black_box(bss_core::solve_with(
                &mut ws,
                &reduced,
                bss_instance::Variant::NonPreemptive,
                Algorithm::ThreeHalves,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, seqdep_probe, seqdep_solve, seqdep_reduce);
criterion_main!(benches);
