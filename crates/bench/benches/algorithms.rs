//! Criterion studies of the paper's algorithms (experiments S1–S4, T1).
//!
//! Groups:
//! * `dual_probe`   — one accept/reject test per variant (the search kernel);
//! * `dual_build`   — one full dual build at an accepted guess (`O(n)` claim);
//! * `two_approx`   — the `O(n)` 2-approximations (Theorem 1);
//! * `three_halves` — the complete 3/2 algorithms (Theorems 3, 6, 8);
//! * `n_scaling`    — Class Jumping over geometric `n` (near-linearity).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use bss_core::{
    nonpreemptive, preemptive, solve, splittable, two_approx, Algorithm, DualWorkspace, Trace,
};
use bss_instance::{Instance, LowerBounds, Variant};
use bss_rational::Rational;

fn accepted_guess_split(inst: &Instance) -> Rational {
    LowerBounds::of(inst).tmin(Variant::Splittable) * 2u64
}

fn accepted_guess_pmtn(inst: &Instance) -> Rational {
    LowerBounds::of(inst).tmin(Variant::Preemptive) * 2u64
}

fn accepted_guess_nonp(inst: &Instance) -> u64 {
    2 * LowerBounds::of(inst).tmin(Variant::NonPreemptive).ceil() as u64
}

fn dual_probe(c: &mut Criterion) {
    let inst = bss_gen::uniform(50_000, 2_500, 32, 1);
    // One workspace per group, exactly as a search would hold it: after the
    // warm-up iteration every probe is allocation-free.
    let mut ws = DualWorkspace::new();
    let mut g = c.benchmark_group("dual_probe");
    let t = accepted_guess_split(&inst);
    g.bench_function("splittable_O(c)", |b| {
        b.iter(|| black_box(splittable::accepts_in(&mut ws, &inst, black_box(t))))
    });
    let t = accepted_guess_pmtn(&inst);
    g.bench_function("preemptive_O(n)", |b| {
        b.iter(|| {
            black_box(preemptive::accepts_in(
                &mut ws,
                &inst,
                black_box(t),
                preemptive::CountMode::AlphaPrime,
            ))
        })
    });
    let t = accepted_guess_nonp(&inst);
    g.bench_function("nonpreemptive_O(n)", |b| {
        b.iter(|| black_box(nonpreemptive::accepts(&inst, black_box(t))))
    });
    g.finish();
}

fn dual_build(c: &mut Criterion) {
    let inst = bss_gen::uniform(50_000, 2_500, 32, 1);
    let mut ws = DualWorkspace::new();
    let mut g = c.benchmark_group("dual_build");
    g.sample_size(20);
    let t = accepted_guess_split(&inst);
    g.bench_function("splittable", |b| {
        b.iter(|| black_box(splittable::dual_in(&mut ws, &inst, t).expect("accepted")))
    });
    let t = accepted_guess_pmtn(&inst);
    g.bench_function("preemptive", |b| {
        b.iter(|| {
            black_box(
                preemptive::dual_in(
                    &mut ws,
                    &inst,
                    t,
                    preemptive::CountMode::AlphaPrime,
                    &mut Trace::disabled(),
                )
                .expect("accepted"),
            )
        })
    });
    let t = accepted_guess_nonp(&inst);
    g.bench_function("nonpreemptive", |b| {
        b.iter(|| {
            black_box(
                nonpreemptive::dual_in(&mut ws, &inst, t, &mut Trace::disabled())
                    .expect("accepted"),
            )
        })
    });
    g.finish();
}

fn two_approx_bench(c: &mut Criterion) {
    let inst = bss_gen::uniform(50_000, 2_500, 32, 1);
    let mut g = c.benchmark_group("two_approx");
    g.sample_size(20);
    g.bench_function("splittable_wrap", |b| {
        b.iter(|| black_box(two_approx::splittable_two_approx(&inst)))
    });
    g.bench_function("greedy_next_fit", |b| {
        b.iter(|| black_box(two_approx::greedy_two_approx(&inst, &mut Trace::disabled())))
    });
    g.finish();
}

fn three_halves(c: &mut Criterion) {
    let inst = bss_gen::uniform(50_000, 2_500, 32, 1);
    let mut g = c.benchmark_group("three_halves");
    g.sample_size(10);
    for variant in Variant::ALL {
        g.bench_function(variant.name(), |b| {
            b.iter(|| black_box(solve(&inst, variant, Algorithm::ThreeHalves)))
        });
        g.bench_function(format!("{}_eps12", variant.name()), |b| {
            b.iter(|| {
                black_box(solve(
                    &inst,
                    variant,
                    Algorithm::EpsilonSearch { eps_log2: 12 },
                ))
            })
        });
    }
    g.finish();
}

fn n_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("n_scaling_class_jumping");
    g.sample_size(10);
    let mut ws = DualWorkspace::new();
    for k in [12u32, 14, 16] {
        let n = 1usize << k;
        let inst = bss_gen::uniform(n, n / 20, 16, 5);
        g.bench_with_input(BenchmarkId::new("splittable", n), &inst, |b, inst| {
            b.iter(|| black_box(splittable::class_jumping_in(&mut ws, inst)))
        });
        g.bench_with_input(BenchmarkId::new("preemptive", n), &inst, |b, inst| {
            b.iter(|| black_box(preemptive::class_jumping_in(&mut ws, inst)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    dual_probe,
    dual_build,
    two_approx_bench,
    three_halves,
    n_scaling
);
criterion_main!(benches);
