//! Warm-start vs cold re-solve after a one-job delta (experiment O1).
//!
//! The online story's core claim: after a small change to a large
//! instance, re-solving from the previous solve's dual bracket costs a
//! fraction of the cold epsilon-search. The study pins the
//! `uniform_50k_eps10` configuration of `results/BASELINES.md`
//! (non-preemptive, ε = 2⁻¹⁰, a 12-probe cold ladder): the preemptive and
//! splittable duals accept these uniform instances at `T_min` outright
//! (1 probe — nothing to warm), exactly as in the speculative-search
//! study. Two functions:
//!
//! * `cold` — `solve` of the post-delta state from scratch;
//! * `warm` — `solve_warm` seeded from the pre-delta solution's bracket,
//!   widened by the delta's load shift.
//!
//! Setup also prints the probe counts of one warm and one cold solve (the
//! numbers quoted in `results/BASELINES.md`) and asserts the two answers
//! are bit-identical in every certified field.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use bss_core::{solve, solve_warm, Algorithm, WarmStart};
use bss_instance::{Delta, IncrementalInstance, Variant};

fn online_resolve(c: &mut Criterion) {
    let base = bss_gen::uniform(50_000, 2_500, 32, 1);
    let variant = Variant::NonPreemptive;
    let algo = Algorithm::EpsilonSearch { eps_log2: 10 };

    let seed = solve(&base, variant, algo);
    let mut inc = IncrementalInstance::new(&base);
    let base_load = u128::from(inc.total_load_once());
    // time = 40: keeps T_min genuinely rejected post-delta (a 17-unit job
    // happens to land T_min on an integer the dual accepts outright,
    // collapsing the cold ladder to 1 probe — no ladder, nothing to warm).
    inc.apply(Delta::AddJob { class: 0, time: 40 })
        .expect("class 0 exists");
    let next = inc.materialize();
    let hint = WarmStart::of(&seed).widen_by_load_shift(
        base_load,
        u128::from(inc.total_load_once()),
        next.machines(),
    );

    let cold = solve(&next, variant, algo);
    let (warm, stats) = solve_warm(&next, variant, algo, &hint);
    assert!(stats.warmed);
    assert_eq!(warm.makespan, cold.makespan);
    assert_eq!(warm.certificate, cold.certificate);
    eprintln!(
        "online_resolve/uniform_50k_eps10: cold {} probes, warm {} ({} memo-skipped)",
        cold.probes, stats.probes, stats.skipped
    );

    let mut g = c.benchmark_group("online_resolve/uniform_50k_eps10");
    g.sample_size(10);
    g.bench_function("cold", |b| {
        b.iter(|| black_box(solve(black_box(&next), variant, algo)))
    });
    g.bench_function("warm", |b| {
        b.iter(|| {
            black_box(solve_warm(
                black_box(&next),
                variant,
                algo,
                black_box(&hint),
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, online_resolve);
criterion_main!(benches);
