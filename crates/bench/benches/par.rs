//! Criterion studies of the many-core solve engine.
//!
//! Groups:
//! * `par_epsilon_search` — one ε-search-dominated solve at thread counts
//!   {1, 2, 4, 8} through `solve_par_with`; bit-identical answers, so any
//!   delta is pure wall-clock.
//! * `par_batch` — `SolvePool::solve_batch` throughput over a 64-instance
//!   batch at the same thread counts (warm per-worker workspaces).
//! * `par_reduce` — the streamed `from_instance` embedding at `c = 2500`
//!   (the former 74 ms / 50 MB hotspot, now `O(c)`).
//!
//! Wall-clock speedups require physical cores; on a single-core runner the
//! numbers collapse to ≈1×. The *deterministic* critical-path model —
//! committed bisection levels per speculative round, reported by
//! `ParSearchStats` and printed by this binary — is machine-independent:
//! `probes / rounds` is the parallel search's model speedup, which the
//! multi-core section of `results/BASELINES.md` records alongside honest
//! measured walls.

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};

use bss_budget::SolveBudget;
use bss_core::{
    epsilon_search_between_par_stats, solve_par_with, Algorithm, BssProblem, DualWorkspace, Problem,
};
use bss_instance::Variant;
use bss_par::SolvePool;
use bss_seqdep::reduce;

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn par_epsilon_search(c: &mut Criterion) {
    // Non-preemptive: its T_min is genuinely rejected here, so the ε-search
    // runs a full ~eps_log2-probe ladder (preemptive/splittable duals accept
    // these uniform instances at T_min outright — no ladder to parallelize).
    let inst = bss_gen::uniform(50_000, 2_500, 32, 1);
    let algo = Algorithm::EpsilonSearch { eps_log2: 10 };
    let mut ws = DualWorkspace::new();
    let mut g = c.benchmark_group("par_epsilon_search");
    g.sample_size(10);
    for threads in THREADS {
        g.bench_with_input(
            BenchmarkId::new("uniform_50k_eps10", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    black_box(solve_par_with(
                        &mut ws,
                        &inst,
                        Variant::NonPreemptive,
                        algo,
                        threads,
                    ))
                })
            },
        );
    }
    g.finish();

    // The machine-independent accounting: committed levels per round.
    let problem = BssProblem::new(&inst, Variant::NonPreemptive);
    let t_min = problem.t_min();
    let gap = t_min / (1u64 << 10);
    for threads in THREADS {
        let mut ws = DualWorkspace::new();
        let (probe, stats) = epsilon_search_between_par_stats(
            t_min,
            problem.search_hi(),
            gap,
            threads,
            &SolveBudget::unlimited(),
            &mut ws,
            |w, t| problem.probe(w, t),
        );
        let probes = probe.outcome.probes;
        // threads=1 is the sequential search (no rounds); its model speedup
        // is 1x by definition.
        let model = if threads <= 1 {
            1.0
        } else {
            probes as f64 / stats.rounds.max(1) as f64
        };
        eprintln!(
            "par_epsilon_search: threads={threads} probes={probes} rounds={} \
             speculated={} inline={} model-speedup={model:.2}x",
            stats.rounds, stats.speculated, stats.inline,
        );
    }
}

fn par_batch(c: &mut Criterion) {
    let batch: Vec<_> = (0..64)
        .map(|seed| bss_gen::uniform(2_000, 120, 16, seed))
        .collect();
    let mut g = c.benchmark_group("par_batch");
    g.sample_size(10);
    for threads in THREADS {
        let mut pool = SolvePool::with_threads(threads);
        g.bench_with_input(
            BenchmarkId::new("solve_batch_64x2k", threads),
            &threads,
            |b, _| {
                b.iter(|| {
                    black_box(pool.solve_batch(&batch, Variant::Preemptive, Algorithm::ThreeHalves))
                })
            },
        );
    }
    g.finish();
}

fn par_reduce(c: &mut Criterion) {
    let bss = bss_gen::uniform(50_000, 2_500, 32, 1);
    let mut g = c.benchmark_group("par_reduce");
    g.bench_function("from_instance_streamed_2500c", |b| {
        b.iter(|| black_box(reduce::from_instance(black_box(&bss))))
    });
    g.finish();
}

criterion_group!(benches, par_epsilon_search, par_batch, par_reduce);

fn main() {
    // Measured multi-thread walls are meaningless without real cores; the
    // model speedups printed above stay valid either way. See the PR 8
    // section of `results/BASELINES.md`, whose 1-CPU-runner walls are
    // model-only for exactly this reason.
    if std::thread::available_parallelism().map_or(1, |n| n.get()) == 1 {
        eprintln!(
            "warning: available_parallelism() == 1 — multi-thread wall-clock numbers \
             below measure oversubscription, not speedup; trust only the \
             machine-independent model-speedup lines"
        );
    }
    benches();
}
