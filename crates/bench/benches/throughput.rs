//! Service throughput and latency: a real `bss-serve` daemon on a loopback
//! socket, driven by the crate's own load generator.
//!
//! Unlike the other benches this one measures the *delivery path* — framing,
//! parsing, admission, micro-batching, cache — around the solver, which is
//! exactly what `bss serve` ships. Three scenarios:
//!
//! * `cold` — every request a distinct instance: sustained cold-solve
//!   capacity (cache present but never hitting).
//! * `hot` — a small distinct pool: steady-state cache-hit service, i.e.
//!   the protocol + cache overhead ceiling.
//! * `open_loop` — fixed offered rate below capacity; the latency
//!   percentiles here are honest (measured from scheduled send time, so
//!   queueing counts — no coordinated omission).
//!
//! Each scenario prints a `LoadReport` summary line; the PR 9 section of
//! `results/BASELINES.md` records them. `BSS_BENCH_SAMPLES=1` (CI
//! bench-smoke) shrinks the request counts.

use criterion::{criterion_group, Criterion};

use bss_core::Algorithm;
use bss_instance::Variant;
use bss_serve::loadgen::{run, LoadMode, LoadgenConfig};
use bss_serve::{spawn, ServeConfig};

/// Honors the CI smoke knob: 1 sample → tiny request counts.
fn scaled(requests: usize) -> usize {
    match std::env::var("BSS_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) if n <= 1 => (requests / 20).max(20),
        _ => requests,
    }
}

fn base_config(addr: String) -> LoadgenConfig {
    LoadgenConfig {
        addr,
        connections: 8,
        jobs: 2_000,
        classes: 120,
        machines: 16,
        seed: 0xB55,
        variant: Variant::NonPreemptive,
        algo: Algorithm::ThreeHalves,
        deadline_ms: None,
        mode: LoadMode::Closed,
        ..LoadgenConfig::default()
    }
}

fn serve_throughput(c: &mut Criterion) {
    let server = spawn(ServeConfig::default()).expect("bind the bench server");
    let addr = server.addr().to_string();

    // Criterion timing loops around a full load run would conflate warmup
    // and measurement; each scenario is instead one measured load run whose
    // report is the artifact, plus a criterion-visible smoke iteration so
    // the bench is wired into the harness.
    let mut g = c.benchmark_group("serve_throughput");
    g.sample_size(10);

    let requests = scaled(800);
    let cold = run(&LoadgenConfig {
        requests,
        distinct: requests, // every request distinct: no cache hits
        ..base_config(addr.clone())
    })
    .expect("cold scenario");
    assert_eq!(cold.errors, 0, "cold scenario had request errors");
    eprintln!("serve_throughput/cold ({requests} reqs, 8 conns, closed loop)");
    eprintln!("{}", cold.render());

    let hot_requests = scaled(2_000);
    let hot = run(&LoadgenConfig {
        requests: hot_requests,
        distinct: 16, // small hot set: steady-state cache hits
        ..base_config(addr.clone())
    })
    .expect("hot scenario");
    assert_eq!(hot.errors, 0, "hot scenario had request errors");
    eprintln!("serve_throughput/hot ({hot_requests} reqs, 16 distinct, closed loop)");
    eprintln!("{}", hot.render());

    // Open loop at roughly half the measured cold capacity, floor 4/s/conn:
    // latency percentiles under controlled offered load.
    let rate = ((cold.solves_per_sec() / 2.0 / 8.0).round() as u32).max(4);
    let open_requests = scaled(400);
    let open = run(&LoadgenConfig {
        requests: open_requests,
        distinct: 64,
        mode: LoadMode::Open {
            rate_per_conn: rate,
        },
        ..base_config(addr.clone())
    })
    .expect("open scenario");
    assert_eq!(open.errors, 0, "open scenario had request errors");
    eprintln!("serve_throughput/open_loop ({open_requests} reqs, {rate} req/s/conn)");
    eprintln!("{}", open.render());

    // The harness-visible sample: one solve round-trip against the warm
    // server (dominated by protocol + cache overhead).
    let pool = bss_serve::loadgen::request_pool(&LoadgenConfig {
        distinct: 1,
        ..base_config(addr.clone())
    });
    let mut client = bss_serve::Client::connect(&addr).expect("connect bench client");
    g.bench_function("cached_roundtrip", |b| {
        b.iter(|| {
            client
                .solve(
                    &pool[0],
                    Variant::NonPreemptive,
                    Algorithm::ThreeHalves,
                    bss_serve::SolveOptions::default(),
                )
                .expect("bench roundtrip")
        })
    });
    g.finish();

    drop(client);
    server.shutdown();
}

criterion_group!(benches, serve_throughput);

fn main() {
    benches();
}
