//! Shared helpers for the benchmark harness (see `src/bin/` for the repro
//! binaries and `benches/` for the Criterion studies).

pub mod suites;
