//! Shared helpers for the benchmark harness: instance suites, the golden
//! repro pipeline (see [`repro`]) behind the `repro-*` binaries in
//! `src/bin/`, and the Criterion studies in `benches/`.

pub mod repro;
pub mod suites;
