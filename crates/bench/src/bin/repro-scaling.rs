//! Running-time scaling studies (experiments S1, S4, S5 of DESIGN.md).
//!
//! Verifies the paper's complexity claims empirically: the duals and
//! 2-approximations are `O(n)` (log-log slope ≈ 1), the non-preemptive search
//! grows only logarithmically with `Δ`, and the preemptive Class-Jumping is
//! near-linear. Output: `bench_output/scaling.{txt,csv}`.

use bss_core::{solve, Algorithm};
use bss_instance::{Instance, Variant};
use bss_report::{fit_loglog, parallel_map, time_best_of, Table};

fn measure(variant: Variant, algo: Algorithm, instances: &[(usize, Instance)]) -> Vec<(f64, f64)> {
    parallel_map(instances.to_vec(), None, |(n, inst)| {
        let (_, dt) = time_best_of(3, || solve(&inst, variant, algo));
        (n as f64, dt.as_secs_f64() * 1e3)
    })
}

fn main() {
    let max_log2 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(17u32);
    let sizes = bss_bench::suites::n_sweep(10, max_log2);
    let mut table = Table::new(&[
        "experiment",
        "variant",
        "algorithm",
        "claimed",
        "n (or Δ)",
        "time (ms)",
        "fitted exponent",
    ]);

    // S1: n-scaling of the full 3/2 algorithms and 2-approximations.
    let cases: Vec<(Variant, Algorithm, &str, &str)> = vec![
        (
            Variant::Splittable,
            Algorithm::TwoApprox,
            "2-approx",
            "O(n)",
        ),
        (
            Variant::NonPreemptive,
            Algorithm::TwoApprox,
            "2-approx",
            "O(n)",
        ),
        (
            Variant::Splittable,
            Algorithm::ThreeHalves,
            "class jumping",
            "O(n + c log(c+m))",
        ),
        (
            Variant::Preemptive,
            Algorithm::ThreeHalves,
            "class jumping",
            "O(n log(c+m))",
        ),
        (
            Variant::NonPreemptive,
            Algorithm::ThreeHalves,
            "integer search",
            "O(n log(n+Δ))",
        ),
    ];
    for (variant, algo, name, claimed) in cases {
        let instances: Vec<(usize, Instance)> = sizes
            .iter()
            .map(|&n| (n, bss_gen::uniform(n, (n / 20).max(2), 16, 7)))
            .collect();
        let pts = measure(variant, algo, &instances);
        let xs: Vec<f64> = pts.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pts.iter().map(|p| p.1).collect();
        let slope = fit_loglog(&xs, &ys).unwrap_or(f64::NAN);
        for (n, ms) in &pts {
            table.row(&[
                "S1".to_string(),
                variant.to_string(),
                name.to_string(),
                claimed.to_string(),
                format!("{n}"),
                format!("{ms:.3}"),
                String::new(),
            ]);
        }
        table.row(&[
            "S1".to_string(),
            variant.to_string(),
            name.to_string(),
            claimed.to_string(),
            "(fit)".to_string(),
            String::new(),
            format!("{slope:.3}"),
        ]);
    }

    // S5: Δ-scaling of the non-preemptive integer search at fixed n.
    let n = 1usize << 13;
    let deltas: Vec<u64> = (4..=36).step_by(8).map(|k| 1u64 << k).collect();
    let instances: Vec<(usize, Instance)> = deltas
        .iter()
        .map(|&d| (d as usize, bss_gen::wide_delta(n, n / 20, 16, d, 3)))
        .collect();
    let pts = measure(Variant::NonPreemptive, Algorithm::ThreeHalves, &instances);
    // Time should grow ~ log Δ: fit against log2(Δ) linearly instead.
    for ((d, ms), delta) in pts.iter().zip(&deltas) {
        let _ = d;
        table.row(&[
            "S5".to_string(),
            Variant::NonPreemptive.to_string(),
            "integer search".to_string(),
            "O(n log(n+Δ))".to_string(),
            format!("Δ=2^{}", delta.trailing_zeros()),
            format!("{ms:.3}"),
            String::new(),
        ]);
    }
    let log_deltas: Vec<f64> = deltas.iter().map(|&d| (d as f64).ln()).collect();
    let times: Vec<f64> = pts.iter().map(|p| p.1).collect();
    let slope = fit_loglog(&log_deltas, &times).unwrap_or(f64::NAN);
    table.row(&[
        "S5".to_string(),
        Variant::NonPreemptive.to_string(),
        "integer search".to_string(),
        "O(n log(n+Δ))".to_string(),
        "(fit vs log Δ)".to_string(),
        String::new(),
        format!("{slope:.3}"),
    ]);

    std::fs::create_dir_all("bench_output").expect("create bench_output");
    std::fs::write("bench_output/scaling.txt", table.to_aligned()).expect("write");
    std::fs::write("bench_output/scaling.csv", table.to_csv()).expect("write");
    println!("# Scaling studies: fitted exponent ≈ 1 confirms near-linear time");
    println!("# (S5 fits time against log Δ; an exponent <= ~1 confirms the log dependence)");
    println!();
    print!("{}", table.to_aligned());
}
