//! Experiments S1/S5 (study `scaling`): probe counts and ratios along the
//! `n` and `Δ` sweeps; wall times and log-log fits go to the timing side.
//! Thin CLI wrapper over [`bss_bench::repro`]; see `repro-all` for the full
//! pipeline.

use std::process::ExitCode;

fn main() -> ExitCode {
    bss_bench::repro::cli::study_main("scaling")
}
