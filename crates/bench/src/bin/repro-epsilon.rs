//! Experiment S2: the `(3/2+ε)`-approximation's `O(n log 1/ε)` trade-off
//! (Theorem 2). Sweeps `ε = 2^-1 .. 2^-12` at fixed `n` and reports probes,
//! wall time and the achieved certified ratio.
//! Output: `bench_output/epsilon.{txt,csv}`.

use bss_core::{solve, Algorithm};
use bss_instance::Variant;
use bss_report::{parallel_map, time_best_of, Summary, Table};

fn main() {
    let n = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(50_000usize);
    let reps = 5u64;
    let mut table = Table::new(&[
        "variant",
        "suite",
        "eps",
        "probes (mean)",
        "time (ms, median)",
        "certified ratio (max)",
    ]);
    for (suite, make) in [
        (
            "uniform",
            bss_gen::uniform as fn(usize, usize, usize, u64) -> bss_instance::Instance,
        ),
        (
            "contended",
            bss_gen::contended as fn(usize, usize, usize, u64) -> bss_instance::Instance,
        ),
    ] {
        for variant in Variant::ALL {
            let cells: Vec<u32> = (1..=12).collect();
            let rows = parallel_map(cells, None, |eps_log2| {
                let mut probes = Vec::new();
                let mut times = Vec::new();
                let mut ratios = Vec::new();
                for seed in 0..reps {
                    let c = if suite == "contended" { 6 } else { n / 20 };
                    let inst = make(n, c, 8, seed);
                    let (sol, dt) = time_best_of(2, || {
                        solve(&inst, variant, Algorithm::EpsilonSearch { eps_log2 })
                    });
                    probes.push(sol.probes as f64);
                    times.push(dt.as_secs_f64() * 1e3);
                    ratios.push((sol.makespan / sol.certificate).to_f64());
                }
                (
                    eps_log2,
                    Summary::of(&probes),
                    Summary::of(&times),
                    Summary::of(&ratios),
                )
            });
            for (eps_log2, probes, times, ratios) in rows {
                table.row(&[
                    variant.to_string(),
                    suite.to_string(),
                    format!("2^-{eps_log2}"),
                    format!("{:.1}", probes.mean),
                    format!("{:.2}", times.median),
                    format!("{:.4}", ratios.max),
                ]);
            }
        }
    }
    std::fs::create_dir_all("bench_output").expect("create bench_output");
    std::fs::write("bench_output/epsilon.txt", table.to_aligned()).expect("write");
    std::fs::write("bench_output/epsilon.csv", table.to_csv()).expect("write");
    println!("# Theorem 2: probes grow linearly in log(1/eps); ratio tightens toward 1.5");
    println!();
    print!("{}", table.to_aligned());
}
