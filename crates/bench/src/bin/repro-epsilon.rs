//! Experiment S2 (study `epsilon`): the `(3/2+ε)`-approximation's
//! `O(n log 1/ε)` trade-off (Theorem 2). Thin CLI wrapper over
//! [`bss_bench::repro`]; see `repro-all` for the full pipeline.

use std::process::ExitCode;

fn main() -> ExitCode {
    bss_bench::repro::cli::study_main("epsilon")
}
