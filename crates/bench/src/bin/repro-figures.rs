//! Figures 1–13 (study `figures`) as ASCII Gantt charts of the
//! instrumented algorithms. Thin CLI wrapper over [`bss_bench::repro`]; see
//! `repro-all` for the full pipeline.

use std::process::ExitCode;

fn main() -> ExitCode {
    bss_bench::repro::cli::study_main("figures")
}
