//! Study `online`: competitive ratio of the paper's algorithms as
//! re-solve-on-arrival policies over event-driven workloads, with the
//! warm-start probe savings. Thin CLI wrapper over [`bss_bench::repro`];
//! see `repro-all` for the full pipeline.

use std::process::ExitCode;

fn main() -> ExitCode {
    bss_bench::repro::cli::study_main("online")
}
