//! Experiments R1–R4 (study `ratios`): exact-OPT certification,
//! Monma–Potts comparison and lower-bound quality. Thin CLI wrapper over
//! [`bss_bench::repro`]; see `repro-all` for the full pipeline.

use std::process::ExitCode;

fn main() -> ExitCode {
    bss_bench::repro::cli::study_main("ratios")
}
