//! Experiments R1–R4: approximation-ratio studies.
//!
//! * R1/R2: true ratios against the **exact** non-preemptive optimum on tiny
//!   instances (for all variants, `OPT_split <= OPT_pmtn <= OPT_nonp`, so
//!   `accepted <= OPT_nonp` is the hard check for the 3/2 searches).
//! * R3: the paper's headline — preemptive 3/2 vs the Monma–Potts-style
//!   wrap-around baseline (ratio `2 − 1/(⌊m/2⌋+1)`), swept over `m`.
//! * R4: quality of the instance lower bound `T_min` vs exact `OPT`.
//!
//! Output: `bench_output/ratios.{txt,csv}`.

use bss_baselines::{exact_nonpreemptive, monma_potts, ExactLimits};
use bss_core::{solve, Algorithm};
use bss_instance::{LowerBounds, Variant};
use bss_rational::Rational;
use bss_report::{parallel_map, Summary, Table};

fn main() {
    std::fs::create_dir_all("bench_output").expect("create bench_output");
    let mut table = Table::new(&["experiment", "setting", "metric", "value"]);

    // ---- R1/R2: exact-optimum certification on tiny instances. ----
    let seeds: Vec<u64> = (0..400).collect();
    let rows = parallel_map(seeds, None, |seed| {
        let inst = bss_gen::tiny(seed);
        let opt = exact_nonpreemptive(&inst, ExactLimits::default())?;
        let opt = Rational::from(opt);
        let mut out = Vec::new();
        for variant in Variant::ALL {
            for (name, algo) in [
                ("2-approx", Algorithm::TwoApprox),
                ("3/2", Algorithm::ThreeHalves),
            ] {
                let sol = solve(&inst, variant, algo);
                // OPT_variant <= OPT_nonp: ratio vs OPT_nonp *underestimates*
                // the true per-variant ratio for relaxed variants, so only
                // the non-preemptive number is a true ratio; the others are
                // sanity ceilings.
                let ratio = (sol.makespan / opt).to_f64();
                let guess_ok = sol.accepted <= opt;
                out.push((variant, name, ratio, guess_ok));
            }
        }
        Some(out)
    });
    let mut per_cell: std::collections::BTreeMap<(String, &str), (Vec<f64>, bool)> =
        Default::default();
    for row in rows.into_iter().flatten() {
        for (variant, name, ratio, guess_ok) in row {
            let e = per_cell
                .entry((variant.to_string(), name))
                .or_insert_with(|| (Vec::new(), true));
            e.0.push(ratio);
            e.1 &= guess_ok;
        }
    }
    for ((variant, name), (ratios, guesses_ok)) in &per_cell {
        let s = Summary::of(ratios);
        table.row(&[
            "R1/R2".to_string(),
            format!("{variant} {name} (n={})", s.n),
            "ratio vs exact OPT_nonp (mean / max)".to_string(),
            format!("{:.4} / {:.4}", s.mean, s.max),
        ]);
        table.row(&[
            "R1/R2".to_string(),
            format!("{variant} {name}"),
            "accepted guess <= OPT everywhere".to_string(),
            format!("{guesses_ok}"),
        ]);
    }

    // ---- R3: preemptive 3/2 vs Monma–Potts, swept over m. ----
    for m in [2usize, 4, 8, 16, 32] {
        let seeds: Vec<u64> = (0..20).collect();
        let rows = parallel_map(seeds, None, |seed| {
            let inst = bss_gen::uniform(60 * m, 6 * m, m, seed);
            let ours = solve(&inst, Variant::Preemptive, Algorithm::Portfolio);
            let mp = monma_potts(&inst);
            let lb = LowerBounds::of(&inst).tmin(Variant::Preemptive);
            (
                (ours.makespan / lb).to_f64(),
                (mp.makespan() / lb).to_f64(),
                (mp.makespan() / ours.makespan).to_f64(),
            )
        });
        let ours: Vec<f64> = rows.iter().map(|r| r.0).collect();
        let mp: Vec<f64> = rows.iter().map(|r| r.1).collect();
        let gain: Vec<f64> = rows.iter().map(|r| r.2).collect();
        let mp_bound = 2.0 - 1.0 / ((m / 2) as f64 + 1.0);
        table.row(&[
            "R3".to_string(),
            format!("preemptive m={m}"),
            "ours (portfolio) / T_min (max)".to_string(),
            format!("{:.4}  [claim <= 1.5 vs OPT]", Summary::of(&ours).max),
        ]);
        table.row(&[
            "R3".to_string(),
            format!("preemptive m={m}"),
            "Monma-Potts / T_min (max)".to_string(),
            format!(
                "{:.4}  [claim <= {mp_bound:.4} vs OPT]",
                Summary::of(&mp).max
            ),
        ]);
        table.row(&[
            "R3".to_string(),
            format!("preemptive m={m}"),
            "MP makespan / our makespan (mean)".to_string(),
            format!("{:.4}", Summary::of(&gain).mean),
        ]);
    }

    // ---- R4: T_min quality vs exact OPT on tiny instances. ----
    let seeds: Vec<u64> = (0..300).collect();
    let gaps: Vec<f64> = parallel_map(seeds, None, |seed| {
        let inst = bss_gen::tiny(seed);
        let opt = exact_nonpreemptive(&inst, ExactLimits::default())?;
        let lb = LowerBounds::of(&inst).tmin(Variant::NonPreemptive);
        Some((Rational::from(opt) / lb).to_f64())
    })
    .into_iter()
    .flatten()
    .collect();
    let s = Summary::of(&gaps);
    table.row(&[
        "R4".to_string(),
        format!("tiny suite (n={})", s.n),
        "OPT / T_min (mean / max; paper: <= 2)".to_string(),
        format!("{:.4} / {:.4}", s.mean, s.max),
    ]);

    std::fs::write("bench_output/ratios.txt", table.to_aligned()).expect("write");
    std::fs::write("bench_output/ratios.csv", table.to_csv()).expect("write");
    println!("# Ratio studies: R1/R2 exact-OPT certification, R3 vs Monma-Potts, R4 bound quality");
    println!();
    print!("{}", table.to_aligned());
}
