//! Study `optgap`: the empirical-ratio scoreboard against the exact
//! branch-and-bound optimum of every variant (seqdep included). Thin CLI
//! wrapper over [`bss_bench::repro`]; see `repro-all` for the full pipeline.

use std::process::ExitCode;

fn main() -> ExitCode {
    bss_bench::repro::cli::study_main("optgap")
}
