//! The golden repro driver: regenerates **every** paper artifact — the six
//! studies' deterministic tables and figures into `results/figures/`
//! (committed and golden-diffed by `tests/golden_repro.rs`) plus a
//! MANIFEST.json recording grids, seeds and instance-family parameters —
//! and the machine-dependent timings into the gitignored `target/repro/`.
//!
//! Run from the repository root:
//!
//! ```text
//! cargo run --release -p bss-bench --bin repro-all
//! git diff results/figures   # must be empty on an unchanged tree
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    bss_bench::repro::cli::all_main("results/figures")
}
