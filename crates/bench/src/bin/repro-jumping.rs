//! Experiments S3/S4: Class Jumping versus the plain ε-binary-search on the
//! same duals (Theorems 3 and 6 vs Theorem 2), sweeping the class count `c`
//! at fixed `n` — the regime where the paper's `c log(c+m)` term matters.
//! Also reports the ablation: probes needed by each search.
//! Output: `bench_output/jumping.{txt,csv}`.

use bss_core::{solve, Algorithm};
use bss_instance::Variant;
use bss_report::{parallel_map, time_best_of, Table};

fn main() {
    let n = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(100_000usize);
    let mut table = Table::new(&[
        "variant",
        "c",
        "jumping time (ms)",
        "jumping probes",
        "eps-search time (ms)",
        "eps probes",
        "jumping accepted / eps accepted",
    ]);
    // m fixed; sweep c through the contended regime: for c in [m/2, m) the
    // classes are expensive with beta >= 2 at T_min and the searches must
    // actually search; outside that band T_min is accepted immediately.
    let m = 1024usize;
    let cs: Vec<usize> = vec![m / 2, (m * 5) / 8, (m * 3) / 4, (m * 7) / 8, m, 2 * m];
    for variant in [Variant::Splittable, Variant::Preemptive] {
        let rows = parallel_map(cs.clone(), None, |c| {
            let inst = bss_gen::contended(n, c.min(n / 2), m, 11);
            let (jump, tj) = time_best_of(2, || solve(&inst, variant, Algorithm::ThreeHalves));
            let (eps, te) = time_best_of(2, || {
                solve(&inst, variant, Algorithm::EpsilonSearch { eps_log2: 12 })
            });
            (
                c,
                tj.as_secs_f64() * 1e3,
                jump.probes,
                te.as_secs_f64() * 1e3,
                eps.probes,
                (jump.accepted / eps.accepted).to_f64(),
            )
        });
        for (c, tj, pj, te, pe, quality) in rows {
            table.row(&[
                variant.to_string(),
                format!("{c}"),
                format!("{tj:.2}"),
                format!("{pj}"),
                format!("{te:.2}"),
                format!("{pe}"),
                format!("{quality:.5}"),
            ]);
        }
    }
    std::fs::create_dir_all("bench_output").expect("create bench_output");
    std::fs::write("bench_output/jumping.txt", table.to_aligned()).expect("write");
    std::fs::write("bench_output/jumping.csv", table.to_csv()).expect("write");
    println!("# Class Jumping vs plain binary search over the same 3/2-duals");
    println!("# quality <= 1 means jumping found an equal-or-smaller accepted guess");
    println!();
    print!("{}", table.to_aligned());
}
