//! Experiments S3/S4 (study `jumping`): Class Jumping versus the plain
//! ε-binary-search over the class-count sweep. Thin CLI wrapper over
//! [`bss_bench::repro`]; see `repro-all` for the full pipeline.

use std::process::ExitCode;

fn main() -> ExitCode {
    bss_bench::repro::cli::study_main("jumping")
}
