//! Regenerates **Table 1** of the paper as an empirical matrix.
//!
//! The paper's Table 1 lists, per variant, the approximation ratios and
//! running times of the new algorithms against prior work. This binary runs
//! every algorithm on every suite and reports
//!
//! * the *certified ratio* `makespan / certificate` (an upper bound on the
//!   true ratio, since `certificate < OPT`), and
//! * the measured wall time,
//!
//! next to the paper's claimed ratio. Output:
//! `bench_output/table1.{txt,md,csv}`.

use bss_core::{solve, Algorithm};
use bss_instance::Variant;
use bss_report::{parallel_map, time_best_of, Summary, Table};

struct Cell {
    variant: Variant,
    algo: Algorithm,
    algo_name: &'static str,
    claimed: &'static str,
    claimed_time: &'static str,
}

fn algorithms(variant: Variant) -> Vec<Cell> {
    let claimed_three_halves_time = match variant {
        Variant::Splittable => "O(n + c log(c+m))",
        Variant::Preemptive => "O(n log(c+m))",
        Variant::NonPreemptive => "O(n log(n+Δ))",
    };
    vec![
        Cell {
            variant,
            algo: Algorithm::TwoApprox,
            algo_name: "2-approx (Thm 1)",
            claimed: "2",
            claimed_time: "O(n)",
        },
        Cell {
            variant,
            algo: Algorithm::EpsilonSearch { eps_log2: 7 },
            algo_name: "3/2+eps (Thm 2)",
            claimed: "1.512",
            claimed_time: "O(n log 1/eps)",
        },
        Cell {
            variant,
            algo: Algorithm::ThreeHalves,
            algo_name: "3/2 (Thm 3/6/8)",
            claimed: "1.5",
            claimed_time: claimed_three_halves_time,
        },
        Cell {
            variant,
            algo: Algorithm::Portfolio,
            algo_name: "portfolio (ours)",
            claimed: "1.5",
            claimed_time: claimed_three_halves_time,
        },
    ]
}

fn main() {
    let n = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20_000usize);
    let reps = 5u64;
    let suites = bss_bench::suites::table1_suites(n, n / 20, 16, reps);

    let mut cells = Vec::new();
    for variant in Variant::ALL {
        for cell in algorithms(variant) {
            for suite in &suites {
                cells.push((
                    cell.variant,
                    cell.algo,
                    cell.algo_name,
                    cell.claimed,
                    cell.claimed_time,
                    suite.name,
                    suite.instances.clone(),
                ));
            }
        }
    }

    let rows = parallel_map(
        cells,
        None,
        |(variant, algo, name, claimed, claimed_time, suite, instances)| {
            let mut ratios = Vec::new();
            let mut times = Vec::new();
            for inst in &instances {
                let (sol, dt) = time_best_of(2, || solve(inst, variant, algo));
                ratios.push((sol.makespan / sol.certificate).to_f64());
                times.push(dt.as_secs_f64() * 1e3);
            }
            let r = Summary::of(&ratios);
            let t = Summary::of(&times);
            vec![
                variant.to_string(),
                name.to_string(),
                suite.to_string(),
                claimed.to_string(),
                format!("{:.4}", r.mean),
                format!("{:.4}", r.max),
                claimed_time.to_string(),
                format!("{:.2}ms", t.median),
            ]
        },
    );

    let mut table = Table::new(&[
        "variant",
        "algorithm",
        "suite",
        "claimed ratio",
        "certified ratio (mean)",
        "certified ratio (max)",
        "claimed time",
        "measured (median)",
    ]);
    for row in rows {
        table.row(&row);
    }

    std::fs::create_dir_all("bench_output").expect("create bench_output");
    std::fs::write("bench_output/table1.txt", table.to_aligned()).expect("write");
    std::fs::write("bench_output/table1.md", table.to_markdown()).expect("write");
    std::fs::write("bench_output/table1.csv", table.to_csv()).expect("write");
    println!("# Table 1 reproduction (n = {n}, m = 16, {reps} instances per suite)");
    println!("# certified ratio = makespan / rejected-guess certificate >= true ratio vs OPT");
    println!();
    print!("{}", table.to_aligned());
}
