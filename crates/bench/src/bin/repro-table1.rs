//! Table 1 reproduction (study `table1`): certified ratios per
//! variant/algorithm/suite next to the paper's claims, plus the
//! proven-bounds certification table. Thin CLI wrapper over
//! [`bss_bench::repro`]; see `repro-all` for the full pipeline.

use std::process::ExitCode;

fn main() -> ExitCode {
    bss_bench::repro::cli::study_main("table1")
}
