//! The golden repro pipeline: the paper's figures and tables as a
//! regression suite.
//!
//! Each of the eight studies behind the historical `repro-*` binaries is a
//! pure, seeded function [`Study::run`] returning an [`Artifact`]. An
//! artifact splits its output into
//!
//! * a **deterministic** part — instance parameters, achieved ratios versus
//!   proven bounds, probe counts, rendered figures — which is committed under
//!   `results/figures/` and byte-diffed against those goldens by
//!   `tests/golden_repro.rs` (re-bless with
//!   `BSS_BLESS=1 BSS_REPRO_GRID=full`), and
//! * a **timing** part — wall times and scaling fits — which is machine-
//!   dependent and therefore written to the gitignored `target/repro/` only.
//!
//! The split is what makes the reproduction diffable: the deterministic
//! values depend only on the instance seeds and the algorithms, never on the
//! host, the thread count, or the build profile (`f64` arithmetic is IEEE
//! and every reduction runs in a fixed order).
//!
//! Two grids exist ([`Grid`]): `Full` is the committed golden grid, `Fast` a
//! strict row-subset of it (same instance sizes, fewer sweep points and
//! seeds) cheap enough for the per-push CI job. Because fast rows are
//! computed cell-by-cell exactly as full rows are, the fast grid checks each
//! regenerated CSV row against the committed golden file even though the
//! files as a whole differ — see [`compare_file`].
//!
//! The `repro-all` binary regenerates everything (deterministic part into
//! `results/figures/`, timings into `target/repro/`) plus a
//! [`manifest`] recording grids, seeds and instance-family parameters per
//! study.

pub mod cli;
mod epsilon;
mod figures;
mod jumping;
mod online;
mod optgap;
mod ratios;
mod scaling;
mod table1;

use std::io;
use std::path::{Path, PathBuf};

use bss_json::Value;
use bss_rational::Rational;

pub use table1::bounds_table;

/// The sweep budget: the committed golden grid or its CI subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Grid {
    /// A strict row-subset of [`Grid::Full`] (same instance sizes, fewer
    /// sweep points and seeds) — cheap enough for per-push CI.
    Fast,
    /// The committed golden grid; `repro-all`'s default.
    Full,
}

impl Grid {
    /// Stable name (`fast` / `full`), as accepted by `--grid` and
    /// `BSS_REPRO_GRID`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Grid::Fast => "fast",
            Grid::Full => "full",
        }
    }

    /// Parses `fast` / `full`.
    pub fn parse(s: &str) -> Result<Grid, String> {
        match s {
            "fast" => Ok(Grid::Fast),
            "full" => Ok(Grid::Full),
            other => Err(format!("unknown grid `{other}` (expected fast|full)")),
        }
    }
}

/// Configuration for a study run.
#[derive(Debug, Clone, Copy)]
pub struct ReproConfig {
    /// Sweep budget.
    pub grid: Grid,
    /// Worker threads for the parallel sweeps (`None` = available
    /// parallelism). Deterministic output does not depend on this.
    pub threads: Option<usize>,
    /// Whether to measure wall times (the timing part of each artifact);
    /// disabled in the golden tests, where only the deterministic part
    /// matters and timed re-solves would be wasted work.
    pub timing: bool,
    /// Per-sweep wall-clock deadline in milliseconds (`--deadline-ms`).
    /// `None` = unlimited: the default run is bit-identical to the
    /// pre-anytime pipeline. Under a deadline a sweep loses the tail of its
    /// grid (skipped cells are dropped from the artifact, with a warning),
    /// never the rows already computed.
    pub deadline_ms: Option<u64>,
    /// Per-sweep cell budget (`--budget`): at most this many sweep cells are
    /// computed before the rest are skipped. Deterministic, unlike the
    /// deadline. `None` = unlimited.
    pub work_budget: Option<u64>,
}

impl ReproConfig {
    /// The committed golden grid, timings on.
    #[must_use]
    pub fn full() -> Self {
        ReproConfig {
            grid: Grid::Full,
            threads: None,
            timing: true,
            deadline_ms: None,
            work_budget: None,
        }
    }

    /// The CI subset grid, timings off.
    #[must_use]
    pub fn fast() -> Self {
        ReproConfig {
            grid: Grid::Fast,
            threads: None,
            timing: false,
            deadline_ms: None,
            work_budget: None,
        }
    }

    /// Reads `BSS_REPRO_GRID` (falling back to `default_grid` when unset).
    ///
    /// # Errors
    /// When the variable holds anything but `fast` or `full`.
    pub fn from_env(default_grid: Grid) -> Result<Self, String> {
        let grid = match std::env::var("BSS_REPRO_GRID") {
            Ok(v) => Grid::parse(&v).map_err(|e| format!("BSS_REPRO_GRID: {e}"))?,
            Err(_) => default_grid,
        };
        Ok(ReproConfig {
            grid,
            threads: None,
            timing: true,
            deadline_ms: None,
            work_budget: None,
        })
    }

    /// The anytime budget one sweep runs under: unlimited unless
    /// `--deadline-ms` / `--budget` was given (each sweep gets its own
    /// deadline window, measured from the sweep's start).
    #[must_use]
    pub fn sweep_budget(&self) -> bss_budget::SolveBudget {
        let mut budget = bss_budget::SolveBudget::unlimited();
        if let Some(ms) = self.deadline_ms {
            budget = budget.with_deadline(std::time::Duration::from_millis(ms));
        }
        if let Some(cells) = self.work_budget {
            budget = budget.with_work_limit(cells);
        }
        budget
    }
}

/// [`bss_report::parallel_map`] under the config's anytime budget: each
/// finished cell spends one unit of `--budget`, and once the budget trips
/// (deadline or cell count) the remaining cells come back as `None` — a
/// deadline loses the tail of a sweep, never the rows already computed.
/// With neither flag set this is the plain sweep: every cell is `Some` and
/// the artifact is bit-identical to the pre-anytime pipeline.
pub(crate) fn sweep<T, R, F>(cfg: &ReproConfig, label: &str, items: Vec<T>, f: F) -> Vec<Option<R>>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let budget = cfg.sweep_budget();
    let n = items.len();
    let (results, interrupt) =
        bss_report::parallel_map_budgeted(items, cfg.threads, &budget, |item| {
            let out = f(item);
            let _ = budget.charge_work(1);
            out
        });
    if let Some(i) = interrupt {
        let kept = results.iter().filter(|r| r.is_some()).count();
        eprintln!("warning: {label}: sweep interrupted ({i}); kept {kept}/{n} cells");
    }
    results
}

/// One output file of a study.
#[derive(Debug, Clone)]
pub struct ArtifactFile {
    /// File name within the study's artifact directory.
    pub name: String,
    /// Full file contents.
    pub contents: String,
    /// Whether the contents depend on the sweep grid. Grid-sensitive CSVs
    /// are row-subset-checked under [`Grid::Fast`]; grid-sensitive text
    /// renderings are only checked under [`Grid::Full`] (their column
    /// alignment depends on the whole row set). Insensitive files are
    /// byte-compared under every grid.
    pub grid_sensitive: bool,
}

impl ArtifactFile {
    fn new(name: &str, contents: String, grid_sensitive: bool) -> Self {
        ArtifactFile {
            name: name.to_string(),
            contents,
            grid_sensitive,
        }
    }
}

/// A study's complete output: committed deterministic files, gitignored
/// timing files, and the parameters the MANIFEST records.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// Study name; doubles as the artifact directory name.
    pub study: &'static str,
    /// The committed, golden-diffed part.
    pub deterministic: Vec<ArtifactFile>,
    /// The machine-dependent part (empty when timing is off).
    pub timing: Vec<ArtifactFile>,
    /// Grid parameters, seeds and instance-family specs for the MANIFEST.
    pub params: Value,
}

/// A registered study.
#[derive(Debug, Clone, Copy)]
pub struct Study {
    /// Stable name (binary suffix, artifact directory, manifest key).
    pub name: &'static str,
    /// One-line description, shown by `repro-all` and `--help`.
    pub summary: &'static str,
    /// Regenerates the study's artifact at the given configuration.
    pub run: fn(&ReproConfig) -> Artifact,
}

/// The eight studies, in the order `repro-all` runs and the MANIFEST lists
/// them.
#[must_use]
pub fn studies() -> [Study; 8] {
    [
        Study {
            name: "figures",
            summary: "Figures 1-13 as ASCII Gantt charts of the instrumented algorithms",
            run: figures::run,
        },
        Study {
            name: "table1",
            summary: "Table 1: certified ratios per variant/algorithm/suite, plus proven bounds",
            run: table1::run,
        },
        Study {
            name: "epsilon",
            summary: "Theorem 2: the (3/2+eps) search's probes and ratios over the eps grid",
            run: epsilon::run,
        },
        Study {
            name: "ratios",
            summary: "R1-R4: exact-OPT certification, Monma-Potts comparison, T_min quality",
            run: ratios::run,
        },
        Study {
            name: "optgap",
            summary: "Empirical ratio vs the branch-and-bound OPT, per variant (incl. seqdep)",
            run: optgap::run,
        },
        Study {
            name: "scaling",
            summary: "S1/S5: probe counts and ratios along the n and Delta sweeps",
            run: scaling::run,
        },
        Study {
            name: "jumping",
            summary: "S3/S4: Class Jumping vs the plain eps-search over the class-count sweep",
            run: jumping::run,
        },
        Study {
            name: "online",
            summary: "Competitive ratio of re-solve-on-arrival policies vs exact OPT, with warm-start probe savings",
            run: online::run,
        },
    ]
}

/// Looks a study up by name.
#[must_use]
pub fn study(name: &str) -> Option<Study> {
    studies().into_iter().find(|s| s.name == name)
}

/// Runs every study at `cfg`, in registry order.
#[must_use]
pub fn run_all(cfg: &ReproConfig) -> Vec<Artifact> {
    studies().iter().map(|s| (s.run)(cfg)).collect()
}

/// File name of the committed manifest at the artifact root.
pub const MANIFEST_FILE: &str = "MANIFEST.json";

/// Assembles the MANIFEST document: the grid plus, per study, its parameter
/// block and its committed (deterministic) file list. Timing artifacts are
/// scratch output and deliberately absent — the manifest must not depend on
/// whether timings were measured.
#[must_use]
pub fn manifest(cfg: &ReproConfig, artifacts: &[Artifact]) -> Value {
    let names = |files: &[ArtifactFile]| {
        Value::Array(
            files
                .iter()
                .map(|f| Value::Str(f.name.clone()))
                .collect::<Vec<_>>(),
        )
    };
    let studies = artifacts
        .iter()
        .map(|a| {
            (
                a.study.to_string(),
                Value::Object(vec![
                    ("params".into(), a.params.clone()),
                    ("deterministic".into(), names(&a.deterministic)),
                ]),
            )
        })
        .collect();
    Value::Object(vec![
        ("grid".into(), Value::Str(cfg.grid.name().into())),
        (
            "note".into(),
            Value::Str(
                "regenerate with `cargo run --release -p bss-bench --bin repro-all`; \
                 golden-diffed by tests/golden_repro.rs (re-bless with \
                 BSS_BLESS=1 BSS_REPRO_GRID=full)"
                    .into(),
            ),
        ),
        ("studies".into(), Value::Object(studies)),
    ])
}

/// Renders the manifest with a trailing newline (clean committed diffs).
#[must_use]
pub fn render_manifest(manifest: &Value) -> String {
    let mut text = bss_json::to_string_pretty(manifest);
    text.push('\n');
    text
}

/// Writes the deterministic part of every artifact (plus the manifest) under
/// `root`, one subdirectory per study. Returns the written paths.
///
/// # Errors
/// Propagates filesystem errors.
pub fn write_deterministic(
    root: &Path,
    artifacts: &[Artifact],
    manifest_text: &str,
) -> io::Result<Vec<PathBuf>> {
    let mut written = Vec::new();
    for artifact in artifacts {
        let dir = root.join(artifact.study);
        std::fs::create_dir_all(&dir)?;
        for file in &artifact.deterministic {
            let path = dir.join(&file.name);
            std::fs::write(&path, &file.contents)?;
            written.push(path);
        }
    }
    let path = root.join(MANIFEST_FILE);
    std::fs::write(&path, manifest_text)?;
    written.push(path);
    Ok(written)
}

/// Writes the timing part of every artifact under `root` (one subdirectory
/// per study). Returns the written paths.
///
/// # Errors
/// Propagates filesystem errors.
pub fn write_timing(root: &Path, artifacts: &[Artifact]) -> io::Result<Vec<PathBuf>> {
    let mut written = Vec::new();
    for artifact in artifacts {
        if artifact.timing.is_empty() {
            continue;
        }
        let dir = root.join(artifact.study);
        std::fs::create_dir_all(&dir)?;
        for file in &artifact.timing {
            let path = dir.join(&file.name);
            std::fs::write(&path, &file.contents)?;
            written.push(path);
        }
    }
    Ok(written)
}

/// Compares one regenerated file against its committed golden.
///
/// Under [`Grid::Full`] every file must match byte-for-byte. Under
/// [`Grid::Fast`], grid-insensitive files still must match exactly; a
/// grid-sensitive `.csv` is checked as a row subset (equal header, every
/// regenerated data row present verbatim in the golden); other
/// grid-sensitive files are skipped (alignment depends on the full row set).
///
/// # Errors
/// A human-readable mismatch description.
pub fn compare_file(golden: &str, fresh: &ArtifactFile, grid: Grid) -> Result<(), String> {
    let exact = grid == Grid::Full || !fresh.grid_sensitive;
    if exact {
        if golden == fresh.contents {
            return Ok(());
        }
        let diff_at = golden
            .lines()
            .zip(fresh.contents.lines())
            .position(|(g, f)| g != f)
            .map_or("file lengths differ".to_string(), |k| {
                format!("first differing line {}", k + 1)
            });
        return Err(format!("byte mismatch ({diff_at})"));
    }
    if !fresh.name.ends_with(".csv") {
        return Ok(()); // grid-sensitive rendering: full-grid check only
    }
    let mut golden_lines = golden.lines();
    let mut fresh_lines = fresh.contents.lines();
    let (gh, fh) = (golden_lines.next(), fresh_lines.next());
    if gh != fh {
        return Err(format!("header mismatch: golden {gh:?} vs fresh {fh:?}"));
    }
    let golden_rows: std::collections::HashSet<&str> = golden_lines.collect();
    let mut data_rows = 0usize;
    for row in fresh_lines {
        data_rows += 1;
        if !golden_rows.contains(row) {
            return Err(format!("fast-grid row not in golden: `{row}`"));
        }
    }
    if data_rows == 0 {
        return Err("fast grid produced no data rows".into());
    }
    Ok(())
}

/// Compares an artifact's deterministic files against the goldens under
/// `root`, returning one description per mismatch (missing files included).
#[must_use]
pub fn compare_deterministic(root: &Path, artifact: &Artifact, grid: Grid) -> Vec<String> {
    let mut problems = Vec::new();
    for file in &artifact.deterministic {
        let path = root.join(artifact.study).join(&file.name);
        match std::fs::read_to_string(&path) {
            Ok(golden) => {
                if let Err(e) = compare_file(&golden, file, grid) {
                    problems.push(format!("{}: {e}", path.display()));
                }
            }
            Err(e) => problems.push(format!("{}: cannot read golden: {e}", path.display())),
        }
    }
    problems
}

/// Sweeps the committed golden tree for content the fresh artifacts no
/// longer produce: stale files inside a study directory, or entries at the
/// root that are neither the manifest nor a registered study. A study that
/// silently drops an output must fail the golden suite on *every* grid —
/// the deterministic file **names** are grid-independent even where the
/// contents are not.
#[must_use]
pub fn compare_layout(root: &Path, artifacts: &[Artifact]) -> Vec<String> {
    let mut problems = Vec::new();
    let list = |dir: &Path, problems: &mut Vec<String>| -> Vec<String> {
        match std::fs::read_dir(dir) {
            Ok(entries) => entries
                .filter_map(|e| e.ok())
                .map(|e| e.file_name().to_string_lossy().into_owned())
                .collect(),
            Err(e) => {
                problems.push(format!("{}: cannot list goldens: {e}", dir.display()));
                Vec::new()
            }
        }
    };
    for artifact in artifacts {
        let dir = root.join(artifact.study);
        for name in list(&dir, &mut problems) {
            if !artifact.deterministic.iter().any(|f| f.name == name) {
                problems.push(format!(
                    "{}: stale golden (the {} study no longer produces it)",
                    dir.join(&name).display(),
                    artifact.study
                ));
            }
        }
    }
    for name in list(root, &mut problems) {
        if name != MANIFEST_FILE && !artifacts.iter().any(|a| a.study == name) {
            problems.push(format!(
                "{}: not a registered study or the manifest",
                root.join(&name).display()
            ));
        }
    }
    problems
}

/// Fixed-precision rendering of an exact ratio — the one way every study
/// formats `f64`-valued deterministic cells.
#[must_use]
pub fn fmt_ratio(r: Rational) -> String {
    format!("{:.6}", r.to_f64())
}

/// Fixed-precision rendering of an `f64` (already-divided) ratio cell.
#[must_use]
pub fn fmt_f64(x: f64) -> String {
    format!("{x:.6}")
}

/// Millisecond rendering for timing cells.
#[must_use]
pub fn fmt_ms(dt: std::time::Duration) -> String {
    format!("{:.3}", dt.as_secs_f64() * 1e3)
}

/// `Value::Int` from a `usize` (manifest helper).
#[must_use]
pub fn int(v: usize) -> Value {
    Value::Int(v as i128)
}

/// `Value::Array` of integers (manifest helper for seed and grid lists).
#[must_use]
pub fn int_list<I: IntoIterator<Item = u64>>(vs: I) -> Value {
    Value::Array(vs.into_iter().map(|v| Value::Int(v.into())).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(name: &str, contents: &str, grid_sensitive: bool) -> ArtifactFile {
        ArtifactFile::new(name, contents.to_string(), grid_sensitive)
    }

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let names: Vec<&str> = studies().iter().map(|s| s.name).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        for name in names {
            assert!(study(name).is_some());
        }
        assert!(study("no-such-study").is_none());
    }

    #[test]
    fn full_grid_compares_bytes() {
        let f = file("a.csv", "h\nr1\n", true);
        assert!(compare_file("h\nr1\n", &f, Grid::Full).is_ok());
        assert!(compare_file("h\nr2\n", &f, Grid::Full).is_err());
    }

    #[test]
    fn fast_grid_subsets_csvs_and_skips_sensitive_text() {
        let f = file("a.csv", "h\nr1\n", true);
        // r1 is a subset of {r1, r2}.
        assert!(compare_file("h\nr1\nr2\n", &f, Grid::Fast).is_ok());
        // Header mismatch and foreign rows are reported.
        assert!(compare_file("H\nr1\n", &f, Grid::Fast).is_err());
        assert!(compare_file("h\nr2\n", &f, Grid::Fast).is_err());
        // Empty fast output is an error, not a vacuous pass.
        let empty = file("a.csv", "h\n", true);
        assert!(compare_file("h\nr1\n", &empty, Grid::Fast).is_err());
        // Grid-sensitive text is only checked on the full grid.
        let txt = file("a.txt", "anything", true);
        assert!(compare_file("other", &txt, Grid::Fast).is_ok());
        assert!(compare_file("other", &txt, Grid::Full).is_err());
        // Grid-insensitive files are byte-compared even on the fast grid.
        let fig = file("fig.txt", "body", false);
        assert!(compare_file("body", &fig, Grid::Fast).is_ok());
        assert!(compare_file("off", &fig, Grid::Fast).is_err());
    }

    #[test]
    fn manifest_lists_every_study_once() {
        let cfg = ReproConfig {
            grid: Grid::Fast,
            threads: Some(1),
            timing: false,
            deadline_ms: None,
            work_budget: None,
        };
        let artifacts = vec![Artifact {
            study: "demo",
            deterministic: vec![file("d.csv", "h\n", true)],
            timing: vec![],
            params: Value::Object(vec![("n".into(), int(4))]),
        }];
        let m = manifest(&cfg, &artifacts);
        assert_eq!(
            m.field("grid").and_then(Value::as_str),
            Some(Grid::Fast.name())
        );
        let demo = m.field("studies").and_then(|s| s.field("demo")).unwrap();
        assert_eq!(
            demo.field("deterministic")
                .and_then(Value::as_array)
                .map(<[Value]>::len),
            Some(1)
        );
        // Round-trips through the parser (the committed file is re-readable).
        let text = render_manifest(&m);
        assert_eq!(bss_json::parse(&text).unwrap(), m);
    }

    #[test]
    fn layout_sweep_reports_stale_and_foreign_entries() {
        let root = std::env::temp_dir().join(format!(
            "bss-repro-layout-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(root.join("demo")).unwrap();
        let artifacts = vec![Artifact {
            study: "demo",
            deterministic: vec![file("d.csv", "h\n", true)],
            timing: vec![],
            params: Value::Object(vec![]),
        }];
        std::fs::write(root.join("demo").join("d.csv"), "h\n").unwrap();
        std::fs::write(root.join(MANIFEST_FILE), "{}\n").unwrap();
        assert!(compare_layout(&root, &artifacts).is_empty());
        // A golden the study no longer produces is reported…
        std::fs::write(root.join("demo").join("stale.csv"), "h\n").unwrap();
        // …as is a directory no study claims.
        std::fs::create_dir_all(root.join("retired-study")).unwrap();
        let problems = compare_layout(&root, &artifacts);
        assert_eq!(problems.len(), 2, "{problems:?}");
        assert!(problems.iter().any(|p| p.contains("stale.csv")));
        assert!(problems.iter().any(|p| p.contains("retired-study")));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn grid_parsing() {
        assert_eq!(Grid::parse("fast").unwrap(), Grid::Fast);
        assert_eq!(Grid::parse("full").unwrap(), Grid::Full);
        assert!(Grid::parse("medium").is_err());
        assert_eq!(Grid::Fast.name(), "fast");
    }
}
