//! Study `table1` — the paper's Table 1 as an empirical matrix, plus the
//! proven-bounds certification table.
//!
//! Deterministic part:
//!
//! * `table1.csv` / `.txt` — one row per `(variant, algorithm, suite, seed)`
//!   cell: the claimed ratio next to the achieved `makespan/certificate`
//!   (an upper bound on the true ratio, since `certificate < OPT`) and
//!   `makespan/accepted` (provably below the algorithm's `ratio_bound`).
//! * `bounds.csv` / `.txt` — the regression table the golden suite asserts
//!   on: per variant (sequence-dependent uniform included) the maximal
//!   achieved `makespan/accepted` against both the repository's proven
//!   `ratio_bound` and the paper's claimed bound (3/2 splittable, 3/2+ε
//!   preemptive, 5/3+ε non-preemptive, 3/2 sequence-dependent uniform).
//!   This table runs on a fixed mini-grid, so its bytes are identical under
//!   every [`Grid`] and it is byte-diffed even by the fast CI job.
//!
//! Timing part: wall times of the `table1` cells.

use bss_core::{solve, solve_seqdep, Algorithm};
use bss_instance::Variant;
use bss_json::{ToJson, Value};
use bss_rational::Rational;
use bss_report::{time_best_of, Table};

use crate::suites::{table1_suites, Suite};

use super::{fmt_ms, fmt_ratio, int, int_list, Artifact, ArtifactFile, Grid, ReproConfig};

const JOBS: usize = 4000;
const CLASSES: usize = JOBS / 20;
const MACHINES: usize = 16;
const FULL_REPS: u64 = 3;

/// Algorithm cells, with the paper's claimed ratio and time per variant.
fn algorithms(variant: Variant) -> [(Algorithm, &'static str, &'static str, &'static str); 4] {
    let claimed_three_halves_time = match variant {
        Variant::Splittable => "O(n + c log(c+m))",
        Variant::Preemptive => "O(n log(c+m))",
        Variant::NonPreemptive => "O(n log(n+Δ))",
    };
    [
        (Algorithm::TwoApprox, "2-approx (Thm 1)", "2", "O(n)"),
        (
            Algorithm::EpsilonSearch { eps_log2: 7 },
            "3/2+eps (Thm 2)",
            "1.512",
            "O(n log 1/eps)",
        ),
        (
            Algorithm::ThreeHalves,
            "3/2 (Thm 3/6/8)",
            "1.5",
            claimed_three_halves_time,
        ),
        (
            Algorithm::Portfolio,
            "portfolio (ours)",
            "1.5",
            claimed_three_halves_time,
        ),
    ]
}

fn grid_suites(grid: Grid) -> Vec<Suite> {
    let suites = match grid {
        Grid::Full => table1_suites(JOBS, CLASSES, MACHINES, FULL_REPS),
        // The fast rows are a strict subset of the full rows: same shapes,
        // seed 0 only, two representative suites.
        Grid::Fast => table1_suites(JOBS, CLASSES, MACHINES, 1)
            .into_iter()
            .filter(|s| matches!(s.name, "uniform" | "expensive"))
            .collect(),
    };
    suites
}

/// Runs the study at `cfg`.
#[must_use]
pub fn run(cfg: &ReproConfig) -> Artifact {
    let suites = grid_suites(cfg.grid);
    let mut cells = Vec::new();
    for variant in Variant::ALL {
        for (algo, algo_name, claimed, claimed_time) in algorithms(variant) {
            for suite in &suites {
                for spec in &suite.specs {
                    cells.push((
                        variant,
                        algo,
                        algo_name,
                        claimed,
                        claimed_time,
                        suite.name,
                        *spec,
                    ));
                }
            }
        }
    }

    let timing = cfg.timing;
    let rows = super::sweep(
        cfg,
        "table1",
        cells,
        |(variant, algo, algo_name, claimed, claimed_time, suite, spec)| {
            let inst = spec.build();
            // Solves are deterministic, so a timed run doubles as the
            // deterministic row's solve.
            let (sol, ms) = if timing {
                let (sol, dt) = time_best_of(2, || solve(&inst, variant, algo));
                (sol, Some(fmt_ms(dt)))
            } else {
                (solve(&inst, variant, algo), None)
            };
            (
                vec![
                    variant.to_string(),
                    algo_name.to_string(),
                    suite.to_string(),
                    spec.seed().to_string(),
                    claimed.to_string(),
                    claimed_time.to_string(),
                    fmt_ratio(sol.makespan / sol.certificate),
                    fmt_ratio(sol.makespan / sol.accepted),
                    sol.probes.to_string(),
                ],
                ms,
            )
        },
    );

    let mut table = Table::new(&[
        "variant",
        "algorithm",
        "suite",
        "seed",
        "claimed ratio",
        "claimed time",
        "makespan/certificate",
        "makespan/accepted",
        "probes",
    ]);
    let mut times = Table::new(&[
        "variant",
        "algorithm",
        "suite",
        "seed",
        "time (ms, best of 2)",
    ]);
    for (row, ms) in rows.into_iter().flatten() {
        if let Some(ms) = ms {
            times.row(&[&row[0], &row[1], &row[2], &row[3], &ms]);
        }
        table.row(&row);
    }

    let bounds = bounds_table();

    Artifact {
        study: "table1",
        deterministic: vec![
            ArtifactFile::new("table1.csv", table.to_csv(), true),
            ArtifactFile::new("table1.txt", table.to_aligned(), true),
            ArtifactFile::new("bounds.csv", bounds.to_csv(), false),
            ArtifactFile::new("bounds.txt", bounds.to_aligned(), false),
        ],
        timing: (!times.is_empty())
            .then(|| ArtifactFile::new("timing.csv", times.to_csv(), true))
            .into_iter()
            .collect(),
        params: Value::Object(vec![
            ("jobs".into(), int(JOBS)),
            ("classes".into(), int(CLASSES)),
            ("machines".into(), int(MACHINES)),
            (
                "suites".into(),
                Value::Array(
                    suites
                        .iter()
                        .map(|s| {
                            Value::Object(vec![
                                ("name".into(), Value::Str(s.name.into())),
                                (
                                    "specs".into(),
                                    Value::Array(
                                        s.specs.iter().map(ToJson::to_json_value).collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "bounds_grid".into(),
                Value::Object(vec![
                    ("jobs".into(), int(BOUNDS_JOBS)),
                    ("classes".into(), int(BOUNDS_CLASSES)),
                    ("machines".into(), int(BOUNDS_MACHINES)),
                    ("seqdep_classes".into(), int(BOUNDS_SEQDEP_CLASSES)),
                    ("seeds".into(), int_list(0..BOUNDS_SEEDS)),
                ]),
            ),
        ]),
    }
}

const BOUNDS_JOBS: usize = 400;
const BOUNDS_CLASSES: usize = 20;
const BOUNDS_MACHINES: usize = 6;
const BOUNDS_SEQDEP_CLASSES: usize = 24;
const BOUNDS_SEEDS: u64 = 3;

/// The proven-bounds certification table (grid-independent).
///
/// `achieved = makespan / accepted` is the quantity the theorems bound:
/// every `Solution` proves `makespan <= ratio_bound · accepted`. Each row
/// takes the maximum over the fixed seed set and asserts it against both
/// the repository's `ratio_bound` and the paper's claim — the golden test
/// re-asserts the committed `within` column stays `yes`.
///
/// # Panics
/// If any achieved ratio exceeds its proven or claimed bound (a genuine
/// regression; the goldens exist to catch exactly this).
#[must_use]
pub fn bounds_table() -> Table {
    let eps = Rational::new(1, 64); // display/claim epsilon: 2^-7 search => paper eps <= 2^-6
    let rows: Vec<(&str, Variant, Algorithm, &str, Rational)> = vec![
        (
            "splittable",
            Variant::Splittable,
            Algorithm::ThreeHalves,
            "3/2 (Thm 3)",
            Rational::new(3, 2),
        ),
        (
            "preemptive",
            Variant::Preemptive,
            Algorithm::ThreeHalves,
            "3/2 (Thm 6)",
            Rational::new(3, 2),
        ),
        (
            "preemptive",
            Variant::Preemptive,
            Algorithm::EpsilonSearch { eps_log2: 7 },
            "3/2+eps (Thm 2)",
            Rational::new(3, 2) + eps,
        ),
        (
            "non-preemptive",
            Variant::NonPreemptive,
            Algorithm::EpsilonSearch { eps_log2: 7 },
            "5/3+eps (SPAA version)",
            Rational::new(5, 3) + eps,
        ),
        (
            "non-preemptive",
            Variant::NonPreemptive,
            Algorithm::ThreeHalves,
            "3/2 (Thm 8)",
            Rational::new(3, 2),
        ),
    ];

    let mut table = Table::new(&[
        "problem",
        "algorithm",
        "paper claim",
        "proven bound",
        "achieved max (makespan/accepted)",
        "within",
    ]);
    for (problem, variant, algo, claim, paper_bound) in rows {
        let mut achieved = Rational::ZERO;
        let mut proven = Rational::ZERO;
        for seed in 0..BOUNDS_SEEDS {
            let inst = bss_gen::uniform(BOUNDS_JOBS, BOUNDS_CLASSES, BOUNDS_MACHINES, seed);
            let sol = solve(&inst, variant, algo);
            achieved = achieved.max(sol.makespan / sol.accepted);
            proven = sol.ratio_bound;
        }
        push_bound_row(
            &mut table,
            problem,
            algo_label(algo),
            claim,
            proven,
            paper_bound,
            achieved,
        );
    }

    // Sequence-dependent uniform special case: the 3/2 of the batch-setup
    // reduction transfers exactly (arXiv:1809.10428 bridge; Theorem 8 here).
    let mut achieved = Rational::ZERO;
    let mut proven = Rational::ZERO;
    for seed in 0..BOUNDS_SEEDS {
        let sd = bss_gen::seqdep::uniform_setups(BOUNDS_SEQDEP_CLASSES, BOUNDS_MACHINES, seed);
        let sol = solve_seqdep(&sd, Algorithm::ThreeHalves);
        achieved = achieved.max(sol.makespan / sol.accepted);
        proven = sol.ratio_bound;
    }
    push_bound_row(
        &mut table,
        "seqdep-uniform",
        "3/2 via reduction",
        "3/2 (uniform case)",
        proven,
        Rational::new(3, 2),
        achieved,
    );
    table
}

fn algo_label(algo: Algorithm) -> &'static str {
    match algo {
        Algorithm::TwoApprox => "two-approx",
        Algorithm::EpsilonSearch { .. } => "eps-search (2^-7)",
        Algorithm::ThreeHalves => "three-halves",
        Algorithm::Portfolio => "portfolio",
    }
}

fn push_bound_row(
    table: &mut Table,
    problem: &str,
    algorithm: &str,
    claim: &str,
    proven: Rational,
    paper_bound: Rational,
    achieved: Rational,
) {
    let within = achieved <= proven && achieved <= paper_bound;
    assert!(
        within,
        "{problem}/{algorithm}: achieved {achieved} exceeds proven {proven} or claimed {paper_bound}"
    );
    table.row(&[
        problem.to_string(),
        algorithm.to_string(),
        claim.to_string(),
        proven.to_string(),
        fmt_ratio(achieved),
        "yes".to_string(),
    ]);
}
