//! Study `optgap` — the empirical-ratio scoreboard against the exact
//! branch-and-bound optimum of `bss-exact`.
//!
//! Where study `ratios` certifies against the *non-preemptive* exact
//! baseline only (so relaxed variants underestimate their own ratio), this
//! study closes the branch-and-bound **per variant** — splittable,
//! preemptive and non-preemptive each against their own `OPT`, plus the
//! sequence-dependent model against its exact class-order search. Every
//! ratio in `optgap.csv` is therefore a true empirical ratio vs `OPT`, not
//! vs a lower bound.
//!
//! All cells are exact-rational ratios of seeded single solves — fully
//! deterministic; this study has no timing part. The search *must* close
//! (`ExactStatus::Closed`) on every grid cell: a budget exhaustion or a
//! sandwich gap would silently turn the scoreboard into a bound table, so
//! it is a hard error instead.

use bss_core::{solve, solve_seqdep, Algorithm};
use bss_exact::{solve_bss, solve_seqdep as exact_seqdep, ExactConfig, ExactStatus};
use bss_gen::seqdep::tiny_seqdep;
use bss_gen::FamilySpec;
use bss_instance::Variant;
use bss_json::Value;
use bss_rational::Rational;
use bss_report::Table;

use super::{fmt_ratio, int_list, Artifact, ArtifactFile, Grid, ReproConfig};

/// The fast seeds are a prefix of the full seeds, so every fast-grid CSV row
/// appears verbatim in the committed full-grid golden.
fn seeds(grid: Grid) -> u64 {
    match grid {
        Grid::Fast => 8,
        Grid::Full => 48,
    }
}

/// The algorithms on the scoreboard, with their stable CSV names.
const ALGOS: [(&str, Algorithm); 3] = [
    ("2-approx", Algorithm::TwoApprox),
    ("3/2", Algorithm::ThreeHalves),
    ("portfolio", Algorithm::Portfolio),
];

/// One scoreboard row: `problem, seed, algorithm, opt, achieved,
/// ratio_vs_opt` (opt and achieved as exact rationals, the ratio in the
/// pipeline's fixed 6-decimal rendering).
fn rows_for(
    problem: &str,
    seed: u64,
    opt: Rational,
    achieved: &[(Rational, &str)],
) -> Vec<Vec<String>> {
    achieved
        .iter()
        .map(|(makespan, algo)| {
            assert!(
                *makespan >= opt,
                "{problem} seed {seed}: achieved {makespan} below OPT {opt}"
            );
            vec![
                problem.to_string(),
                seed.to_string(),
                (*algo).to_string(),
                opt.to_string(),
                makespan.to_string(),
                fmt_ratio(*makespan / opt),
            ]
        })
        .collect()
}

/// Runs the study at `cfg`.
#[must_use]
pub fn run(cfg: &ReproConfig) -> Artifact {
    let seed_list: Vec<u64> = (0..seeds(cfg.grid)).collect();
    let exact_cfg = ExactConfig::default();

    // One parallel cell per seed; each cell contributes four problems'
    // rows (three batch-setup variants plus the seqdep model), in a fixed
    // order, so the assembled table is independent of the thread count.
    let cells = super::sweep(cfg, "optgap", seed_list.clone(), move |seed| {
        let mut rows = Vec::new();
        let inst = FamilySpec::Tiny { seed }.build();
        for variant in [
            Variant::Splittable,
            Variant::Preemptive,
            Variant::NonPreemptive,
        ] {
            let ex = solve_bss(&inst, variant, &exact_cfg)
                .expect("tiny instances are within the oracle's size limits");
            assert!(
                ex.status == ExactStatus::Closed,
                "{variant} seed {seed}: branch-and-bound did not close"
            );
            let opt = ex.upper;
            let achieved: Vec<(Rational, &str)> = ALGOS
                .iter()
                .map(|&(name, algo)| (solve(&inst, variant, algo).makespan, name))
                .collect();
            rows.extend(rows_for(&variant.to_string(), seed, opt, &achieved));
        }
        let sd = tiny_seqdep(seed);
        let ex = exact_seqdep(&sd, &exact_cfg)
            .expect("tiny seqdep instances are within the oracle's size limits");
        assert!(
            ex.status == ExactStatus::Closed,
            "seqdep seed {seed}: branch-and-bound did not close"
        );
        let achieved: Vec<(Rational, &str)> = ALGOS
            .iter()
            .map(|&(name, algo)| (solve_seqdep(&sd, algo).makespan, name))
            .collect();
        rows.extend(rows_for("seqdep", seed, ex.upper, &achieved));
        rows
    });

    let mut table = Table::new(&[
        "problem",
        "seed",
        "algorithm",
        "opt",
        "achieved",
        "ratio_vs_opt",
    ]);
    // (problem, algorithm) -> (max ratio, sum of ratios, count) for the
    // summary; keyed in first-seen order, which is fixed by the row order.
    let mut summary: Vec<(String, String, f64, f64, u64)> = Vec::new();
    for row in cells.into_iter().flatten().flatten() {
        let ratio: f64 = row[5].parse().expect("fmt_ratio emits parseable decimals");
        let key = (row[0].clone(), row[2].clone());
        match summary
            .iter_mut()
            .find(|s| (s.0 == key.0) && (s.1 == key.1))
        {
            Some(s) => {
                s.2 = s.2.max(ratio);
                s.3 += ratio;
                s.4 += 1;
            }
            None => summary.push((key.0, key.1, ratio, ratio, 1)),
        }
        table.row(&row);
    }

    let mut agg = Table::new(&["problem", "algorithm", "max_ratio", "mean_ratio"]);
    for (problem, algo, max, sum, n) in &summary {
        agg.row(&[
            problem.clone(),
            algo.clone(),
            super::fmt_f64(*max),
            super::fmt_f64(*sum / (*n as f64)),
        ]);
    }

    let text = format!(
        "# optgap: empirical ratio vs the exact (branch-and-bound) OPT, per variant\n\
         # every row certifies OPT <= achieved; the portfolio's oracle closes\n\
         # these tiny instances, so its ratio is exactly 1.000000\n\n{}\n\
         # per problem x algorithm: worst and mean empirical ratio\n\n{}",
        table.to_aligned(),
        agg.to_aligned()
    );

    Artifact {
        study: "optgap",
        deterministic: vec![
            ArtifactFile::new("optgap.csv", table.to_csv(), true),
            ArtifactFile::new("optgap.txt", text, true),
        ],
        timing: Vec::new(),
        params: Value::Object(vec![
            ("seeds".into(), int_list(seed_list.iter().copied())),
            (
                "bss_family".into(),
                Value::Str("bss_gen::tiny (n <= 9, m <= 4, c <= 4; all three variants)".into()),
            ),
            (
                "seqdep_family".into(),
                Value::Str("bss_gen::seqdep::tiny_seqdep (c <= 6, m <= 4)".into()),
            ),
            (
                "algorithms".into(),
                Value::Array(
                    ALGOS
                        .iter()
                        .map(|&(name, _)| Value::Str(name.into()))
                        .collect(),
                ),
            ),
            (
                "exact_max_nodes".into(),
                Value::Int(i128::from(ExactConfig::default().max_nodes)),
            ),
        ]),
    }
}
