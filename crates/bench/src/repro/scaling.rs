//! Study `scaling` — experiments S1/S5: the search structure along the `n`
//! and `Δ` sweeps.
//!
//! Wall times (and the fitted log-log exponents that certify the paper's
//! near-linear claims) are machine-dependent, so they live entirely in the
//! timing part. The deterministic part records what the *algorithms* do at
//! each sweep point — probe counts and certified ratios — which regresses
//! the search behaviour itself: a probe-count jump at fixed `n` or `Δ` means
//! the searches changed, golden-visibly.

use bss_core::{solve, Algorithm};
use bss_gen::FamilySpec;
use bss_instance::Variant;
use bss_json::{ToJson, Value};
use bss_report::{fit_loglog, time_best_of, Table};

use super::{fmt_ratio, int_list, Artifact, ArtifactFile, Grid, ReproConfig};

const UNIFORM_SEED: u64 = 7;
const DELTA_SEED: u64 = 3;
const S5_JOBS: usize = 1 << 12;

fn s1_cases() -> [(Variant, Algorithm, &'static str, &'static str); 5] {
    [
        (
            Variant::Splittable,
            Algorithm::TwoApprox,
            "2-approx",
            "O(n)",
        ),
        (
            Variant::NonPreemptive,
            Algorithm::TwoApprox,
            "2-approx",
            "O(n)",
        ),
        (
            Variant::Splittable,
            Algorithm::ThreeHalves,
            "class jumping",
            "O(n + c log(c+m))",
        ),
        (
            Variant::Preemptive,
            Algorithm::ThreeHalves,
            "class jumping",
            "O(n log(c+m))",
        ),
        (
            Variant::NonPreemptive,
            Algorithm::ThreeHalves,
            "integer search",
            "O(n log(n+Δ))",
        ),
    ]
}

fn s1_sizes(grid: Grid) -> Vec<usize> {
    match grid {
        Grid::Fast => crate::suites::n_sweep(8, 9),
        Grid::Full => crate::suites::n_sweep(8, 13),
    }
}

fn s5_delta_log2(grid: Grid) -> Vec<u32> {
    match grid {
        Grid::Fast => vec![4, 12],
        Grid::Full => vec![4, 12, 20, 28, 36],
    }
}

/// Runs the study at `cfg`.
#[must_use]
pub fn run(cfg: &ReproConfig) -> Artifact {
    let sizes = s1_sizes(cfg.grid);
    let deltas = s5_delta_log2(cfg.grid);
    let timing = cfg.timing;

    // S1: n-scaling of the 3/2 algorithms and 2-approximations.
    let mut cells = Vec::new();
    for (variant, algo, name, claimed) in s1_cases() {
        for &n in &sizes {
            let spec = FamilySpec::Uniform {
                jobs: n,
                classes: (n / 20).max(2),
                machines: 16,
                seed: UNIFORM_SEED,
            };
            cells.push(("S1", variant, algo, name, claimed, spec, n as u64));
        }
    }
    // S5: Δ-scaling of the non-preemptive integer search at fixed n.
    for &k in &deltas {
        let spec = FamilySpec::WideDelta {
            jobs: S5_JOBS,
            classes: S5_JOBS / 20,
            machines: 16,
            delta: 1u64 << k,
            seed: DELTA_SEED,
        };
        cells.push((
            "S5",
            Variant::NonPreemptive,
            Algorithm::ThreeHalves,
            "integer search",
            "O(n log(n+Δ))",
            spec,
            u64::from(k),
        ));
    }

    let rows = super::sweep(
        cfg,
        "scaling",
        cells,
        |(experiment, variant, algo, name, claimed, spec, x)| {
            let inst = spec.build();
            // Solves are deterministic, so a timed run doubles as the
            // deterministic row's solve.
            let (sol, ms) = if timing {
                let (sol, dt) = time_best_of(3, || solve(&inst, variant, algo));
                (sol, Some(dt.as_secs_f64() * 1e3))
            } else {
                (solve(&inst, variant, algo), None)
            };
            let x_label = match experiment {
                "S5" => format!("Δ=2^{x}"),
                _ => x.to_string(),
            };
            (
                experiment,
                variant,
                name,
                x,
                ms,
                vec![
                    experiment.to_string(),
                    variant.to_string(),
                    name.to_string(),
                    claimed.to_string(),
                    x_label,
                    sol.probes.to_string(),
                    fmt_ratio(sol.makespan / sol.certificate),
                    fmt_ratio(sol.makespan / sol.accepted),
                ],
            )
        },
    );

    let mut table = Table::new(&[
        "experiment",
        "variant",
        "algorithm",
        "claimed",
        "n (or Δ)",
        "probes",
        "makespan/certificate",
        "makespan/accepted",
    ]);
    let mut times = Table::new(&[
        "experiment",
        "variant",
        "algorithm",
        "x",
        "time (ms, best of 3)",
    ]);
    // One fit series per sweep case: algorithm names repeat across variants
    // ("2-approx", "class jumping"), so the variant is part of the key.
    type Series<'a> = (&'a str, String, &'a str, Vec<f64>, Vec<f64>);
    let mut series: Vec<Series<'_>> = Vec::new();
    for (experiment, variant, name, x, ms, row) in rows.into_iter().flatten() {
        if let Some(ms) = ms {
            let variant = variant.to_string();
            times.row(&[
                experiment.to_string(),
                variant.clone(),
                name.to_string(),
                x.to_string(),
                format!("{ms:.3}"),
            ]);
            let xs = match experiment {
                // S5 fits time against log Δ (the claim is a log dependence).
                "S5" => (x as f64) * std::f64::consts::LN_2,
                _ => x as f64,
            };
            match series
                .iter_mut()
                .find(|(e, v, c, _, _)| *e == experiment && *v == variant && *c == name)
            {
                Some((_, _, _, sx, sy)) => {
                    sx.push(xs);
                    sy.push(ms);
                }
                None => series.push((experiment, variant, name, vec![xs], vec![ms])),
            }
        }
        table.row(&row);
    }
    let mut fits = Table::new(&["experiment", "variant", "algorithm", "fitted exponent"]);
    for (experiment, variant, name, xs, ys) in &series {
        let slope = fit_loglog(xs, ys).unwrap_or(f64::NAN);
        fits.row(&[
            experiment.to_string(),
            variant.clone(),
            name.to_string(),
            format!("{slope:.3}"),
        ]);
    }

    let mut timing_files = Vec::new();
    if !times.is_empty() {
        timing_files.push(ArtifactFile::new("timing.csv", times.to_csv(), true));
        timing_files.push(ArtifactFile::new(
            "timing-fits.txt",
            format!(
                "# S1: exponent ~ 1 confirms near-linear time; S5 fits vs log Δ\n\n{}",
                fits.to_aligned()
            ),
            true,
        ));
    }

    Artifact {
        study: "scaling",
        deterministic: vec![
            ArtifactFile::new("scaling.csv", table.to_csv(), true),
            ArtifactFile::new("scaling.txt", table.to_aligned(), true),
        ],
        timing: timing_files,
        params: Value::Object(vec![
            ("s1_sizes".into(), int_list(sizes.iter().map(|&n| n as u64))),
            (
                "s1_shape".into(),
                Value::Str(format!(
                    "uniform: c = max(n/20, 2), m = 16, seed {UNIFORM_SEED}"
                )),
            ),
            (
                "s5_delta_log2".into(),
                int_list(deltas.iter().map(|&k| u64::from(k))),
            ),
            (
                "s5_shape".into(),
                FamilySpec::WideDelta {
                    jobs: S5_JOBS,
                    classes: S5_JOBS / 20,
                    machines: 16,
                    delta: 1u64 << deltas[0],
                    seed: DELTA_SEED,
                }
                .to_json_value(),
            ),
        ]),
    }
}
