//! The one small argument parser every `repro-*` binary shares.
//!
//! Replaces the binaries' historical ad-hoc positional parsing (which
//! panicked on bad input) with validated flags and error messages, matching
//! the workspace's "no panics at the surface" policy:
//!
//! ```text
//! repro-<study> [--grid fast|full] [--threads N] [--no-timing] [--out DIR]
//! ```
//!
//! `BSS_REPRO_GRID` provides the grid default (`full` when unset); `--grid`
//! overrides it. Deterministic artifacts go to `<out>/<study>/`, timings to
//! the same directory under `timing*` names; the default `--out` is the
//! gitignored `target/repro/` (the committed goldens under
//! `results/figures/` are written only by `repro-all` and the
//! `BSS_BLESS=1` test path).

use std::path::PathBuf;
use std::process::ExitCode;

use super::{run_all, studies, Grid, ReproConfig, Study};

/// Parsed command line of a repro binary.
#[derive(Debug, Clone)]
pub struct ReproArgs {
    /// Study configuration (grid, threads, timing).
    pub cfg: ReproConfig,
    /// Output root; study artifacts land in `<out>/<study>/`.
    pub out: PathBuf,
    /// Whether `--out` was given explicitly. An explicit root is
    /// self-contained: `repro-all` keeps timings under it too, instead of
    /// the default split (goldens to `results/figures/`, timings to
    /// `target/repro/`).
    pub explicit_out: bool,
}

/// Outcome of parsing: run, or print help.
#[derive(Debug, Clone)]
pub enum Invocation {
    /// `--help`/`-h` was given.
    Help,
    /// Run with the parsed arguments.
    Run(ReproArgs),
}

/// Default output root of the single-study binaries.
pub const DEFAULT_OUT: &str = "target/repro";

/// Usage text for a repro binary (`what` names the binary's scope).
#[must_use]
pub fn usage(what: &str) -> String {
    let list = studies()
        .iter()
        .map(|s| format!("  {:<8} {}", s.name, s.summary))
        .collect::<Vec<_>>()
        .join("\n");
    format!(
        "{what} — regenerates paper-reproduction artifacts\n\n\
         USAGE:\n  {what} [--grid fast|full] [--threads N] [--no-timing] [--out DIR]\n\
         \x20            [--deadline-ms MS] [--budget CELLS]\n\n\
         OPTIONS:\n\
         \x20 --grid fast|full  sweep budget (default: $BSS_REPRO_GRID, else full;\n\
         \x20                   fast is the row-subset grid the CI job checks)\n\
         \x20 --threads N       worker threads for the sweeps (default: all cores)\n\
         \x20 --no-timing       skip wall-time measurement (deterministic part only)\n\
         \x20 --out DIR         output root (default: {DEFAULT_OUT}; repro-all\n\
         \x20                   defaults to results/figures for the committed goldens)\n\
         \x20 --deadline-ms MS  per-sweep wall-clock deadline; skipped cells are\n\
         \x20                   dropped from the artifact with a warning\n\
         \x20 --budget CELLS    per-sweep cell budget (deterministic truncation)\n\n\
         STUDIES:\n{list}"
    )
}

/// Parses a repro binary's arguments.
///
/// # Errors
/// A human-readable message for unknown flags, missing or non-numeric
/// values, or a bad grid name — callers print it and exit nonzero instead
/// of panicking.
pub fn parse(args: &[String], default_out: &str) -> Result<Invocation, String> {
    let mut cfg = ReproConfig::from_env(Grid::Full)?;
    let mut out: PathBuf = PathBuf::from(default_out);
    let mut explicit_out = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => return Ok(Invocation::Help),
            "--grid" => {
                let v = it.next().ok_or("--grid needs a value (fast|full)")?;
                cfg.grid = Grid::parse(v)?;
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("bad --threads value `{v}`"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".into());
                }
                cfg.threads = Some(n);
            }
            "--no-timing" => cfg.timing = false,
            "--deadline-ms" => {
                let v = it
                    .next()
                    .ok_or("--deadline-ms needs a value (milliseconds)")?;
                let ms: u64 = v
                    .parse()
                    .map_err(|_| format!("bad --deadline-ms value `{v}`"))?;
                cfg.deadline_ms = Some(ms);
            }
            "--budget" => {
                let v = it.next().ok_or("--budget needs a value (sweep cells)")?;
                let cells: u64 = v.parse().map_err(|_| format!("bad --budget value `{v}`"))?;
                cfg.work_budget = Some(cells);
            }
            "--out" => {
                let v = it.next().ok_or("--out needs a value")?;
                out = PathBuf::from(v);
                explicit_out = true;
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    if !explicit_out && default_out != DEFAULT_OUT && cfg.grid == Grid::Fast {
        // `repro-all` on the fast grid must not overwrite the committed
        // full-grid goldens with subset files; divert to the scratch root.
        out = PathBuf::from(DEFAULT_OUT).join("figures-fast");
    }
    Ok(Invocation::Run(ReproArgs {
        cfg,
        out,
        explicit_out,
    }))
}

/// Shared `main` of the six single-study binaries: parse, run the named
/// study, write its artifact under `--out`, print the deterministic tables.
#[must_use]
pub fn study_main(name: &str) -> ExitCode {
    let study = super::study(name).expect("binaries name registered studies");
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse(&args, DEFAULT_OUT) {
        Ok(Invocation::Help) => {
            println!("{}", usage(&format!("repro-{name}")));
            ExitCode::SUCCESS
        }
        Ok(Invocation::Run(run)) => match run_one(study, &run) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        },
        Err(msg) => {
            eprintln!("error: {msg}\n\n{}", usage(&format!("repro-{name}")));
            ExitCode::FAILURE
        }
    }
}

fn run_one(study: Study, run: &ReproArgs) -> Result<(), String> {
    let artifact = (study.run)(&run.cfg);
    let err = |e: std::io::Error| format!("writing {}: {e}", run.out.display());
    let mut written =
        super::write_timing(&run.out, std::slice::from_ref(&artifact)).map_err(err)?;
    // Single-study runs write the deterministic files next to the timings
    // (no manifest — that is `repro-all`'s job).
    let dir = run.out.join(artifact.study);
    std::fs::create_dir_all(&dir).map_err(err)?;
    for file in &artifact.deterministic {
        let path = dir.join(&file.name);
        std::fs::write(&path, &file.contents).map_err(err)?;
        written.push(path);
    }
    println!("# {} — {}", study.name, study.summary);
    println!("# grid: {}", run.cfg.grid.name());
    for file in &artifact.deterministic {
        if file.name.ends_with(".txt") {
            println!();
            print!("{}", file.contents);
        }
    }
    println!();
    for path in written {
        println!("wrote {}", path.display());
    }
    Ok(())
}

/// `main` of `repro-all`: regenerate every study, the committed artifact
/// tree and the MANIFEST.
#[must_use]
pub fn all_main(default_out: &str) -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse(&args, default_out) {
        Ok(Invocation::Help) => {
            println!("{}", usage("repro-all"));
            ExitCode::SUCCESS
        }
        Ok(Invocation::Run(run)) => {
            let artifacts = run_all(&run.cfg);
            let manifest = super::render_manifest(&super::manifest(&run.cfg, &artifacts));
            let det = super::write_deterministic(&run.out, &artifacts, &manifest)
                .map_err(|e| format!("writing {}: {e}", run.out.display()));
            // An explicit --out is a self-contained snapshot (timings
            // included); the default run splits committed goldens from the
            // scratch timing tree.
            let timing_root = if run.explicit_out {
                run.out.clone()
            } else {
                PathBuf::from(DEFAULT_OUT)
            };
            let timing = super::write_timing(&timing_root, &artifacts)
                .map_err(|e| format!("writing {}: {e}", timing_root.display()));
            match (det, timing) {
                (Ok(det), Ok(timing)) => {
                    println!(
                        "# repro-all: {} studies on the {} grid",
                        artifacts.len(),
                        run.cfg.grid.name()
                    );
                    for path in det.iter().chain(&timing) {
                        println!("wrote {}", path.display());
                    }
                    println!(
                        "# deterministic artifacts: {} files under {}; timings under {}",
                        det.len(),
                        run.out.display(),
                        timing_root.display()
                    );
                    ExitCode::SUCCESS
                }
                (Err(msg), _) | (_, Err(msg)) => {
                    eprintln!("error: {msg}");
                    ExitCode::FAILURE
                }
            }
        }
        Err(msg) => {
            eprintln!("error: {msg}\n\n{}", usage("repro-all"));
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn defaults_and_flags_parse() {
        let Invocation::Run(run) = parse(&args(&[]), DEFAULT_OUT).unwrap() else {
            panic!("expected run");
        };
        assert_eq!(run.out, PathBuf::from(DEFAULT_OUT));
        assert!(run.cfg.timing);

        let Invocation::Run(run) = parse(
            &args(&[
                "--grid",
                "fast",
                "--threads",
                "3",
                "--no-timing",
                "--out",
                "x",
                "--deadline-ms",
                "1500",
                "--budget",
                "40",
            ]),
            DEFAULT_OUT,
        )
        .unwrap() else {
            panic!("expected run");
        };
        assert_eq!(run.cfg.grid, Grid::Fast);
        assert_eq!(run.cfg.threads, Some(3));
        assert!(!run.cfg.timing);
        assert_eq!(run.out, PathBuf::from("x"));
        assert_eq!(run.cfg.deadline_ms, Some(1500));
        assert_eq!(run.cfg.work_budget, Some(40));
    }

    #[test]
    fn errors_are_messages_not_panics() {
        for bad in [
            vec!["--grid"],
            vec!["--grid", "medium"],
            vec!["--threads", "zero"],
            vec!["--threads", "0"],
            vec!["--deadline-ms"],
            vec!["--deadline-ms", "soon"],
            vec!["--budget", "-3"],
            vec!["--out"],
            vec!["--frobnicate"],
            vec!["17"], // the historical positional n is gone
        ] {
            let msg = parse(&args(&bad), DEFAULT_OUT).unwrap_err();
            assert!(!msg.is_empty(), "{bad:?}");
        }
    }

    #[test]
    fn help_flag_wins() {
        assert!(matches!(
            parse(&args(&["--help"]), DEFAULT_OUT).unwrap(),
            Invocation::Help
        ));
        assert!(matches!(
            parse(&args(&["-h"]), DEFAULT_OUT).unwrap(),
            Invocation::Help
        ));
    }

    #[test]
    fn repro_all_fast_grid_diverts_from_the_goldens() {
        let Invocation::Run(run) = parse(&args(&["--grid", "fast"]), "results/figures").unwrap()
        else {
            panic!("expected run");
        };
        assert_eq!(run.out, PathBuf::from(DEFAULT_OUT).join("figures-fast"));
        // An explicit --out is always honoured.
        let Invocation::Run(run) = parse(
            &args(&["--grid", "fast", "--out", "elsewhere"]),
            "results/figures",
        )
        .unwrap() else {
            panic!("expected run");
        };
        assert_eq!(run.out, PathBuf::from("elsewhere"));
    }

    #[test]
    fn usage_names_every_study() {
        let text = usage("repro-all");
        for s in studies() {
            assert!(text.contains(s.name), "{}", s.name);
        }
    }
}
