//! Study `jumping` — experiments S3/S4: Class Jumping versus the plain
//! ε-binary-search on the same duals (Theorems 3 and 6 vs Theorem 2),
//! sweeping the class count `c` at fixed `n` — the regime where the paper's
//! `c log(c+m)` term matters.
//!
//! Deterministic part: per `(variant, c)` the probes each search needs and
//! the quality ratio `jumping accepted / eps accepted` (`<= 1` means Class
//! Jumping found an equal-or-smaller accepted guess). Timing part: both
//! searches' wall times.

use bss_core::{solve, Algorithm};
use bss_gen::FamilySpec;
use bss_instance::Variant;
use bss_json::{ToJson, Value};
use bss_report::{time_best_of, Table};

use super::{fmt_ms, fmt_ratio, int, int_list, Artifact, ArtifactFile, Grid, ReproConfig};

const JOBS: usize = 10_000;
const MACHINES: usize = 256;
const SEED: u64 = 11;
const EPS_LOG2: u32 = 12;

/// Class counts swept: `[m/2, m)` is the contended band where the searches
/// genuinely search; `m` and `2m` sit outside it (immediate acceptance).
fn class_counts(grid: Grid) -> Vec<usize> {
    let m = MACHINES;
    match grid {
        Grid::Fast => vec![m / 2, m],
        Grid::Full => vec![m / 2, (m * 5) / 8, (m * 3) / 4, (m * 7) / 8, m, 2 * m],
    }
}

/// Runs the study at `cfg`.
#[must_use]
pub fn run(cfg: &ReproConfig) -> Artifact {
    let cs = class_counts(cfg.grid);
    let mut cells = Vec::new();
    for variant in [Variant::Splittable, Variant::Preemptive] {
        for &c in &cs {
            cells.push((variant, c));
        }
    }
    let timing = cfg.timing;
    let rows = super::sweep(cfg, "jumping", cells, |(variant, c)| {
        // The swept `c` is the instance's class count verbatim — the CSV and
        // MANIFEST must describe exactly what was built.
        assert!(c <= JOBS, "class sweep exceeds the job count");
        let spec = FamilySpec::Contended {
            jobs: JOBS,
            classes: c,
            machines: MACHINES,
            seed: SEED,
        };
        let inst = spec.build();
        let eps_algo = Algorithm::EpsilonSearch { eps_log2: EPS_LOG2 };
        // Solves are deterministic, so the timed runs double as the
        // deterministic row's solves.
        let (jump, eps, times) = if timing {
            let (jump, tj) = time_best_of(2, || solve(&inst, variant, Algorithm::ThreeHalves));
            let (eps, te) = time_best_of(2, || solve(&inst, variant, eps_algo));
            (jump, eps, Some((fmt_ms(tj), fmt_ms(te))))
        } else {
            let jump = solve(&inst, variant, Algorithm::ThreeHalves);
            let eps = solve(&inst, variant, eps_algo);
            (jump, eps, None)
        };
        (
            vec![
                variant.to_string(),
                c.to_string(),
                jump.probes.to_string(),
                eps.probes.to_string(),
                fmt_ratio(jump.accepted / eps.accepted),
                fmt_ratio(jump.makespan / jump.certificate),
            ],
            times,
        )
    });

    let mut table = Table::new(&[
        "variant",
        "c",
        "jumping probes",
        "eps probes",
        "jumping accepted / eps accepted",
        "jumping makespan/certificate",
    ]);
    let mut times = Table::new(&["variant", "c", "jumping (ms)", "eps-search (ms)"]);
    for (row, t) in rows.into_iter().flatten() {
        if let Some((tj, te)) = t {
            times.row(&[&row[0], &row[1], &tj, &te]);
        }
        table.row(&row);
    }

    Artifact {
        study: "jumping",
        deterministic: vec![
            ArtifactFile::new("jumping.csv", table.to_csv(), true),
            ArtifactFile::new("jumping.txt", table.to_aligned(), true),
        ],
        timing: (!times.is_empty())
            .then(|| ArtifactFile::new("timing.csv", times.to_csv(), true))
            .into_iter()
            .collect(),
        params: Value::Object(vec![
            ("jobs".into(), int(JOBS)),
            ("machines".into(), int(MACHINES)),
            (
                "class_counts".into(),
                int_list(cs.iter().map(|&c| c as u64)),
            ),
            ("eps_log2".into(), int(EPS_LOG2 as usize)),
            (
                "family".into(),
                FamilySpec::Contended {
                    jobs: JOBS,
                    classes: cs[0],
                    machines: MACHINES,
                    seed: SEED,
                }
                .to_json_value(),
            ),
        ]),
    }
}
