//! Study `ratios` — experiments R1–R4: approximation quality against exact
//! optima and the Monma–Potts-style baseline.
//!
//! * R1/R2 (`r12.csv`): true ratios against the **exact** non-preemptive
//!   optimum on tiny instances. For relaxed variants `OPT_variant <=
//!   OPT_nonp`, so those rows *underestimate* the per-variant ratio; the
//!   non-preemptive rows are true ratios and the `guess_ok` column checks
//!   `accepted <= OPT` cell by cell.
//! * R3 (`r3.csv`): the preemptive portfolio against the Monma–Potts
//!   wrap-around baseline (claimed ratio `2 − 1/(⌊m/2⌋+1)`), swept over `m`.
//! * R4 (`r4.csv`): quality of the instance lower bound, `OPT / T_min`.
//!
//! All values are exact-rational ratios of single solves — fully
//! deterministic; this study has no timing part.

use bss_baselines::{exact_nonpreemptive, monma_potts, ExactLimits};
use bss_core::{solve, Algorithm};
use bss_gen::FamilySpec;
use bss_instance::{LowerBounds, Variant};
use bss_json::Value;
use bss_rational::Rational;
use bss_report::Table;

use super::{fmt_f64, fmt_ratio, int, int_list, Artifact, ArtifactFile, Grid, ReproConfig};

fn tiny_seeds(grid: Grid) -> u64 {
    match grid {
        Grid::Fast => 20,
        Grid::Full => 200,
    }
}

fn r3_machines(grid: Grid) -> Vec<usize> {
    match grid {
        Grid::Fast => vec![2, 4],
        Grid::Full => vec![2, 4, 8, 16],
    }
}

fn r3_seeds(grid: Grid) -> u64 {
    match grid {
        Grid::Fast => 2,
        Grid::Full => 5,
    }
}

/// Runs the study at `cfg`.
#[must_use]
pub fn run(cfg: &ReproConfig) -> Artifact {
    // ---- R1/R2 + R4: exact-optimum certification on tiny instances. ----
    let seeds: Vec<u64> = (0..tiny_seeds(cfg.grid)).collect();
    let cells = super::sweep(cfg, "ratios/r12", seeds.clone(), |seed| {
        let inst = FamilySpec::Tiny { seed }.build();
        let opt = exact_nonpreemptive(&inst, ExactLimits::default())?;
        let opt = Rational::from(opt);
        let mut rows = Vec::new();
        for variant in Variant::ALL {
            for (name, algo) in [
                ("2-approx", Algorithm::TwoApprox),
                ("3/2", Algorithm::ThreeHalves),
            ] {
                let sol = solve(&inst, variant, algo);
                rows.push(vec![
                    seed.to_string(),
                    variant.to_string(),
                    name.to_string(),
                    fmt_ratio(sol.makespan / opt),
                    (sol.accepted <= opt).to_string(),
                ]);
            }
        }
        let lb = LowerBounds::of(&inst).tmin(Variant::NonPreemptive);
        Some((rows, vec![seed.to_string(), fmt_ratio(opt / lb)]))
    });

    let mut r12 = Table::new(&["seed", "variant", "algorithm", "ratio_vs_opt", "guess_ok"]);
    let mut r4 = Table::new(&["seed", "opt_over_tmin"]);
    for cell in cells.into_iter().flatten().flatten() {
        for row in cell.0 {
            r12.row(&row);
        }
        r4.row(&cell.1);
    }

    // ---- R3: preemptive portfolio vs Monma–Potts, swept over m. ----
    let machines = r3_machines(cfg.grid);
    let r3_reps = r3_seeds(cfg.grid);
    let mut r3_cells = Vec::new();
    for &m in &machines {
        for seed in 0..r3_reps {
            r3_cells.push((m, seed));
        }
    }
    let r3_rows = super::sweep(cfg, "ratios/r3", r3_cells, |(m, seed)| {
        let inst = FamilySpec::Uniform {
            jobs: 60 * m,
            classes: 6 * m,
            machines: m,
            seed,
        }
        .build();
        let ours = solve(&inst, Variant::Preemptive, Algorithm::Portfolio);
        let mp = monma_potts(&inst);
        let lb = LowerBounds::of(&inst).tmin(Variant::Preemptive);
        let mp_bound = 2.0 - 1.0 / ((m / 2) as f64 + 1.0);
        vec![
            m.to_string(),
            seed.to_string(),
            fmt_ratio(ours.makespan / lb),
            fmt_ratio(mp.makespan() / lb),
            fmt_f64(mp_bound),
            fmt_ratio(mp.makespan() / ours.makespan),
        ]
    });
    let mut r3 = Table::new(&[
        "m",
        "seed",
        "ours_over_tmin",
        "mp_over_tmin",
        "mp_claimed_bound",
        "mp_over_ours",
    ]);
    for row in r3_rows.into_iter().flatten() {
        r3.row(&row);
    }

    let text = format!(
        "# R1/R2: true ratios vs exact OPT_nonp on tiny instances\n\n{}\n\
         # R3: preemptive portfolio vs Monma-Potts (claimed <= 2 - 1/(floor(m/2)+1))\n\n{}\n\
         # R4: lower-bound quality OPT/T_min (paper: <= 2)\n\n{}",
        r12.to_aligned(),
        r3.to_aligned(),
        r4.to_aligned()
    );

    Artifact {
        study: "ratios",
        deterministic: vec![
            ArtifactFile::new("r12.csv", r12.to_csv(), true),
            ArtifactFile::new("r3.csv", r3.to_csv(), true),
            ArtifactFile::new("r4.csv", r4.to_csv(), true),
            ArtifactFile::new("ratios.txt", text, true),
        ],
        timing: Vec::new(),
        params: Value::Object(vec![
            ("tiny_seeds".into(), int_list(seeds.iter().copied())),
            (
                "tiny_family".into(),
                Value::Str(
                    "bss_gen::tiny (n <= 9, m <= 4; exact oracle skips over-limit shapes)".into(),
                ),
            ),
            (
                "r3_machines".into(),
                int_list(machines.iter().map(|&m| m as u64)),
            ),
            ("r3_seeds".into(), int_list(0..r3_reps)),
            ("r3_shape".into(), Value::Str("uniform: n=60m, c=6m".into())),
            (
                "exact_limit_jobs".into(),
                int(ExactLimits::default().max_jobs),
            ),
        ]),
    }
}
