//! Study `epsilon` — Theorem 2's `(3/2+ε)` trade-off: probes grow linearly
//! in `log(1/ε)` while the certified ratio tightens toward 3/2.
//!
//! Deterministic part: one row per `(suite, variant, ε, seed)` cell with the
//! probe count and the exact ratios of that single solve. Timing part: the
//! same cells' wall times.

use bss_core::{solve, Algorithm};
use bss_gen::FamilySpec;
use bss_instance::Variant;
use bss_json::{ToJson, Value};
use bss_report::{time_best_of, Table};

use super::{fmt_ms, fmt_ratio, int, int_list, Artifact, ArtifactFile, Grid, ReproConfig};

const JOBS: usize = 10_000;
const MACHINES: usize = 8;

fn suites() -> [(&'static str, FamilySpec); 2] {
    [
        (
            "uniform",
            FamilySpec::Uniform {
                jobs: JOBS,
                classes: JOBS / 20,
                machines: MACHINES,
                seed: 0,
            },
        ),
        (
            // `c < m`: the contended regime where the searches genuinely
            // reject near `T_min` (see `bss_gen::contended`).
            "contended",
            FamilySpec::Contended {
                jobs: JOBS,
                classes: 6,
                machines: MACHINES,
                seed: 0,
            },
        ),
    ]
}

fn eps_grid(grid: Grid) -> Vec<u32> {
    match grid {
        Grid::Fast => (1..=3).collect(),
        Grid::Full => (1..=8).collect(),
    }
}

fn seeds(grid: Grid) -> Vec<u64> {
    match grid {
        Grid::Fast => vec![0],
        Grid::Full => vec![0, 1, 2],
    }
}

/// Runs the study at `cfg`.
#[must_use]
pub fn run(cfg: &ReproConfig) -> Artifact {
    let eps_grid = eps_grid(cfg.grid);
    let seeds = seeds(cfg.grid);
    let mut cells = Vec::new();
    for (suite, spec) in suites() {
        for variant in Variant::ALL {
            for &eps_log2 in &eps_grid {
                for &seed in &seeds {
                    cells.push((suite, spec.reseeded(seed), variant, eps_log2));
                }
            }
        }
    }

    let timing = cfg.timing;
    let rows = super::sweep(cfg, "epsilon", cells, |(suite, spec, variant, eps_log2)| {
        let inst = spec.build();
        let algo = Algorithm::EpsilonSearch { eps_log2 };
        // Solves are deterministic (proven by tests/repro_determinism.rs),
        // so a timed run doubles as the deterministic row's solve.
        let (sol, ms) = if timing {
            let (sol, dt) = time_best_of(2, || solve(&inst, variant, algo));
            (sol, Some(fmt_ms(dt)))
        } else {
            (solve(&inst, variant, algo), None)
        };
        (
            vec![
                suite.to_string(),
                variant.to_string(),
                format!("2^-{eps_log2}"),
                spec.seed().to_string(),
                inst.num_jobs().to_string(),
                sol.probes.to_string(),
                fmt_ratio(sol.makespan / sol.certificate),
                fmt_ratio(sol.makespan / sol.accepted),
            ],
            ms,
        )
    });

    let mut table = Table::new(&[
        "suite",
        "variant",
        "eps",
        "seed",
        "n",
        "probes",
        "makespan/certificate",
        "makespan/accepted",
    ]);
    let mut times = Table::new(&["suite", "variant", "eps", "seed", "time (ms, best of 2)"]);
    for (row, ms) in rows.into_iter().flatten() {
        if let Some(ms) = ms {
            times.row(&[&row[0], &row[1], &row[2], &row[3], &ms]);
        }
        table.row(&row);
    }

    Artifact {
        study: "epsilon",
        deterministic: vec![
            ArtifactFile::new("epsilon.csv", table.to_csv(), true),
            ArtifactFile::new("epsilon.txt", table.to_aligned(), true),
        ],
        timing: (!times.is_empty())
            .then(|| ArtifactFile::new("timing.csv", times.to_csv(), true))
            .into_iter()
            .collect(),
        params: Value::Object(vec![
            ("jobs".into(), int(JOBS)),
            ("machines".into(), int(MACHINES)),
            (
                "suites".into(),
                Value::Array(
                    suites()
                        .iter()
                        .map(|(_, spec)| spec.to_json_value())
                        .collect(),
                ),
            ),
            (
                "eps_log2".into(),
                int_list(eps_grid.iter().map(|&e| u64::from(e))),
            ),
            ("seeds".into(), int_list(seeds.iter().copied())),
        ]),
    }
}
