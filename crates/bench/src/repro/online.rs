//! Study `online` — the competitive-ratio scoreboard of the paper's
//! algorithms used as *re-solve-on-arrival policies*.
//!
//! An online workload (see [`bss_gen::online`]) reveals a gate-sized base
//! instance and a stream of arrivals/departures/reveals. The policy
//! re-solves the current instance after every event — the `(3/2+ε)` policy
//! through the warm-start path of `bss-core` (seeded with the previous
//! solve's dual bracket, widened by the event's load shift), the `2-approx`
//! policy cold. Each state's makespan is certified against the exact
//! branch-and-bound optimum of that state, so the reported per-trace
//! **competitive ratio** (worst state ratio) and mean ratio are true
//! ratios vs `OPT`, in the spirit of the online-scheduling guarantees of
//! Mäcker et al. (arXiv:1504.07066).
//!
//! The study doubles as an end-to-end warm-start regression: at every
//! event the warm re-solve is asserted bit-identical to the cold solve of
//! the same state, and the CSV carries both probe totals — the measured
//! warm-start saving is a committed, golden-diffed number.
//!
//! All cells are seeded single solves — fully deterministic; no timing
//! part. Every state stays inside the exact-oracle gate (`n <= 12`,
//! `m <= 4`, `c <= 6` — the simulator's job cap plus the tiny family's
//! shape), and the branch-and-bound must close on every state.

use bss_core::{solve, solve_warm, Algorithm, WarmStart};
use bss_exact::{solve_bss, ExactConfig, ExactStatus};
use bss_gen::online::OnlineSpec;
use bss_gen::FamilySpec;
use bss_instance::{Instance, Variant};
use bss_json::{ToJson, Value};
use bss_rational::Rational;
use bss_report::Table;

use super::{fmt_f64, fmt_ratio, int, int_list, Artifact, ArtifactFile, Grid, ReproConfig};

/// The fast seeds are a prefix of the full seeds, so every fast-grid CSV
/// row appears verbatim in the committed full-grid golden.
fn seeds(grid: Grid) -> u64 {
    match grid {
        Grid::Fast => 6,
        Grid::Full => 32,
    }
}

/// Events per trace (both grids — the fast grid subsets by seed only).
const EVENTS: usize = 8;

/// Job cap keeping every state inside the exact-oracle gate.
const MAX_JOBS: usize = 12;

/// `ε = 2^-6`, the workspace's usual `(3/2+ε)` operating point.
const EPS_LOG2: u32 = 6;

/// The online cell over a tiny base: arrival-heavy with departures and
/// reveals, capped at the oracle gate.
fn spec(seed: u64) -> OnlineSpec {
    let mut s = OnlineSpec::poisson_like(FamilySpec::Tiny { seed }, EVENTS, seed);
    s.job_range = (1, 15);
    s.max_jobs = MAX_JOBS;
    s
}

/// Per-trace accounting of one policy on one variant.
struct PolicyRun {
    comp_ratio: Rational,
    ratio_sum: f64,
    warm_probes: usize,
    cold_probes: usize,
}

/// Re-solves every state with `algo`, warm-starting when the algorithm has
/// a warm form, and certifies each state against `opts`.
fn run_policy(
    states: &[Instance],
    opts: &[Rational],
    variant: Variant,
    algo: Algorithm,
) -> PolicyRun {
    let mut acc = PolicyRun {
        comp_ratio: Rational::ONE,
        ratio_sum: 0.0,
        warm_probes: 0,
        cold_probes: 0,
    };
    let mut prev: Option<(WarmStart, u64)> = None;
    for (state, &opt) in states.iter().zip(opts) {
        let cold = solve(state, variant, algo);
        let load = state.total_load_once();
        let sol = match prev {
            None => {
                // State 0 has no previous bracket: both policies pay the
                // cold search.
                acc.warm_probes += cold.probes;
                acc.cold_probes += cold.probes;
                cold
            }
            Some((hint, prev_load)) => {
                let hint = hint.widen_by_load_shift(
                    u128::from(prev_load),
                    u128::from(load),
                    state.machines(),
                );
                let (warm, stats) = solve_warm(state, variant, algo, &hint);
                // The warm path must be invisible in everything but probes.
                assert_eq!(warm.makespan, cold.makespan, "warm/cold divergence");
                assert_eq!(warm.accepted, cold.accepted, "warm/cold divergence");
                assert_eq!(warm.certificate, cold.certificate, "warm/cold divergence");
                acc.warm_probes += if stats.warmed {
                    stats.probes
                } else {
                    cold.probes
                };
                acc.cold_probes += cold.probes;
                warm
            }
        };
        let ratio = sol.makespan / opt;
        assert!(
            ratio >= Rational::ONE,
            "{variant}: achieved {} below OPT {opt}",
            sol.makespan
        );
        acc.comp_ratio = acc.comp_ratio.max(ratio);
        acc.ratio_sum += ratio.to_f64();
        prev = Some((WarmStart::of(&sol), load));
    }
    acc
}

/// The policies on the scoreboard, with their stable CSV names.
const POLICIES: [(&str, Algorithm); 2] = [
    ("2-approx", Algorithm::TwoApprox),
    ("3/2+eps", Algorithm::EpsilonSearch { eps_log2: EPS_LOG2 }),
];

/// Runs the study at `cfg`.
#[must_use]
pub fn run(cfg: &ReproConfig) -> Artifact {
    let seed_list: Vec<u64> = (0..seeds(cfg.grid)).collect();
    let exact_cfg = ExactConfig::default();

    // One parallel cell per seed; each cell contributes one row per
    // (variant, policy) in a fixed order, so the assembled table is
    // independent of the thread count.
    let cells = super::sweep(cfg, "online", seed_list.clone(), move |seed| {
        let trace = spec(seed).build();
        let states: Vec<Instance> = (0..=trace.events.len())
            .map(|k| trace.state_after(k))
            .collect();
        let mut rows = Vec::new();
        for variant in [
            Variant::Splittable,
            Variant::Preemptive,
            Variant::NonPreemptive,
        ] {
            let opts: Vec<Rational> = states
                .iter()
                .map(|state| {
                    let ex = solve_bss(state, variant, &exact_cfg)
                        .expect("capped online states are within the oracle's size limits");
                    assert!(
                        ex.status == ExactStatus::Closed,
                        "{variant} seed {seed}: branch-and-bound did not close"
                    );
                    ex.upper
                })
                .collect();
            for (name, algo) in POLICIES {
                let p = run_policy(&states, &opts, variant, algo);
                rows.push(vec![
                    seed.to_string(),
                    variant.to_string(),
                    name.to_string(),
                    states.len().to_string(),
                    fmt_ratio(p.comp_ratio),
                    fmt_f64(p.ratio_sum / states.len() as f64),
                    p.warm_probes.to_string(),
                    p.cold_probes.to_string(),
                ]);
            }
        }
        rows
    });

    let mut table = Table::new(&[
        "seed",
        "variant",
        "policy",
        "states",
        "comp_ratio",
        "mean_ratio",
        "warm_probes",
        "cold_probes",
    ]);
    // (variant, policy) -> (worst comp ratio, warm probe sum, cold probe
    // sum, trace count); keyed in first-seen order, fixed by the row order.
    let mut summary: Vec<(String, String, f64, u64, u64, u64)> = Vec::new();
    for row in cells.into_iter().flatten().flatten() {
        let comp: f64 = row[4].parse().expect("fmt_ratio emits parseable decimals");
        let warm: u64 = row[6].parse().expect("probe counts are integers");
        let cold: u64 = row[7].parse().expect("probe counts are integers");
        match summary.iter_mut().find(|s| s.0 == row[1] && s.1 == row[2]) {
            Some(s) => {
                s.2 = s.2.max(comp);
                s.3 += warm;
                s.4 += cold;
                s.5 += 1;
            }
            None => summary.push((row[1].clone(), row[2].clone(), comp, warm, cold, 1)),
        }
        table.row(&row);
    }

    let mut agg = Table::new(&[
        "variant",
        "policy",
        "worst_comp_ratio",
        "warm_probes",
        "cold_probes",
        "probe_saving",
    ]);
    for (variant, policy, worst, warm, cold, _) in &summary {
        let saving = if *cold == 0 {
            0.0
        } else {
            1.0 - (*warm as f64) / (*cold as f64)
        };
        agg.row(&[
            variant.clone(),
            policy.clone(),
            fmt_f64(*worst),
            warm.to_string(),
            cold.to_string(),
            fmt_f64(saving),
        ]);
    }

    let text = format!(
        "# online: competitive ratio of re-solve-on-arrival policies vs the exact OPT\n\
         # of every revealed state; warm_probes counts the dual tests the warm-start\n\
         # path actually ran (cold_probes is what re-solving from scratch costs).\n\
         # Warm and cold solutions are asserted bit-identical at every state.\n\n{}\n\
         # per variant x policy: worst competitive ratio and total probe saving\n\n{}",
        table.to_aligned(),
        agg.to_aligned()
    );

    Artifact {
        study: "online",
        deterministic: vec![
            ArtifactFile::new("online.csv", table.to_csv(), true),
            ArtifactFile::new("online.txt", text, true),
        ],
        timing: Vec::new(),
        params: Value::Object(vec![
            ("seeds".into(), int_list(seed_list.iter().copied())),
            ("events".into(), int(EVENTS)),
            ("max_jobs".into(), int(MAX_JOBS)),
            ("spec".into(), spec(0).to_json_value()),
            (
                "policies".into(),
                Value::Array(
                    POLICIES
                        .iter()
                        .map(|&(name, _)| Value::Str(name.into()))
                        .collect(),
                ),
            ),
            (
                "exact_max_nodes".into(),
                Value::Int(i128::from(ExactConfig::default().max_nodes)),
            ),
        ]),
    }
}
