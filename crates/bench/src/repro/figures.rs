//! Study `figures` — Figures 1–13 of the paper as ASCII Gantt charts
//! produced by the instrumented algorithms on the handcrafted
//! figure-shaped instances of `bss_gen::paper`.
//!
//! Entirely deterministic (the instances are fixed and the duals are
//! seedless), so every file is grid-insensitive and byte-diffed by even the
//! fast CI job. No timing part.

use bss_core::{preemptive, splittable, two_approx, Trace};
use bss_instance::{Instance, LowerBounds, Variant};
use bss_json::Value;
use bss_rational::Rational;
use bss_report::{render_gantt, GanttOptions};
use bss_schedule::Schedule;

use super::{Artifact, ArtifactFile, ReproConfig};

fn opts(t: Rational) -> GanttOptions {
    GanttOptions {
        reference_t: Some(t),
        ..GanttOptions::default()
    }
}

struct Figures {
    files: Vec<ArtifactFile>,
}

impl Figures {
    fn push(&mut self, name: &str, caption: &str, body: &str) {
        self.files.push(ArtifactFile::new(
            &format!("{name}.txt"),
            format!("{caption}\n\n{body}"),
            false,
        ));
    }

    fn push_steps(
        &mut self,
        name_prefix: &str,
        caption: &str,
        inst: &Instance,
        t: Rational,
        trace: &Trace,
        labels: &[(&str, &str)], // (suffix, paper caption)
    ) {
        for ((suffix, paper), (step, snap)) in labels.iter().zip(trace.steps()) {
            let body = render_gantt(snap, inst, &opts(t));
            self.push(
                &format!("{name_prefix}{suffix}"),
                &format!("{caption}\n{paper}\n[algorithm step: {step}; T = {t}]"),
                &body,
            );
        }
    }
}

/// Finds an accepted guess for a dual via the certified window.
fn accepted_guess(
    inst: &Instance,
    variant: Variant,
    accepts: impl Fn(Rational) -> bool,
) -> Rational {
    let t_min = LowerBounds::of(inst).tmin(variant);
    let mut lo = t_min;
    let mut hi = t_min * 2u64;
    if accepts(lo) {
        return lo;
    }
    for _ in 0..24 {
        let mid = (lo + hi).half();
        if accepts(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

/// Runs the study (the configuration carries no knobs for it — the paper's
/// figures are fixed).
#[must_use]
pub fn run(_cfg: &ReproConfig) -> Artifact {
    let mut out = Figures { files: Vec::new() };

    // Figures 1(a)/1(b): splittable dual steps.
    {
        let inst = bss_gen::paper::fig1_splittable();
        let t = accepted_guess(&inst, Variant::Splittable, |t| {
            splittable::accepts(&inst, t)
        });
        let mut trace = Trace::enabled();
        splittable::dual_traced(&inst, t, &mut trace).expect("accepted");
        out.push_steps(
            "fig1",
            "Figure 1: the splittable 3/2-dual (I_exp = {A..D}, I_chp = {E..H})",
            &inst,
            t,
            &trace,
            &[
                ("a", "(a) Situation after step (1)"),
                ("b", "(b) Situation after step (2)"),
            ],
        );
    }

    // Figure 2: Algorithm 2 on a nice instance (alpha' mode).
    {
        let inst = bss_gen::paper::fig2_nice_preemptive();
        let t = accepted_guess(&inst, Variant::Preemptive, |t| {
            preemptive::is_nice(&inst, t)
                && preemptive::nice_dual(&inst, t, preemptive::CountMode::AlphaPrime).is_some()
        });
        let s =
            preemptive::nice_dual(&inst, t, preemptive::CountMode::AlphaPrime).expect("accepted");
        out.push(
            "fig2",
            &format!("Figure 2: Algorithm 2 on a nice instance (I+exp = {{A, B}}); T = {t}"),
            &render_gantt(&s, &inst, &opts(t)),
        );
    }

    // Figures 3, 4, 9: the general preemptive dual, step snapshots.
    {
        let inst = bss_gen::paper::fig3_general_preemptive();
        let t = accepted_guess(&inst, Variant::Preemptive, |t| {
            preemptive::accepts(&inst, t, preemptive::CountMode::AlphaPrime)
        });
        let mut trace = Trace::enabled();
        preemptive::dual(&inst, t, preemptive::CountMode::AlphaPrime, &mut trace)
            .expect("accepted");
        out.push_steps(
            "fig",
            "Figures 3/4/9: the general preemptive 3/2-dual (Algorithm 3)",
            &inst,
            t,
            &trace,
            &[
                (
                    "3",
                    "Figure 3: situation after step 1 (large machines for I0exp)",
                ),
                (
                    "4",
                    "Figure 4: the bottom of the large machines (K+/K− placement)",
                ),
                ("9", "Figure 9: completed schedule (Lemma 10)"),
            ],
        );
    }

    // Figure 5: the gamma-modified wrapping (Class Jumping machinery).
    {
        let inst = bss_gen::paper::fig5_gamma_preemptive();
        let t = accepted_guess(&inst, Variant::Preemptive, |t| {
            preemptive::is_nice(&inst, t)
                && preemptive::nice_dual(&inst, t, preemptive::CountMode::Gamma).is_some()
        });
        let s = preemptive::nice_dual(&inst, t, preemptive::CountMode::Gamma).expect("accepted");
        out.push(
            "fig5",
            &format!("Figure 5: gamma-modified Algorithm 2 (Section 4.4); T = {t}"),
            &render_gantt(&s, &inst, &opts(t)),
        );
    }

    // Figure 6: a wrap template's anatomy.
    {
        use bss_instance::InstanceBuilder;
        use bss_wrap::{wrap, Template, WrapSequence};
        let mut b = InstanceBuilder::new(4);
        b.add_batch(2, &[6, 7, 8, 3]);
        let inst = b.build().expect("figure instance is valid");
        let t = Rational::from(12u64);
        let template = Template::from_gaps(vec![
            (0, Rational::from(3u64), Rational::from(12u64)),
            (1, Rational::from(2u64), Rational::from(9u64)),
            (2, Rational::from(4u64), Rational::from(11u64)),
            (3, Rational::from(2u64), Rational::from(6u64)),
        ]);
        let mut q = WrapSequence::new();
        q.push_batch(
            0,
            Rational::from(2u64),
            inst.class_jobs(0)
                .iter()
                .map(|&j| (j, Rational::from(inst.job(j).time))),
        );
        let placed = wrap(&q, &template, inst.setups(), 4).expect("fits");
        let s: Schedule = placed.expand().expect("in range");
        out.push(
            "fig6",
            "Figure 6: a wrap template with |omega| = 4 gaps, filled by Wrap\n\
             (gaps were [3,12) [2,9) [4,11) [2,6); moved setups sit below gaps)",
            &render_gantt(&s, &inst, &opts(t)),
        );
    }

    // Figure 7: the next-fit 2-approximation, before/after repair.
    {
        let inst = bss_gen::paper::fig7_next_fit();
        let t = LowerBounds::of(&inst).tmin(Variant::NonPreemptive);
        let mut trace = Trace::enabled();
        let _ = two_approx::greedy_two_approx(&inst, &mut trace);
        out.push_steps(
            "fig7",
            "Figure 7: next-fit 2-approximation with m = c = 5 (threshold T_min)",
            &inst,
            t,
            &trace,
            &[
                (
                    "-left",
                    "left: next-fit schedule, items crossing T_min hatched",
                ),
                (
                    "-right",
                    "right: after moving border items (with fresh setups)",
                ),
            ],
        );
    }

    // Figure 8: the Lemma 11 large-machine placement.
    {
        let inst = bss_gen::paper::fig8_lemma11();
        let t = accepted_guess(&inst, Variant::Preemptive, |t| {
            preemptive::accepts(&inst, t, preemptive::CountMode::AlphaPrime)
        });
        let mut trace = Trace::enabled();
        preemptive::dual(&inst, t, preemptive::CountMode::AlphaPrime, &mut trace)
            .expect("accepted");
        if let Some((_, snap)) = trace.steps().first() {
            out.push(
                "fig8",
                &format!(
                    "Figure 8: modification of a large machine (Lemma 11): the I0exp\n\
                     batch starts at T/2, the band below stays free; T = {t}"
                ),
                &render_gantt(snap, &inst, &opts(t)),
            );
        }
    }

    // Figures 10-13: the non-preemptive dual, steps 1-4.
    {
        let inst = bss_gen::paper::fig10_nonpreemptive();
        let t_int = {
            let t_min = LowerBounds::of(&inst).tmin(Variant::NonPreemptive).ceil() as u64;
            let mut lo = t_min;
            let mut hi = 2 * t_min;
            if bss_core::nonpreemptive::accepts(&inst, lo) {
                lo
            } else {
                while hi - lo > 1 {
                    let mid = lo + (hi - lo) / 2;
                    if bss_core::nonpreemptive::accepts(&inst, mid) {
                        hi = mid;
                    } else {
                        lo = mid;
                    }
                }
                hi
            }
        };
        let t = Rational::from(t_int);
        let mut trace = Trace::enabled();
        bss_core::nonpreemptive::dual(&inst, t_int, &mut trace).expect("accepted");
        out.push_steps(
            "fig1",
            "Figures 10-13: the non-preemptive 3/2-dual (Algorithm 6)",
            &inst,
            t,
            &trace,
            &[
                (
                    "0",
                    "Figure 10: after step 1 (schedule L: J+, expensive wraps, K wraps)",
                ),
                (
                    "1",
                    "Figure 11: after step 2 (fill own machines, splits allowed)",
                ),
                (
                    "2",
                    "Figure 12: after step 3 (greedy fill, items may cross T)",
                ),
                (
                    "3",
                    "Figure 13: after step 4 (repair: integral jobs, moved items)",
                ),
            ],
        );
    }

    let names = Value::Array(
        out.files
            .iter()
            .map(|f| Value::Str(f.name.clone()))
            .collect(),
    );
    Artifact {
        study: "figures",
        deterministic: out.files,
        timing: Vec::new(),
        params: Value::Object(vec![
            (
                "instances".into(),
                Value::Str("bss_gen::paper handcrafted figure instances (seedless)".into()),
            ),
            ("figures".into(), names),
        ]),
    }
}
