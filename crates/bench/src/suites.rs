//! Instance suites shared by the Criterion benches and the repro binaries.

use bss_instance::Instance;

/// A named family of instances for a sweep cell.
pub struct Suite {
    /// Short identifier (used in table rows and file names).
    pub name: &'static str,
    /// The instances.
    pub instances: Vec<Instance>,
}

/// The Table-1 evaluation suites: uniform, small-batch, single-job-batch and
/// expensive-setup regimes, `reps` instances each.
#[must_use]
pub fn table1_suites(n: usize, c: usize, m: usize, reps: u64) -> Vec<Suite> {
    vec![
        Suite {
            name: "uniform",
            instances: (0..reps).map(|s| bss_gen::uniform(n, c, m, s)).collect(),
        },
        Suite {
            name: "small-batches",
            instances: (0..reps).map(|s| bss_gen::small_batches(n, m, s)).collect(),
        },
        Suite {
            name: "single-job",
            instances: (0..reps)
                .map(|s| bss_gen::single_job_batches(n, m, s))
                .collect(),
        },
        Suite {
            name: "expensive",
            instances: (0..reps)
                .map(|s| bss_gen::expensive_setups(n, m, s))
                .collect(),
        },
        Suite {
            name: "zipf",
            instances: (0..reps)
                .map(|s| bss_gen::zipf_classes(n, c, m, s))
                .collect(),
        },
    ]
}

/// Geometric sweep of job counts for the scaling studies.
#[must_use]
pub fn n_sweep(from_log2: u32, to_log2: u32) -> Vec<usize> {
    (from_log2..=to_log2).map(|k| 1usize << k).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_have_requested_sizes() {
        let suites = table1_suites(40, 6, 3, 4);
        assert_eq!(suites.len(), 5);
        for s in &suites {
            assert_eq!(s.instances.len(), 4);
            for inst in &s.instances {
                assert_eq!(inst.machines(), 3);
            }
        }
    }

    #[test]
    fn n_sweep_is_geometric() {
        assert_eq!(n_sweep(4, 7), vec![16, 32, 64, 128]);
    }
}
