//! Instance suites shared by the Criterion benches and the repro studies.
//!
//! A suite is a list of [`FamilySpec`] cells rather than pre-built
//! instances: the repro pipeline records the specs in its MANIFEST (exact
//! family parameters and seeds per artifact) and builds instances on demand.

use bss_gen::FamilySpec;
use bss_instance::Instance;

/// A named family of seeded instance cells for a sweep.
pub struct Suite {
    /// Short identifier (used in table rows, file names and the MANIFEST).
    pub name: &'static str,
    /// The fully-seeded cells.
    pub specs: Vec<FamilySpec>,
}

impl Suite {
    /// Builds every cell's instance, in spec order.
    #[must_use]
    pub fn instances(&self) -> Vec<Instance> {
        self.specs.iter().map(FamilySpec::build).collect()
    }
}

/// The Table-1 evaluation suites: uniform, small-batch, single-job-batch,
/// expensive-setup and heavy-tailed regimes, seeds `0..reps` each.
#[must_use]
pub fn table1_suites(n: usize, c: usize, m: usize, reps: u64) -> Vec<Suite> {
    let seeds = |spec: FamilySpec| (0..reps).map(|s| spec.reseeded(s)).collect();
    vec![
        Suite {
            name: "uniform",
            specs: seeds(FamilySpec::Uniform {
                jobs: n,
                classes: c,
                machines: m,
                seed: 0,
            }),
        },
        Suite {
            name: "small-batches",
            specs: seeds(FamilySpec::SmallBatches {
                jobs: n,
                machines: m,
                seed: 0,
            }),
        },
        Suite {
            name: "single-job",
            specs: seeds(FamilySpec::SingleJob {
                jobs: n,
                machines: m,
                seed: 0,
            }),
        },
        Suite {
            name: "expensive",
            specs: seeds(FamilySpec::ExpensiveSetups {
                jobs: n,
                machines: m,
                seed: 0,
            }),
        },
        Suite {
            name: "zipf",
            specs: seeds(FamilySpec::ZipfClasses {
                jobs: n,
                classes: c,
                machines: m,
                seed: 0,
            }),
        },
    ]
}

/// Geometric sweep of job counts for the scaling studies.
#[must_use]
pub fn n_sweep(from_log2: u32, to_log2: u32) -> Vec<usize> {
    (from_log2..=to_log2).map(|k| 1usize << k).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_have_requested_sizes() {
        let suites = table1_suites(40, 6, 3, 4);
        assert_eq!(suites.len(), 5);
        for s in &suites {
            assert_eq!(s.specs.len(), 4);
            for (seed, (spec, inst)) in s.specs.iter().zip(s.instances()).enumerate() {
                assert_eq!(spec.seed(), seed as u64);
                assert_eq!(inst.machines(), 3);
                assert_eq!(spec.build(), inst);
            }
        }
    }

    #[test]
    fn n_sweep_is_geometric() {
        assert_eq!(n_sweep(4, 7), vec![16, 32, 64, 128]);
    }
}
