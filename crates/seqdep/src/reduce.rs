//! The two reductions bridging batch setups and sequence-dependent setups.
//!
//! The Jansen–Maack–Mäcker line (arXiv:1809.10428) treats batch setups as
//! the **uniform** special case of sequence-dependent setups: switching into
//! class `c'` costs `s(c')` no matter where the machine comes from,
//! `s(c, c') = s(c')`. Two first-class adapters make that bridge concrete:
//!
//! * [`to_uniform_instance`] — `SeqDepInstance → Instance` for instances
//!   that *are* uniform: bit-exact on setups and per-class work (one job of
//!   time `P_j` per class), solvable by the paper's near-linear algorithms.
//!   For a uniform instance the two models' optima **coincide exactly**
//!   (see the guarantee accounting below), so a `ρ`-approximation for the
//!   non-preemptive batch-setup problem is a `ρ`-approximation here.
//! * [`from_instance`] — `Instance → SeqDepInstance` for heuristic
//!   cross-checks: classes aggregate to single batches
//!   (`class_proc_j = P(C_j)`, `initial_j = switch(·, j) = s_j`), which
//!   *restricts* the batch-setup problem (a class can no longer split into
//!   several batches), so any seqdep-side schedule maps to a feasible
//!   non-preemptive schedule of the original with the same makespan, and
//!   seqdep makespans upper-bound `OPT_nonp`.
//!
//! # Guarantee accounting
//!
//! For a **uniform** `SeqDepInstance` `I` and its reduction `R(I)`:
//!
//! * any seqdep assignment (orders per machine) yields a non-preemptive
//!   schedule of `R(I)` with the *same* machine completion times — the order
//!   within a machine does not matter under uniform setups;
//! * any feasible non-preemptive schedule of `R(I)` runs each class's single
//!   job contiguously on one machine; dropping idle time gives a seqdep
//!   assignment whose makespan is no larger.
//!
//! Hence `OPT_seqdep(I) = OPT_nonp(R(I))` and approximation guarantees
//! transfer **unchanged** in both directions. [`orders_from_schedule`]
//! performs the schedule-side mapping back.

use bss_instance::{Instance, InstanceBuilder, InstanceError};
use bss_schedule::{ItemKind, Schedule};

use crate::SeqDepInstance;

/// Why a [`SeqDepInstance`] cannot be reduced to a batch-setup [`Instance`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReductionError {
    /// `switch[from][to] != initial[to]`: the instance is genuinely
    /// sequence-dependent.
    NonUniform {
        /// Source class of the offending entry.
        from: usize,
        /// Target class of the offending entry.
        to: usize,
    },
    /// `switch[class][class] != 0`: the canonical form requires a zero
    /// diagonal (a class never switches to itself), without which the
    /// round-trip cannot be bit-exact.
    NonZeroDiagonal {
        /// The offending class.
        class: usize,
    },
    /// `initial[class] == 0`: the batch-setup model requires `s_i >= 1`.
    ZeroSetup {
        /// The offending class.
        class: usize,
    },
    /// `class_proc[class] == 0`: the batch-setup model requires `t_j >= 1`.
    ZeroWork {
        /// The offending class.
        class: usize,
    },
    /// The reduced data violates the batch-setup model (e.g. the total-load
    /// cap).
    Model(InstanceError),
}

impl core::fmt::Display for ReductionError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ReductionError::NonUniform { from, to } => write!(
                f,
                "switch({from}, {to}) differs from initial({to}): not the uniform special case"
            ),
            ReductionError::NonZeroDiagonal { class } => {
                write!(f, "switch({class}, {class}) is non-zero (canonical form)")
            }
            ReductionError::ZeroSetup { class } => {
                write!(
                    f,
                    "class {class} has zero initial setup (model needs s >= 1)"
                )
            }
            ReductionError::ZeroWork { class } => {
                write!(f, "class {class} has zero work (model needs t >= 1)")
            }
            ReductionError::Model(e) => write!(f, "reduced instance invalid: {e}"),
        }
    }
}

impl std::error::Error for ReductionError {}

/// `true` iff `inst` is the uniform special case `s(c, c') = s(c')` in
/// canonical form (zero diagonal) with representable setups and work.
#[must_use]
pub fn is_uniform(inst: &SeqDepInstance) -> bool {
    to_uniform_instance(inst).is_ok()
}

/// Reduces a *uniform* sequence-dependent instance to a batch-setup
/// [`Instance`]: class `j` keeps machine count `m`, setup `initial_j`, and a
/// single job of time `class_proc_j` (job id = class id). Bit-exact: the
/// round trip through [`from_instance`] reproduces `inst`.
///
/// # Errors
/// [`ReductionError`] when the instance is not uniform, not canonical, or
/// not representable in the batch-setup model (`s, t >= 1`).
pub fn to_uniform_instance(inst: &SeqDepInstance) -> Result<Instance, ReductionError> {
    let c = inst.num_classes();
    // The streamed uniform backing is uniform with a zero diagonal *by
    // construction*: only the per-class positivity checks remain, and the
    // `O(c²)` matrix scan is skipped entirely.
    let scan_matrix = !inst.has_uniform_backing();
    for j in 0..c {
        if scan_matrix && inst.switch(j, j) != 0 {
            return Err(ReductionError::NonZeroDiagonal { class: j });
        }
        if inst.initial(j) == 0 {
            return Err(ReductionError::ZeroSetup { class: j });
        }
        if inst.class_proc(j) == 0 {
            return Err(ReductionError::ZeroWork { class: j });
        }
        if scan_matrix {
            for i in 0..c {
                if i != j && inst.switch(i, j) != inst.initial(j) {
                    return Err(ReductionError::NonUniform { from: i, to: j });
                }
            }
        }
    }
    let mut b = InstanceBuilder::new(inst.machines());
    for j in 0..c {
        let class = b.add_class(inst.initial(j));
        b.add_job(class, inst.class_proc(j));
    }
    b.build().map_err(ReductionError::Model)
}

/// Embeds a batch-setup [`Instance`] into the sequence-dependent model:
/// class `j` aggregates to one batch of work `P(C_j)` with uniform entry
/// cost `s_j` from everywhere (zero diagonal).
///
/// The embedding *restricts* the original problem — a class can no longer be
/// split into several batches — so seqdep-side makespans are upper bounds on
/// the non-preemptive batch-setup optimum, which is what makes it useful as
/// a heuristic cross-check.
///
/// Runs in `O(c)` time and memory: the uniform switch matrix is *streamed*
/// from the setup vector ([`SeqDepInstance::uniform`]), never materialized —
/// at `c = 2500` that is two length-`c` vectors instead of a 50 MB matrix.
#[must_use]
pub fn from_instance(inst: &Instance) -> SeqDepInstance {
    let c = inst.num_classes();
    let initial: Vec<u64> = (0..c).map(|j| inst.setup(j)).collect();
    let class_proc: Vec<u64> = (0..c).map(|j| inst.class_proc(j)).collect();
    SeqDepInstance::uniform(inst.machines(), initial, class_proc)
        .expect("a valid Instance embeds within the seqdep caps (same 2^60 budget)")
}

/// Maps a feasible **non-preemptive** schedule of a reduced instance (one
/// job per class, job id = class id) back to per-machine class orders:
/// machine `u`'s order is its job pieces sorted by start time.
///
/// The orders satisfy `inst.makespan(orders) <= schedule.makespan()` (idle
/// time is dropped; under uniform setups the order itself is cost-free).
#[must_use]
pub fn orders_from_schedule(schedule: &Schedule, reduced: &Instance) -> Vec<Vec<usize>> {
    let mut orders: Vec<Vec<usize>> = vec![Vec::new(); schedule.machines()];
    let mut spans: Vec<(usize, bss_rational::Rational, usize)> = schedule
        .placements()
        .iter()
        .filter_map(|p| match p.kind {
            ItemKind::Piece { job, .. } => Some((p.machine, p.start, reduced.job(job).class)),
            ItemKind::Setup(_) => None,
        })
        .collect();
    spans.sort_unstable_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
    for (machine, _, class) in spans {
        orders[machine].push(class);
    }
    // Drop idle machines from the tail so the orders stay within m even when
    // the schedule object carries more machine slots than the instance.
    while matches!(orders.last(), Some(o) if o.is_empty()) {
        orders.pop();
    }
    orders
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_seqdep() -> SeqDepInstance {
        // 3 classes, uniform entry costs 4/2/5, work 7/3/9, 2 machines.
        let setups = [4u64, 2, 5];
        let switch: Vec<Vec<u64>> = (0..3)
            .map(|i| (0..3).map(|j| if i == j { 0 } else { setups[j] }).collect())
            .collect();
        SeqDepInstance::new(2, setups.to_vec(), switch, vec![7, 3, 9]).unwrap()
    }

    #[test]
    fn uniform_reduction_is_bit_exact() {
        let sd = uniform_seqdep();
        let reduced = to_uniform_instance(&sd).unwrap();
        assert_eq!(reduced.machines(), 2);
        assert_eq!(reduced.num_classes(), 3);
        for j in 0..3 {
            assert_eq!(reduced.setup(j), sd.initial(j));
            assert_eq!(reduced.class_proc(j), sd.class_proc(j));
            assert_eq!(reduced.class_jobs(j), &[j]);
        }
        // Round trip reproduces the instance exactly.
        assert_eq!(from_instance(&reduced), sd);
    }

    #[test]
    fn non_uniform_rejected() {
        let mut bad = vec![vec![0, 2, 5], vec![4, 0, 5], vec![4, 2, 0]];
        bad[1][2] = 6; // breaks uniformity
        let sd = SeqDepInstance::new(2, vec![4, 2, 5], bad, vec![7, 3, 9]).unwrap();
        assert_eq!(
            to_uniform_instance(&sd).unwrap_err(),
            ReductionError::NonUniform { from: 1, to: 2 }
        );
        assert!(!is_uniform(&sd));
    }

    #[test]
    fn canonical_and_model_violations_rejected() {
        // Non-zero diagonal.
        let sd =
            SeqDepInstance::new(1, vec![1, 1], vec![vec![3, 1], vec![1, 0]], vec![1, 1]).unwrap();
        assert_eq!(
            to_uniform_instance(&sd).unwrap_err(),
            ReductionError::NonZeroDiagonal { class: 0 }
        );
        // Zero work (TSP-style classes are not representable).
        let sd = SeqDepInstance::from_tsp_path(vec![vec![0, 1], vec![1, 0]]).unwrap();
        assert_eq!(
            to_uniform_instance(&sd).unwrap_err(),
            ReductionError::ZeroWork { class: 0 }
        );
        // Zero initial setup.
        let sd =
            SeqDepInstance::new(1, vec![0, 1], vec![vec![0, 1], vec![0, 0]], vec![1, 1]).unwrap();
        assert_eq!(
            to_uniform_instance(&sd).unwrap_err(),
            ReductionError::ZeroSetup { class: 0 }
        );
    }

    #[test]
    fn orders_round_trip_through_schedules() {
        use bss_rational::Rational;
        let sd = uniform_seqdep();
        let reduced = to_uniform_instance(&sd).unwrap();
        // Hand-build a contiguous schedule: machine 0 runs classes 0 then 2,
        // machine 1 runs class 1.
        let mut s = Schedule::new(2);
        let mut t = Rational::ZERO;
        for class in [0usize, 2] {
            let setup = Rational::from(reduced.setup(class));
            s.push_setup(0, t, setup, class);
            t += setup;
            let len = Rational::from(reduced.class_proc(class));
            s.push_piece(0, t, len, class, class);
            t += len;
        }
        s.push_setup(1, Rational::ZERO, Rational::from(2u64), 1);
        s.push_piece(1, Rational::from(2u64), Rational::from(3u64), 1, 1);

        let orders = orders_from_schedule(&s, &reduced);
        assert_eq!(orders, vec![vec![0, 2], vec![1]]);
        assert_eq!(Rational::from(sd.makespan(&orders)), s.makespan());
    }
}
