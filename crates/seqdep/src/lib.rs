//! Sequence-dependent batch setups — the extension sketched in the paper's
//! conclusion, grown into a solver crate.
//!
//! Setup times are given as a matrix `S ∈ N^{c×c}` of values `s(i1, i2)`:
//! switching a machine from class `i1` to class `i2` costs `s(i1, i2)`, and a
//! separate vector gives the initial setup of a fresh machine. The paper
//! observes the natural reduction: with `m = 1`, one zero-length job per
//! class, and setups chosen as inter-city distances, minimizing the makespan
//! *is* the path-version TSP — so the problem is APX-hard in general and this
//! crate provides:
//!
//! * the model and a makespan evaluator ([`SeqDepInstance`]), with
//!   error-returning constructors and a JSON wire format;
//! * an exact Held–Karp oracle for one machine and small `c`
//!   ([`exact_single_machine`]);
//! * a nearest-neighbour + LPT heuristic for `m` machines
//!   ([`nearest_neighbor_schedule`]);
//! * a dual-approximation-style solver ([`solver`]): a capacity-bounded
//!   greedy builder driven by a search over the instance-only lower bound,
//!   allocation-free on a warm [`solver::SeqDepScratch`] and emitting
//!   standard [`bss_schedule`] placements through any `PlacementSink`;
//! * the two reductions bridging this model and the batch-setup model
//!   ([`reduce`]): batch setups are exactly the *uniform* special case
//!   `s(c, c') = s(c')` (Jansen–Maack–Mäcker, arXiv:1809.10428);
//! * the TSP reduction as a constructor ([`SeqDepInstance::from_tsp_path`]),
//!   used in tests to cross-check the oracle against brute force.

use core::fmt;

use bss_json::{FromJson, JsonError, ToJson, Value};
use bss_rational::Rational;

pub mod reduce;
pub mod solver;

/// Upper bound on the *sequential weight* `Σ_j (t_j + max-in_j)` enforced at
/// construction (the same `2^60` cap as `bss_instance::MAX_TOTAL_LOAD`).
///
/// Any single machine's completion time pays, per class it runs, the class's
/// processing time plus *one* setup into it; bounding the sum of worst-case
/// entry setups and processing times keeps every `u64` accumulation in
/// [`SeqDepInstance::machine_time`] overflow-free even on hostile inputs.
pub const MAX_SEQUENTIAL_WEIGHT: u64 = 1 << 60;

/// Errors detected while building a [`SeqDepInstance`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeqDepError {
    /// `m == 0`.
    NoMachines,
    /// `c == 0` (empty `initial` / `switch`).
    NoClasses,
    /// A `switch` row whose length differs from the class count (ragged or
    /// non-square matrix).
    RaggedSwitchRow {
        /// Index of the offending row.
        row: usize,
        /// Its length.
        len: usize,
        /// The class count it must match.
        expected: usize,
    },
    /// `initial` / `class_proc` / `switch` disagree on the class count.
    DimensionMismatch {
        /// Which input is off (`"switch"` or `"class_proc"`).
        field: &'static str,
        /// Its length.
        len: usize,
        /// The class count (length of `initial`).
        expected: usize,
    },
    /// The sequential weight `Σ_j (t_j + max-in_j)` exceeds
    /// [`MAX_SEQUENTIAL_WEIGHT`].
    SequentialWeightTooLarge,
}

impl fmt::Display for SeqDepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeqDepError::NoMachines => write!(f, "instance must have at least one machine"),
            SeqDepError::NoClasses => write!(f, "instance must have at least one class"),
            SeqDepError::RaggedSwitchRow { row, len, expected } => write!(
                f,
                "switch matrix row {row} has {len} entries, expected {expected} (square c x c)"
            ),
            SeqDepError::DimensionMismatch {
                field,
                len,
                expected,
            } => write!(f, "{field} has length {len}, expected {expected} classes"),
            SeqDepError::SequentialWeightTooLarge => {
                write!(f, "sequential weight exceeds 2^60; rescale the instance")
            }
        }
    }
}

impl std::error::Error for SeqDepError {}

/// Instance-lifetime memo of the `O(c²)` uniformity reduction
/// ([`reduce::to_uniform_instance`]), plus a counter of how many times the
/// scan actually ran — the accounting hook the hotspot regression test
/// asserts on. The memo is deliberately invisible to the instance's *value*:
/// clones start cold, equality and the JSON round trip ignore it.
#[derive(Default)]
struct UniformMemo {
    cell: std::sync::OnceLock<Option<bss_instance::Instance>>,
    checks: std::sync::atomic::AtomicUsize,
}

impl Clone for UniformMemo {
    fn clone(&self) -> Self {
        Self::default()
    }
}

impl PartialEq for UniformMemo {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl Eq for UniformMemo {}

impl fmt::Debug for UniformMemo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("UniformMemo")
    }
}

/// Storage behind the `c×c` switch matrix.
///
/// The *uniform* special case (`switch(i, j) = initial(j)` for `i ≠ j`,
/// zero diagonal) is exactly the image of the batch-setup embedding
/// [`reduce::from_instance`]; materializing its `c²` identical rows is pure
/// waste — 50 MB and tens of milliseconds at `c = 2500`. The uniform
/// backing streams every entry from the length-`c` `initial` vector
/// instead, making the embedding `O(c)` in time and memory. Genuinely
/// sequence-dependent instances keep the dense matrix.
///
/// The backing is a representation detail, invisible to the instance's
/// *value*: equality is semantic (a dense matrix that happens to be uniform
/// equals its streamed twin) and the JSON wire format is always the dense
/// matrix.
#[derive(Debug, Clone)]
enum SwitchBacking {
    /// An explicit `c×c` matrix.
    Dense(Vec<Vec<u64>>),
    /// `switch(i, j) = initial[j]` for `i ≠ j`, `0` on the diagonal —
    /// derived on the fly from the instance's `initial` vector.
    UniformFromInitial,
}

/// A sequence-dependent batch-setup instance.
///
/// Classes are `0..c`; `switch[i][j]` is the setup paid when a machine moves
/// from processing class `i` to class `j` (`switch[i][i] = 0` by convention),
/// and `initial[j]` is the setup paid when a fresh machine starts with class
/// `j`. All jobs of a class are processed together (batch scheduling), so
/// only the class *order* per machine matters.
#[derive(Debug, Clone)]
pub struct SeqDepInstance {
    machines: usize,
    initial: Vec<u64>,
    switch: SwitchBacking,
    class_proc: Vec<u64>,
    uniform: UniformMemo,
}

impl PartialEq for SeqDepInstance {
    fn eq(&self, other: &Self) -> bool {
        if self.machines != other.machines
            || self.initial != other.initial
            || self.class_proc != other.class_proc
        {
            return false;
        }
        // Semantic equality across backings: the switch *values* decide.
        match (&self.switch, &other.switch) {
            (SwitchBacking::Dense(a), SwitchBacking::Dense(b)) => a == b,
            (SwitchBacking::UniformFromInitial, SwitchBacking::UniformFromInitial) => true,
            (SwitchBacking::Dense(d), SwitchBacking::UniformFromInitial)
            | (SwitchBacking::UniformFromInitial, SwitchBacking::Dense(d)) => {
                d.iter().enumerate().all(|(i, row)| {
                    row.iter()
                        .enumerate()
                        .all(|(j, &v)| v == if i == j { 0 } else { self.initial[j] })
                })
            }
        }
    }
}

impl Eq for SeqDepInstance {}

impl SeqDepInstance {
    /// Builds an instance; `switch` must be a `c×c` matrix and `initial`,
    /// `class_proc` length-`c` vectors.
    ///
    /// # Errors
    /// Returns a [`SeqDepError`] on `machines == 0`, an empty class set, a
    /// ragged or non-square `switch` matrix, mismatched vector lengths, or a
    /// sequential weight past [`MAX_SEQUENTIAL_WEIGHT`] — degenerate inputs
    /// are reported, never panicked on.
    pub fn new(
        machines: usize,
        initial: Vec<u64>,
        switch: Vec<Vec<u64>>,
        class_proc: Vec<u64>,
    ) -> Result<Self, SeqDepError> {
        let c = initial.len();
        if machines == 0 {
            return Err(SeqDepError::NoMachines);
        }
        if c == 0 {
            return Err(SeqDepError::NoClasses);
        }
        if switch.len() != c {
            return Err(SeqDepError::DimensionMismatch {
                field: "switch",
                len: switch.len(),
                expected: c,
            });
        }
        for (row, r) in switch.iter().enumerate() {
            if r.len() != c {
                return Err(SeqDepError::RaggedSwitchRow {
                    row,
                    len: r.len(),
                    expected: c,
                });
            }
        }
        if class_proc.len() != c {
            return Err(SeqDepError::DimensionMismatch {
                field: "class_proc",
                len: class_proc.len(),
                expected: c,
            });
        }
        let inst = SeqDepInstance {
            machines,
            initial,
            switch: SwitchBacking::Dense(switch),
            class_proc,
            uniform: UniformMemo::default(),
        };
        let weight: u128 = (0..c)
            .map(|j| inst.class_proc[j] as u128 + inst.max_in(j) as u128)
            .sum();
        if weight > MAX_SEQUENTIAL_WEIGHT as u128 {
            return Err(SeqDepError::SequentialWeightTooLarge);
        }
        Ok(inst)
    }

    /// Builds a *uniform* instance — `switch(i, j) = initial[j]` for
    /// `i ≠ j`, zero diagonal — without materializing the `c×c` matrix:
    /// `O(c)` time and memory, versus the `O(c²)` of spelling the matrix
    /// out for [`SeqDepInstance::new`]. Equal (`==`) to the dense spelling.
    ///
    /// This is the constructor behind [`reduce::from_instance`], keeping the
    /// batch-setup embedding linear in the class count.
    ///
    /// # Errors
    /// Returns a [`SeqDepError`] on `machines == 0`, an empty class set,
    /// mismatched vector lengths, or a sequential weight past
    /// [`MAX_SEQUENTIAL_WEIGHT`].
    pub fn uniform(
        machines: usize,
        initial: Vec<u64>,
        class_proc: Vec<u64>,
    ) -> Result<Self, SeqDepError> {
        let c = initial.len();
        if machines == 0 {
            return Err(SeqDepError::NoMachines);
        }
        if c == 0 {
            return Err(SeqDepError::NoClasses);
        }
        if class_proc.len() != c {
            return Err(SeqDepError::DimensionMismatch {
                field: "class_proc",
                len: class_proc.len(),
                expected: c,
            });
        }
        // Under the uniform backing every entry into class j — initial or
        // switch — costs initial[j], so max-in is initial[j] directly.
        let weight: u128 = (0..c)
            .map(|j| class_proc[j] as u128 + initial[j] as u128)
            .sum();
        if weight > MAX_SEQUENTIAL_WEIGHT as u128 {
            return Err(SeqDepError::SequentialWeightTooLarge);
        }
        Ok(SeqDepInstance {
            machines,
            initial,
            switch: SwitchBacking::UniformFromInitial,
            class_proc,
            uniform: UniformMemo::default(),
        })
    }

    /// Whether the instance *stores* its switch matrix in the streamed
    /// uniform backing (`O(c)` memory). Note this is about representation:
    /// a dense instance whose matrix happens to be uniform reports `false`
    /// here while still satisfying [`reduce::is_uniform`].
    #[must_use]
    pub fn has_uniform_backing(&self) -> bool {
        matches!(self.switch, SwitchBacking::UniformFromInitial)
    }

    /// The batch-setup reduction of this instance if it is *uniform*
    /// (`switch(i, j) = initial(j)` for all `i ≠ j`, with positive setups
    /// and work), computed at most once per instance and memoized: repeated
    /// bridge constructions over the same instance reuse the cached result
    /// instead of re-paying the `O(c²)` matrix scan.
    pub fn uniform_reduction(&self) -> Option<&bss_instance::Instance> {
        self.uniform
            .cell
            .get_or_init(|| {
                self.uniform
                    .checks
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                reduce::to_uniform_instance(self).ok()
            })
            .as_ref()
    }

    /// How many times the `O(c²)` uniformity scan actually ran on this
    /// instance: `0` before the first [`Self::uniform_reduction`] call and
    /// `1` ever after, however many times the bridge is re-built. The
    /// hotspot regression test pins this counter.
    pub fn uniformity_checks(&self) -> usize {
        self.uniform
            .checks
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// The path-TSP reduction of the paper's conclusion: `m = 1`, one
    /// zero-work class per city, `switch = dist`, `initial = 0⁺` (a unit —
    /// the model requires positive initial setups to mark machine starts;
    /// it adds the same constant to every tour).
    ///
    /// # Errors
    /// Returns a [`SeqDepError`] on an empty or ragged/non-square distance
    /// matrix (or oversized entries), instead of panicking.
    pub fn from_tsp_path(dist: Vec<Vec<u64>>) -> Result<Self, SeqDepError> {
        let c = dist.len();
        SeqDepInstance::new(1, vec![1; c], dist, vec![0; c])
    }

    /// Number of classes.
    #[must_use]
    pub fn num_classes(&self) -> usize {
        self.initial.len()
    }

    /// Number of machines.
    #[must_use]
    pub fn machines(&self) -> usize {
        self.machines
    }

    /// Initial setup of class `j` on a fresh machine.
    #[must_use]
    pub fn initial(&self, j: usize) -> u64 {
        self.initial[j]
    }

    /// Switch-over setup from class `i` to class `j`.
    #[must_use]
    pub fn switch(&self, i: usize, j: usize) -> u64 {
        match &self.switch {
            SwitchBacking::Dense(m) => m[i][j],
            SwitchBacking::UniformFromInitial => {
                assert!(i < self.initial.len(), "class {i} out of range");
                if i == j {
                    0
                } else {
                    self.initial[j]
                }
            }
        }
    }

    /// Processing time of class `j`'s batch.
    #[must_use]
    pub fn class_proc(&self, j: usize) -> u64 {
        self.class_proc[j]
    }

    /// The setup actually paid when a machine whose last class is `last`
    /// (`None` = fresh) switches to `class`.
    #[must_use]
    pub fn setup_into(&self, last: Option<usize>, class: usize) -> u64 {
        match last {
            None => self.initial[class],
            Some(p) => self.switch(p, class),
        }
    }

    /// Cheapest way to ever start class `j`: `min(initial_j, min_i s(i, j))`.
    /// `O(1)` on the uniform backing (every entry into `j` is `initial_j`),
    /// `O(c)` on a dense matrix.
    #[must_use]
    pub fn min_in(&self, j: usize) -> u64 {
        match &self.switch {
            SwitchBacking::UniformFromInitial => self.initial[j],
            SwitchBacking::Dense(m) => (0..self.num_classes())
                .filter(|&i| i != j)
                .map(|i| m[i][j])
                .chain(core::iter::once(self.initial[j]))
                .min()
                .expect("c >= 1"),
        }
    }

    /// Most expensive way to start class `j`: `max(initial_j, max_i s(i, j))`.
    /// `O(1)` on the uniform backing, `O(c)` on a dense matrix.
    #[must_use]
    pub fn max_in(&self, j: usize) -> u64 {
        match &self.switch {
            SwitchBacking::UniformFromInitial => self.initial[j],
            SwitchBacking::Dense(m) => (0..self.num_classes())
                .filter(|&i| i != j)
                .map(|i| m[i][j])
                .chain(core::iter::once(self.initial[j]))
                .max()
                .expect("c >= 1"),
        }
    }

    /// `Σ_j (t_j + max-in_j)`: an upper bound on *any* machine's completion
    /// time (each class pays one entry setup), hence on the one-machine
    /// schedule produced by chaining everything. The search seeds its upper
    /// bracket from half of this.
    #[must_use]
    pub fn sequential_weight(&self) -> u64 {
        (0..self.num_classes())
            .map(|j| self.class_proc[j] + self.max_in(j))
            .sum()
    }

    /// Completion time of one machine processing `order` (class sequence).
    #[must_use]
    pub fn machine_time(&self, order: &[usize]) -> u64 {
        let mut t = 0u64;
        let mut prev: Option<usize> = None;
        for &class in order {
            t += self.setup_into(prev, class);
            t += self.class_proc[class];
            prev = Some(class);
        }
        t
    }

    /// Makespan of a full assignment: `orders[u]` is machine `u`'s class
    /// sequence. Validates that every class appears exactly once overall.
    ///
    /// # Panics
    /// Panics if the assignment is not a partition of the classes (a caller
    /// bug, not an input-data problem — use [`SeqDepInstance::check_orders`]
    /// for data from outside).
    #[must_use]
    pub fn makespan(&self, orders: &[Vec<usize>]) -> u64 {
        if let Err(e) = self.check_orders(orders) {
            panic!("{e}");
        }
        orders
            .iter()
            .map(|o| self.machine_time(o))
            .max()
            .unwrap_or(0)
    }

    /// Checks that `orders` is a partition of the classes over at most `m`
    /// machines; `Err` carries a human-readable description.
    pub fn check_orders(&self, orders: &[Vec<usize>]) -> Result<(), String> {
        if orders.len() > self.machines {
            return Err(format!(
                "too many machines used: {} > {}",
                orders.len(),
                self.machines
            ));
        }
        let mut seen = vec![false; self.num_classes()];
        for order in orders {
            for &class in order {
                if class >= self.num_classes() {
                    return Err(format!("unknown class {class}"));
                }
                if seen[class] {
                    return Err(format!("class {class} scheduled twice"));
                }
                seen[class] = true;
            }
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(format!("class {missing} unscheduled"));
        }
        Ok(())
    }
}

impl ToJson for SeqDepInstance {
    fn to_json_value(&self) -> Value {
        let ints = |v: &[u64]| Value::Array(v.iter().map(|&x| Value::Int(x.into())).collect());
        // The wire format is always the dense matrix, whatever the backing:
        // readers never have to know about the streamed representation.
        let c = self.num_classes();
        let switch = Value::Array(
            (0..c)
                .map(|i| {
                    Value::Array(
                        (0..c)
                            .map(|j| Value::Int(self.switch(i, j).into()))
                            .collect(),
                    )
                })
                .collect(),
        );
        Value::Object(vec![
            ("machines".into(), Value::Int(self.machines as i128)),
            ("initial".into(), ints(&self.initial)),
            ("switch".into(), switch),
            ("class_proc".into(), ints(&self.class_proc)),
        ])
    }
}

impl FromJson for SeqDepInstance {
    fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        let ints =
            |v: &Value, what: &str| bss_json::vec_from(v, what, |x| bss_json::int_from(x, "entry"));
        let machines = bss_json::int_from(bss_json::required(value, "machines")?, "machines")?;
        let initial = ints(bss_json::required(value, "initial")?, "initial")?;
        let switch = bss_json::vec_from(bss_json::required(value, "switch")?, "switch", |row| {
            ints(row, "switch row")
        })?;
        let class_proc = ints(bss_json::required(value, "class_proc")?, "class_proc")?;
        SeqDepInstance::new(machines, initial, switch, class_proc)
            .map_err(|e| JsonError::new(format!("invalid seqdep instance data: {e}")))
    }
}

/// Errors arising while reading a [`SeqDepInstance`] from JSON.
#[derive(Debug)]
pub enum SeqDepIoError {
    /// The JSON was malformed.
    Json(JsonError),
}

impl fmt::Display for SeqDepIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeqDepIoError::Json(e) => write!(f, "invalid seqdep instance JSON: {e}"),
        }
    }
}

impl std::error::Error for SeqDepIoError {}

impl SeqDepInstance {
    /// Serializes the instance to pretty-printed JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        bss_json::encode_pretty(self)
    }

    /// Parses and validates an instance from JSON.
    pub fn from_json(json: &str) -> Result<Self, SeqDepIoError> {
        let value = bss_json::parse(json).map_err(SeqDepIoError::Json)?;
        Self::from_json_value(&value).map_err(SeqDepIoError::Json)
    }
}

/// Exact single-machine optimum by Held–Karp over class subsets
/// (`O(2^c c^2)`; guarded to `c <= 20`).
#[must_use]
pub fn exact_single_machine(inst: &SeqDepInstance) -> u64 {
    let c = inst.num_classes();
    assert!(c <= 20, "Held-Karp oracle limited to c <= 20");
    let full = (1usize << c) - 1;
    // best[mask][last] = minimal time to process `mask` ending in `last`.
    let mut best = vec![vec![u64::MAX; c]; full + 1];
    for j in 0..c {
        best[1 << j][j] = inst.initial(j) + inst.class_proc(j);
    }
    for mask in 1..=full {
        for last in 0..c {
            let cur = best[mask][last];
            if cur == u64::MAX || mask & (1 << last) == 0 {
                continue;
            }
            for next in 0..c {
                if mask & (1 << next) != 0 {
                    continue;
                }
                let cand = cur + inst.switch(last, next) + inst.class_proc(next);
                let slot = &mut best[mask | (1 << next)][next];
                if cand < *slot {
                    *slot = cand;
                }
            }
        }
    }
    best[full].iter().copied().min().expect("c >= 1")
}

/// Nearest-neighbour + longest-batch-first heuristic for `m` machines.
///
/// Classes are assigned to machines greedily (heaviest remaining batch to the
/// machine that can finish it earliest, accounting for the sequence-dependent
/// switch from that machine's current last class). Returns the per-machine
/// orders; evaluate with [`SeqDepInstance::makespan`].
#[must_use]
pub fn nearest_neighbor_schedule(inst: &SeqDepInstance) -> Vec<Vec<usize>> {
    let c = inst.num_classes();
    let m = inst.machines().min(c);
    let mut orders: Vec<Vec<usize>> = vec![Vec::new(); m];
    let mut finish: Vec<u64> = vec![0; m];
    let mut remaining: Vec<usize> = (0..c).collect();
    // Heaviest batches first.
    remaining.sort_by_key(|&i| std::cmp::Reverse(inst.class_proc[i]));
    for class in remaining {
        let (u, _) = (0..m)
            .map(|u| {
                let setup = inst.setup_into(orders[u].last().copied(), class);
                (u, finish[u] + setup + inst.class_proc[class])
            })
            .min_by_key(|&(_, t)| t)
            .expect("m >= 1");
        let setup = inst.setup_into(orders[u].last().copied(), class);
        finish[u] += setup + inst.class_proc[class];
        orders[u].push(class);
    }
    orders
}

/// Average over machines of the lower bound `Σ min-setups + Σ work / m` —
/// used to certify heuristic quality in reports.
#[must_use]
pub fn load_lower_bound(inst: &SeqDepInstance) -> Rational {
    let c = inst.num_classes();
    let mut total: u64 = inst.class_proc.iter().sum();
    for j in 0..c {
        total += inst.min_in(j);
    }
    Rational::from(total) / inst.machines().min(c)
}

/// `max_j (min-in_j + t_j)`: the machine running class `j` pays at least the
/// cheapest entry into `j` plus `j`'s work.
#[must_use]
pub fn class_lower_bound(inst: &SeqDepInstance) -> u64 {
    (0..inst.num_classes())
        .map(|j| inst.min_in(j) + inst.class_proc(j))
        .max()
        .expect("c >= 1")
}

/// `min_j (initial_j + t_j)`: some machine runs a *first* class, paying that
/// class's initial setup in full — no switch discount applies to it. Catches
/// instances whose `min-in` bounds vanish (free switches) but whose initial
/// setups do not.
#[must_use]
pub fn first_class_lower_bound(inst: &SeqDepInstance) -> u64 {
    (0..inst.num_classes())
        .map(|j| inst.initial(j) + inst.class_proc(j))
        .min()
        .expect("c >= 1")
}

/// The strongest instance-only lower bound on the optimal makespan:
/// `max(load, class, first-class)` — the search anchor, mirroring the
/// batch-setup `T_min` of Notes 1–2. Zero exactly when every schedule is
/// free (`OPT = 0`).
#[must_use]
pub fn t_min(inst: &SeqDepInstance) -> Rational {
    load_lower_bound(inst)
        .max(Rational::from(class_lower_bound(inst)))
        .max(Rational::from(first_class_lower_bound(inst)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tsp4() -> Vec<Vec<u64>> {
        // Symmetric 4-city distances with known best path 0-2-1-3 (cost 9).
        vec![
            vec![0, 10, 2, 12],
            vec![10, 0, 3, 4],
            vec![2, 3, 0, 9],
            vec![12, 4, 9, 0],
        ]
    }

    #[test]
    fn machine_time_accumulates_switches() {
        let inst =
            SeqDepInstance::new(1, vec![5, 7], vec![vec![0, 2], vec![3, 0]], vec![10, 20]).unwrap();
        assert_eq!(inst.machine_time(&[0, 1]), 5 + 10 + 2 + 20);
        assert_eq!(inst.machine_time(&[1, 0]), 7 + 20 + 3 + 10);
        assert_eq!(inst.machine_time(&[]), 0);
    }

    #[test]
    fn constructors_reject_degenerate_inputs() {
        // Zero machines.
        assert_eq!(
            SeqDepInstance::new(0, vec![1], vec![vec![0]], vec![1]).unwrap_err(),
            SeqDepError::NoMachines
        );
        // Empty class set.
        assert_eq!(
            SeqDepInstance::new(2, vec![], vec![], vec![]).unwrap_err(),
            SeqDepError::NoClasses
        );
        assert_eq!(
            SeqDepInstance::from_tsp_path(vec![]).unwrap_err(),
            SeqDepError::NoClasses
        );
        // Ragged switch matrix.
        assert_eq!(
            SeqDepInstance::from_tsp_path(vec![vec![0, 1], vec![1]]).unwrap_err(),
            SeqDepError::RaggedSwitchRow {
                row: 1,
                len: 1,
                expected: 2
            }
        );
        // Non-square (too few rows).
        assert_eq!(
            SeqDepInstance::new(1, vec![1, 1], vec![vec![0, 1]], vec![1, 1]).unwrap_err(),
            SeqDepError::DimensionMismatch {
                field: "switch",
                len: 1,
                expected: 2
            }
        );
        // class_proc length mismatch.
        assert_eq!(
            SeqDepInstance::new(1, vec![1], vec![vec![0]], vec![1, 2]).unwrap_err(),
            SeqDepError::DimensionMismatch {
                field: "class_proc",
                len: 2,
                expected: 1
            }
        );
        // Sequential-weight overflow guard.
        assert_eq!(
            SeqDepInstance::new(
                1,
                vec![u64::MAX / 2, u64::MAX / 2],
                vec![vec![0, 1], vec![1, 0]],
                vec![1, 1]
            )
            .unwrap_err(),
            SeqDepError::SequentialWeightTooLarge
        );
    }

    #[test]
    fn json_roundtrip() {
        let inst = SeqDepInstance::from_tsp_path(tsp4()).unwrap();
        let back = SeqDepInstance::from_json(&inst.to_json()).unwrap();
        assert_eq!(back, inst);
        // Model violations decoded from JSON are rejected, not panicked on.
        let bad = r#"{"machines":0,"initial":[1],"switch":[[0]],"class_proc":[1]}"#;
        assert!(SeqDepInstance::from_json(bad).is_err());
        let ragged = r#"{"machines":1,"initial":[1,1],"switch":[[0,1],[1]],"class_proc":[1,1]}"#;
        assert!(SeqDepInstance::from_json(ragged).is_err());
    }

    #[test]
    fn held_karp_solves_tsp_path() {
        let inst = SeqDepInstance::from_tsp_path(tsp4()).unwrap();
        // best path 0-2-1-3: 2 + 3 + 4 = 9, plus initial 1.
        assert_eq!(exact_single_machine(&inst), 10);
    }

    #[test]
    fn held_karp_matches_brute_force() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let c = rng.gen_range(1..=6usize);
            let switch: Vec<Vec<u64>> = (0..c)
                .map(|i| {
                    (0..c)
                        .map(|j| if i == j { 0 } else { rng.gen_range(1..30) })
                        .collect()
                })
                .collect();
            let initial: Vec<u64> = (0..c).map(|_| rng.gen_range(1..10)).collect();
            let work: Vec<u64> = (0..c).map(|_| rng.gen_range(0..20)).collect();
            let inst = SeqDepInstance::new(1, initial, switch, work).unwrap();
            // Brute force over all permutations.
            let mut perm: Vec<usize> = (0..c).collect();
            let mut best = u64::MAX;
            permute(&mut perm, 0, &mut |p| {
                best = best.min(inst.machine_time(p));
            });
            assert_eq!(exact_single_machine(&inst), best);
        }

        fn permute(v: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
            if k == v.len() {
                f(v);
                return;
            }
            for i in k..v.len() {
                v.swap(k, i);
                permute(v, k + 1, f);
                v.swap(k, i);
            }
        }
    }

    #[test]
    fn heuristic_is_feasible_and_bounded() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..20 {
            let c = rng.gen_range(2..=10usize);
            let m = rng.gen_range(1..=4usize);
            let switch: Vec<Vec<u64>> = (0..c)
                .map(|i| {
                    (0..c)
                        .map(|j| if i == j { 0 } else { rng.gen_range(1..20) })
                        .collect()
                })
                .collect();
            let initial: Vec<u64> = (0..c).map(|_| rng.gen_range(1..20)).collect();
            let work: Vec<u64> = (0..c).map(|_| rng.gen_range(1..50)).collect();
            let initial_sum: u64 = initial.iter().sum();
            let inst = SeqDepInstance::new(m, initial, switch, work).unwrap();
            let orders = nearest_neighbor_schedule(&inst);
            let makespan = inst.makespan(&orders); // panics if not a partition

            // Trivial sanity ceiling: everything sequential on one machine.
            let all: Vec<usize> = (0..c).collect();
            assert!(makespan <= inst.machine_time(&all) + initial_sum);
        }
    }

    #[test]
    fn single_machine_heuristic_vs_exact_gap() {
        let inst = SeqDepInstance::from_tsp_path(tsp4()).unwrap();
        let orders = nearest_neighbor_schedule(&inst);
        let heuristic = inst.makespan(&orders);
        let exact = exact_single_machine(&inst);
        assert!(heuristic >= exact);
        assert!(
            heuristic <= 3 * exact,
            "NN should stay within small factor here"
        );
    }

    #[test]
    fn lower_bounds_below_exact() {
        let inst = SeqDepInstance::from_tsp_path(tsp4()).unwrap();
        let exact = exact_single_machine(&inst);
        assert!(load_lower_bound(&inst) <= Rational::from(exact));
        assert!(class_lower_bound(&inst) <= exact);
        assert!(t_min(&inst) <= Rational::from(exact));
        // The sequential weight bounds any chain from above.
        assert!(inst.sequential_weight() >= exact);
    }

    #[test]
    #[should_panic(expected = "scheduled twice")]
    fn makespan_rejects_duplicate_classes() {
        let inst = SeqDepInstance::from_tsp_path(tsp4()).unwrap();
        let _ = inst.makespan(&[vec![0, 1, 2, 3, 0]]);
    }

    #[test]
    #[should_panic(expected = "unscheduled")]
    fn makespan_rejects_missing_classes() {
        let inst = SeqDepInstance::from_tsp_path(tsp4()).unwrap();
        let _ = inst.makespan(&[vec![0, 1]]);
    }

    #[test]
    fn check_orders_reports_instead_of_panicking() {
        let inst = SeqDepInstance::from_tsp_path(tsp4()).unwrap();
        assert!(inst.check_orders(&[vec![0, 1, 2, 3]]).is_ok());
        assert!(inst
            .check_orders(&[vec![0, 1]])
            .unwrap_err()
            .contains("unscheduled"));
        assert!(inst
            .check_orders(&[vec![0, 0, 1, 2, 3]])
            .unwrap_err()
            .contains("twice"));
        assert!(inst
            .check_orders(&[vec![0, 1, 2, 9]])
            .unwrap_err()
            .contains("unknown class"));
        assert!(inst
            .check_orders(&[vec![0], vec![1], vec![2], vec![3]])
            .unwrap_err()
            .contains("too many machines"));
    }

    proptest! {
        /// The sequence-independent special case: if every switch into class
        /// j costs s_j regardless of origin, ordering within a machine is
        /// irrelevant (machine time depends only on the class set).
        #[test]
        fn sequence_independent_special_case(
            setups in proptest::collection::vec(1u64..20, 2..6),
            work in proptest::collection::vec(1u64..30, 2..6),
            seed in 0u64..100,
        ) {
            use rand::rngs::StdRng;
            use rand::{seq::SliceRandom, SeedableRng};
            let c = setups.len().min(work.len());
            let setups = &setups[..c];
            let work = &work[..c];
            let switch: Vec<Vec<u64>> = (0..c)
                .map(|i| (0..c).map(|j| if i == j { 0 } else { setups[j] }).collect())
                .collect();
            let inst =
                SeqDepInstance::new(1, setups.to_vec(), switch, work.to_vec()).unwrap();
            let mut order: Vec<usize> = (0..c).collect();
            let base = inst.machine_time(&order);
            let mut rng = StdRng::seed_from_u64(seed);
            order.shuffle(&mut rng);
            prop_assert_eq!(inst.machine_time(&order), base);
        }
    }
}
