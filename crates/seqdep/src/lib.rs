//! Sequence-dependent batch setups — the extension sketched in the paper's
//! conclusion.
//!
//! Setup times are given as a matrix `S ∈ N^{c×c}` of values `s(i1, i2)`:
//! switching a machine from class `i1` to class `i2` costs `s(i1, i2)`, and a
//! separate vector gives the initial setup of a fresh machine. The paper
//! observes the natural reduction: with `m = 1`, one zero-length job per
//! class, and setups chosen as inter-city distances, minimizing the makespan
//! *is* the path-version TSP — so the problem is APX-hard in general and this
//! crate provides:
//!
//! * the model and a makespan evaluator ([`SeqDepInstance`]),
//! * an exact Held–Karp oracle for one machine and small `c`
//!   ([`exact_single_machine`]),
//! * a nearest-neighbour + LPT heuristic for `m` machines
//!   ([`nearest_neighbor_schedule`]),
//! * the TSP reduction as a constructor ([`SeqDepInstance::from_tsp_path`]),
//!   used in tests to cross-check the oracle against brute force.

use bss_rational::Rational;

/// A sequence-dependent batch-setup instance.
///
/// Classes are `0..c`; `switch[i][j]` is the setup paid when a machine moves
/// from processing class `i` to class `j` (`switch[i][i] = 0` by convention),
/// and `initial[j]` is the setup paid when a fresh machine starts with class
/// `j`. All jobs of a class are processed together (batch scheduling), so
/// only the class *order* per machine matters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqDepInstance {
    machines: usize,
    initial: Vec<u64>,
    switch: Vec<Vec<u64>>,
    class_proc: Vec<u64>,
}

impl SeqDepInstance {
    /// Builds an instance; `switch` must be a `c×c` matrix and `initial`,
    /// `class_proc` length-`c` vectors.
    ///
    /// # Panics
    /// Panics on dimension mismatches or `machines == 0`.
    #[must_use]
    pub fn new(
        machines: usize,
        initial: Vec<u64>,
        switch: Vec<Vec<u64>>,
        class_proc: Vec<u64>,
    ) -> Self {
        let c = initial.len();
        assert!(machines > 0, "need at least one machine");
        assert!(c > 0, "need at least one class");
        assert_eq!(class_proc.len(), c);
        assert_eq!(switch.len(), c);
        for row in &switch {
            assert_eq!(row.len(), c);
        }
        SeqDepInstance {
            machines,
            initial,
            switch,
            class_proc,
        }
    }

    /// The path-TSP reduction of the paper's conclusion: `m = 1`, one
    /// zero-work class per city, `switch = dist`, `initial = 0⁺` (a unit —
    /// the model requires positive initial setups to mark machine starts;
    /// it adds the same constant to every tour).
    #[must_use]
    pub fn from_tsp_path(dist: Vec<Vec<u64>>) -> Self {
        let c = dist.len();
        SeqDepInstance::new(1, vec![1; c], dist, vec![0; c])
    }

    /// Number of classes.
    #[must_use]
    pub fn num_classes(&self) -> usize {
        self.initial.len()
    }

    /// Number of machines.
    #[must_use]
    pub fn machines(&self) -> usize {
        self.machines
    }

    /// Completion time of one machine processing `order` (class sequence).
    #[must_use]
    pub fn machine_time(&self, order: &[usize]) -> u64 {
        let mut t = 0u64;
        let mut prev: Option<usize> = None;
        for &class in order {
            t += match prev {
                None => self.initial[class],
                Some(p) => self.switch[p][class],
            };
            t += self.class_proc[class];
            prev = Some(class);
        }
        t
    }

    /// Makespan of a full assignment: `orders[u]` is machine `u`'s class
    /// sequence. Validates that every class appears exactly once overall.
    ///
    /// # Panics
    /// Panics if the assignment is not a partition of the classes.
    #[must_use]
    pub fn makespan(&self, orders: &[Vec<usize>]) -> u64 {
        assert!(orders.len() <= self.machines, "too many machines used");
        let mut seen = vec![false; self.num_classes()];
        for order in orders {
            for &class in order {
                assert!(!seen[class], "class {class} scheduled twice");
                seen[class] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some class unscheduled");
        orders
            .iter()
            .map(|o| self.machine_time(o))
            .max()
            .unwrap_or(0)
    }
}

/// Exact single-machine optimum by Held–Karp over class subsets
/// (`O(2^c c^2)`; guarded to `c <= 20`).
#[must_use]
pub fn exact_single_machine(inst: &SeqDepInstance) -> u64 {
    let c = inst.num_classes();
    assert!(c <= 20, "Held-Karp oracle limited to c <= 20");
    let full = (1usize << c) - 1;
    // best[mask][last] = minimal time to process `mask` ending in `last`.
    let mut best = vec![vec![u64::MAX; c]; full + 1];
    for j in 0..c {
        best[1 << j][j] = inst.initial[j] + inst.class_proc[j];
    }
    for mask in 1..=full {
        for last in 0..c {
            let cur = best[mask][last];
            if cur == u64::MAX || mask & (1 << last) == 0 {
                continue;
            }
            for next in 0..c {
                if mask & (1 << next) != 0 {
                    continue;
                }
                let cand = cur + inst.switch[last][next] + inst.class_proc[next];
                let slot = &mut best[mask | (1 << next)][next];
                if cand < *slot {
                    *slot = cand;
                }
            }
        }
    }
    best[full].iter().copied().min().expect("c >= 1")
}

/// Nearest-neighbour + longest-batch-first heuristic for `m` machines.
///
/// Classes are assigned to machines greedily (heaviest remaining batch to the
/// machine that can finish it earliest, accounting for the sequence-dependent
/// switch from that machine's current last class). Returns the per-machine
/// orders; evaluate with [`SeqDepInstance::makespan`].
#[must_use]
pub fn nearest_neighbor_schedule(inst: &SeqDepInstance) -> Vec<Vec<usize>> {
    let c = inst.num_classes();
    let m = inst.machines().min(c);
    let mut orders: Vec<Vec<usize>> = vec![Vec::new(); m];
    let mut finish: Vec<u64> = vec![0; m];
    let mut remaining: Vec<usize> = (0..c).collect();
    // Heaviest batches first.
    remaining.sort_by_key(|&i| std::cmp::Reverse(inst.class_proc[i]));
    for class in remaining {
        let (u, _) = (0..m)
            .map(|u| {
                let setup = match orders[u].last() {
                    None => inst.initial[class],
                    Some(&p) => inst.switch[p][class],
                };
                (u, finish[u] + setup + inst.class_proc[class])
            })
            .min_by_key(|&(_, t)| t)
            .expect("m >= 1");
        let setup = match orders[u].last() {
            None => inst.initial[class],
            Some(&p) => inst.switch[p][class],
        };
        finish[u] += setup + inst.class_proc[class];
        orders[u].push(class);
    }
    orders
}

/// Average over machines of the lower bound `Σ min-setups + Σ work / m` —
/// used to certify heuristic quality in reports.
#[must_use]
pub fn load_lower_bound(inst: &SeqDepInstance) -> Rational {
    let c = inst.num_classes();
    let mut total: u64 = inst.class_proc.iter().sum();
    for j in 0..c {
        // Cheapest way to ever reach class j.
        let min_in = (0..c)
            .filter(|&i| i != j)
            .map(|i| inst.switch[i][j])
            .chain(std::iter::once(inst.initial[j]))
            .min()
            .expect("c >= 1");
        total += min_in;
    }
    Rational::from(total) / inst.machines().min(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tsp4() -> Vec<Vec<u64>> {
        // Symmetric 4-city distances with known best path 0-2-1-3 (cost 9).
        vec![
            vec![0, 10, 2, 12],
            vec![10, 0, 3, 4],
            vec![2, 3, 0, 9],
            vec![12, 4, 9, 0],
        ]
    }

    #[test]
    fn machine_time_accumulates_switches() {
        let inst = SeqDepInstance::new(1, vec![5, 7], vec![vec![0, 2], vec![3, 0]], vec![10, 20]);
        assert_eq!(inst.machine_time(&[0, 1]), 5 + 10 + 2 + 20);
        assert_eq!(inst.machine_time(&[1, 0]), 7 + 20 + 3 + 10);
        assert_eq!(inst.machine_time(&[]), 0);
    }

    #[test]
    fn held_karp_solves_tsp_path() {
        let inst = SeqDepInstance::from_tsp_path(tsp4());
        // best path 0-2-1-3: 2 + 3 + 4 = 9, plus initial 1.
        assert_eq!(exact_single_machine(&inst), 10);
    }

    #[test]
    fn held_karp_matches_brute_force() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let c = rng.gen_range(1..=6usize);
            let switch: Vec<Vec<u64>> = (0..c)
                .map(|i| {
                    (0..c)
                        .map(|j| if i == j { 0 } else { rng.gen_range(1..30) })
                        .collect()
                })
                .collect();
            let initial: Vec<u64> = (0..c).map(|_| rng.gen_range(1..10)).collect();
            let work: Vec<u64> = (0..c).map(|_| rng.gen_range(0..20)).collect();
            let inst = SeqDepInstance::new(1, initial, switch, work);
            // Brute force over all permutations.
            let mut perm: Vec<usize> = (0..c).collect();
            let mut best = u64::MAX;
            permute(&mut perm, 0, &mut |p| {
                best = best.min(inst.machine_time(p));
            });
            assert_eq!(exact_single_machine(&inst), best);
        }

        fn permute(v: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
            if k == v.len() {
                f(v);
                return;
            }
            for i in k..v.len() {
                v.swap(k, i);
                permute(v, k + 1, f);
                v.swap(k, i);
            }
        }
    }

    #[test]
    fn heuristic_is_feasible_and_bounded() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..20 {
            let c = rng.gen_range(2..=10usize);
            let m = rng.gen_range(1..=4usize);
            let switch: Vec<Vec<u64>> = (0..c)
                .map(|i| {
                    (0..c)
                        .map(|j| if i == j { 0 } else { rng.gen_range(1..20) })
                        .collect()
                })
                .collect();
            let initial: Vec<u64> = (0..c).map(|_| rng.gen_range(1..20)).collect();
            let work: Vec<u64> = (0..c).map(|_| rng.gen_range(1..50)).collect();
            let initial_sum: u64 = initial.iter().sum();
            let inst = SeqDepInstance::new(m, initial, switch, work);
            let orders = nearest_neighbor_schedule(&inst);
            let makespan = inst.makespan(&orders); // panics if not a partition

            // Trivial sanity ceiling: everything sequential on one machine.
            let all: Vec<usize> = (0..c).collect();
            assert!(makespan <= inst.machine_time(&all) + initial_sum);
        }
    }

    #[test]
    fn single_machine_heuristic_vs_exact_gap() {
        let inst = SeqDepInstance::from_tsp_path(tsp4());
        let orders = nearest_neighbor_schedule(&inst);
        let heuristic = inst.makespan(&orders);
        let exact = exact_single_machine(&inst);
        assert!(heuristic >= exact);
        assert!(
            heuristic <= 3 * exact,
            "NN should stay within small factor here"
        );
    }

    #[test]
    fn lower_bound_below_exact() {
        let inst = SeqDepInstance::from_tsp_path(tsp4());
        assert!(load_lower_bound(&inst) <= Rational::from(exact_single_machine(&inst)));
    }

    #[test]
    #[should_panic(expected = "scheduled twice")]
    fn makespan_rejects_duplicate_classes() {
        let inst = SeqDepInstance::from_tsp_path(tsp4());
        let _ = inst.makespan(&[vec![0, 1, 2, 3, 0]]);
    }

    #[test]
    #[should_panic(expected = "unscheduled")]
    fn makespan_rejects_missing_classes() {
        let inst = SeqDepInstance::from_tsp_path(tsp4());
        let _ = inst.makespan(&[vec![0, 1]]);
    }

    proptest! {
        /// The sequence-independent special case: if every switch into class
        /// j costs s_j regardless of origin, ordering within a machine is
        /// irrelevant (machine time depends only on the class set).
        #[test]
        fn sequence_independent_special_case(
            setups in proptest::collection::vec(1u64..20, 2..6),
            work in proptest::collection::vec(1u64..30, 2..6),
            seed in 0u64..100,
        ) {
            use rand::rngs::StdRng;
            use rand::{seq::SliceRandom, SeedableRng};
            let c = setups.len().min(work.len());
            let setups = &setups[..c];
            let work = &work[..c];
            let switch: Vec<Vec<u64>> = (0..c)
                .map(|i| (0..c).map(|j| if i == j { 0 } else { setups[j] }).collect())
                .collect();
            let inst = SeqDepInstance::new(1, setups.to_vec(), switch, work.to_vec());
            let mut order: Vec<usize> = (0..c).collect();
            let base = inst.machine_time(&order);
            let mut rng = StdRng::seed_from_u64(seed);
            order.shuffle(&mut rng);
            prop_assert_eq!(inst.machine_time(&order), base);
        }
    }
}
