//! A dual-approximation-style solver for sequence-dependent setups.
//!
//! The problem is APX-hard (it contains path-TSP), so no polynomial
//! constant-factor *proof* exists in general; what carries over from the
//! batch-setup machinery is the **shape** of the algorithms:
//!
//! * an instance-only lower bound [`t_min`](crate::t_min) anchors a search
//!   window, with [`SeqDepInstance::sequential_weight`] bounding it above;
//! * a probe [`probe_in`] at guess `T` runs a capacity-bounded greedy builder
//!   with per-machine ceiling `2T` — *acceptance* guarantees a schedule of
//!   makespan `<= 2T` exists (the builder's output itself), while rejection
//!   is only heuristic evidence (unlike the paper's duals it does **not**
//!   certify `T < OPT`);
//! * the builder [`build_into`] re-runs the same deterministic greedy at the
//!   accepted guess and streams the schedule through any
//!   [`PlacementSink`] — classes become single-piece "jobs" (`job = class`),
//!   switch-overs become setups of their target class.
//!
//! All per-probe state lives in a [`SeqDepScratch`]; a warm scratch makes
//! probes and builds allocation-free beyond the caller's output (the
//! counting-allocator suite in `crates/core/tests/zero_alloc.rs` proves it
//! through the unified `solve` surface).
//!
//! The greedy itself: classes are taken heaviest-first (entry cost plus
//! work), and each class goes to the machine that can *switch to it most
//! cheaply* among the machines that stay within `2T` — capacity-bounded
//! nearest-neighbour chaining. Smaller guesses force spreading; the search
//! finds the smallest guess the builder still accepts.

use bss_rational::Rational;
use bss_schedule::PlacementSink;

use crate::SeqDepInstance;

/// Sentinel for "machine is still fresh" in [`SeqDepScratch::last`].
const FRESH: usize = usize::MAX;

/// Reusable buffers for the sequence-dependent probes and builder.
///
/// One scratch serves any number of probes/builds (and grows to the largest
/// instance it has seen); results are identical to using a fresh scratch.
#[derive(Debug, Default)]
pub struct SeqDepScratch {
    /// Classes in placement order (heaviest first).
    order: Vec<usize>,
    /// Placement weight per class: `min-in + proc`.
    weight: Vec<u64>,
    /// Finish time per machine slot.
    finish: Vec<u64>,
    /// Last class per machine slot ([`FRESH`] = none yet).
    last: Vec<usize>,
    /// Per-machine class orders of the latest accepted run (outer and inner
    /// vectors are recycled across runs).
    orders: Vec<Vec<usize>>,
    /// Machine slots in play for the current instance (`min(m, c)`).
    used: usize,
}

impl SeqDepScratch {
    /// An empty scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        SeqDepScratch::default()
    }

    /// The per-machine class orders of the latest **accepted** probe/build;
    /// empty after a rejected run (rejections invalidate the buffers, so a
    /// stale or partial assignment can never be mistaken for a result).
    /// Machines `used..m` are idle and omitted.
    #[must_use]
    pub fn orders(&self) -> &[Vec<usize>] {
        &self.orders[..self.used.min(self.orders.len())]
    }

    fn prepare_for(&mut self, inst: &SeqDepInstance) {
        let c = inst.num_classes();
        let used = inst.machines().min(c);
        self.used = used;
        self.weight.clear();
        self.weight
            .extend((0..c).map(|j| inst.min_in(j) + inst.class_proc(j)));
        self.order.clear();
        self.order.extend(0..c);
        let weight = &self.weight;
        self.order
            .sort_unstable_by_key(|&j| (core::cmp::Reverse(weight[j]), j));
        if self.finish.len() < used {
            self.finish.resize(used, 0);
            self.last.resize(used, FRESH);
        }
        self.finish[..used].fill(0);
        self.last[..used].fill(FRESH);
        if self.orders.len() < used {
            self.orders.resize_with(used, Vec::new);
        }
        for o in &mut self.orders[..used] {
            o.clear();
        }
    }

    /// The shared greedy: place every class under per-machine ceiling `cap`.
    /// Returns `false` (rejection) as soon as a class fits on no machine.
    /// On success the scratch holds the orders/finish times of the run.
    fn place_all(&mut self, inst: &SeqDepInstance, cap: u64) -> bool {
        self.prepare_for(inst);
        let used = self.used;
        for k in 0..self.order.len() {
            let class = self.order[k];
            let proc = inst.class_proc(class);
            // Cheapest feasible switch; ties by finish time, then index (the
            // run is fully deterministic).
            let mut best: Option<(u64, u64, usize)> = None;
            for u in 0..used {
                let last = self.last[u];
                let setup = if last == FRESH {
                    inst.initial(class)
                } else {
                    inst.switch(last, class)
                };
                let f = self.finish[u] + setup + proc;
                if f > cap {
                    continue;
                }
                let cand = (setup, f, u);
                if best.is_none_or(|b| cand < b) {
                    best = Some(cand);
                }
            }
            let Some((_, f, u)) = best else {
                // Invalidate the partially-filled orders: `orders()` exposes
                // accepted runs only.
                self.used = 0;
                return false;
            };
            self.finish[u] = f;
            self.last[u] = class;
            self.orders[u].push(class);
        }
        true
    }
}

/// The capacity of a guess `T`: the greedy's per-machine ceiling `⌊2T⌋`
/// (all finish times are integral, so flooring loses nothing).
fn capacity(t: Rational) -> u64 {
    let c = (t * 2u64).floor();
    if c <= 0 {
        0
    } else {
        c as u64
    }
}

/// The dual-style accept test at guess `t`: `true` iff the capacity-bounded
/// greedy places every class within `2t` per machine. Acceptance is
/// constructive (a schedule of makespan `<= 2t` exists); rejection is
/// heuristic evidence only. `O(c·min(m,c))` — linear in the switch matrix.
#[must_use]
pub fn probe_in(scratch: &mut SeqDepScratch, inst: &SeqDepInstance, t: Rational) -> bool {
    scratch.place_all(inst, capacity(t))
}

/// A guess [`probe_in`] is guaranteed to accept: half the sequential weight
/// (every class then fits on the least-loaded machine), floored at
/// [`t_min`](crate::t_min).
#[must_use]
pub fn t_safe(inst: &SeqDepInstance) -> Rational {
    crate::t_min(inst).max(Rational::from(inst.sequential_weight()).half())
}

/// Builds the greedy schedule at an accepted guess `t`, streaming it into
/// `sink`: per machine, alternating setups (initial or switch-over, tagged
/// with the *target* class) and one piece per class (`job = class`,
/// zero-work classes contribute only their setup). Returns `false` if the
/// greedy rejects `t` (the sink then holds nothing).
///
/// The class orders of the run remain readable via
/// [`SeqDepScratch::orders`]; `inst.makespan(orders)` equals the emitted
/// schedule's makespan whenever every class has positive entry cost or work.
#[must_use]
pub fn build_into<S: PlacementSink>(
    scratch: &mut SeqDepScratch,
    inst: &SeqDepInstance,
    t: Rational,
    sink: &mut S,
) -> bool {
    if !scratch.place_all(inst, capacity(t)) {
        return false;
    }
    emit_orders(inst, scratch.orders(), sink);
    true
}

/// Streams an assignment into `sink` using the solver's emission
/// convention: per machine, alternating setups (initial or switch-over,
/// tagged with the *target* class) and one piece per class (`job = class`);
/// zero-length items are dropped. The single source of truth for how
/// seqdep schedules become placements — [`build_into`] and the unified
/// surface's order-based emitters both call it.
pub fn emit_orders<S: PlacementSink>(inst: &SeqDepInstance, orders: &[Vec<usize>], sink: &mut S) {
    for (u, order) in orders.iter().enumerate() {
        let mut cursor = Rational::ZERO;
        let mut last: Option<usize> = None;
        for &class in order {
            let setup = Rational::from(inst.setup_into(last, class));
            if setup.is_positive() {
                sink.place_setup(u, cursor, setup, class);
            }
            cursor += setup;
            let proc = Rational::from(inst.class_proc(class));
            if proc.is_positive() {
                sink.place_piece(u, cursor, proc, class, class);
            }
            cursor += proc;
            last = Some(class);
        }
    }
}

#[cfg(test)]
mod tests {
    use bss_schedule::Schedule;

    use super::*;
    use crate::{class_lower_bound, exact_single_machine, load_lower_bound, t_min};

    fn random_instance(seed: u64, c: usize, m: usize) -> SeqDepInstance {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let switch: Vec<Vec<u64>> = (0..c)
            .map(|i| {
                (0..c)
                    .map(|j| if i == j { 0 } else { rng.gen_range(1..40) })
                    .collect()
            })
            .collect();
        let initial: Vec<u64> = (0..c).map(|_| rng.gen_range(1..40)).collect();
        let work: Vec<u64> = (0..c).map(|_| rng.gen_range(1..80)).collect();
        SeqDepInstance::new(m, initial, switch, work).unwrap()
    }

    #[test]
    fn accepted_probe_is_constructive() {
        for seed in 0..20 {
            let inst = random_instance(seed, 12, 3);
            let mut scratch = SeqDepScratch::new();
            let t = t_safe(&inst);
            assert!(probe_in(&mut scratch, &inst, t), "t_safe must be accepted");
            let orders: Vec<Vec<usize>> = scratch.orders().to_vec();
            let makespan = inst.makespan(&orders);
            assert!(
                Rational::from(makespan) <= t * 2u64,
                "makespan {makespan} > 2*{t}"
            );
        }
    }

    #[test]
    fn build_matches_orders_and_sink() {
        for seed in 0..20 {
            let inst = random_instance(seed, 10, 4);
            let mut scratch = SeqDepScratch::new();
            let t = t_safe(&inst);
            let mut out = Schedule::new(inst.machines());
            assert!(build_into(&mut scratch, &inst, t, &mut out));
            let orders: Vec<Vec<usize>> = scratch.orders().to_vec();
            // The streamed schedule's makespan equals the evaluator's.
            assert_eq!(out.makespan(), Rational::from(inst.makespan(&orders)));
            // One setup per class (all setups positive in this family), one
            // piece per class (all procs positive).
            assert_eq!(out.num_setups(), inst.num_classes());
            assert_eq!(out.num_pieces(), inst.num_classes());
        }
    }

    #[test]
    fn smaller_guesses_spread_load() {
        // Uniform-ish instance: at t_safe the cheapest-switch rule may chain
        // heavily; near t_min the ceiling forces a spread.
        let inst = random_instance(7, 16, 4);
        let mut scratch = SeqDepScratch::new();
        assert!(probe_in(&mut scratch, &inst, t_safe(&inst)));
        let lo = t_min(&inst);
        // Find an accepted guess close to the lower bound by doubling.
        let mut t = lo;
        while !probe_in(&mut scratch, &inst, t) {
            t = t * Rational::new(5, 4);
        }
        let tight: Vec<Vec<usize>> = scratch.orders().to_vec();
        let tight_makespan = inst.makespan(&tight);
        assert!(Rational::from(tight_makespan) <= t * 2u64);
        // The tight run uses more than one machine on this family.
        assert!(tight.iter().filter(|o| !o.is_empty()).count() > 1);
    }

    #[test]
    fn rejection_below_trivial_bounds() {
        let inst = random_instance(3, 8, 2);
        let mut scratch = SeqDepScratch::new();
        // At half the load lower bound the ceiling 2t is below the average
        // machine load — the greedy cannot fit everything.
        let t = load_lower_bound(&inst).half().half();
        assert!(!probe_in(&mut scratch, &inst, t));
        // And nothing was committed to a sink on rejection.
        let mut out = Schedule::new(inst.machines());
        assert!(!build_into(&mut scratch, &inst, t, &mut out));
        assert!(out.placements().is_empty());
    }

    #[test]
    fn single_machine_stays_close_to_exact() {
        for seed in 0..10 {
            let inst = random_instance(seed, 9, 1);
            let mut scratch = SeqDepScratch::new();
            let t = t_safe(&inst);
            assert!(probe_in(&mut scratch, &inst, t));
            let orders: Vec<Vec<usize>> = scratch.orders().to_vec();
            let got = inst.makespan(&orders);
            let exact = exact_single_machine(&inst);
            assert!(got >= exact);
            assert!(got <= 3 * exact, "greedy {got} vs exact {exact}");
        }
    }

    #[test]
    fn scratch_reuse_is_deterministic() {
        let inst = random_instance(11, 14, 3);
        let mut warm = SeqDepScratch::new();
        // Warm the scratch on a different instance first.
        let other = random_instance(12, 20, 5);
        let _ = probe_in(&mut warm, &other, t_safe(&other));
        let t = t_safe(&inst);
        assert!(probe_in(&mut warm, &inst, t));
        let a: Vec<Vec<usize>> = warm.orders().to_vec();
        let mut fresh = SeqDepScratch::new();
        assert!(probe_in(&mut fresh, &inst, t));
        assert_eq!(a, fresh.orders());
    }

    #[test]
    fn lower_bound_consistency() {
        for seed in 0..10 {
            let inst = random_instance(seed, 8, 3);
            assert!(t_min(&inst) >= load_lower_bound(&inst));
            assert!(t_min(&inst) >= Rational::from(class_lower_bound(&inst)));
            assert!(t_safe(&inst) >= t_min(&inst));
        }
    }
}
