//! Degenerate-shape coverage for `reduce::from_instance` (and its inverse),
//! the `Instance → SeqDepInstance` embedding: single-class instances, the
//! `c = 1` vs machine-capacity edge, minimal (unit) setups, the
//! all-zero-setup seqdep shapes that sit *outside* the embedding's image —
//! and the hotspot guard pinning the embedding to its streamed `O(c)`
//! backing (no `c×c` matrix materialization at large class counts).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use bss_instance::InstanceBuilder;
use bss_seqdep::reduce::{from_instance, is_uniform, to_uniform_instance, ReductionError};
use bss_seqdep::{nearest_neighbor_schedule, t_min, SeqDepInstance};

/// Byte-counting allocator: the hotspot guard asserts `from_instance` stays
/// `O(c)` in *allocated bytes*, which a reintroduced dense matrix (50 MB at
/// `c = 2500`) cannot hide from, however fast the machine.
struct CountingAllocator;

static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATED_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocated_bytes() -> u64 {
    ALLOCATED_BYTES.load(Ordering::Relaxed)
}

/// `c = 1`: the switch matrix degenerates to the 1×1 zero matrix and the
/// entire setup structure lives in `initial`.
#[test]
fn single_class_embeds_and_round_trips() {
    let mut b = InstanceBuilder::new(3);
    b.add_batch(7, &[4, 9, 2]);
    let inst = b.build().unwrap();

    let sd = from_instance(&inst);
    assert_eq!(sd.num_classes(), 1);
    assert_eq!(sd.machines(), 3);
    assert_eq!(sd.initial(0), 7);
    assert_eq!(sd.switch(0, 0), 0);
    assert_eq!(sd.class_proc(0), 4 + 9 + 2);
    // min/max entry costs collapse to the initial setup.
    assert_eq!(sd.min_in(0), 7);
    assert_eq!(sd.max_in(0), 7);

    // The embedding is uniform by construction and bit-exact under the
    // reverse reduction: one job per class carrying the aggregated work.
    assert!(is_uniform(&sd));
    let back = to_uniform_instance(&sd).unwrap();
    assert_eq!(back.machines(), 3);
    assert_eq!(back.num_classes(), 1);
    assert_eq!(back.setup(0), 7);
    assert_eq!(back.class_proc(0), 15);
    assert_eq!(from_instance(&back), sd);
}

/// `c = 1` with `m > c`: only one machine can ever be used — the capacity
/// edge where per-machine reasoning must not index past the class count.
#[test]
fn single_class_many_machines_capacity_edge() {
    for m in [1usize, 2, 5, 16] {
        let mut b = InstanceBuilder::new(m);
        b.add_batch(3, &[5, 6]);
        let inst = b.build().unwrap();
        let sd = from_instance(&inst);
        assert_eq!(sd.machines(), m);

        let orders = nearest_neighbor_schedule(&sd);
        sd.check_orders(&orders).unwrap();
        // All work lands on one machine: setup + both jobs.
        assert_eq!(sd.makespan(&orders), 3 + 11);
        // The instance-only lower bound agrees exactly on this shape.
        assert_eq!(t_min(&sd), bss_rational::Rational::from(14u64));
    }
}

/// Unit setups everywhere — the batch-setup model's minimum (`s_i >= 1`),
/// i.e. the closest representable shape to "free" setups. The embedding
/// must keep them at exactly 1 off the diagonal and 0 on it.
#[test]
fn minimal_unit_setups_stay_exact() {
    let mut b = InstanceBuilder::new(2);
    for _ in 0..4 {
        let class = b.add_class(1);
        b.add_job(class, 1);
    }
    let inst = b.build().unwrap();
    let sd = from_instance(&inst);
    for i in 0..4 {
        assert_eq!(sd.initial(i), 1);
        assert_eq!(sd.min_in(i), 1);
        for j in 0..4 {
            assert_eq!(sd.switch(i, j), u64::from(i != j));
        }
    }
    assert!(is_uniform(&sd));
    assert_eq!(from_instance(&to_uniform_instance(&sd).unwrap()), sd);
}

/// All-zero setup matrices are expressible in the sequence-dependent model
/// but lie outside `from_instance`'s image (the batch-setup model requires
/// `s_i >= 1`): the reverse reduction must reject them with the precise
/// error rather than fabricating a zero-setup `Instance`.
#[test]
fn all_zero_setups_are_outside_the_embedding_image() {
    // Zero switches *and* zero-free initials: rejected as ZeroSetup.
    let sd = SeqDepInstance::new(2, vec![0, 0], vec![vec![0, 0], vec![0, 0]], vec![3, 4]).unwrap();
    assert_eq!(
        to_uniform_instance(&sd).unwrap_err(),
        ReductionError::ZeroSetup { class: 0 }
    );
    assert!(!is_uniform(&sd));
    // The degenerate all-zero instance still has well-defined bounds
    // (everything is work-driven).
    assert_eq!(sd.min_in(0), 0);
    assert!(t_min(&sd) >= bss_rational::Rational::from(4u64));

    // Zero switches under *positive* initials: genuinely sequence-dependent
    // (switching is free, starting is not) — rejected as NonUniform.
    let sd = SeqDepInstance::new(2, vec![5, 5], vec![vec![0, 0], vec![0, 0]], vec![3, 4]).unwrap();
    assert_eq!(
        to_uniform_instance(&sd).unwrap_err(),
        // The checker scans target classes outermost, so the first reported
        // violation is the zero switch *into* class 0.
        ReductionError::NonUniform { from: 1, to: 0 }
    );
}

/// The hotspot guard: at `c = 2500` the embedding must stream its uniform
/// switch matrix (`O(c)` vectors), not materialize the `c²` entries the old
/// implementation spent 50 MB and ~74 ms on.
#[test]
fn from_instance_streams_without_materializing_the_matrix() {
    let c = 2_500usize;
    let mut b = InstanceBuilder::new(16);
    for i in 0..c {
        let class = b.add_class((i as u64 % 97) + 1);
        b.add_job(class, (i as u64 % 13) + 1);
    }
    let inst = b.build().unwrap();

    let before = allocated_bytes();
    let sd = from_instance(&inst);
    let grew = allocated_bytes() - before;
    // Streamed backing: a few length-c vectors (~60 KB). The dense matrix
    // would be c² × 8 = 50 MB; the bound is generous only to absorb
    // allocator noise from concurrently running tests in this binary.
    assert!(
        grew < 4_000_000,
        "from_instance allocated {grew} bytes at c = {c}: the switch matrix \
         is being materialized again"
    );
    assert!(sd.has_uniform_backing());
    assert_eq!(sd.num_classes(), c);
    // The streamed entries are exactly the dense embedding's values...
    for i in [0usize, 1, c / 2, c - 1] {
        assert_eq!(sd.switch(i, i), 0);
        for j in [0usize, 3, c / 3, c - 1] {
            if i != j {
                assert_eq!(sd.switch(i, j), inst.setup(j));
            }
        }
        // ...and the entry-cost bounds are O(1) per class, honest anyway.
        assert_eq!(sd.min_in(i), inst.setup(i));
        assert_eq!(sd.max_in(i), inst.setup(i));
    }
    // The reverse reduction recognizes the backing without the O(c²) scan
    // and the round trip stays bit-exact.
    let back = to_uniform_instance(&sd).unwrap();
    assert_eq!(back.num_classes(), c);
    assert_eq!(from_instance(&back), sd);

    // Timing sanity (not golden-diffed): the streamed embedding is
    // micro-seconds; even a loaded CI machine finishes far under the old
    // 74 ms materialization. Best-of-three to shrug off scheduler noise.
    let best = (0..3)
        .map(|_| {
            let t = std::time::Instant::now();
            let sd = from_instance(&inst);
            assert!(sd.has_uniform_backing());
            t.elapsed()
        })
        .min()
        .expect("three runs");
    assert!(
        best < std::time::Duration::from_millis(60),
        "from_instance took {best:?} at c = {c}"
    );
}

/// The uniform embedding at a larger class count: dimensions, entry
/// values and the bit-exact round trip hold across the whole matrix.
#[test]
fn large_class_count_matrix_is_exact() {
    let c = 300;
    let mut b = InstanceBuilder::new(8);
    for i in 0..c {
        let class = b.add_class((i as u64 % 17) + 1);
        b.add_job(class, (i as u64 % 5) + 1);
    }
    let inst = b.build().unwrap();
    let sd = from_instance(&inst);
    assert_eq!(sd.num_classes(), c);
    for i in 0..c {
        assert_eq!(sd.initial(i), inst.setup(i));
        assert_eq!(sd.class_proc(i), inst.class_proc(i));
        assert_eq!(sd.switch(i, i), 0);
        // Spot the full row: uniform column values off the diagonal.
        for j in 0..c {
            if i != j {
                assert_eq!(sd.switch(i, j), inst.setup(j));
            }
        }
    }
    assert!(is_uniform(&sd));
    let back = to_uniform_instance(&sd).unwrap();
    assert_eq!(back.num_classes(), c);
    assert_eq!(from_instance(&back), sd);
}

/// Jobs aggregate per class: an instance with many jobs per class and the
/// single-job instance carrying the same per-class totals embed to the
/// identical seqdep instance (the embedding only sees `P(C_j)`).
#[test]
fn embedding_sees_only_class_totals() {
    let mut a = InstanceBuilder::new(2);
    let c0 = a.add_class(4);
    a.add_job(c0, 1);
    a.add_job(c0, 2);
    a.add_job(c0, 3);
    let c1 = a.add_class(9);
    a.add_job(c1, 5);
    a.add_job(c1, 5);
    let a = a.build().unwrap();

    let mut b = InstanceBuilder::new(2);
    b.add_batch(4, &[6]);
    b.add_batch(9, &[10]);
    let b = b.build().unwrap();

    assert_eq!(from_instance(&a), from_instance(&b));
}
