//! Parallel sweep harness for the benchmark binaries.
//!
//! The repro binaries evaluate many `(instance, algorithm)` cells; the cells
//! are independent, so they fan out over `std::thread::scope` workers (the
//! standard fork-join pattern without a global pool). Results come back in
//! input order.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Applies `f` to every item on `threads` worker threads (defaults to the
/// available parallelism), preserving input order.
///
/// `f` must be `Sync` because workers share it; items are consumed from a
/// shared queue, so uneven cell costs balance automatically.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: Option<usize>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4)
        })
        .clamp(1, n);
    if workers == 1 {
        return items.into_iter().map(f).collect();
    }
    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let next = queue.lock().expect("queue lock").pop_front();
                let Some((idx, item)) = next else { break };
                *slots[idx].lock().expect("slot lock") = Some(f(item));
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("slot lock")
                .expect("every slot filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..100).collect(), Some(4), |x: i32| x * x);
        assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_fallback() {
        let out = parallel_map(vec![1, 2, 3], Some(1), |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), None, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn uneven_work_balances() {
        let out = parallel_map((0..32).collect(), Some(8), |x: u64| {
            // Simulate uneven cell costs.
            let mut acc = 0u64;
            for k in 0..(x * 1000) {
                acc = acc.wrapping_add(k);
            }
            (x, acc)
        });
        assert_eq!(out.len(), 32);
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(*x as usize, i);
        }
    }
}
