//! Parallel sweep harness for the benchmark binaries.
//!
//! The repro binaries evaluate many `(instance, algorithm)` cells; the cells
//! are independent, so they fan out over `std::thread::scope` workers (the
//! standard fork-join pattern without a global pool). Results come back in
//! input order.
//!
//! Scheduling is chunked work-stealing: the items are pre-split into small
//! contiguous chunks (several per worker, so uneven cell costs still
//! balance) and workers claim chunks through one atomic cursor. Each chunk
//! carries disjoint `&mut` slices of the item and result storage, so inside
//! a chunk there is no synchronization at all — unlike the previous design,
//! which paid a queue lock per item and a mutex per result slot.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use bss_budget::{Interrupt, SolveBudget};

/// How many chunks each worker gets on average; >1 so that a handful of
/// expensive cells cannot serialize the sweep behind one worker.
const CHUNKS_PER_WORKER: usize = 8;

/// Minimum items per chunk before it is worth splitting work across an
/// extra claim of the cursor. Utilization still wins when the input is
/// smaller than the grain would allow: `chunk_plan` shrinks the grain
/// rather than idling workers.
const MIN_GRAIN: usize = 2;

/// A chunked work-stealing layout for `items` units of work on up to
/// `threads` workers, as computed by [`chunk_plan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkPlan {
    /// Number of worker threads to spawn. Always `>= 1` and `<= items`
    /// (when `items > 0`), so tiny inputs never spawn idle threads.
    pub workers: usize,
    /// Items per chunk (the last chunk may be partial). Always `>= 1`.
    pub chunk_len: usize,
    /// Total number of chunks: `ceil(items / chunk_len)`.
    pub chunks: usize,
}

/// Sizes chunks and workers for `items` units of work on up to `threads`
/// workers.
///
/// The base grain is `ceil(items / threads)` split `CHUNKS_PER_WORKER` (8)
/// ways so uneven costs balance, floored at `MIN_GRAIN` (2) so trivial items
/// don't pay a cursor claim each — except when honouring the grain would
/// leave workers idle, in which case the grain shrinks (utilization beats
/// amortization on tiny inputs). Guarantees `workers <= chunks <= items`:
/// a 3-item sweep on a 64-thread box spawns 3 workers, not 64.
///
/// # Panics
/// If `items == 0` or `threads == 0`; callers handle the empty sweep before
/// planning it.
#[must_use]
pub fn chunk_plan(items: usize, threads: usize) -> ChunkPlan {
    assert!(items > 0, "chunk_plan needs work to plan");
    assert!(threads > 0, "chunk_plan needs at least one worker");
    let per_worker = items.div_ceil(threads);
    let fine = items.div_ceil(threads * CHUNKS_PER_WORKER);
    let chunk_len = fine.max(MIN_GRAIN.min(per_worker));
    let chunks = items.div_ceil(chunk_len);
    ChunkPlan {
        workers: threads.min(chunks),
        chunk_len,
        chunks,
    }
}

/// Applies `f` to every item on `threads` worker threads (defaults to the
/// available parallelism), preserving input order.
///
/// `f` must be `Sync` because workers share it.
///
/// # Panics
/// If `f` panics for some item, the panic is re-raised on the calling thread
/// after all workers have drained, prefixed (via stderr) with the index of
/// the failing item — instead of the old behaviour of poisoning a result
/// slot and failing later with a misleading `"every slot filled"` message.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: Option<usize>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let (results, interrupt) = parallel_map_budgeted(items, threads, &SolveBudget::unlimited(), f);
    debug_assert!(interrupt.is_none(), "unlimited budget never interrupts");
    results
        .into_iter()
        .map(|r| r.expect("all chunks processed"))
        .collect()
}

/// [`parallel_map`] under a cooperative [`SolveBudget`]: the budget is
/// polled before every item, and once it trips (deadline, cancellation,
/// work exhausted by the solves inside `f`) the remaining items are
/// *skipped*, coming back as `None` alongside the interrupt that stopped
/// the sweep. Finished items keep their results — a deadline on a study
/// loses the tail of the grid, not the rows already computed.
///
/// `f` must be `Sync` because workers share it.
///
/// # Panics
/// Same contract as [`parallel_map`]: a panicking item is re-raised on the
/// calling thread after the workers drain.
pub fn parallel_map_budgeted<T, R, F>(
    items: Vec<T>,
    threads: Option<usize>,
    budget: &SolveBudget,
    f: F,
) -> (Vec<Option<R>>, Option<Interrupt>)
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return (Vec::new(), None);
    }
    let requested = threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4)
        })
        .max(1);
    let plan = chunk_plan(n, requested);
    let workers = plan.workers;
    if workers == 1 {
        let mut out = Vec::with_capacity(n);
        let mut interrupt = None;
        for item in items {
            if interrupt.is_none() {
                match budget.poll() {
                    Ok(()) => {
                        out.push(Some(f(item)));
                        continue;
                    }
                    Err(i) => interrupt = Some(i),
                }
            }
            out.push(None);
        }
        return (out, interrupt);
    }

    // Striped chunk layout from the shared plan, claimed via one atomic
    // cursor. Items and results travel as disjoint slices, so workers write
    // results without locks; the per-chunk mutex is taken exactly once, to
    // move the slices out.
    let chunk_len = plan.chunk_len;
    let mut item_slots: Vec<Option<T>> = items.into_iter().map(Some).collect();
    let mut result_slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    type Chunk<'a, T, R> = (usize, &'a mut [Option<T>], &'a mut [Option<R>]);
    let chunks: Vec<Mutex<Option<Chunk<'_, T, R>>>> = {
        let mut out = Vec::with_capacity(n.div_ceil(chunk_len));
        let mut base = 0usize;
        let mut items_rest = item_slots.as_mut_slice();
        let mut results_rest = result_slots.as_mut_slice();
        while !items_rest.is_empty() {
            let take = chunk_len.min(items_rest.len());
            let (ichunk, irest) = items_rest.split_at_mut(take);
            let (rchunk, rrest) = results_rest.split_at_mut(take);
            out.push(Mutex::new(Some((base, ichunk, rchunk))));
            items_rest = irest;
            results_rest = rrest;
            base += take;
        }
        out
    };
    let cursor = AtomicUsize::new(0);
    let aborted = AtomicBool::new(false);
    // First panic wins: (item index, panic payload).
    let failure: Mutex<Option<(usize, Box<dyn std::any::Any + Send>)>> = Mutex::new(None);
    // First interrupt wins; later items are skipped via `aborted`.
    let interrupted: Mutex<Option<Interrupt>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                if aborted.load(Ordering::Relaxed) {
                    break;
                }
                let chunk_idx = cursor.fetch_add(1, Ordering::Relaxed);
                if chunk_idx >= chunks.len() {
                    break;
                }
                let Some((base, item_chunk, result_chunk)) =
                    chunks[chunk_idx].lock().expect("chunk lock").take()
                else {
                    continue;
                };
                for (off, (slot, result)) in item_chunk
                    .iter_mut()
                    .zip(result_chunk.iter_mut())
                    .enumerate()
                {
                    if let Err(i) = budget.poll() {
                        let mut slot = interrupted.lock().expect("interrupt lock");
                        if slot.is_none() {
                            *slot = Some(i);
                        }
                        aborted.store(true, Ordering::Relaxed);
                        return;
                    }
                    let item = slot.take().expect("chunk items taken once");
                    match catch_unwind(AssertUnwindSafe(|| f(item))) {
                        Ok(r) => *result = Some(r),
                        Err(payload) => {
                            let mut slot = failure.lock().expect("failure lock");
                            if slot.is_none() {
                                *slot = Some((base + off, payload));
                            }
                            aborted.store(true, Ordering::Relaxed);
                            return;
                        }
                    }
                }
            });
        }
    });

    if let Some((idx, payload)) = failure.into_inner().expect("failure lock") {
        eprintln!("parallel_map: worker panicked on item {idx}; propagating");
        resume_unwind(payload);
    }
    let interrupt = interrupted.into_inner().expect("interrupt lock");
    (result_slots, interrupt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..100).collect(), Some(4), |x: i32| x * x);
        assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_fallback() {
        let out = parallel_map(vec![1, 2, 3], Some(1), |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), None, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn worker_panic_propagates_with_item_index() {
        let caught = std::panic::catch_unwind(|| {
            parallel_map((0..64).collect(), Some(4), |x: i32| {
                if x == 23 {
                    panic!("bad cell {x}");
                }
                x
            })
        });
        let payload = caught.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .expect("panic payload is the worker's message");
        assert_eq!(msg, "bad cell 23");
    }

    #[test]
    fn single_thread_panic_also_propagates() {
        let caught = std::panic::catch_unwind(|| {
            parallel_map(vec![1, 2, 3], Some(1), |x: i32| {
                if x == 2 {
                    panic!("boom");
                }
                x
            })
        });
        assert!(caught.is_err());
    }

    #[test]
    fn more_items_than_chunks_round_trips() {
        // Exercises multi-chunk claiming with every chunk shape: n chosen so
        // the last chunk is partial.
        let n = 8 * super::CHUNKS_PER_WORKER * 3 + 5;
        let out = parallel_map((0..n as i64).collect(), Some(8), |x| x * 2);
        assert_eq!(out, (0..n as i64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn budgeted_cancel_skips_remaining_items() {
        let token = bss_budget::CancelToken::new();
        let budget = SolveBudget::unlimited().with_cancel(&token);
        let done = AtomicUsize::new(0);
        let (out, interrupt) =
            parallel_map_budgeted((0..64).collect(), Some(4), &budget, |x: i32| {
                if done.fetch_add(1, Ordering::Relaxed) >= 7 {
                    token.cancel();
                }
                x * x
            });
        assert_eq!(interrupt, Some(Interrupt::Cancelled));
        assert_eq!(out.len(), 64);
        assert!(out.iter().any(Option::is_none), "tail items skipped");
        for (i, r) in out.iter().enumerate() {
            if let Some(v) = r {
                assert_eq!(*v, (i * i) as i32);
            }
        }
    }

    #[test]
    fn budgeted_single_thread_cancel() {
        let token = bss_budget::CancelToken::new();
        let budget = SolveBudget::unlimited().with_cancel(&token);
        let (out, interrupt) =
            parallel_map_budgeted(vec![1, 2, 3, 4], Some(1), &budget, |x: i32| {
                if x == 2 {
                    token.cancel();
                }
                x
            });
        assert_eq!(interrupt, Some(Interrupt::Cancelled));
        assert_eq!(out, vec![Some(1), Some(2), None, None]);
    }

    #[test]
    fn budgeted_unlimited_completes_everything() {
        let (out, interrupt) = parallel_map_budgeted(
            (0..40).collect(),
            Some(4),
            &SolveBudget::unlimited(),
            |x: i32| x + 1,
        );
        assert_eq!(interrupt, None);
        assert!(out.iter().all(Option::is_some));
    }

    #[test]
    fn chunk_plan_never_overspawns_tiny_inputs() {
        for items in 1..=6usize {
            for threads in 1..=64usize {
                let plan = chunk_plan(items, threads);
                assert!(plan.workers >= 1);
                assert!(
                    plan.workers <= items,
                    "{items} items, {threads} threads -> {} workers",
                    plan.workers
                );
                assert!(plan.workers <= threads);
                assert!(plan.workers <= plan.chunks);
                assert_eq!(plan.chunks, items.div_ceil(plan.chunk_len));
            }
        }
    }

    #[test]
    fn chunk_plan_keeps_all_workers_busy_on_large_inputs() {
        // Plenty of work: every requested thread gets several chunks.
        let plan = chunk_plan(10_000, 8);
        assert_eq!(plan.workers, 8);
        assert!(plan.chunks >= 8 * 4, "chunks = {}", plan.chunks);
        // And the grain holds: no 1-item chunks when there is slack.
        assert!(plan.chunk_len >= super::MIN_GRAIN);
    }

    #[test]
    fn chunk_plan_shrinks_grain_before_idling_workers() {
        // 3 items on 8 threads: the grain yields so all 3 items can run
        // concurrently rather than pairing two behind one worker.
        let plan = chunk_plan(3, 8);
        assert_eq!(plan.chunk_len, 1);
        assert_eq!(plan.workers, 3);
    }

    #[test]
    fn tiny_sweep_uses_at_most_one_thread_per_item() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        for n in 1..=4usize {
            let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
            let out = parallel_map((0..n as i32).collect(), Some(16), |x| {
                seen.lock()
                    .expect("seen lock")
                    .insert(std::thread::current().id());
                x + 1
            });
            assert_eq!(out, (1..=n as i32).collect::<Vec<_>>());
            let distinct = seen.into_inner().expect("seen lock").len();
            assert!(
                distinct <= n,
                "{n} items ran on {distinct} distinct threads"
            );
        }
    }

    #[test]
    fn uneven_work_balances() {
        let out = parallel_map((0..32).collect(), Some(8), |x: u64| {
            // Simulate uneven cell costs.
            let mut acc = 0u64;
            for k in 0..(x * 1000) {
                acc = acc.wrapping_add(k);
            }
            (x, acc)
        });
        assert_eq!(out.len(), 32);
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(*x as usize, i);
        }
    }
}
