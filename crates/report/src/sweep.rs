//! Parallel sweep harness for the benchmark binaries.
//!
//! The repro binaries evaluate many `(instance, algorithm)` cells; the cells
//! are independent, so they fan out over crossbeam scoped threads (the
//! guide-recommended pattern for fork-join workloads without a global pool).
//! Results come back in input order.

use crossbeam::channel;
use parking_lot::Mutex;

/// Applies `f` to every item on `threads` worker threads (defaults to the
/// available parallelism), preserving input order.
///
/// `f` must be `Sync` because workers share it; items are consumed from a
/// shared queue, so uneven cell costs balance automatically.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: Option<usize>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4)
        })
        .clamp(1, n);
    if workers == 1 {
        return items.into_iter().map(f).collect();
    }
    let (tx, rx) = channel::unbounded::<(usize, T)>();
    for pair in items.into_iter().enumerate() {
        tx.send(pair).expect("open channel");
    }
    drop(tx);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    crossbeam::scope(|scope| {
        for _ in 0..workers {
            let rx = rx.clone();
            let slots = &slots;
            let f = &f;
            scope.spawn(move |_| {
                while let Ok((idx, item)) = rx.recv() {
                    *slots[idx].lock() = Some(f(item));
                }
            });
        }
    })
    .expect("workers do not panic");
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..100).collect(), Some(4), |x: i32| x * x);
        assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_fallback() {
        let out = parallel_map(vec![1, 2, 3], Some(1), |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), None, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn uneven_work_balances() {
        let out = parallel_map((0..32).collect(), Some(8), |x: u64| {
            // Simulate uneven cell costs.
            let mut acc = 0u64;
            for k in 0..(x * 1000) {
                acc = acc.wrapping_add(k);
            }
            (x, acc)
        });
        assert_eq!(out.len(), 32);
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(*x as usize, i);
        }
    }
}
