//! Reporting substrate: ASCII Gantt rendering (figure regeneration), table
//! and CSV writers, summary statistics, scaling fits, timing helpers and a
//! scoped-thread parallel sweep harness for the benchmark binaries.

mod gantt;
mod solution;
mod stats;
mod sweep;
mod table;
mod timing;

pub use gantt::{render_gantt, GanttOptions};
pub use solution::{solution_summary, solution_table};
pub use stats::{fit_loglog, Summary};
pub use sweep::{chunk_plan, parallel_map, parallel_map_budgeted, ChunkPlan};
pub use table::Table;
pub use timing::{time, time_best_of};
