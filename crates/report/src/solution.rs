//! Rendering of unified-surface [`Solution`]s.
//!
//! Every problem on the [`bss_core::Problem`] surface — the three batch-setup
//! variants *and* sequence-dependent instances — produces the same
//! [`Solution`] type, so one renderer serves the CLI, the examples and the
//! repro binaries alike.

use bss_core::Solution;

use crate::Table;

/// A multi-line text block with the solution's guarantees — makespan,
/// accepted guess, the proven ratio bound, the certified a-posteriori
/// quality, and the probe count. `problem` labels the first line (a variant
/// name such as `preemptive` or `seqdep`).
#[must_use]
pub fn solution_summary(problem: &str, sol: &Solution) -> String {
    let mut out = String::new();
    let mut line = |k: &str, v: String| {
        out.push_str(&format!("{k:<15}{v}\n"));
    };
    line("problem", problem.to_string());
    line(
        "makespan",
        format!("{}  (~{:.2})", sol.makespan, sol.makespan.to_f64()),
    );
    line("accepted T", sol.accepted.to_string());
    line("ratio bound", format!("{} x OPT", sol.ratio_bound));
    line(
        "certified",
        format!(
            "makespan/OPT <= {:.4}",
            (sol.makespan / sol.certificate).to_f64()
        ),
    );
    line("dual probes", sol.probes.to_string());
    // Only degraded solves carry the line: the everyday full solve renders
    // exactly as before the anytime layer existed.
    if !sol.completion.is_full() {
        line("completion", sol.completion.to_string());
    }
    out
}

/// One [`Table`] row per labelled solution — the cross-problem comparison
/// view (e.g. a batch-setup variant against its sequence-dependent
/// embedding).
#[must_use]
pub fn solution_table<'a>(rows: impl IntoIterator<Item = (&'a str, &'a Solution)>) -> Table {
    let mut t = Table::new(&[
        "problem",
        "makespan",
        "accepted",
        "ratio bound",
        "certified ratio",
        "probes",
    ]);
    for (label, sol) in rows {
        t.row(&[
            label.to_string(),
            format!("{:.2}", sol.makespan.to_f64()),
            format!("{:.2}", sol.accepted.to_f64()),
            sol.ratio_bound.to_string(),
            format!("{:.4}", (sol.makespan / sol.certificate).to_f64()),
            sol.probes.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use bss_core::Algorithm;
    use bss_instance::Variant;

    #[test]
    fn summary_and_table_cover_both_problem_kinds() {
        let inst = bss_gen::uniform(30, 5, 3, 1);
        let bss = bss_core::solve(&inst, Variant::Preemptive, Algorithm::ThreeHalves);
        let sd_inst = bss_gen::seqdep::triangle_violating(10, 3, 1);
        let sd = bss_core::solve_seqdep(&sd_inst, Algorithm::ThreeHalves);

        let text = solution_summary("preemptive", &bss);
        assert!(text.contains("preemptive"));
        assert!(text.contains("ratio bound"));
        let text = solution_summary("seqdep", &sd);
        assert!(text.contains("seqdep"));

        let table = solution_table([("preemptive", &bss), ("seqdep", &sd)]);
        assert_eq!(table.len(), 2);
        let rendered = table.to_aligned();
        assert!(rendered.contains("seqdep"));
    }
}
