//! Aligned-text / markdown / CSV table writer for the repro binaries.

/// A simple row-oriented table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: ToString>(&mut self, cells: &[S]) -> &mut Self {
        let mut row: Vec<String> = cells.iter().map(S::to_string).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` iff there are no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns (for terminals and text files).
    #[must_use]
    pub fn to_aligned(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (k, cell) in row.iter().enumerate().take(cols) {
                widths[k] = widths[k].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as a GitHub-flavored markdown table.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Renders as CSV (no quoting; callers keep cells comma-free).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(&["algo", "ratio", "time"]);
        t.row(&["jumping", "1.12", "3.4ms"]);
        t.row(&["eps", "1.13", "5.1ms"]);
        t
    }

    #[test]
    fn aligned_contains_all_cells() {
        let text = sample().to_aligned();
        for needle in ["algo", "ratio", "jumping", "5.1ms"] {
            assert!(text.contains(needle), "{needle}");
        }
        assert_eq!(text.lines().count(), 4);
    }

    #[test]
    fn markdown_shape() {
        let md = sample().to_markdown();
        assert!(md.starts_with("| algo | ratio | time |"));
        assert_eq!(md.lines().count(), 4);
        assert!(md.lines().nth(1).unwrap().contains("---"));
    }

    #[test]
    fn csv_roundtrip_shape() {
        let csv = sample().to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert_eq!(csv.lines().next().unwrap(), "algo,ratio,time");
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only"]);
        assert_eq!(t.to_csv().lines().nth(1).unwrap(), "only,");
        assert!(!t.is_empty());
        assert_eq!(t.len(), 1);
    }
}
