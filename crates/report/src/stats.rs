//! Summary statistics and log-log scaling fits for the running-time studies.

/// Five-number-ish summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 for n < 2).
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// Median.
    pub median: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes `xs`; returns zeros for an empty sample.
    #[must_use]
    pub fn of(xs: &[f64]) -> Summary {
        if xs.is_empty() {
            return Summary {
                n: 0,
                mean: 0.0,
                stddev: 0.0,
                min: 0.0,
                median: 0.0,
                max: 0.0,
            };
        }
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        Summary {
            n,
            mean,
            stddev: var.sqrt(),
            min: sorted[0],
            median,
            max: sorted[n - 1],
        }
    }
}

/// Least-squares slope of `log y` against `log x` — the empirical scaling
/// exponent (1.0 ≈ linear, 2.0 ≈ quadratic). Returns `None` for fewer than
/// two distinct positive points.
#[must_use]
pub fn fit_loglog(xs: &[f64], ys: &[f64]) -> Option<f64> {
    assert_eq!(xs.len(), ys.len());
    let pts: Vec<(f64, f64)> = xs
        .iter()
        .zip(ys)
        .filter(|(x, y)| **x > 0.0 && **y > 0.0)
        .map(|(x, y)| (x.ln(), y.ln()))
        .collect();
    if pts.len() < 2 {
        return None;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    Some((n * sxy - sx * sy) / denom)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert!(s.stddev > 1.0 && s.stddev < 1.4);
    }

    #[test]
    fn summary_empty_and_single() {
        assert_eq!(Summary::of(&[]).n, 0);
        let s = Summary::of(&[7.0]);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.stddev, 0.0);
    }

    #[test]
    fn loglog_fits_powers() {
        let xs: Vec<f64> = (1..=10).map(|k| (k * k) as f64).collect();
        // y = 3 x^1.0
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x).collect();
        let slope = fit_loglog(&xs, &ys).unwrap();
        assert!((slope - 1.0).abs() < 1e-9);
        // y = x^2
        let ys: Vec<f64> = xs.iter().map(|x| x * x).collect();
        let slope = fit_loglog(&xs, &ys).unwrap();
        assert!((slope - 2.0).abs() < 1e-9);
    }

    #[test]
    fn loglog_degenerate() {
        assert_eq!(fit_loglog(&[1.0], &[1.0]), None);
        assert_eq!(fit_loglog(&[2.0, 2.0], &[3.0, 5.0]), None);
        assert_eq!(fit_loglog(&[0.0, 1.0], &[1.0, 1.0]), None);
    }
}
