//! ASCII Gantt rendering of schedules — regenerates the paper's figures.
//!
//! Machines are rows, time flows right, setups are drawn as `░` runs labeled
//! `sᵢ`, job pieces as class-letter runs. Vertical guides can be drawn at
//! fractions of a reference makespan `T` (the figures mark `T/2`, `T`,
//! `3T/2`).

use bss_instance::Instance;
use bss_rational::Rational;
use bss_schedule::{ItemKind, Schedule};

/// Rendering options.
#[derive(Debug, Clone)]
pub struct GanttOptions {
    /// Total character width of the time axis.
    pub width: usize,
    /// Reference makespan for the guide lines (defaults to the schedule's).
    pub reference_t: Option<Rational>,
    /// Draw guides at these multiples of `reference_t`.
    pub guides: Vec<(Rational, &'static str)>,
}

impl Default for GanttOptions {
    fn default() -> Self {
        GanttOptions {
            width: 96,
            reference_t: None,
            guides: vec![
                (Rational::new(1, 2), "T/2"),
                (Rational::ONE, "T"),
                (Rational::new(3, 2), "3T/2"),
            ],
        }
    }
}

fn class_glyph(class: usize) -> char {
    const GLYPHS: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz";
    GLYPHS[class % GLYPHS.len()] as char
}

/// Renders `schedule` as an ASCII Gantt chart.
#[must_use]
pub fn render_gantt(schedule: &Schedule, inst: &Instance, opts: &GanttOptions) -> String {
    let horizon = opts
        .reference_t
        .map(|t| t * Rational::new(3, 2))
        .unwrap_or_else(|| schedule.makespan())
        .max(schedule.makespan())
        .max(Rational::ONE);
    let width = opts.width.max(16);
    let scale = |t: Rational| -> usize {
        let x = (t / horizon * width).to_f64().round() as isize;
        x.clamp(0, width as isize) as usize
    };
    let mut out = String::new();
    // Header with guides.
    if let Some(t_ref) = opts.reference_t {
        let mut ruler = vec![b' '; width + 1];
        let mut labels = vec![b' '; width + 24];
        for (frac, name) in &opts.guides {
            let pos = scale(t_ref * *frac);
            if pos <= width {
                ruler[pos] = b'|';
                for (k, ch) in name.bytes().enumerate() {
                    if pos + k < labels.len() {
                        labels[pos + k] = ch;
                    }
                }
            }
        }
        out.push_str("      ");
        out.push_str(&String::from_utf8_lossy(&labels));
        out.push('\n');
        out.push_str("      ");
        out.push_str(&String::from_utf8_lossy(&ruler));
        out.push('\n');
    }
    for u in 0..schedule.machines() {
        let mut row = vec![' '; width];
        for p in schedule.machine_timeline(u) {
            let a = scale(p.start);
            let b = scale(p.end()).max(a + 1).min(width);
            let glyph = match p.kind {
                ItemKind::Setup(_) => '░',
                ItemKind::Piece { class, .. } => class_glyph(class),
            };
            for cell in row.iter_mut().take(b).skip(a) {
                *cell = glyph;
            }
        }
        let row: String = row.into_iter().collect();
        out.push_str(&format!("m{u:>3} |{row}|\n"));
    }
    let _ = inst; // reserved for richer labeling
    out
}

#[cfg(test)]
mod tests {
    use bss_instance::InstanceBuilder;

    use super::*;

    fn tiny() -> (Instance, Schedule) {
        let mut b = InstanceBuilder::new(2);
        b.add_batch(2, &[4]);
        b.add_batch(1, &[3]);
        let inst = b.build().unwrap();
        let mut s = Schedule::new(2);
        s.push_setup(0, Rational::ZERO, Rational::from(2u64), 0);
        s.push_piece(0, Rational::from(2u64), Rational::from(4u64), 0, 0);
        s.push_setup(1, Rational::ZERO, Rational::from(1u64), 1);
        s.push_piece(1, Rational::from(1u64), Rational::from(3u64), 1, 1);
        (inst, s)
    }

    #[test]
    fn renders_all_machines() {
        let (inst, s) = tiny();
        let text = render_gantt(&s, &inst, &GanttOptions::default());
        assert!(text.contains("m  0"));
        assert!(text.contains("m  1"));
        assert!(text.contains('░'));
        assert!(text.contains('A'));
        assert!(text.contains('B'));
    }

    #[test]
    fn guides_appear_with_reference() {
        let (inst, s) = tiny();
        let opts = GanttOptions {
            reference_t: Some(Rational::from(6u64)),
            ..GanttOptions::default()
        };
        let text = render_gantt(&s, &inst, &opts);
        assert!(text.contains("T/2"));
        assert!(text.contains("3T/2"));
    }

    #[test]
    fn zero_schedule_renders() {
        let mut b = InstanceBuilder::new(1);
        b.add_batch(1, &[1]);
        let inst = b.build().unwrap();
        let s = Schedule::new(1);
        let text = render_gantt(&s, &inst, &GanttOptions::default());
        assert!(text.contains("m  0"));
    }
}
