//! Wall-clock timing helpers for the repro binaries (Criterion handles the
//! statistically rigorous benches; these feed the human-readable tables).

use std::time::{Duration, Instant};

/// Runs `f` once, returning its result and the elapsed wall time.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed())
}

/// Runs `f` `k >= 1` times, returning the last result and the *best* wall
/// time (a robust point estimate for short deterministic computations).
pub fn time_best_of<R>(k: usize, mut f: impl FnMut() -> R) -> (R, Duration) {
    assert!(k >= 1);
    let (mut result, mut best) = time(&mut f);
    for _ in 1..k {
        let (r, d) = time(&mut f);
        result = r;
        if d < best {
            best = d;
        }
    }
    (result, best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_returns_result() {
        let (x, d) = time(|| 21 * 2);
        assert_eq!(x, 42);
        assert!(d < Duration::from_secs(5));
    }

    #[test]
    fn best_of_is_min() {
        let mut calls = 0;
        let (_, d) = time_best_of(5, || {
            calls += 1;
        });
        assert_eq!(calls, 5);
        assert!(d < Duration::from_secs(1));
    }

    #[test]
    #[should_panic]
    fn best_of_zero_panics() {
        let _ = time_best_of(0, || ());
    }
}
