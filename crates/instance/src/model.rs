//! The [`Instance`] type, its builder and validation.

use core::fmt;

use bss_json::{FromJson, JsonError, ToJson, Value};

/// Index of a job; jobs are numbered `0..n` in insertion order.
pub type JobId = usize;
/// Index of a class; classes are numbered `0..c` in insertion order.
pub type ClassId = usize;

/// Upper bound on `N = Σ s_i + Σ t_j` enforced at construction.
///
/// Keeping the total load below `2^60` guarantees that every product the
/// algorithms form (loads times machine counts, cross-multiplied rational
/// comparisons) stays well inside `i128`.
pub const MAX_TOTAL_LOAD: u64 = 1 << 60;

/// Upper bound on the machine count `m` enforced at construction.
///
/// Explicit schedules and the validator allocate `O(m)` state, so an
/// unbounded `m` (e.g. from a hand-edited instance file) could abort the
/// process on allocation instead of failing cleanly. 2^24 machines is far
/// beyond any workload the algorithms target while keeping `O(m)` buffers
/// comfortably small.
pub const MAX_MACHINES: usize = 1 << 24;

/// A single job: its class and its integral processing time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Job {
    /// The class this job belongs to.
    pub class: ClassId,
    /// Processing time `t_j >= 1`.
    pub time: u64,
}

impl ToJson for Job {
    fn to_json_value(&self) -> Value {
        Value::Object(vec![
            ("class".into(), Value::Int(self.class as i128)),
            ("time".into(), Value::Int(self.time.into())),
        ])
    }
}

impl FromJson for Job {
    fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        Ok(Job {
            class: bss_json::int_from(bss_json::required(value, "class")?, "Job.class")?,
            time: bss_json::int_from(bss_json::required(value, "time")?, "Job.time")?,
        })
    }
}

/// An immutable, validated instance of the batch-setup scheduling problem.
///
/// Construction via [`InstanceBuilder`] validates the paper's model
/// assumptions (`m >= 1`, `c >= 1`, non-empty classes, `s_i, t_j >= 1`) and
/// precomputes the per-class aggregates (`P(C_i)`, `t^(i)_max`) that all
/// algorithms need, so that the dual-approximation *tests* run in `O(c)` time
/// as required by the Class-Jumping searches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    machines: usize,
    setups: Vec<u64>,
    jobs: Vec<Job>,
    // Derived data, not serialized (rebuilt on load via `Instance::from_parts`).
    class_jobs: Vec<Vec<JobId>>,
    class_proc: Vec<u64>,
    class_tmax: Vec<u64>,
    total_proc: u64,
}

impl ToJson for Instance {
    fn to_json_value(&self) -> Value {
        Value::Object(vec![
            ("machines".into(), Value::Int(self.machines as i128)),
            (
                "setups".into(),
                Value::Array(self.setups.iter().map(|&s| Value::Int(s.into())).collect()),
            ),
            ("jobs".into(), self.jobs.to_json_value()),
        ])
    }
}

/// Decodes the raw `(machines, setups, jobs)` triple of the wire format.
/// Crate-internal so that [`Instance::from_json`] can distinguish malformed
/// JSON from model violations.
pub(crate) fn raw_parts_from_json(value: &Value) -> Result<(usize, Vec<u64>, Vec<Job>), JsonError> {
    Ok((
        bss_json::int_from(bss_json::required(value, "machines")?, "machines")?,
        bss_json::vec_from(bss_json::required(value, "setups")?, "setups", |v| {
            bss_json::int_from(v, "setup time")
        })?,
        Vec::<Job>::from_json_value(bss_json::required(value, "jobs")?)?,
    ))
}

impl FromJson for Instance {
    /// Decodes *and validates*: the result always carries rebuilt aggregates,
    /// exactly as if built through [`InstanceBuilder`]. Model violations are
    /// reported as [`JsonError`]s; use [`Instance::from_json`] when the
    /// caller needs to tell them apart from malformed JSON.
    fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        let (machines, setups, jobs) = raw_parts_from_json(value)?;
        Instance::from_parts(machines, setups, jobs)
            .map_err(|e| JsonError::new(format!("invalid instance data: {e}")))
    }
}

/// Errors detected while building an [`Instance`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstanceError {
    /// `m == 0`.
    NoMachines,
    /// `m` exceeds [`MAX_MACHINES`].
    TooManyMachines(usize),
    /// `c == 0`.
    NoClasses,
    /// A class without jobs (the paper requires a partition into non-empty classes).
    EmptyClass(ClassId),
    /// A job referencing an undeclared class.
    UnknownClass { job: JobId, class: ClassId },
    /// A zero setup time (`s_i ∈ N`, so `s_i >= 1`).
    ZeroSetup(ClassId),
    /// A zero processing time (`t_j ∈ N`, so `t_j >= 1`).
    ZeroJobTime(JobId),
    /// `N = Σ s_i + Σ t_j` exceeds [`MAX_TOTAL_LOAD`].
    TotalLoadTooLarge,
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceError::NoMachines => write!(f, "instance must have at least one machine"),
            InstanceError::TooManyMachines(m) => {
                write!(f, "machine count {m} exceeds the supported maximum 2^24")
            }
            InstanceError::NoClasses => write!(f, "instance must have at least one class"),
            InstanceError::EmptyClass(c) => write!(f, "class {c} has no jobs"),
            InstanceError::UnknownClass { job, class } => {
                write!(f, "job {job} references unknown class {class}")
            }
            InstanceError::ZeroSetup(c) => write!(f, "class {c} has zero setup time"),
            InstanceError::ZeroJobTime(j) => write!(f, "job {j} has zero processing time"),
            InstanceError::TotalLoadTooLarge => {
                write!(f, "total load N exceeds 2^60; rescale the instance")
            }
        }
    }
}

impl std::error::Error for InstanceError {}

/// Incremental builder for [`Instance`].
///
/// ```
/// use bss_instance::InstanceBuilder;
///
/// let mut b = InstanceBuilder::new(3);
/// let red = b.add_class(10);
/// let blue = b.add_class(4);
/// b.add_job(red, 7);
/// b.add_job(red, 2);
/// b.add_job(blue, 5);
/// let instance = b.build().unwrap();
/// assert_eq!(instance.num_jobs(), 3);
/// assert_eq!(instance.class_proc(red), 9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct InstanceBuilder {
    machines: usize,
    setups: Vec<u64>,
    jobs: Vec<Job>,
}

impl InstanceBuilder {
    /// Starts an instance on `machines` identical machines.
    #[must_use]
    pub fn new(machines: usize) -> Self {
        InstanceBuilder {
            machines,
            setups: Vec::new(),
            jobs: Vec::new(),
        }
    }

    /// Declares a new class with setup time `setup`, returning its id.
    pub fn add_class(&mut self, setup: u64) -> ClassId {
        self.setups.push(setup);
        self.setups.len() - 1
    }

    /// Adds a job of `class` with processing time `time`, returning its id.
    pub fn add_job(&mut self, class: ClassId, time: u64) -> JobId {
        self.jobs.push(Job { class, time });
        self.jobs.len() - 1
    }

    /// Adds a class together with all its jobs; convenient for tests.
    pub fn add_batch(&mut self, setup: u64, times: &[u64]) -> ClassId {
        let class = self.add_class(setup);
        for &t in times {
            self.add_job(class, t);
        }
        class
    }

    /// Number of jobs added so far.
    #[must_use]
    pub fn num_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Validates and finalizes the instance.
    pub fn build(self) -> Result<Instance, InstanceError> {
        Instance::from_parts(self.machines, self.setups, self.jobs)
    }
}

impl Instance {
    /// Builds an instance from raw parts, validating the model assumptions.
    pub fn from_parts(
        machines: usize,
        setups: Vec<u64>,
        jobs: Vec<Job>,
    ) -> Result<Self, InstanceError> {
        if machines == 0 {
            return Err(InstanceError::NoMachines);
        }
        if machines > MAX_MACHINES {
            return Err(InstanceError::TooManyMachines(machines));
        }
        if setups.is_empty() {
            return Err(InstanceError::NoClasses);
        }
        for (i, &s) in setups.iter().enumerate() {
            if s == 0 {
                return Err(InstanceError::ZeroSetup(i));
            }
        }
        let c = setups.len();
        let mut class_jobs: Vec<Vec<JobId>> = vec![Vec::new(); c];
        let mut class_proc = vec![0u64; c];
        let mut class_tmax = vec![0u64; c];
        let mut total: u128 = setups.iter().map(|&s| s as u128).sum();
        if total > MAX_TOTAL_LOAD as u128 {
            return Err(InstanceError::TotalLoadTooLarge);
        }
        let mut total_proc: u64 = 0;
        for (j, job) in jobs.iter().enumerate() {
            if job.class >= c {
                return Err(InstanceError::UnknownClass {
                    job: j,
                    class: job.class,
                });
            }
            if job.time == 0 {
                return Err(InstanceError::ZeroJobTime(j));
            }
            // Enforce the load cap incrementally: with the running total
            // bounded by 2^60, the u64 accumulators below cannot overflow
            // even on hostile inputs with times near u64::MAX.
            total += job.time as u128;
            if total > MAX_TOTAL_LOAD as u128 {
                return Err(InstanceError::TotalLoadTooLarge);
            }
            class_jobs[job.class].push(j);
            class_proc[job.class] += job.time;
            class_tmax[job.class] = class_tmax[job.class].max(job.time);
            total_proc += job.time;
        }
        for (i, js) in class_jobs.iter().enumerate() {
            if js.is_empty() {
                return Err(InstanceError::EmptyClass(i));
            }
        }
        Ok(Instance {
            machines,
            setups,
            jobs,
            class_jobs,
            class_proc,
            class_tmax,
            total_proc,
        })
    }

    /// Number of machines `m`.
    #[must_use]
    pub fn machines(&self) -> usize {
        self.machines
    }

    /// Number of jobs `n`.
    #[must_use]
    pub fn num_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Number of classes `c`.
    #[must_use]
    pub fn num_classes(&self) -> usize {
        self.setups.len()
    }

    /// Setup time `s_i`.
    #[must_use]
    pub fn setup(&self, class: ClassId) -> u64 {
        self.setups[class]
    }

    /// All setup times, indexed by class.
    #[must_use]
    pub fn setups(&self) -> &[u64] {
        &self.setups
    }

    /// The job with id `job`.
    #[must_use]
    pub fn job(&self, job: JobId) -> Job {
        self.jobs[job]
    }

    /// All jobs, indexed by job id.
    #[must_use]
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Job ids of class `class`.
    #[must_use]
    pub fn class_jobs(&self, class: ClassId) -> &[JobId] {
        &self.class_jobs[class]
    }

    /// Total processing time `P(C_i)` of class `class`.
    #[must_use]
    pub fn class_proc(&self, class: ClassId) -> u64 {
        self.class_proc[class]
    }

    /// Largest job time `t^(i)_max` of class `class`.
    #[must_use]
    pub fn class_tmax(&self, class: ClassId) -> u64 {
        self.class_tmax[class]
    }

    /// Total processing time `P(J)` over all jobs.
    #[must_use]
    pub fn total_proc(&self) -> u64 {
        self.total_proc
    }

    /// `N = Σ_i s_i + Σ_j t_j`, the load of the trivial one-machine schedule.
    ///
    /// `OPT <= N` for every variant.
    #[must_use]
    pub fn total_load_once(&self) -> u64 {
        self.setups.iter().sum::<u64>() + self.total_proc
    }

    /// Largest setup time `s_max`. `OPT > s_max` for every variant.
    #[must_use]
    pub fn smax(&self) -> u64 {
        *self.setups.iter().max().expect("c >= 1")
    }

    /// Largest job time `t_max`.
    #[must_use]
    pub fn tmax(&self) -> u64 {
        self.class_tmax.iter().copied().max().expect("c >= 1")
    }

    /// `Δ = max(s_max, t_max)`, the largest number of the input (Theorem 8).
    #[must_use]
    pub fn delta(&self) -> u64 {
        self.smax().max(self.tmax())
    }

    /// `max_i (s_i + t^(i)_max)` — a lower bound on `OPT` for the
    /// non-preemptive and preemptive variants (Notes 1 and 2).
    #[must_use]
    pub fn max_setup_plus_tmax(&self) -> u64 {
        (0..self.num_classes())
            .map(|i| self.setups[i] + self.class_tmax[i])
            .max()
            .expect("c >= 1")
    }

    /// The instance with all setup and processing times multiplied by
    /// `factor`. The problems are scale-free, so optima (and our algorithms'
    /// outputs) scale along — a property the test suite checks.
    pub fn scaled(&self, factor: u64) -> Result<Instance, InstanceError> {
        assert!(factor >= 1, "scale factor must be positive");
        Instance::from_parts(
            self.machines,
            self.setups.iter().map(|&s| s * factor).collect(),
            self.jobs
                .iter()
                .map(|j| Job {
                    class: j.class,
                    time: j.time * factor,
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> InstanceBuilder {
        let mut b = InstanceBuilder::new(2);
        b.add_batch(3, &[4, 5]);
        b.add_batch(1, &[2]);
        b
    }

    #[test]
    fn builder_and_aggregates() {
        let inst = simple().build().unwrap();
        assert_eq!(inst.machines(), 2);
        assert_eq!(inst.num_classes(), 2);
        assert_eq!(inst.num_jobs(), 3);
        assert_eq!(inst.setup(0), 3);
        assert_eq!(inst.class_proc(0), 9);
        assert_eq!(inst.class_proc(1), 2);
        assert_eq!(inst.class_tmax(0), 5);
        assert_eq!(inst.total_proc(), 11);
        assert_eq!(inst.total_load_once(), 15);
        assert_eq!(inst.smax(), 3);
        assert_eq!(inst.tmax(), 5);
        assert_eq!(inst.delta(), 5);
        assert_eq!(inst.max_setup_plus_tmax(), 8);
        assert_eq!(inst.class_jobs(0), &[0, 1]);
        assert_eq!(inst.class_jobs(1), &[2]);
    }

    #[test]
    fn scaled_multiplies_all_times() {
        let inst = simple().build().unwrap();
        let scaled = inst.scaled(3).unwrap();
        assert_eq!(scaled.setup(0), 9);
        assert_eq!(scaled.job(0).time, 12);
        assert_eq!(scaled.total_load_once(), 3 * inst.total_load_once());
        assert_eq!(scaled.machines(), inst.machines());
    }

    #[test]
    fn rejects_no_machines() {
        let mut b = InstanceBuilder::new(0);
        b.add_batch(1, &[1]);
        assert_eq!(b.build().unwrap_err(), InstanceError::NoMachines);
    }

    #[test]
    fn rejects_too_many_machines() {
        let mut b = InstanceBuilder::new(MAX_MACHINES + 1);
        b.add_batch(1, &[1]);
        assert_eq!(
            b.build().unwrap_err(),
            InstanceError::TooManyMachines(MAX_MACHINES + 1)
        );
    }

    #[test]
    fn rejects_no_classes() {
        let b = InstanceBuilder::new(1);
        assert_eq!(b.build().unwrap_err(), InstanceError::NoClasses);
    }

    #[test]
    fn rejects_empty_class() {
        let mut b = InstanceBuilder::new(1);
        b.add_class(1);
        b.add_batch(1, &[1]);
        assert_eq!(b.build().unwrap_err(), InstanceError::EmptyClass(0));
    }

    #[test]
    fn rejects_zero_setup() {
        let mut b = InstanceBuilder::new(1);
        b.add_batch(0, &[1]);
        assert_eq!(b.build().unwrap_err(), InstanceError::ZeroSetup(0));
    }

    #[test]
    fn rejects_zero_job_time() {
        let mut b = InstanceBuilder::new(1);
        b.add_batch(1, &[0]);
        assert_eq!(b.build().unwrap_err(), InstanceError::ZeroJobTime(0));
    }

    #[test]
    fn rejects_unknown_class() {
        let jobs = vec![Job { class: 5, time: 1 }];
        let err = Instance::from_parts(1, vec![1], jobs).unwrap_err();
        assert_eq!(err, InstanceError::UnknownClass { job: 0, class: 5 });
    }

    #[test]
    fn rejects_huge_total_load() {
        let jobs = vec![
            Job {
                class: 0,
                time: u64::MAX / 2,
            },
            Job {
                class: 0,
                time: u64::MAX / 2,
            },
        ];
        let err = Instance::from_parts(1, vec![1], jobs).unwrap_err();
        assert_eq!(err, InstanceError::TotalLoadTooLarge);
    }
}
