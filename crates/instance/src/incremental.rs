//! Incremental instances: validated add/remove/retime deltas over a base
//! [`Instance`], for online workloads that re-solve after every event.
//!
//! An [`IncrementalInstance`] maintains the same per-class aggregates an
//! [`Instance`] precomputes (`P(C_i)`, `t^(i)_max`, total load) under a
//! stream of [`Delta`]s, validating each delta *eagerly* — every reachable
//! state satisfies the paper's model assumptions, so [`materialize`]
//! (`IncrementalInstance::materialize`) can never fail. Materializing is
//! proven equal to building the final job list from scratch — structurally,
//! by [`Instance::content_hash`], and by solve bit-identity — in this
//! module's tests and the workspace's `incremental_prop` proptest suite.
//!
//! # Job identity
//!
//! Job ids are *positional*, exactly as in a from-scratch [`Instance`]:
//! removing job `j` shifts every id above `j` down by one, so the job list
//! of the incremental instance is byte-for-byte the job list the
//! materialized instance carries. Callers that track jobs across deltas
//! must re-map their ids after a removal, mirroring what re-submitting the
//! shrunken instance would do.
//!
//! # Content-hash maintenance
//!
//! The canonical digest encodes `(version, m, c, setups.., n, jobs..)`
//! *sequentially* (FNV-1a), and `n` precedes the job stream — so a true
//! `O(delta)` digest update is impossible without changing the pinned
//! encoding. Instead the hasher state after the setup section (which never
//! changes) is precomputed once, and the job-section suffix is re-hashed
//! lazily: the digest is cached, invalidated by every delta, and recomputed
//! in `O(n)` only when observed. A burst of deltas between two solves
//! therefore pays for one recomputation, not one per delta.

use std::cell::Cell;

use bss_json::{FromJson, JsonError, ToJson, Value};

use crate::hash::job_section_hash;
use crate::{ClassId, ContentHasher, Instance, Job, JobId, MAX_TOTAL_LOAD};

/// One mutation of an [`IncrementalInstance`] — the wire-level event of the
/// online protocols (`bss-serve` sessions, the `bss-gen` simulator).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delta {
    /// A job arrival: append a job of `class` with processing time `time`.
    AddJob {
        /// The existing class the new job joins.
        class: ClassId,
        /// Processing time `t_j >= 1`.
        time: u64,
    },
    /// A job departure: remove job `job` (ids above it shift down by one).
    RemoveJob {
        /// The job to remove.
        job: JobId,
    },
    /// A reveal: job `job`'s processing time turns out to be `time` (the
    /// unknown-execution-times regime of Kawase et al.).
    Retime {
        /// The job whose time changes.
        job: JobId,
        /// The new processing time `t_j >= 1`.
        time: u64,
    },
}

impl ToJson for Delta {
    fn to_json_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = Vec::with_capacity(3);
        match *self {
            Delta::AddJob { class, time } => {
                fields.push(("op".into(), Value::Str("add_job".into())));
                fields.push(("class".into(), Value::Int(class as i128)));
                fields.push(("time".into(), Value::Int(time.into())));
            }
            Delta::RemoveJob { job } => {
                fields.push(("op".into(), Value::Str("remove_job".into())));
                fields.push(("job".into(), Value::Int(job as i128)));
            }
            Delta::Retime { job, time } => {
                fields.push(("op".into(), Value::Str("retime".into())));
                fields.push(("job".into(), Value::Int(job as i128)));
                fields.push(("time".into(), Value::Int(time.into())));
            }
        }
        Value::Object(fields)
    }
}

impl FromJson for Delta {
    fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        let op = bss_json::required(value, "op")?
            .as_str()
            .ok_or_else(|| JsonError::new("Delta.op must be a string"))?;
        match op {
            "add_job" => Ok(Delta::AddJob {
                class: bss_json::int_from(bss_json::required(value, "class")?, "Delta.class")?,
                time: bss_json::int_from(bss_json::required(value, "time")?, "Delta.time")?,
            }),
            "remove_job" => Ok(Delta::RemoveJob {
                job: bss_json::int_from(bss_json::required(value, "job")?, "Delta.job")?,
            }),
            "retime" => Ok(Delta::Retime {
                job: bss_json::int_from(bss_json::required(value, "job")?, "Delta.job")?,
                time: bss_json::int_from(bss_json::required(value, "time")?, "Delta.time")?,
            }),
            other => Err(JsonError::new(format!("unknown delta op `{other}`"))),
        }
    }
}

/// A delta rejected by eager validation; the instance is unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaError {
    /// The delta references a class the instance does not declare. (Classes
    /// are fixed at session start: the paper's model partitions jobs into a
    /// *known* set of setup classes.)
    UnknownClass(ClassId),
    /// The delta references a job id at or beyond `n`.
    UnknownJob(JobId),
    /// A zero processing time (`t_j ∈ N`, so `t_j >= 1`).
    ZeroJobTime,
    /// Removing this job would leave its class empty, violating the model's
    /// non-empty-class partition.
    WouldEmptyClass(ClassId),
    /// The delta would push `N = Σ s_i + Σ t_j` past [`MAX_TOTAL_LOAD`].
    TotalLoadTooLarge,
}

impl core::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DeltaError::UnknownClass(c) => write!(f, "delta references unknown class {c}"),
            DeltaError::UnknownJob(j) => write!(f, "delta references unknown job {j}"),
            DeltaError::ZeroJobTime => write!(f, "delta sets a zero processing time"),
            DeltaError::WouldEmptyClass(c) => {
                write!(f, "removing the last job of class {c} would empty it")
            }
            DeltaError::TotalLoadTooLarge => {
                write!(f, "delta would push total load N past 2^60")
            }
        }
    }
}

impl std::error::Error for DeltaError {}

/// A mutable instance under a stream of validated [`Delta`]s, maintaining
/// the aggregates incrementally (see the module docs).
#[derive(Debug, Clone)]
pub struct IncrementalInstance {
    machines: usize,
    setups: Vec<u64>,
    jobs: Vec<Job>,
    /// Jobs per class (non-emptiness guard; cheaper than the id lists an
    /// `Instance` keeps, which positional removal would force us to rebuild
    /// wholesale anyway).
    class_count: Vec<usize>,
    class_proc: Vec<u64>,
    class_tmax: Vec<u64>,
    total_proc: u64,
    /// Hasher state after `(version, m, c, setups..)` — the prefix of the
    /// canonical encoding that no delta can change.
    hash_prefix: ContentHasher,
    /// Cached digest, invalidated by every applied delta.
    cached_hash: Cell<Option<u64>>,
    /// Count of deltas applied since construction.
    version: u64,
}

impl IncrementalInstance {
    /// Starts from a validated base instance.
    #[must_use]
    pub fn new(base: &Instance) -> Self {
        let c = base.num_classes();
        let mut class_count = vec![0usize; c];
        let mut class_proc = vec![0u64; c];
        let mut class_tmax = vec![0u64; c];
        for job in base.jobs() {
            class_count[job.class] += 1;
            class_proc[job.class] += job.time;
            class_tmax[job.class] = class_tmax[job.class].max(job.time);
        }
        IncrementalInstance {
            machines: base.machines(),
            setups: base.setups().to_vec(),
            jobs: base.jobs().to_vec(),
            class_count,
            class_proc,
            class_tmax,
            total_proc: base.total_proc(),
            hash_prefix: crate::hash::setup_section_hasher(base.machines(), base.setups()),
            cached_hash: Cell::new(Some(base.content_hash())),
            version: 0,
        }
    }

    /// Applies one delta, validating it first; on error nothing changes.
    ///
    /// # Errors
    /// [`DeltaError`] describing the violated model assumption.
    pub fn apply(&mut self, delta: Delta) -> Result<(), DeltaError> {
        match delta {
            Delta::AddJob { class, time } => self.add_job(class, time).map(|_| ()),
            Delta::RemoveJob { job } => self.remove_job(job).map(|_| ()),
            Delta::Retime { job, time } => self.retime(job, time).map(|_| ()),
        }
    }

    /// Appends a job of `class` with processing time `time`, returning its
    /// (positional) id.
    ///
    /// # Errors
    /// See [`DeltaError`].
    pub fn add_job(&mut self, class: ClassId, time: u64) -> Result<JobId, DeltaError> {
        if class >= self.setups.len() {
            return Err(DeltaError::UnknownClass(class));
        }
        if time == 0 {
            return Err(DeltaError::ZeroJobTime);
        }
        if self.total_load() + u128::from(time) > u128::from(MAX_TOTAL_LOAD) {
            return Err(DeltaError::TotalLoadTooLarge);
        }
        let id = self.jobs.len();
        self.jobs.push(Job { class, time });
        self.class_count[class] += 1;
        self.class_proc[class] += time;
        self.class_tmax[class] = self.class_tmax[class].max(time);
        self.total_proc += time;
        self.touched();
        Ok(id)
    }

    /// Removes job `job` (`O(n)`: positional ids above it shift down),
    /// returning the removed job.
    ///
    /// # Errors
    /// See [`DeltaError`].
    pub fn remove_job(&mut self, job: JobId) -> Result<Job, DeltaError> {
        if job >= self.jobs.len() {
            return Err(DeltaError::UnknownJob(job));
        }
        let victim = self.jobs[job];
        if self.class_count[victim.class] == 1 {
            return Err(DeltaError::WouldEmptyClass(victim.class));
        }
        self.jobs.remove(job);
        self.class_count[victim.class] -= 1;
        self.class_proc[victim.class] -= victim.time;
        self.total_proc -= victim.time;
        if victim.time == self.class_tmax[victim.class] {
            self.rescan_tmax(victim.class);
        }
        self.touched();
        Ok(victim)
    }

    /// Changes job `job`'s processing time to `time`, returning the old
    /// time. `O(1)` unless the class maximum shrinks (then one class scan).
    ///
    /// # Errors
    /// See [`DeltaError`].
    pub fn retime(&mut self, job: JobId, time: u64) -> Result<u64, DeltaError> {
        if job >= self.jobs.len() {
            return Err(DeltaError::UnknownJob(job));
        }
        if time == 0 {
            return Err(DeltaError::ZeroJobTime);
        }
        let old = self.jobs[job].time;
        if time > old && self.total_load() + u128::from(time - old) > u128::from(MAX_TOTAL_LOAD) {
            return Err(DeltaError::TotalLoadTooLarge);
        }
        let class = self.jobs[job].class;
        self.jobs[job].time = time;
        self.class_proc[class] = self.class_proc[class] - old + time;
        self.total_proc = self.total_proc - old + time;
        if time >= self.class_tmax[class] {
            self.class_tmax[class] = time;
        } else if old == self.class_tmax[class] {
            self.rescan_tmax(class);
        }
        self.touched();
        Ok(old)
    }

    fn rescan_tmax(&mut self, class: ClassId) {
        self.class_tmax[class] = self
            .jobs
            .iter()
            .filter(|j| j.class == class)
            .map(|j| j.time)
            .max()
            .expect("non-emptiness is maintained eagerly");
    }

    fn touched(&mut self) {
        self.version += 1;
        self.cached_hash.set(None);
    }

    fn total_load(&self) -> u128 {
        self.setups.iter().map(|&s| u128::from(s)).sum::<u128>() + u128::from(self.total_proc)
    }

    /// Builds the validated, immutable [`Instance`] of the current state —
    /// byte-for-byte what `Instance::from_parts` produces on the same job
    /// list, so a solve of the materialized instance is bit-identical to a
    /// solve of a from-scratch one.
    #[must_use]
    pub fn materialize(&self) -> Instance {
        Instance::from_parts(self.machines, self.setups.clone(), self.jobs.clone())
            .expect("every reachable incremental state is valid")
    }

    /// The deterministic content digest of the current state — always equal
    /// to `self.materialize().content_hash()`, without materializing.
    /// Cached across observations; one `O(n)` recomputation per delta
    /// burst (see the module docs).
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        if let Some(h) = self.cached_hash.get() {
            return h;
        }
        let h = job_section_hash(&self.hash_prefix, &self.jobs);
        self.cached_hash.set(Some(h));
        h
    }

    /// Number of machines `m`.
    #[must_use]
    pub fn machines(&self) -> usize {
        self.machines
    }

    /// Number of jobs `n`.
    #[must_use]
    pub fn num_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Number of classes `c` (fixed at construction).
    #[must_use]
    pub fn num_classes(&self) -> usize {
        self.setups.len()
    }

    /// All setup times, indexed by class.
    #[must_use]
    pub fn setups(&self) -> &[u64] {
        &self.setups
    }

    /// All jobs, in positional-id order.
    #[must_use]
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Jobs currently in class `class`.
    #[must_use]
    pub fn class_count(&self, class: ClassId) -> usize {
        self.class_count[class]
    }

    /// Total processing time `P(C_i)` of class `class`.
    #[must_use]
    pub fn class_proc(&self, class: ClassId) -> u64 {
        self.class_proc[class]
    }

    /// Largest job time `t^(i)_max` of class `class`.
    #[must_use]
    pub fn class_tmax(&self, class: ClassId) -> u64 {
        self.class_tmax[class]
    }

    /// Total processing time `P(J)` over all jobs.
    #[must_use]
    pub fn total_proc(&self) -> u64 {
        self.total_proc
    }

    /// `N = Σ_i s_i + Σ_j t_j` — the quantity whose change between two
    /// solves drives the warm-start bracket widening in `bss-core`.
    #[must_use]
    pub fn total_load_once(&self) -> u64 {
        self.setups.iter().sum::<u64>() + self.total_proc
    }

    /// Count of deltas applied since construction.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InstanceBuilder;

    fn base() -> Instance {
        let mut b = InstanceBuilder::new(3);
        b.add_batch(10, &[7, 3, 9, 2]);
        b.add_batch(4, &[5, 5, 6]);
        b.build().unwrap()
    }

    /// Materializing after a delta sequence equals building the final job
    /// list from scratch — structure, aggregates and digest.
    #[test]
    fn materialize_equals_from_scratch() {
        let mut inc = IncrementalInstance::new(&base());
        inc.apply(Delta::AddJob { class: 1, time: 8 }).unwrap();
        inc.apply(Delta::RemoveJob { job: 2 }).unwrap();
        inc.apply(Delta::Retime { job: 0, time: 11 }).unwrap();
        inc.apply(Delta::AddJob { class: 0, time: 1 }).unwrap();
        let materialized = inc.materialize();
        let scratch = Instance::from_parts(3, vec![10, 4], inc.jobs().to_vec()).unwrap();
        assert_eq!(materialized, scratch);
        assert_eq!(inc.content_hash(), scratch.content_hash());
        assert_eq!(inc.version(), 4);
        for class in 0..2 {
            assert_eq!(inc.class_proc(class), scratch.class_proc(class));
            assert_eq!(inc.class_tmax(class), scratch.class_tmax(class));
            assert_eq!(inc.class_count(class), scratch.class_jobs(class).len());
        }
        assert_eq!(inc.total_proc(), scratch.total_proc());
        assert_eq!(inc.total_load_once(), scratch.total_load_once());
    }

    #[test]
    fn fresh_wrapper_matches_base_hash_without_recompute() {
        let b = base();
        let inc = IncrementalInstance::new(&b);
        assert_eq!(inc.content_hash(), b.content_hash());
        assert_eq!(inc.materialize(), b);
    }

    #[test]
    fn hash_cache_invalidates_on_every_delta_kind() {
        let mut inc = IncrementalInstance::new(&base());
        let h0 = inc.content_hash();
        inc.add_job(0, 13).unwrap();
        let h1 = inc.content_hash();
        assert_ne!(h0, h1);
        assert_eq!(h1, inc.materialize().content_hash());
        inc.retime(0, 14).unwrap();
        let h2 = inc.content_hash();
        assert_ne!(h1, h2);
        assert_eq!(h2, inc.materialize().content_hash());
        inc.remove_job(7).unwrap();
        // Removing the job added first restores nothing — but removing the
        // *new* job and undoing the retime restores the original digest.
        inc.retime(0, 7).unwrap();
        assert_eq!(inc.content_hash(), h0);
        assert_eq!(inc.content_hash(), inc.materialize().content_hash());
    }

    #[test]
    fn tmax_rescan_on_max_removal_and_retime_down() {
        let mut inc = IncrementalInstance::new(&base());
        assert_eq!(inc.class_tmax(0), 9);
        inc.remove_job(2).unwrap(); // the 9 of class 0
        assert_eq!(inc.class_tmax(0), 7);
        inc.retime(0, 1).unwrap(); // the 7 shrinks to 1
        assert_eq!(inc.class_tmax(0), 3);
        assert_eq!(inc.materialize().class_tmax(0), 3);
    }

    #[test]
    fn removal_shifts_positional_ids() {
        let mut inc = IncrementalInstance::new(&base());
        let removed = inc.remove_job(0).unwrap();
        assert_eq!(removed, Job { class: 0, time: 7 });
        // The former job 1 (time 3) is now job 0.
        assert_eq!(inc.jobs()[0], Job { class: 0, time: 3 });
        assert_eq!(inc.num_jobs(), 6);
    }

    #[test]
    fn every_invalid_delta_is_rejected_and_leaves_state_untouched() {
        let mut inc = IncrementalInstance::new(&base());
        let before = inc.materialize();
        let hash = inc.content_hash();
        assert_eq!(
            inc.apply(Delta::AddJob { class: 9, time: 1 }),
            Err(DeltaError::UnknownClass(9))
        );
        assert_eq!(
            inc.apply(Delta::AddJob { class: 0, time: 0 }),
            Err(DeltaError::ZeroJobTime)
        );
        assert_eq!(
            inc.apply(Delta::RemoveJob { job: 99 }),
            Err(DeltaError::UnknownJob(99))
        );
        assert_eq!(
            inc.apply(Delta::Retime { job: 0, time: 0 }),
            Err(DeltaError::ZeroJobTime)
        );
        assert_eq!(
            inc.apply(Delta::AddJob {
                class: 0,
                time: u64::MAX / 2,
            }),
            Err(DeltaError::TotalLoadTooLarge)
        );
        assert_eq!(
            inc.apply(Delta::Retime {
                job: 0,
                time: u64::MAX / 2,
            }),
            Err(DeltaError::TotalLoadTooLarge)
        );
        assert_eq!(inc.version(), 0);
        assert_eq!(inc.content_hash(), hash);
        assert_eq!(inc.materialize(), before);
    }

    #[test]
    fn cannot_empty_a_class() {
        let mut b = InstanceBuilder::new(1);
        b.add_batch(2, &[5]);
        b.add_batch(3, &[4, 6]);
        let mut inc = IncrementalInstance::new(&b.build().unwrap());
        assert_eq!(
            inc.apply(Delta::RemoveJob { job: 0 }),
            Err(DeltaError::WouldEmptyClass(0))
        );
        // Class 1 has two jobs; removing one is fine, the second is not.
        inc.apply(Delta::RemoveJob { job: 1 }).unwrap();
        assert_eq!(
            inc.apply(Delta::RemoveJob { job: 1 }),
            Err(DeltaError::WouldEmptyClass(1))
        );
    }

    #[test]
    fn delta_json_roundtrips() {
        for delta in [
            Delta::AddJob { class: 2, time: 17 },
            Delta::RemoveJob { job: 5 },
            Delta::Retime { job: 3, time: 1 },
        ] {
            let text = bss_json::encode_pretty(&delta);
            let back: Delta = bss_json::decode(&text).unwrap();
            assert_eq!(back, delta);
        }
        assert!(bss_json::decode::<Delta>("{\"op\":\"explode\"}").is_err());
        assert!(bss_json::decode::<Delta>("{\"op\":\"add_job\",\"class\":0}").is_err());
    }
}
