//! Instance-only lower bounds on the optimal makespan.
//!
//! The paper anchors all of its searches on a value `T_min` computable in
//! `O(n)` from the input alone, with `OPT ∈ [T_min, 2·T_min]` certified by the
//! 2-approximations of Theorem 1:
//!
//! * every variant: `OPT >= N/m` (average load) and `OPT > s_max`;
//! * non-preemptive and preemptive (Notes 1 and 2):
//!   `OPT >= max_i (s_i + t^(i)_max)`, because a job's class must be set up
//!   before the job can finish and the job never runs in parallel with itself.

use bss_rational::Rational;

use crate::{Instance, Variant};

/// The instance-only lower bounds used to seed binary searches and to certify
/// empirical approximation ratios.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerBounds {
    /// `N/m`: total load (with one setup per class) averaged over machines.
    pub avg_load: Rational,
    /// `s_max`; the optimum is *strictly* larger.
    pub smax: u64,
    /// `max_i (s_i + t^(i)_max)`; valid for non-preemptive and preemptive only.
    pub setup_plus_job: u64,
}

impl LowerBounds {
    /// Computes all bounds for `instance`.
    #[must_use]
    pub fn of(instance: &Instance) -> Self {
        LowerBounds {
            avg_load: Rational::from(instance.total_load_once()) / instance.machines(),
            smax: instance.smax(),
            setup_plus_job: instance.max_setup_plus_tmax(),
        }
    }

    /// `T_min` for the given variant: the strongest instance-only lower bound.
    ///
    /// * splittable: `max(N/m, s_max)` (the paper's `T^(1)_min`),
    /// * non-preemptive / preemptive: `max(N/m, max_i(s_i + t^(i)_max))`.
    #[must_use]
    pub fn tmin(&self, variant: Variant) -> Rational {
        match variant {
            Variant::Splittable => self.avg_load.max(Rational::from(self.smax)),
            Variant::NonPreemptive | Variant::Preemptive => {
                self.avg_load.max(Rational::from(self.setup_plus_job))
            }
        }
    }

    /// The search window `[T_min, 2·T_min]` that contains `OPT` (Theorem 1).
    #[must_use]
    pub fn opt_window(&self, variant: Variant) -> (Rational, Rational) {
        let lo = self.tmin(variant);
        (lo, lo * 2u64)
    }
}

/// Convenience: `T_min` of `instance` for `variant`.
#[must_use]
pub fn tmin(instance: &Instance, variant: Variant) -> Rational {
    LowerBounds::of(instance).tmin(variant)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InstanceBuilder;

    fn inst() -> Instance {
        // m=2; class 0: s=6, jobs {4,5}; class 1: s=1, jobs {2,2}.
        // N = 6+1+4+5+2+2 = 20, N/m = 10, smax = 6, max(s_i + tmax_i) = 11.
        let mut b = InstanceBuilder::new(2);
        b.add_batch(6, &[4, 5]);
        b.add_batch(1, &[2, 2]);
        b.build().unwrap()
    }

    #[test]
    fn bounds_values() {
        let lb = LowerBounds::of(&inst());
        assert_eq!(lb.avg_load, Rational::from(10u64));
        assert_eq!(lb.smax, 6);
        assert_eq!(lb.setup_plus_job, 11);
    }

    #[test]
    fn tmin_per_variant() {
        let lb = LowerBounds::of(&inst());
        assert_eq!(lb.tmin(Variant::Splittable), Rational::from(10u64));
        assert_eq!(lb.tmin(Variant::Preemptive), Rational::from(11u64));
        assert_eq!(lb.tmin(Variant::NonPreemptive), Rational::from(11u64));
    }

    #[test]
    fn window_is_factor_two() {
        let lb = LowerBounds::of(&inst());
        let (lo, hi) = lb.opt_window(Variant::Preemptive);
        assert_eq!(hi, lo * 2u64);
    }

    #[test]
    fn avg_load_dominates_when_many_machines_worth_of_load() {
        // One class, huge jobs: N/m should dominate.
        let mut b = InstanceBuilder::new(2);
        b.add_batch(1, &[100, 100]);
        let lb = LowerBounds::of(&b.build().unwrap());
        // N = 201, N/m = 100.5, setup_plus_job = 101.
        assert_eq!(lb.tmin(Variant::Splittable), Rational::new(201, 2));
        assert_eq!(lb.tmin(Variant::Preemptive), Rational::from(101u64));
    }
}
