//! Deterministic content hashing of instances.
//!
//! The solve cache in `bss-serve` keys entries on a digest of the instance
//! *content* — two structurally equal instances must map to the same key on
//! every run, every platform, and every build, which rules out
//! [`std::collections::hash_map::DefaultHasher`] (its keys are randomized
//! per process). The digest here is FNV-1a over the canonical encoding
//! `(version tag, m, c, s_0..s_{c-1}, n, (class_0, t_0)..(class_{n-1},
//! t_{n-1}))` with every integer serialized as 8 little-endian bytes.
//!
//! **This is a cache key, not a cryptographic hash.** FNV-1a is fast and
//! well-distributed but trivially forgeable; collisions are survivable
//! because every cache consumer re-checks full instance equality on a hash
//! hit before serving a cached solution (see `bss-serve`). Never use this
//! digest for authentication or content addressing across trust domains.

use crate::{Instance, Job};

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Version tag mixed into every digest; bump when the canonical encoding
/// changes so stale cross-version cache keys can never alias.
const ENCODING_VERSION: u64 = 1;

/// An incremental FNV-1a 64-bit hasher over little-endian integer words.
///
/// Exposed so sibling crates (e.g. `bss-serve`) can hash composite cache
/// keys — instance digest plus variant and algorithm — with the same
/// deterministic function.
#[derive(Debug, Clone)]
pub struct ContentHasher(u64);

impl ContentHasher {
    /// A fresh hasher at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        ContentHasher(FNV_OFFSET)
    }

    /// Absorbs one byte.
    pub fn write_u8(&mut self, byte: u8) {
        self.0 ^= u64::from(byte);
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }

    /// Absorbs a `u64` as 8 little-endian bytes.
    pub fn write_u64(&mut self, word: u64) {
        for byte in word.to_le_bytes() {
            self.write_u8(byte);
        }
    }

    /// Absorbs a `usize` widened to `u64` (platform-independent digest).
    pub fn write_usize(&mut self, word: usize) {
        self.write_u64(word as u64);
    }

    /// The digest of everything absorbed so far.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for ContentHasher {
    fn default() -> Self {
        ContentHasher::new()
    }
}

/// Hasher state after absorbing the canonical prefix `(version, m, c,
/// s_0..s_{c-1})` — everything an [`crate::IncrementalInstance`]'s deltas
/// can never change. Sharing the two halves between the plain and the
/// incremental digest keeps the encodings from drifting apart.
pub(crate) fn setup_section_hasher(machines: usize, setups: &[u64]) -> ContentHasher {
    let mut h = ContentHasher::new();
    h.write_u64(ENCODING_VERSION);
    h.write_usize(machines);
    h.write_usize(setups.len());
    for &s in setups {
        h.write_u64(s);
    }
    h
}

/// Finishes a digest from a setup-section `prefix`: absorbs `n` and the job
/// stream, the delta-variable suffix of the canonical encoding.
pub(crate) fn job_section_hash(prefix: &ContentHasher, jobs: &[Job]) -> u64 {
    let mut h = prefix.clone();
    h.write_usize(jobs.len());
    for &Job { class, time } in jobs {
        h.write_usize(class);
        h.write_u64(time);
    }
    h.finish()
}

impl Instance {
    /// A deterministic 64-bit digest of the instance content.
    ///
    /// Structurally equal instances hash equal; the digest is stable across
    /// processes, platforms and releases of this crate (pinned by a
    /// golden-value test; an internal encoding-version tag guards encoding
    /// changes).
    /// Job and class *order* is part of the content: the same multiset of
    /// jobs in a different insertion order is a different instance (solver
    /// output depends on indices) and hashes differently.
    ///
    /// This is a **cache key, not a cryptographic hash** — callers must
    /// confirm instance equality on a hash hit before trusting it.
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        job_section_hash(
            &setup_section_hasher(self.machines(), self.setups()),
            self.jobs(),
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::InstanceBuilder;

    use super::*;

    fn base() -> Instance {
        let mut b = InstanceBuilder::new(3);
        b.add_batch(10, &[7, 3, 9, 2]);
        b.add_batch(4, &[5, 5, 6]);
        b.build().unwrap()
    }

    /// The digest is pinned to a literal: any change to the canonical
    /// encoding (or to FNV itself) must be deliberate — bump
    /// `ENCODING_VERSION` and re-bless this constant together.
    #[test]
    fn digest_is_stable_across_runs_and_builds() {
        let inst = base();
        assert_eq!(inst.content_hash(), 0xe69b_6de0_0899_2dc4);
        // And trivially within a process.
        assert_eq!(inst.content_hash(), inst.content_hash());
        assert_eq!(inst.clone().content_hash(), inst.content_hash());
    }

    #[test]
    fn equal_instances_hash_equal_after_a_wire_roundtrip() {
        let inst = base();
        let back = Instance::from_json(&inst.to_json()).unwrap();
        assert_eq!(back, inst);
        assert_eq!(back.content_hash(), inst.content_hash());
    }

    #[test]
    fn near_identical_instances_are_distinguished() {
        let reference = base().content_hash();
        // One more machine.
        let mut b = InstanceBuilder::new(4);
        b.add_batch(10, &[7, 3, 9, 2]);
        b.add_batch(4, &[5, 5, 6]);
        assert_ne!(b.build().unwrap().content_hash(), reference);
        // One job time off by one.
        let mut b = InstanceBuilder::new(3);
        b.add_batch(10, &[7, 3, 9, 2]);
        b.add_batch(4, &[5, 5, 7]);
        assert_ne!(b.build().unwrap().content_hash(), reference);
        // One setup off by one.
        let mut b = InstanceBuilder::new(3);
        b.add_batch(11, &[7, 3, 9, 2]);
        b.add_batch(4, &[5, 5, 6]);
        assert_ne!(b.build().unwrap().content_hash(), reference);
        // Same jobs, two of them swapped (insertion order is content).
        let mut b = InstanceBuilder::new(3);
        b.add_batch(10, &[3, 7, 9, 2]);
        b.add_batch(4, &[5, 5, 6]);
        assert_ne!(b.build().unwrap().content_hash(), reference);
        // A job moved between classes, keeping every aggregate-by-value the
        // same shape.
        let mut b = InstanceBuilder::new(3);
        let c0 = b.add_class(10);
        let c1 = b.add_class(4);
        for t in [7, 3, 9] {
            b.add_job(c0, t);
        }
        b.add_job(c1, 2);
        for t in [5, 5, 6] {
            b.add_job(c1, t);
        }
        assert_ne!(b.build().unwrap().content_hash(), reference);
    }

    /// Concatenation attacks on the flat word stream: moving a value across
    /// the setups/jobs boundary must not alias, because the section lengths
    /// are part of the encoding.
    #[test]
    fn section_lengths_prevent_boundary_aliasing() {
        let mut one_class_two_jobs = InstanceBuilder::new(1);
        one_class_two_jobs.add_batch(5, &[5, 5]);
        let mut two_classes_one_job = InstanceBuilder::new(1);
        two_classes_one_job.add_batch(5, &[5]);
        two_classes_one_job.add_batch(5, &[5]);
        // Different structure, overlapping raw values.
        let a = one_class_two_jobs.build().unwrap();
        let b = two_classes_one_job.build().unwrap();
        assert_ne!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn hasher_is_plain_fnv1a() {
        // Spot-check against the published FNV-1a test vector for "a"
        // (0xaf63dc4c8601ec8c) to pin the constants.
        let mut h = ContentHasher::new();
        h.write_u8(b'a');
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }
}
