//! JSON import/export for instances.
//!
//! The wire format stores only the raw data (machines, setups, jobs); derived
//! aggregates are rebuilt and re-validated on load, so a hand-edited file that
//! violates the model (empty class, zero time, ...) is rejected.

use crate::{Instance, InstanceError};

/// Errors arising while reading an instance from JSON.
#[derive(Debug)]
pub enum IoError {
    /// The JSON was malformed.
    Json(bss_json::JsonError),
    /// The decoded data violates the instance model.
    Model(InstanceError),
}

impl core::fmt::Display for IoError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            IoError::Json(e) => write!(f, "invalid instance JSON: {e}"),
            IoError::Model(e) => write!(f, "invalid instance data: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl Instance {
    /// Serializes the instance to pretty-printed JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        bss_json::encode_pretty(self)
    }

    /// Parses and validates an instance from JSON.
    pub fn from_json(json: &str) -> Result<Self, IoError> {
        let value = bss_json::parse(json).map_err(IoError::Json)?;
        Instance::from_json_value_checked(&value)
    }

    /// Decodes and validates an instance from an already-parsed value,
    /// distinguishing malformed JSON from model violations — unlike the
    /// [`bss_json::FromJson`] impl, which flattens both into one error.
    /// Network servers use this to answer with typed error classes.
    pub fn from_json_value_checked(value: &bss_json::Value) -> Result<Self, IoError> {
        let (machines, setups, jobs) =
            crate::model::raw_parts_from_json(value).map_err(IoError::Json)?;
        Instance::from_parts(machines, setups, jobs).map_err(IoError::Model)
    }
}

#[cfg(test)]
mod tests {
    use crate::InstanceBuilder;

    use super::*;

    #[test]
    fn json_roundtrip() {
        let mut b = InstanceBuilder::new(3);
        b.add_batch(5, &[1, 2, 3]);
        b.add_batch(2, &[9]);
        let inst = b.build().unwrap();
        let json = inst.to_json();
        let back = Instance::from_json(&json).unwrap();
        assert_eq!(back, inst);
        // Derived data must be rebuilt, not defaulted.
        assert_eq!(back.class_proc(0), 6);
        assert_eq!(back.class_jobs(1), &[3]);
    }

    #[test]
    fn rejects_bad_json() {
        assert!(matches!(
            Instance::from_json("{not json"),
            Err(IoError::Json(_))
        ));
    }

    #[test]
    fn rejects_model_violation() {
        // Zero machines.
        let json = r#"{"machines":0,"setups":[1],"jobs":[{"class":0,"time":1}]}"#;
        assert!(matches!(
            Instance::from_json(json),
            Err(IoError::Model(InstanceError::NoMachines))
        ));
    }
}
