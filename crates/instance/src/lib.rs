//! Instance model for scheduling with batch setup times.
//!
//! An instance of the problem studied by Deppert & Jansen (SPAA 2019) consists
//! of `m` identical parallel machines, `n` jobs partitioned into `c` non-empty
//! classes, a processing time `t_j ∈ N` for every job and a setup time
//! `s_i ∈ N` for every class. A machine must run a setup `s_i` before
//! processing load of class `i` whenever it starts with that class or switches
//! to it from a different class; setups are never preempted.
//!
//! Three problem variants share this model and differ only in what a schedule
//! may do with jobs (see [`Variant`]):
//!
//! * **non-preemptive** (`P|setup=s_i|Cmax`) — jobs run contiguously on one machine,
//! * **preemptive** (`P|pmtn,setup=s_i|Cmax`) — jobs may be preempted but never
//!   run on two machines at the same time,
//! * **splittable** (`P|split,setup=s_i|Cmax`) — job pieces may run anywhere,
//!   even in parallel.
//!
//! The crate also provides the instance-only lower bounds the paper uses to
//! anchor its searches (`T_min`, Notes 1–2, `N/m`, `s_max`) in [`LowerBounds`].

mod bounds;
mod hash;
mod incremental;
mod io;
mod model;

pub use bounds::{tmin, LowerBounds};
pub use hash::ContentHasher;
pub use incremental::{Delta, DeltaError, IncrementalInstance};
pub use io::IoError;
pub use model::{
    ClassId, Instance, InstanceBuilder, InstanceError, Job, JobId, MAX_MACHINES, MAX_TOTAL_LOAD,
};

use bss_json::{FromJson, JsonError, ToJson, Value};

/// The three problem variants of scheduling with batch setup times.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// `P|setup=s_i|Cmax`: jobs may not be preempted.
    NonPreemptive,
    /// `P|pmtn,setup=s_i|Cmax`: jobs may be preempted but not parallelized.
    Preemptive,
    /// `P|split,setup=s_i|Cmax`: jobs may be preempted and parallelized.
    Splittable,
}

impl Variant {
    /// All three variants, in the paper's table order.
    pub const ALL: [Variant; 3] = [
        Variant::Splittable,
        Variant::NonPreemptive,
        Variant::Preemptive,
    ];

    /// Short lowercase name used in reports and file names.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Variant::NonPreemptive => "non-preemptive",
            Variant::Preemptive => "preemptive",
            Variant::Splittable => "splittable",
        }
    }
}

impl core::fmt::Display for Variant {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

impl ToJson for Variant {
    fn to_json_value(&self) -> Value {
        Value::Str(
            match self {
                Variant::NonPreemptive => "NonPreemptive",
                Variant::Preemptive => "Preemptive",
                Variant::Splittable => "Splittable",
            }
            .into(),
        )
    }
}

impl FromJson for Variant {
    fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        match value.as_str() {
            Some("NonPreemptive") => Ok(Variant::NonPreemptive),
            Some("Preemptive") => Ok(Variant::Preemptive),
            Some("Splittable") => Ok(Variant::Splittable),
            Some(other) => Err(JsonError::new(format!("unknown variant `{other}`"))),
            None => Err(JsonError::new(format!(
                "expected variant string, found {}",
                value.kind()
            ))),
        }
    }
}
