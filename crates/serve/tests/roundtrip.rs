//! End-to-end tests of the solve service over real sockets.
//!
//! Every test spawns a fresh server on an ephemeral port, talks to it
//! through the real client (or a raw socket for protocol-abuse tests), and
//! shuts it down. The nightly pipeline raises the sweep sizes through
//! `BSS_SERVE_CASES`.

use std::time::Duration;

use bss_chaos::assert_bit_identical;
use bss_core::{solve, Algorithm, Completion, Interrupt, Solution};
use bss_instance::{Instance, Variant};
use bss_json::frame::{read_frame, write_frame};
use bss_serve::{
    spawn, Client, ClientError, ErrorCode, Response, ServeConfig, SolveOptions, SolveOutcome,
    WireSolution,
};

/// Sweep width, raised by the nightly pipeline (`BSS_SERVE_CASES`).
fn cases() -> usize {
    std::env::var("BSS_SERVE_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8)
}

fn test_server(config: ServeConfig) -> bss_serve::ServerHandle {
    spawn(config).expect("bind an ephemeral test server")
}

fn small_config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    }
}

/// Checks a wire solution against a locally computed one field by field —
/// the service must be invisible in the results.
fn assert_wire_matches(label: &str, wire: &WireSolution, local: &Solution) {
    assert_eq!(wire.makespan, local.makespan, "{label}: makespan");
    assert_eq!(wire.accepted, local.accepted, "{label}: accepted");
    assert_eq!(wire.ratio_bound, local.ratio_bound, "{label}: ratio_bound");
    assert_eq!(wire.certificate, local.certificate, "{label}: certificate");
    assert_eq!(wire.probes as usize, local.probes, "{label}: probes");
    assert_eq!(wire.completion, local.completion, "{label}: completion");
    if let Some(schedule) = &wire.schedule {
        assert_eq!(schedule, local.schedule(), "{label}: schedule");
    }
}

#[test]
fn solve_over_a_socket_matches_local_solve_bit_for_bit() {
    let server = test_server(small_config());
    let mut client = Client::connect(server.addr()).unwrap();
    let sweeps: Vec<(Variant, Algorithm)> = vec![
        (Variant::NonPreemptive, Algorithm::TwoApprox),
        (Variant::NonPreemptive, Algorithm::ThreeHalves),
        (Variant::NonPreemptive, Algorithm::Portfolio),
        (Variant::Preemptive, Algorithm::ThreeHalves),
        (Variant::Splittable, Algorithm::ThreeHalves),
        (
            Variant::Splittable,
            Algorithm::EpsilonSearch { eps_log2: 6 },
        ),
    ];
    for seed in 0..cases() as u64 {
        let instance = bss_gen::uniform(40, 5, 3, 1000 + seed);
        for &(variant, algo) in &sweeps {
            let outcome = client
                .solve(
                    &instance,
                    variant,
                    algo,
                    SolveOptions {
                        want_schedule: true,
                        ..SolveOptions::default()
                    },
                )
                .unwrap();
            let SolveOutcome::Solved { solution, .. } = outcome else {
                panic!("unloaded server shed a request");
            };
            let local = solve(&instance, variant, algo);
            assert_wire_matches(
                &format!("seed {seed}, {variant:?}/{algo:?}"),
                &solution,
                &local,
            );
        }
    }
    server.shutdown();
}

#[test]
fn cache_hit_is_bit_identical_to_the_cold_solve() {
    let server = test_server(small_config());
    let mut client = Client::connect(server.addr()).unwrap();
    let instance = bss_gen::uniform(50, 6, 4, 42);
    let opts = SolveOptions {
        want_schedule: true,
        ..SolveOptions::default()
    };

    let cold = client
        .solve(
            &instance,
            Variant::NonPreemptive,
            Algorithm::Portfolio,
            opts,
        )
        .unwrap();
    let SolveOutcome::Solved {
        cached: false,
        solution: cold_sol,
    } = cold
    else {
        panic!("first solve must be a cold miss, got {cold:?}");
    };

    // Same request again — now served from the cache, from a *different*
    // connection (the cache is server-global, not per-connection).
    let mut client2 = Client::connect(server.addr()).unwrap();
    let warm = client2
        .solve(
            &instance,
            Variant::NonPreemptive,
            Algorithm::Portfolio,
            opts,
        )
        .unwrap();
    let SolveOutcome::Solved {
        cached: true,
        solution: warm_sol,
    } = warm
    else {
        panic!("second solve must be a cache hit, got {warm:?}");
    };

    // Bit-identity, proven on the encoded wire payloads: every field of the
    // two responses (schedule included) encodes to the same JSON.
    assert_eq!(warm_sol, cold_sol);
    assert_eq!(
        bss_json::encode_pretty(&warm_sol),
        bss_json::encode_pretty(&cold_sol)
    );
    // And both equal the local reference solve.
    let local = solve(&instance, Variant::NonPreemptive, Algorithm::Portfolio);
    assert_wire_matches("cold", &cold_sol, &local);
    assert_wire_matches("warm", &warm_sol, &local);

    let stats = client.stats().unwrap();
    assert_eq!(stats.cache.hits, 1);
    assert!(stats.cache.misses >= 1);
    server.shutdown();
}

#[test]
fn cache_evicts_fifo_under_its_size_bound() {
    let server = test_server(ServeConfig {
        workers: 1,
        cache_capacity: 2,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(server.addr()).unwrap();
    let instances: Vec<Instance> = (0..3)
        .map(|i| bss_gen::uniform(20, 3, 2, 7000 + i))
        .collect();
    let opts = SolveOptions::default();

    let cached_flag = |outcome: SolveOutcome| match outcome {
        SolveOutcome::Solved { cached, .. } => cached,
        SolveOutcome::Shed { .. } => panic!("unloaded server shed"),
    };

    // Fill: 0, 1 → capacity reached; 2 evicts 0 (FIFO).
    for inst in &instances {
        assert!(!cached_flag(
            client
                .solve(inst, Variant::Splittable, Algorithm::ThreeHalves, opts)
                .unwrap()
        ));
    }
    // 1 and 2 are still cached…
    for inst in &instances[1..] {
        assert!(cached_flag(
            client
                .solve(inst, Variant::Splittable, Algorithm::ThreeHalves, opts)
                .unwrap()
        ));
    }
    // …but 0 was evicted: a cold solve again (which now evicts 1 in turn).
    assert!(!cached_flag(
        client
            .solve(
                &instances[0],
                Variant::Splittable,
                Algorithm::ThreeHalves,
                opts
            )
            .unwrap()
    ));
    let stats = client.stats().unwrap();
    assert_eq!(stats.cache.len, 2, "size bound violated");
    assert!(stats.cache.evictions >= 2);
    server.shutdown();
}

#[test]
fn overloaded_server_sheds_with_a_typed_response() {
    // One dispatcher slot, a queue of one: a sleeping job plus a queued job
    // saturate the server deterministically.
    let server = test_server(ServeConfig {
        workers: 1,
        batch_max: 1,
        queue_capacity: 1,
        allow_test_ops: true,
        ..ServeConfig::default()
    });
    let addr = server.addr();

    // Occupy the dispatcher (blocking call, so it runs on its own thread).
    let busy = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.sleep(600).unwrap();
    });
    std::thread::sleep(Duration::from_millis(150));
    // Fill the queue behind it.
    let queued = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.try_sleep(200).unwrap();
    });
    std::thread::sleep(Duration::from_millis(150));

    // Queue full, dispatcher busy: this request must be shed, immediately
    // and typed — not blocked, not errored.
    let mut client = Client::connect(addr).unwrap();
    let instance = bss_gen::uniform(10, 2, 2, 1);
    let started = std::time::Instant::now();
    let outcome = client
        .solve(
            &instance,
            Variant::Splittable,
            Algorithm::TwoApprox,
            SolveOptions::default(),
        )
        .unwrap();
    let SolveOutcome::Shed {
        queued: depth,
        capacity,
    } = outcome
    else {
        panic!("expected a shed, got {outcome:?}");
    };
    assert_eq!(capacity, 1);
    assert!(depth >= 1);
    assert!(
        started.elapsed() < Duration::from_millis(400),
        "shed reply must not wait for the busy dispatcher"
    );

    busy.join().unwrap();
    queued.join().unwrap();

    // After the stall drains, the same request solves normally.
    let outcome = client
        .solve(
            &instance,
            Variant::Splittable,
            Algorithm::TwoApprox,
            SolveOptions::default(),
        )
        .unwrap();
    assert!(matches!(outcome, SolveOutcome::Solved { .. }));
    let stats = client.stats().unwrap();
    assert!(stats.shed >= 1, "shed counter must record the refusal");
    server.shutdown();
}

#[test]
fn deadline_is_honored_with_an_honest_degraded_response() {
    let server = test_server(small_config());
    let mut client = Client::connect(server.addr()).unwrap();
    // Large instance + eps search, with a zero-millisecond deadline: the
    // budget is already expired when the solve starts, forcing degradation.
    let instance = bss_gen::uniform(4000, 40, 8, 9);
    let outcome = client
        .solve(
            &instance,
            Variant::NonPreemptive,
            Algorithm::EpsilonSearch { eps_log2: 12 },
            SolveOptions {
                deadline_ms: Some(0),
                ..SolveOptions::default()
            },
        )
        .unwrap();
    let SolveOutcome::Solved { cached, solution } = outcome else {
        panic!("degraded solves still answer, got {outcome:?}");
    };
    assert!(!cached);
    assert_eq!(
        solution.completion,
        Completion::Degraded(Interrupt::Deadline),
        "an expired deadline must be reported honestly"
    );

    // Degraded results are budget artifacts: they must NOT be cached, so an
    // unbudgeted retry of the same instance is a cold, Full solve.
    let retry = client
        .solve(
            &instance,
            Variant::NonPreemptive,
            Algorithm::EpsilonSearch { eps_log2: 12 },
            SolveOptions::default(),
        )
        .unwrap();
    let SolveOutcome::Solved { cached, solution } = retry else {
        panic!("retry failed: {retry:?}");
    };
    assert!(!cached, "a degraded result must never be served from cache");
    assert_eq!(solution.completion, Completion::Full);
    server.shutdown();
}

#[test]
fn work_budget_degrades_like_the_local_budgeted_solver() {
    let server = test_server(small_config());
    let mut client = Client::connect(server.addr()).unwrap();
    let instance = bss_gen::uniform(60, 6, 3, 77);
    let outcome = client
        .solve(
            &instance,
            Variant::NonPreemptive,
            Algorithm::ThreeHalves,
            SolveOptions {
                work_budget: Some(0),
                ..SolveOptions::default()
            },
        )
        .unwrap();
    let SolveOutcome::Solved { solution, .. } = outcome else {
        panic!("got {outcome:?}");
    };
    // Work budgets are deterministic (no wall clock): the remote degraded
    // result must be bit-identical to the local budgeted solve.
    let budget = bss_core::SolveBudget::unlimited().with_work_limit(0);
    let local = bss_core::solve_budgeted(
        &instance,
        Variant::NonPreemptive,
        Algorithm::ThreeHalves,
        &budget,
    )
    .unwrap();
    assert_eq!(
        local.completion,
        Completion::Degraded(Interrupt::WorkExhausted)
    );
    assert_wire_matches("work-budget", &solution, &local);
    server.shutdown();
}

#[test]
fn concurrent_clients_all_get_correct_answers() {
    // More in-flight requests than workers forces micro-batching through
    // SolvePool::solve_items; every response must still match its own
    // request (no cross-wiring under concurrency).
    let server = test_server(ServeConfig {
        workers: 2,
        batch_max: 4,
        ..ServeConfig::default()
    });
    let addr = server.addr();
    let clients = 6;
    let per_client = cases().max(4);
    std::thread::scope(|scope| {
        for c in 0..clients {
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for r in 0..per_client {
                    let seed = 5000 + (c * per_client + r) as u64;
                    let instance = bss_gen::uniform(30, 4, 3, seed);
                    let outcome = client
                        .solve(
                            &instance,
                            Variant::NonPreemptive,
                            Algorithm::Portfolio,
                            SolveOptions::default(),
                        )
                        .unwrap();
                    let SolveOutcome::Solved { solution, .. } = outcome else {
                        panic!("shed under default queue bounds");
                    };
                    let local = solve(&instance, Variant::NonPreemptive, Algorithm::Portfolio);
                    assert_wire_matches(&format!("client {c} req {r}"), &solution, &local);
                }
            });
        }
    });
    server.shutdown();
}

#[test]
fn cache_roundtrip_survives_solution_reencoding() {
    // The cached Solution and a cold Solution drive the exact same
    // wire encoding — compared through bss-chaos's bit-identity check on
    // locally reconstructed solutions.
    let instance = bss_gen::uniform(25, 3, 2, 314);
    let a = solve(&instance, Variant::Preemptive, Algorithm::ThreeHalves);
    let b = solve(&instance, Variant::Preemptive, Algorithm::ThreeHalves);
    assert_bit_identical("determinism precondition", &a, &b);
}

// ---------------------------------------------------------------------------
// Incremental sessions (online workloads)
// ---------------------------------------------------------------------------

#[test]
fn session_resolves_are_bit_identical_to_local_cold_solves() {
    use bss_instance::{Delta, IncrementalInstance};

    let server = test_server(small_config());
    let deltas = [
        Delta::AddJob { class: 0, time: 17 },
        Delta::AddJob { class: 3, time: 5 },
        Delta::Retime { job: 2, time: 40 },
        Delta::RemoveJob { job: 7 },
        Delta::AddJob { class: 1, time: 23 },
    ];
    for (variant, algo) in [
        (
            Variant::NonPreemptive,
            Algorithm::EpsilonSearch { eps_log2: 6 },
        ),
        (
            Variant::Splittable,
            Algorithm::EpsilonSearch { eps_log2: 6 },
        ),
        (Variant::Preemptive, Algorithm::TwoApprox),
    ] {
        let mut client = Client::connect(server.addr()).unwrap();
        let base = bss_gen::uniform(40, 5, 3, 4242);
        let mut mirror = IncrementalInstance::new(&base);

        let ack = client.session(&base, variant, algo).unwrap();
        assert_eq!(ack.jobs, 40);
        assert_eq!(ack.content_hash, base.content_hash());

        // The base resolve plus one after every delta: each must be
        // bit-identical to a local cold solve of the mirrored state —
        // the server's warm-start path must be invisible in the payload.
        for (step, delta) in std::iter::once(None)
            .chain(deltas.iter().map(Some))
            .enumerate()
        {
            if let Some(&d) = delta {
                let ack = client.delta(d).unwrap();
                mirror.apply(d).unwrap();
                assert_eq!(ack.jobs, mirror.num_jobs() as u64, "step {step}");
                assert_eq!(ack.content_hash, mirror.content_hash(), "step {step}");
            }
            let outcome = client.resolve(true).unwrap();
            let SolveOutcome::Solved { solution, .. } = outcome else {
                panic!("resolve shed: {outcome:?}");
            };
            let local = solve(&mirror.materialize(), variant, algo);
            assert_eq!(
                solution.makespan, local.makespan,
                "step {step} {variant:?}/{algo:?}: makespan"
            );
            assert_eq!(solution.accepted, local.accepted, "step {step}: accepted");
            assert_eq!(
                solution.certificate, local.certificate,
                "step {step}: certificate"
            );
            assert_eq!(
                solution.ratio_bound, local.ratio_bound,
                "step {step}: ratio_bound"
            );
            assert_eq!(solution.completion, local.completion, "step {step}");
            assert_eq!(
                solution.schedule.as_ref(),
                Some(local.schedule()),
                "step {step}: schedule"
            );
        }
    }
    server.shutdown();
}

#[test]
fn session_resolve_of_an_unchanged_state_hits_the_cache() {
    let server = test_server(small_config());
    let mut client = Client::connect(server.addr()).unwrap();
    let base = bss_gen::uniform(30, 4, 3, 99);
    client
        .session(&base, Variant::Splittable, Algorithm::ThreeHalves)
        .unwrap();
    let first = client.resolve(false).unwrap();
    let SolveOutcome::Solved { cached: false, .. } = first else {
        panic!("first resolve must be cold: {first:?}");
    };
    let second = client.resolve(false).unwrap();
    let SolveOutcome::Solved { cached: true, .. } = second else {
        panic!("repeat resolve of the same state must hit the cache: {second:?}");
    };
    // A plain solve of the same instance from another connection also hits:
    // session solves share the server-global cache.
    let mut other = Client::connect(server.addr()).unwrap();
    let outcome = other
        .solve(
            &base,
            Variant::Splittable,
            Algorithm::ThreeHalves,
            SolveOptions::default(),
        )
        .unwrap();
    let SolveOutcome::Solved { cached: true, .. } = outcome else {
        panic!("cross-connection lookup of a session solve missed: {outcome:?}");
    };
    server.shutdown();
}

#[test]
fn session_misuse_gets_typed_errors_and_the_session_survives_bad_deltas() {
    use bss_instance::Delta;

    let server = test_server(small_config());
    let mut client = Client::connect(server.addr()).unwrap();

    // Delta/resolve before any session: BadRequest, connection stays up.
    for result in [
        client.delta(Delta::AddJob { class: 0, time: 1 }).err(),
        client.resolve(false).err(),
    ] {
        match result {
            Some(ClientError::Server {
                code: ErrorCode::BadRequest,
                message,
            }) => assert!(message.contains("no session"), "message: {message}"),
            other => panic!("expected a typed no-session error, got {other:?}"),
        }
    }

    let base = bss_gen::uniform(20, 3, 2, 7);
    let ack = client
        .session(&base, Variant::NonPreemptive, Algorithm::ThreeHalves)
        .unwrap();

    // A model-violating delta is InvalidInstance and leaves the state as
    // it was (same content hash), still resolvable.
    match client.delta(Delta::AddJob { class: 99, time: 1 }) {
        Err(ClientError::Server {
            code: ErrorCode::InvalidInstance,
            ..
        }) => {}
        other => panic!("expected InvalidInstance, got {other:?}"),
    }
    let after = client.delta(Delta::Retime { job: 0, time: 9 }).unwrap();
    assert_ne!(after.content_hash, ack.content_hash);
    assert!(matches!(
        client.resolve(false).unwrap(),
        SolveOutcome::Solved { .. }
    ));
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Lock-poisoning recovery
// ---------------------------------------------------------------------------

#[test]
fn server_keeps_serving_after_the_cache_lock_is_poisoned() {
    let server = test_server(small_config());
    let mut client = Client::connect(server.addr()).unwrap();
    let instance = bss_gen::uniform(25, 4, 2, 1234);

    // Seed the cache, then poison its mutex (a thread panics holding it).
    client
        .solve(
            &instance,
            Variant::Splittable,
            Algorithm::ThreeHalves,
            SolveOptions::default(),
        )
        .unwrap();
    server.poison_cache_for_tests();

    // Every cache-touching path must keep working: stats, the lookup fast
    // path (which still hits the pre-poison entry), and fresh inserts.
    let stats = client.stats().unwrap();
    assert_eq!(stats.cache.len, 1);
    let hit = client
        .solve(
            &instance,
            Variant::Splittable,
            Algorithm::ThreeHalves,
            SolveOptions::default(),
        )
        .unwrap();
    assert!(matches!(hit, SolveOutcome::Solved { cached: true, .. }));
    let other = bss_gen::uniform(25, 4, 2, 5678);
    let cold = client
        .solve(
            &other,
            Variant::Splittable,
            Algorithm::ThreeHalves,
            SolveOptions::default(),
        )
        .unwrap();
    assert!(matches!(cold, SolveOutcome::Solved { cached: false, .. }));
    assert_eq!(client.stats().unwrap().cache.len, 2);
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Protocol abuse over a raw socket
// ---------------------------------------------------------------------------

fn raw_call(addr: std::net::SocketAddr, payload: &str) -> Response {
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    write_frame(&mut stream, payload, 64 << 20).unwrap();
    let reply = read_frame(&mut stream, 64 << 20)
        .unwrap()
        .expect("server must answer before closing");
    bss_json::decode(&reply).unwrap()
}

#[test]
fn malformed_and_unsupported_requests_get_typed_errors() {
    let server = test_server(ServeConfig {
        workers: 1,
        max_frame_bytes: 4096,
        max_json_depth: 8,
        ..ServeConfig::default()
    });
    let addr = server.addr();

    // Broken JSON.
    let resp = raw_call(addr, "{not json");
    assert!(
        matches!(
            resp,
            Response::Error {
                code: ErrorCode::BadRequest,
                ..
            }
        ),
        "broken JSON: {resp:?}"
    );

    // Wrong protocol version.
    let resp = raw_call(addr, r#"{"v": 99, "id": 5, "kind": "ping"}"#);
    assert!(
        matches!(
            resp,
            Response::Error {
                id: 5,
                code: ErrorCode::UnsupportedVersion,
                ..
            }
        ),
        "wrong version: {resp:?}"
    );

    // Unknown kind.
    let resp = raw_call(addr, r#"{"v": 1, "id": 6, "kind": "transmogrify"}"#);
    assert!(
        matches!(
            resp,
            Response::Error {
                id: 6,
                code: ErrorCode::BadRequest,
                ..
            }
        ),
        "unknown kind: {resp:?}"
    );

    // Nesting deeper than the server's limit.
    let deep = format!(
        r#"{{"v": 1, "id": 7, "kind": "solve", "instance": {}}}"#,
        "[".repeat(20).to_string() + &"]".repeat(20)
    );
    let resp = raw_call(addr, &deep);
    assert!(
        matches!(
            resp,
            Response::Error {
                code: ErrorCode::TooDeep,
                ..
            }
        ),
        "deep nesting: {resp:?}"
    );

    // Oversized frame: refused with a typed error, then disconnect.
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    let big = format!(r#"{{"v":1,"id":8,"pad":"{}"}}"#, "x".repeat(8192));
    write_frame(&mut stream, &big, 64 << 20).unwrap();
    let reply = read_frame(&mut stream, 64 << 20).unwrap().unwrap();
    let resp: Response = bss_json::decode(&reply).unwrap();
    assert!(
        matches!(
            resp,
            Response::Error {
                code: ErrorCode::TooLarge,
                ..
            }
        ),
        "oversized frame: {resp:?}"
    );

    // Test ops are refused when not enabled.
    let resp = raw_call(addr, r#"{"v": 1, "id": 9, "kind": "sleep", "ms": 10}"#);
    assert!(
        matches!(
            resp,
            Response::Error {
                id: 9,
                code: ErrorCode::BadRequest,
                ..
            }
        ),
        "test op: {resp:?}"
    );

    // A model-violating instance (zero machines) gets InvalidInstance —
    // classified structurally from the decode error's type, so exactly
    // this code, not a BadRequest fallback.
    let bad_instance = r#"{"v":1,"id":10,"kind":"solve","variant":"NonPreemptive",
        "algorithm":"two-approx",
        "instance":{"machines":0,"setups":[1],"jobs":[{"class":0,"time":1}]}}"#;
    let resp = raw_call(addr, bad_instance);
    assert!(
        matches!(
            resp,
            Response::Error {
                id: 10,
                code: ErrorCode::InvalidInstance,
                ..
            }
        ),
        "invalid instance: {resp:?}"
    );

    // A malformed *shape* inside the instance object (jobs not an array)
    // stays BadRequest even though the message mentions the field.
    let bad_shape = r#"{"v":1,"id":11,"kind":"solve","variant":"NonPreemptive",
        "algorithm":"two-approx",
        "instance":{"machines":1,"setups":[1],"jobs":"nope"}}"#;
    let resp = raw_call(addr, bad_shape);
    assert!(
        matches!(
            resp,
            Response::Error {
                id: 11,
                code: ErrorCode::BadRequest,
                ..
            }
        ),
        "malformed instance shape: {resp:?}"
    );

    // The server is still healthy after all the abuse.
    let mut client = Client::connect(addr).unwrap();
    client.ping().unwrap();
    server.shutdown();
}

#[test]
fn oversized_response_gets_a_typed_error_and_keeps_the_connection() {
    use bss_serve::protocol::SolveRequest;

    let instance = bss_gen::uniform(80, 6, 3, 2024);
    let request = |id: u64, want_schedule: bool| {
        bss_json::encode_pretty(&bss_serve::Request::Solve(Box::new(SolveRequest {
            id,
            instance: instance.clone(),
            variant: Variant::Splittable,
            algo: Algorithm::ThreeHalves,
            deadline_ms: None,
            work_budget: None,
            want_schedule,
        })))
    };
    let req_text = request(1, true);
    // Precondition: the schedule-carrying response really is bigger than
    // the request, so a frame bound can sit between the two.
    let local = solve(&instance, Variant::Splittable, Algorithm::ThreeHalves);
    let resp_text = bss_json::encode_pretty(&Response::Solved {
        id: 1,
        cached: false,
        solution: WireSolution::of(&local, true),
    });
    let max_frame_bytes = req_text.len() + 64;
    assert!(
        resp_text.len() > max_frame_bytes,
        "precondition: response ({}) must exceed the frame bound ({})",
        resp_text.len(),
        max_frame_bytes
    );

    let server = test_server(ServeConfig {
        workers: 1,
        max_frame_bytes,
        ..ServeConfig::default()
    });
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    write_frame(&mut stream, &req_text, 64 << 20).unwrap();
    let reply = read_frame(&mut stream, 64 << 20).unwrap().unwrap();
    let resp: Response = bss_json::decode(&reply).unwrap();
    assert!(
        matches!(
            resp,
            Response::Error {
                id: 1,
                code: ErrorCode::TooLarge,
                ..
            }
        ),
        "oversized response must come back as a typed error, got {resp:?}"
    );

    // The oversized payload never hit the wire, so the same connection
    // stays framed and usable: the schedule-free retry fits and succeeds.
    write_frame(&mut stream, &request(2, false), 64 << 20).unwrap();
    let reply = read_frame(&mut stream, 64 << 20).unwrap().unwrap();
    let resp: Response = bss_json::decode(&reply).unwrap();
    assert!(
        matches!(resp, Response::Solved { id: 2, .. }),
        "connection must survive an oversized response, got {resp:?}"
    );
    server.shutdown();
}

#[test]
fn solve_after_shutdown_gets_a_typed_error_not_a_hang() {
    let server = test_server(small_config());
    let addr = server.addr();
    // Both connections are accepted *before* shutdown; their detached
    // connection threads keep serving afterwards.
    let mut survivor = Client::connect(addr).unwrap();
    let mut closer = Client::connect(addr).unwrap();
    closer.shutdown_server().unwrap();

    // The dispatcher has (or soon will have) observed empty-queue+shutdown
    // and exited. Admission control re-checks the flag under the queue
    // lock, so this enqueue must be refused with a typed error — never
    // pushed into a queue nobody drains, which would hang this call.
    let instance = bss_gen::uniform(10, 2, 2, 3);
    match survivor.solve(
        &instance,
        Variant::Splittable,
        Algorithm::TwoApprox,
        SolveOptions::default(),
    ) {
        Err(ClientError::Server {
            code: ErrorCode::Internal,
            message,
        }) => assert!(
            message.contains("shutting down"),
            "unexpected internal error: {message}"
        ),
        other => panic!("expected a typed shutting-down error, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn ping_stats_and_shutdown_roundtrip() {
    let server = test_server(small_config());
    let mut client = Client::connect(server.addr()).unwrap();
    client.ping().unwrap();

    let instance = bss_gen::uniform(15, 3, 2, 55);
    client
        .solve(
            &instance,
            Variant::Splittable,
            Algorithm::TwoApprox,
            SolveOptions::default(),
        )
        .unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.solved, 1);
    assert_eq!(stats.workers, 2);
    assert_eq!(stats.cache.misses, 1);

    client.shutdown_server().unwrap();
    server.shutdown();

    // A post-shutdown solve on a fresh connection must fail, not hang.
    match Client::connect(&format!("127.0.0.1:1")) {
        Err(ClientError::Io(_)) => {}
        Err(other) => panic!("unexpected error kind: {other}"),
        Ok(_) => panic!("connected to a port nothing listens on"),
    }
}

#[test]
fn request_pool_mix_produces_expected_cache_hit_rate() {
    // Loadgen's `distinct` knob drives the hit rate end to end.
    let server = test_server(small_config());
    let config = bss_serve::LoadgenConfig {
        addr: server.addr().to_string(),
        connections: 2,
        requests: 40,
        distinct: 10,
        jobs: 20,
        classes: 3,
        machines: 2,
        ..bss_serve::LoadgenConfig::default()
    };
    let report = bss_serve::loadgen::run(&config).unwrap();
    assert_eq!(report.solved, 40);
    assert_eq!(report.errors, 0);
    assert_eq!(report.shed, 0);
    // 10 distinct instances: at most 10 cold solves… but concurrent first
    // encounters can race past the cache, so allow a small margin.
    assert!(
        report.cached >= 25,
        "expected a high hit rate with distinct=10, requests=40; got {} cached",
        report.cached
    );
    assert_eq!(report.latency.len() as u64, report.solved);
    assert!(report.solves_per_sec() > 0.0);
    assert!(report.render().contains("throughput"));
    server.shutdown();
}
