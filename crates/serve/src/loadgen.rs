//! The load generator: seeded request mixes, open- and closed-loop driving,
//! and a latency histogram.
//!
//! Closed-loop mode sends requests back-to-back per connection — it
//! measures the server's sustained capacity (each in-flight request gates
//! the next). Open-loop mode paces each connection at a fixed request rate
//! and measures latency from the *scheduled* send time, so a slow server
//! accumulates queueing delay into the reported latencies instead of
//! silently slowing the generator (the coordinated-omission trap).

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use bss_core::Algorithm;
use bss_instance::{Instance, Variant};

use crate::client::{Client, ClientError, SolveOptions, SolveOutcome};
use crate::protocol::ServerStats;

/// How the generator paces requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// Back-to-back requests per connection (capacity measurement).
    Closed,
    /// Fixed per-connection request rate, latency from scheduled send time.
    Open {
        /// Requests per second, per connection.
        rate_per_conn: u32,
    },
}

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address.
    pub addr: String,
    /// Concurrent client connections.
    pub connections: usize,
    /// Total requests across all connections.
    pub requests: usize,
    /// Number of distinct instances in the request pool. Requests cycle
    /// through the pool, so `distinct < requests` produces cache hits
    /// (ratio ≈ `1 - distinct/requests` at steady state); `distinct >=
    /// requests` makes every request a cold solve.
    pub distinct: usize,
    /// Jobs per generated instance.
    pub jobs: usize,
    /// Setup classes per generated instance.
    pub classes: usize,
    /// Machines per generated instance.
    pub machines: usize,
    /// Generator seed; the request pool is a pure function of the seed and
    /// shape parameters.
    pub seed: u64,
    /// Problem variant for every request.
    pub variant: Variant,
    /// Algorithm for every request.
    pub algo: Algorithm,
    /// Per-request deadline forwarded to the server.
    pub deadline_ms: Option<u64>,
    /// Pacing mode.
    pub mode: LoadMode,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:7341".into(),
            connections: 4,
            requests: 400,
            distinct: 100,
            jobs: 64,
            classes: 8,
            machines: 4,
            seed: 0xB55,
            variant: Variant::NonPreemptive,
            algo: Algorithm::Portfolio,
            deadline_ms: None,
            mode: LoadMode::Closed,
        }
    }
}

/// An exact-sample latency recorder (nanosecond resolution).
///
/// Percentile queries sort lazily and cache the sorted order, so a report
/// that renders several percentiles (mean, p50, p90, p99, …) pays for one
/// sort instead of one per call; any mutation invalidates the cache.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    samples_ns: Vec<u64>,
    /// Lazily computed sorted copy of `samples_ns`; `None` until the first
    /// percentile query after a mutation.
    sorted: RefCell<Option<Vec<u64>>>,
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Duration) {
        self.samples_ns
            .push(latency.as_nanos().min(u128::from(u64::MAX)) as u64);
        *self.sorted.get_mut() = None;
    }

    /// Absorbs another histogram's samples.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        self.samples_ns.extend_from_slice(&other.samples_ns);
        *self.sorted.get_mut() = None;
    }

    /// Sample count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples_ns.len()
    }

    /// Whether no samples were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples_ns.is_empty()
    }

    /// The `p`-th percentile (0–100, nearest-rank), `None` when empty.
    /// `p = 0` is the minimum sample, `p = 100` the maximum.
    #[must_use]
    pub fn percentile(&self, p: f64) -> Option<Duration> {
        if self.samples_ns.is_empty() {
            return None;
        }
        let mut cache = self.sorted.borrow_mut();
        let sorted = cache.get_or_insert_with(|| {
            let mut v = self.samples_ns.clone();
            v.sort_unstable();
            v
        });
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        let idx = rank.clamp(1, sorted.len()) - 1;
        Some(Duration::from_nanos(sorted[idx]))
    }

    /// Mean latency, `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<Duration> {
        if self.samples_ns.is_empty() {
            return None;
        }
        let total: u128 = self.samples_ns.iter().map(|&ns| u128::from(ns)).sum();
        Some(Duration::from_nanos(
            (total / self.samples_ns.len() as u128) as u64,
        ))
    }
}

/// The outcome of one load-generation run.
#[derive(Debug)]
pub struct LoadReport {
    /// Requests answered with a solution (cold or cached).
    pub solved: u64,
    /// Of those, answered from the cache.
    pub cached: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Requests that failed (connection or server errors).
    pub errors: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Latency of every solved request.
    pub latency: LatencyHistogram,
    /// The server's counter snapshot taken right after the run (best
    /// effort; `None` when the stats request itself failed). Surfaces the
    /// cache's hit/miss/collision counters next to the client-side numbers.
    pub server: Option<ServerStats>,
}

impl LoadReport {
    /// Sustained solves per second over the run.
    #[must_use]
    pub fn solves_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.solved as f64 / secs
        }
    }

    /// A human-readable multi-line summary.
    #[must_use]
    pub fn render(&self) -> String {
        let pct = |p: f64| {
            self.latency.percentile(p).map_or_else(
                || "n/a".into(),
                |d| format!("{:.3} ms", d.as_secs_f64() * 1e3),
            )
        };
        let mean = self.latency.mean().map_or_else(
            || "n/a".into(),
            |d| format!("{:.3} ms", d.as_secs_f64() * 1e3),
        );
        let mut out = format!(
            "solved {} ({} cached), shed {}, errors {} in {:.3} s\n\
             throughput: {:.1} solves/s\n\
             latency: mean {}  p50 {}  p90 {}  p99 {}",
            self.solved,
            self.cached,
            self.shed,
            self.errors,
            self.elapsed.as_secs_f64(),
            self.solves_per_sec(),
            mean,
            pct(50.0),
            pct(90.0),
            pct(99.0),
        );
        if let Some(stats) = &self.server {
            out.push_str(&format!(
                "\nserver cache: {} hits, {} misses, {} evictions, {} collisions, {} resident",
                stats.cache.hits,
                stats.cache.misses,
                stats.cache.evictions,
                stats.cache.collisions,
                stats.cache.len,
            ));
        }
        out
    }
}

/// Builds the deterministic request pool for a config.
#[must_use]
pub fn request_pool(config: &LoadgenConfig) -> Vec<Instance> {
    (0..config.distinct.max(1))
        .map(|i| {
            bss_gen::uniform(
                config.jobs,
                config.classes,
                config.machines,
                config.seed.wrapping_add(i as u64),
            )
        })
        .collect()
}

/// Runs the load against a server and collects the report.
///
/// # Errors
/// [`ClientError`] when no connection could be established at all;
/// per-request failures are *counted* in the report instead.
pub fn run(config: &LoadgenConfig) -> Result<LoadReport, ClientError> {
    let pool = request_pool(config);
    // Fail fast (and typed) if the server is unreachable, before spawning.
    let mut probe = Client::connect(&config.addr)?;
    probe.ping()?;

    let next = AtomicUsize::new(0);
    let solved = AtomicU64::new(0);
    let cached = AtomicU64::new(0);
    let shed = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let latency = Mutex::new(LatencyHistogram::new());

    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..config.connections.max(1) {
            scope.spawn(|| {
                let Ok(mut client) = Client::connect(&config.addr) else {
                    // Connection-level failure: account every request this
                    // thread would have issued as an error and bail.
                    errors.fetch_add(1, Ordering::Relaxed);
                    return;
                };
                let mut local = LatencyHistogram::new();
                let conn_started = Instant::now();
                let mut sent_on_conn: u32 = 0;
                loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= config.requests {
                        break;
                    }
                    let instance = &pool[k % pool.len()];
                    // Open loop: latency is measured from the *scheduled*
                    // send time; sleeping only until that time keeps the
                    // offered rate independent of server speed.
                    let scheduled = match config.mode {
                        LoadMode::Closed => Instant::now(),
                        LoadMode::Open { rate_per_conn } => {
                            let gap = Duration::from_secs(1) / rate_per_conn.max(1);
                            let at = conn_started + gap * sent_on_conn;
                            if let Some(wait) = at.checked_duration_since(Instant::now()) {
                                std::thread::sleep(wait);
                            }
                            at
                        }
                    };
                    sent_on_conn += 1;
                    let outcome = client.solve(
                        instance,
                        config.variant,
                        config.algo,
                        SolveOptions {
                            deadline_ms: config.deadline_ms,
                            work_budget: None,
                            want_schedule: false,
                        },
                    );
                    match outcome {
                        Ok(SolveOutcome::Solved {
                            cached: was_cached, ..
                        }) => {
                            solved.fetch_add(1, Ordering::Relaxed);
                            if was_cached {
                                cached.fetch_add(1, Ordering::Relaxed);
                            }
                            local.record(scheduled.elapsed());
                        }
                        Ok(SolveOutcome::Shed { .. }) => {
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                latency.lock().expect("latency lock").merge(&local);
            });
        }
    });

    Ok(LoadReport {
        solved: solved.load(Ordering::Relaxed),
        cached: cached.load(Ordering::Relaxed),
        shed: shed.load(Ordering::Relaxed),
        errors: errors.load(Ordering::Relaxed),
        elapsed: started.elapsed(),
        latency: latency.into_inner().expect("latency lock"),
        server: probe.stats().ok(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_nearest_rank() {
        let mut h = LatencyHistogram::new();
        for ms in [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 10] {
            h.record(Duration::from_millis(ms));
        }
        assert_eq!(h.percentile(0.0), Some(Duration::from_millis(1)));
        assert_eq!(h.percentile(50.0), Some(Duration::from_millis(5)));
        assert_eq!(h.percentile(90.0), Some(Duration::from_millis(9)));
        assert_eq!(h.percentile(99.0), Some(Duration::from_millis(10)));
        assert_eq!(h.percentile(100.0), Some(Duration::from_millis(10)));
        assert_eq!(h.mean(), Some(Duration::from_micros(5500)));
        assert!(LatencyHistogram::new().percentile(50.0).is_none());
        assert!(LatencyHistogram::new().percentile(0.0).is_none());
    }

    #[test]
    fn percentile_cache_is_invalidated_by_record_and_merge() {
        // Samples arrive unsorted so a stale cache would be observable.
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_millis(50));
        h.record(Duration::from_millis(10));
        assert_eq!(h.percentile(0.0), Some(Duration::from_millis(10)));
        assert_eq!(h.percentile(100.0), Some(Duration::from_millis(50)));
        // A new minimum after the cache was built must be visible.
        h.record(Duration::from_millis(1));
        assert_eq!(h.percentile(0.0), Some(Duration::from_millis(1)));
        // And so must merged-in samples.
        let mut other = LatencyHistogram::new();
        other.record(Duration::from_millis(100));
        h.merge(&other);
        assert_eq!(h.percentile(100.0), Some(Duration::from_millis(100)));
        assert_eq!(h.len(), 4);
    }

    #[test]
    fn request_pool_is_deterministic() {
        let config = LoadgenConfig {
            distinct: 5,
            ..LoadgenConfig::default()
        };
        let a = request_pool(&config);
        let b = request_pool(&config);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        // Distinct seeds produce distinct instances.
        assert_ne!(a[0], a[1]);
    }
}
