//! The bounded solve cache, keyed on instance content hashes.
//!
//! A hit returns the **bit-identical** [`Solution`] computed by the cold
//! solve (shared via [`Arc`], never recomputed or rounded), so a client
//! cannot distinguish a cached answer from a fresh one except by latency.
//! Safety against FNV collisions: the full instance is kept alongside each
//! entry and re-checked for structural equality on every hit — a colliding
//! key is a miss, never a wrong answer. The insert path enforces the same
//! invariant: a key already occupied by a *different* instance is left
//! untouched (the collider is simply uncacheable), so a resident entry can
//! never end up paired with another instance's solution.
//!
//! Only [`Completion::Full`] solutions are cached. Degraded solutions are
//! artifacts of one request's budget; replaying them to a later caller with
//! a looser deadline would silently serve worse schedules than the caller
//! paid for.
//!
//! Eviction is FIFO under a fixed entry bound: the service workload is
//! dominated by either all-distinct instances (eviction policy irrelevant)
//! or a small hot set that fits (any policy works), and FIFO keeps the
//! insert path allocation-light and O(1).

use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use bss_core::{Algorithm, Completion, Solution};
use bss_instance::{ContentHasher, Instance, Variant};

/// A cache key: the instance digest plus the solve parameters, mixed into
/// one deterministic word. ([`Algorithm`] deliberately does not implement
/// `Hash`, so the parameters are folded through [`ContentHasher`] instead
/// of deriving a key tuple.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey(u64);

fn key_of(hash: u64, variant: Variant, algo: Algorithm) -> CacheKey {
    let mut h = ContentHasher::new();
    h.write_u64(hash);
    h.write_u8(match variant {
        Variant::NonPreemptive => 0,
        Variant::Preemptive => 1,
        Variant::Splittable => 2,
    });
    let (tag, eps) = match algo {
        Algorithm::TwoApprox => (0u8, 0u32),
        Algorithm::EpsilonSearch { eps_log2 } => (1, eps_log2),
        Algorithm::ThreeHalves => (2, 0),
        Algorithm::Portfolio => (3, 0),
    };
    h.write_u8(tag);
    h.write_u64(u64::from(eps));
    CacheKey(h.finish())
}

struct CacheEntry {
    /// The full instance, for equality re-verification on hash hits.
    instance: Instance,
    variant: Variant,
    algo: Algorithm,
    solution: Arc<Solution>,
}

/// Counter snapshot of a [`SolveCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed (including collision-mismatches).
    pub misses: u64,
    /// Entries evicted to honor the size bound.
    pub evictions: u64,
    /// Inserts dropped because the key was occupied by a *different*
    /// `(instance, variant, algo)` — a real FNV collision on the insert
    /// path. The collider is served correctly but never cached, so a
    /// nonzero rate here explains an otherwise-mysterious miss plateau.
    pub collisions: u64,
    /// Current entry count.
    pub len: u64,
}

/// A bounded FIFO solve cache. Not internally synchronized — the server
/// wraps it in a `Mutex`; all operations are O(1) expected.
pub struct SolveCache {
    capacity: usize,
    map: HashMap<CacheKey, CacheEntry>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<CacheKey>,
    hits: u64,
    misses: u64,
    evictions: u64,
    collisions: u64,
}

impl SolveCache {
    /// An empty cache holding at most `capacity` entries. A zero capacity
    /// disables caching (every lookup misses, every insert is dropped).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        SolveCache {
            capacity,
            map: HashMap::new(),
            order: VecDeque::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
            collisions: 0,
        }
    }

    /// Looks up a solution for `(instance, variant, algo)`, verifying full
    /// instance equality before trusting the hash.
    pub fn lookup(
        &mut self,
        hash: u64,
        instance: &Instance,
        variant: Variant,
        algo: Algorithm,
    ) -> Option<Arc<Solution>> {
        let key = key_of(hash, variant, algo);
        match self.map.get(&key) {
            Some(entry)
                if entry.variant == variant
                    && entry.algo == algo
                    && entry.instance == *instance =>
            {
                self.hits += 1;
                Some(Arc::clone(&entry.solution))
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a freshly solved entry, evicting the oldest entry when full.
    /// Degraded or cancelled solutions are refused (see the module docs);
    /// re-inserting an existing key refreshes the solution in place without
    /// touching the FIFO order. An insert whose key collides with a
    /// *different* cached `(instance, variant, algo)` is dropped: replacing
    /// the resident solution while keeping the resident instance would let
    /// a later lookup of that instance pass the equality re-check and
    /// return this solution — a wrong answer.
    pub fn insert(
        &mut self,
        hash: u64,
        instance: &Instance,
        variant: Variant,
        algo: Algorithm,
        solution: &Arc<Solution>,
    ) {
        if self.capacity == 0 || solution.completion != Completion::Full {
            return;
        }
        let key = key_of(hash, variant, algo);
        match self.map.entry(key) {
            Entry::Occupied(mut occupied) => {
                let entry = occupied.get_mut();
                if entry.variant == variant && entry.algo == algo && entry.instance == *instance {
                    entry.solution = Arc::clone(solution);
                } else {
                    // The silent-drop invariant holds; the counter makes the
                    // drop observable in the `stats` op and loadgen output.
                    self.collisions += 1;
                }
            }
            Entry::Vacant(vacant) => {
                vacant.insert(CacheEntry {
                    instance: instance.clone(),
                    variant,
                    algo,
                    solution: Arc::clone(solution),
                });
                self.order.push_back(key);
                while self.map.len() > self.capacity {
                    if let Some(oldest) = self.order.pop_front() {
                        self.map.remove(&oldest);
                        self.evictions += 1;
                    } else {
                        break;
                    }
                }
            }
        }
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            collisions: self.collisions,
            len: self.map.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use bss_chaos::assert_bit_identical;
    use bss_core::{solve, Interrupt, SolveBudget};

    use super::*;

    fn inst(seed: u64) -> Instance {
        bss_gen::uniform(12, 3, 2, seed)
    }

    fn solved(i: &Instance) -> Arc<Solution> {
        Arc::new(solve(i, Variant::Splittable, Algorithm::ThreeHalves))
    }

    #[test]
    fn hit_returns_the_inserted_solution_bit_identically() {
        let mut cache = SolveCache::new(4);
        let i = inst(1);
        let h = i.content_hash();
        let sol = solved(&i);
        cache.insert(h, &i, Variant::Splittable, Algorithm::ThreeHalves, &sol);
        let hit = cache
            .lookup(h, &i, Variant::Splittable, Algorithm::ThreeHalves)
            .expect("inserted entry must hit");
        assert_bit_identical("cache hit", &sol, &hit);
        // Literally the same allocation, not a lookalike.
        assert!(Arc::ptr_eq(&sol, &hit));
    }

    #[test]
    fn variant_and_algorithm_are_part_of_the_key() {
        let mut cache = SolveCache::new(8);
        let i = inst(2);
        let h = i.content_hash();
        let sol = solved(&i);
        cache.insert(h, &i, Variant::Splittable, Algorithm::ThreeHalves, &sol);
        assert!(cache
            .lookup(h, &i, Variant::Preemptive, Algorithm::ThreeHalves)
            .is_none());
        assert!(cache
            .lookup(h, &i, Variant::Splittable, Algorithm::TwoApprox)
            .is_none());
        assert!(cache
            .lookup(
                h,
                &i,
                Variant::Splittable,
                Algorithm::EpsilonSearch { eps_log2: 4 }
            )
            .is_none());
        assert!(cache
            .lookup(h, &i, Variant::Splittable, Algorithm::ThreeHalves)
            .is_some());
    }

    #[test]
    fn colliding_hash_with_different_instance_is_a_miss_not_a_wrong_answer() {
        let mut cache = SolveCache::new(4);
        let a = inst(3);
        let b = inst(4);
        assert_ne!(a, b);
        let sol = solved(&a);
        let h = a.content_hash();
        cache.insert(h, &a, Variant::Splittable, Algorithm::ThreeHalves, &sol);
        // Simulate an FNV collision: look up instance `b` under `a`'s hash.
        // The equality re-check must turn this into a miss.
        assert!(cache
            .lookup(h, &b, Variant::Splittable, Algorithm::ThreeHalves)
            .is_none());
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn insert_over_a_colliding_key_does_not_poison_the_entry() {
        let mut cache = SolveCache::new(4);
        let a = inst(7);
        let b = inst(8);
        assert_ne!(a, b);
        let sol_a = solved(&a);
        let sol_b = solved(&b);
        let h = a.content_hash();
        cache.insert(h, &a, Variant::Splittable, Algorithm::ThreeHalves, &sol_a);
        // Simulate an FNV collision: insert `b` under `a`'s hash. The
        // insert must be dropped — overwriting in place would pair `a`'s
        // instance with `b`'s solution, and a later lookup(a) would pass
        // the equality re-check and return the wrong answer.
        cache.insert(h, &b, Variant::Splittable, Algorithm::ThreeHalves, &sol_b);
        let hit = cache
            .lookup(h, &a, Variant::Splittable, Algorithm::ThreeHalves)
            .expect("the resident entry must survive a colliding insert");
        assert!(
            Arc::ptr_eq(&hit, &sol_a),
            "colliding insert replaced the resident solution"
        );
        // The collider itself is simply not cached, and the drop is counted.
        assert!(cache
            .lookup(h, &b, Variant::Splittable, Algorithm::ThreeHalves)
            .is_none());
        assert_eq!(cache.stats().collisions, 1);
        // An in-place refresh of the resident entry is NOT a collision.
        cache.insert(h, &a, Variant::Splittable, Algorithm::ThreeHalves, &sol_a);
        assert_eq!(cache.stats().collisions, 1);
    }

    #[test]
    fn fifo_eviction_honors_the_size_bound() {
        let mut cache = SolveCache::new(2);
        let instances: Vec<Instance> = (10..13).map(inst).collect();
        let sols: Vec<Arc<Solution>> = instances.iter().map(solved).collect();
        for (i, s) in instances.iter().zip(&sols) {
            cache.insert(
                i.content_hash(),
                i,
                Variant::Splittable,
                Algorithm::ThreeHalves,
                s,
            );
        }
        let stats = cache.stats();
        assert_eq!(stats.len, 2, "size bound violated");
        assert_eq!(stats.evictions, 1);
        // Oldest (first inserted) is gone; the two newest remain.
        assert!(cache
            .lookup(
                instances[0].content_hash(),
                &instances[0],
                Variant::Splittable,
                Algorithm::ThreeHalves
            )
            .is_none());
        for i in [1, 2] {
            assert!(cache
                .lookup(
                    instances[i].content_hash(),
                    &instances[i],
                    Variant::Splittable,
                    Algorithm::ThreeHalves
                )
                .is_some());
        }
    }

    #[test]
    fn degraded_solutions_are_never_cached() {
        let mut cache = SolveCache::new(4);
        let i = inst(5);
        let h = i.content_hash();
        // A work budget of 0 forces a degraded completion.
        let budget = SolveBudget::unlimited().with_work_limit(0);
        let degraded = Arc::new(
            bss_core::solve_budgeted(&i, Variant::NonPreemptive, Algorithm::ThreeHalves, &budget)
                .expect("budgeted solve returns a degraded solution, not an error"),
        );
        assert_eq!(
            degraded.completion,
            Completion::Degraded(Interrupt::WorkExhausted)
        );
        cache.insert(
            h,
            &i,
            Variant::NonPreemptive,
            Algorithm::ThreeHalves,
            &degraded,
        );
        assert!(cache
            .lookup(h, &i, Variant::NonPreemptive, Algorithm::ThreeHalves)
            .is_none());
        assert_eq!(cache.stats().len, 0);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = SolveCache::new(0);
        let i = inst(6);
        let h = i.content_hash();
        let sol = solved(&i);
        cache.insert(h, &i, Variant::Splittable, Algorithm::ThreeHalves, &sol);
        assert!(cache
            .lookup(h, &i, Variant::Splittable, Algorithm::ThreeHalves)
            .is_none());
        assert_eq!(cache.stats().len, 0);
    }
}
