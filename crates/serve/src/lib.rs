//! The solver as a long-lived service: a thread-per-core TCP daemon with a
//! content-hash solve cache, request micro-batching, typed overload
//! shedding, and a load generator for measuring it.
//!
//! The batch-setup scheduling algorithms in this workspace run in
//! near-linear time — fast enough that for service workloads the cost of a
//! solve is comparable to the cost of *delivering* one. This crate makes
//! the delivery path a first-class, measured artifact:
//!
//! * [`server`] — the daemon. Length-prefixed JSON frames over TCP
//!   ([`bss_json::frame`]), parsed under hardened size/depth limits; a
//!   bounded request queue with typed [`protocol::Response::Shed`] replies
//!   at capacity; a dispatcher that drains queued requests into
//!   [`bss_par::SolvePool::solve_items`] micro-batches, so concurrent
//!   requests are solved across all cores on warm per-worker workspaces.
//! * [`cache`] — the bounded solve cache, keyed on
//!   [`bss_instance::Instance::content_hash`] plus variant and algorithm. A
//!   hit returns the bit-identical cached [`bss_core::Solution`]; full
//!   instance equality is re-checked on every hit, so an FNV collision can
//!   cause a miss but never a wrong answer.
//! * [`protocol`] — the versioned request/response envelopes, with typed
//!   error codes for malformed, oversized, and over-deep input.
//! * [`client`] — a blocking client speaking the protocol.
//! * [`loadgen`] — seeded open- and closed-loop load generation with a
//!   latency histogram; the `throughput` bench and the CLI `loadgen`
//!   subcommand are thin wrappers over it.
//!
//! Per-request [`bss_core::SolveBudget`] deadlines are measured from
//! arrival at the server, so queueing delay counts against them and
//! overloaded servers answer `degraded` honestly instead of late.
//!
//! Online workloads are first-class: a `session` request installs a
//! per-connection [`bss_instance::IncrementalInstance`], `delta` requests
//! mutate it, and `resolve` requests solve the current state — through the
//! shared cache first, then the warm-start re-solve path
//! ([`bss_core::solve_warm`]) seeded with the previous resolve's dual
//! bracket, so an arrival-by-arrival client pays a fraction of the cold
//! probe count per event.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod loadgen;
pub mod protocol;
pub mod server;

pub use cache::{CacheStats, SolveCache};
pub use client::{Client, ClientError, SessionAck, SolveOptions, SolveOutcome};
pub use loadgen::{LatencyHistogram, LoadMode, LoadReport, LoadgenConfig};
pub use protocol::{
    ErrorCode, Request, RequestError, Response, ServerStats, SessionRequest, WireSolution,
};
pub use server::{spawn, ServeConfig, ServerHandle};
