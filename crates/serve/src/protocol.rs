//! The `bss-serve` wire protocol: versioned request/response envelopes.
//!
//! Every message is one length-prefixed frame (see [`bss_json::frame`])
//! carrying a JSON object with a `"v"` protocol-version field and an `"id"`
//! the server echoes back, so a client can match responses to requests.
//!
//! Requests (`"kind"` selects):
//!
//! ```text
//! {"v":1, "id":7, "kind":"solve", "variant":"NonPreemptive",
//!  "algorithm":"three-halves", "deadline_ms":50, "work_budget":100000,
//!  "schedule":false, "instance":{...}}
//! {"v":1, "id":8, "kind":"ping"}
//! {"v":1, "id":9, "kind":"stats"}
//! {"v":1, "id":10, "kind":"shutdown"}
//! {"v":1, "id":11, "kind":"sleep", "ms":100}        // test ops only
//! ```
//!
//! Online sessions (`bss-instance` incremental workloads): a `"session"`
//! request installs a per-connection base instance, `"delta"` mutates it
//! (`"op"` selects `add-job` / `remove-job` / `retime`), and `"resolve"`
//! solves the current state through the warm-start path:
//!
//! ```text
//! {"v":1, "id":12, "kind":"session", "variant":"NonPreemptive",
//!  "algorithm":"eps:6", "instance":{...}}
//! {"v":1, "id":13, "kind":"delta", "op":"add-job", "class":0, "time":17}
//! {"v":1, "id":14, "kind":"delta", "op":"remove-job", "job":3}
//! {"v":1, "id":15, "kind":"delta", "op":"retime", "job":2, "time":9}
//! {"v":1, "id":16, "kind":"resolve", "schedule":false}
//! ```
//!
//! Responses (`"status"` selects): `"ok"` (a solved request, with `"cached"`
//! marking a cache hit and the solution payload), `"shed"` (admission
//! control refused the request — the typed overload reply), `"error"` (a
//! typed [`ErrorCode`] + message), `"pong"`, `"stats"`, `"session"` (the
//! session/delta acknowledgement carrying the state's job count and content
//! hash), and `"bye"` (shutdown acknowledged).

use bss_core::{Algorithm, Completion, Solution};
use bss_instance::{Delta, Instance, IoError, Variant};
use bss_json::{FromJson, JsonError, JsonErrorKind, ToJson, Value};
use bss_rational::Rational;
use bss_schedule::Schedule;

use crate::cache::CacheStats;

/// The protocol version this build speaks. Mismatches are rejected with
/// [`ErrorCode::UnsupportedVersion`] rather than misdecoded.
pub const PROTOCOL_VERSION: i128 = 1;

/// A decoded client request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Solve an instance.
    Solve(Box<SolveRequest>),
    /// Liveness probe.
    Ping {
        /// Echoed request id.
        id: u64,
    },
    /// Server counters snapshot.
    Stats {
        /// Echoed request id.
        id: u64,
    },
    /// Ask the server to stop accepting and drain.
    Shutdown {
        /// Echoed request id.
        id: u64,
    },
    /// Occupy a worker slot for `ms` milliseconds. Test instrumentation for
    /// deterministic overload tests; only honored when the server was
    /// configured with `allow_test_ops`.
    Sleep {
        /// Echoed request id.
        id: u64,
        /// How long the worker path stalls.
        ms: u64,
    },
    /// Open (or replace) this connection's incremental session.
    Session(Box<SessionRequest>),
    /// Apply one instance delta to the connection's session.
    Delta {
        /// Echoed request id.
        id: u64,
        /// The delta to apply.
        delta: Delta,
    },
    /// Solve the session's current state (cache first, then the warm-start
    /// re-solve seeded by the previous resolve's dual bracket).
    Resolve {
        /// Echoed request id.
        id: u64,
        /// Whether the response should carry the full explicit schedule.
        want_schedule: bool,
    },
}

/// The payload of a `"kind":"session"` request: the base instance plus the
/// fixed solve parameters every later `resolve` on this connection uses.
#[derive(Debug, Clone)]
pub struct SessionRequest {
    /// Client-chosen id, echoed in the response.
    pub id: u64,
    /// The (already validated) base instance.
    pub instance: Instance,
    /// Which problem variant the session solves.
    pub variant: Variant,
    /// Which algorithm the session runs.
    pub algo: Algorithm,
}

/// The payload of a `"kind":"solve"` request.
#[derive(Debug, Clone)]
pub struct SolveRequest {
    /// Client-chosen id, echoed in the response.
    pub id: u64,
    /// The (already validated) instance.
    pub instance: Instance,
    /// Which problem variant to solve.
    pub variant: Variant,
    /// Which algorithm to run.
    pub algo: Algorithm,
    /// Per-request wall-clock deadline, measured from *arrival* at the
    /// server (queueing time counts against it — an honest service-level
    /// deadline).
    pub deadline_ms: Option<u64>,
    /// Per-request work budget (dual-probe / exact-node units).
    pub work_budget: Option<u64>,
    /// Whether the response should carry the full explicit schedule (the
    /// metrics and certificate are always included).
    pub want_schedule: bool,
}

/// Typed error classes of [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Malformed JSON or a structurally invalid envelope.
    BadRequest,
    /// Well-formed envelope with an instance that violates the model.
    InvalidInstance,
    /// The frame or JSON payload exceeded the server's size bound.
    TooLarge,
    /// The JSON nesting exceeded the server's depth bound.
    TooDeep,
    /// The `"v"` field does not match [`PROTOCOL_VERSION`].
    UnsupportedVersion,
    /// The request was valid but the solve failed (isolated panic /
    /// overflow) or the server is shutting down.
    Internal,
}

impl ErrorCode {
    /// The wire spelling.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::InvalidInstance => "invalid-instance",
            ErrorCode::TooLarge => "too-large",
            ErrorCode::TooDeep => "too-deep",
            ErrorCode::UnsupportedVersion => "unsupported-version",
            ErrorCode::Internal => "internal",
        }
    }

    fn from_wire(s: &str) -> Option<Self> {
        Some(match s {
            "bad-request" => ErrorCode::BadRequest,
            "invalid-instance" => ErrorCode::InvalidInstance,
            "too-large" => ErrorCode::TooLarge,
            "too-deep" => ErrorCode::TooDeep,
            "unsupported-version" => ErrorCode::UnsupportedVersion,
            "internal" => ErrorCode::Internal,
            _ => return None,
        })
    }

    /// Maps a JSON parse/decode failure onto the protocol error class.
    #[must_use]
    pub fn of_json(kind: JsonErrorKind) -> Self {
        match kind {
            JsonErrorKind::TooLarge => ErrorCode::TooLarge,
            JsonErrorKind::TooDeep => ErrorCode::TooDeep,
            JsonErrorKind::Syntax | JsonErrorKind::Decode => ErrorCode::BadRequest,
        }
    }
}

impl core::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A request-decode failure that already carries its protocol error class —
/// built structurally at each decode site (version check, instance
/// validation, envelope shape), never by inspecting error message text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestError {
    /// The protocol error class to answer with.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl RequestError {
    fn bad(err: &JsonError) -> Self {
        RequestError {
            code: ErrorCode::BadRequest,
            message: err.to_string(),
        }
    }
}

impl core::fmt::Display for RequestError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "[{}] {}", self.code, self.message)
    }
}

impl std::error::Error for RequestError {}

/// The solution payload of a [`Response::Solved`] — every certified metric
/// of a [`Solution`], plus the explicit schedule when the request asked for
/// it.
#[derive(Debug, Clone, PartialEq)]
pub struct WireSolution {
    /// The schedule's makespan.
    pub makespan: Rational,
    /// The accepted makespan guess.
    pub accepted: Rational,
    /// The proven approximation factor relative to `accepted`.
    pub ratio_bound: Rational,
    /// The certified lower bound on `OPT`.
    pub certificate: Rational,
    /// Dual-test probes performed.
    pub probes: u64,
    /// How far the solve got (`full`, `degraded:deadline`, `degraded:work`,
    /// `cancelled`).
    pub completion: Completion,
    /// The explicit schedule, when requested.
    pub schedule: Option<Schedule>,
}

impl WireSolution {
    /// Builds the payload from a solved [`Solution`].
    #[must_use]
    pub fn of(sol: &Solution, want_schedule: bool) -> Self {
        WireSolution {
            makespan: sol.makespan,
            accepted: sol.accepted,
            ratio_bound: sol.ratio_bound,
            certificate: sol.certificate,
            probes: sol.probes as u64,
            completion: sol.completion,
            schedule: want_schedule.then(|| sol.schedule().clone()),
        }
    }
}

/// Counter snapshot returned by a `"kind":"stats"` request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests solved (including degraded completions).
    pub solved: u64,
    /// Requests refused by admission control.
    pub shed: u64,
    /// Solve-side errors (isolated panics, overflow).
    pub errors: u64,
    /// Solve-cache counters.
    pub cache: CacheStats,
    /// The pool's worker-thread count.
    pub workers: u64,
}

/// A decoded server response.
#[derive(Debug, Clone)]
pub enum Response {
    /// The request was solved (possibly served from the cache).
    Solved {
        /// Echoed request id.
        id: u64,
        /// Whether the solution came from the content-hash cache.
        cached: bool,
        /// The solution payload.
        solution: WireSolution,
    },
    /// Admission control refused the request: the queue was full. The
    /// client may retry later; nothing was enqueued.
    Shed {
        /// Echoed request id.
        id: u64,
        /// Queue depth observed at refusal.
        queued: u64,
        /// The configured queue capacity.
        capacity: u64,
    },
    /// The request failed with a typed error.
    Error {
        /// Echoed request id (0 when the envelope was too broken to carry
        /// one).
        id: u64,
        /// The error class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Liveness/sleep acknowledgement.
    Pong {
        /// Echoed request id.
        id: u64,
    },
    /// Counter snapshot.
    Stats {
        /// Echoed request id.
        id: u64,
        /// The counters.
        stats: ServerStats,
    },
    /// Session or delta acknowledged: the connection's incremental state.
    Session {
        /// Echoed request id.
        id: u64,
        /// Jobs currently in the session's instance.
        jobs: u64,
        /// The state's content hash (equals the materialized instance's
        /// [`bss_instance::Instance::content_hash`]).
        content_hash: u64,
    },
    /// Shutdown acknowledged; the server drains and stops.
    Bye {
        /// Echoed request id.
        id: u64,
    },
}

impl Response {
    /// The echoed request id this response carries.
    #[must_use]
    pub fn id(&self) -> u64 {
        match self {
            Response::Solved { id, .. }
            | Response::Shed { id, .. }
            | Response::Error { id, .. }
            | Response::Pong { id }
            | Response::Stats { id, .. }
            | Response::Session { id, .. }
            | Response::Bye { id } => *id,
        }
    }
}

// ---------------------------------------------------------------------------
// Algorithm / completion wire spellings
// ---------------------------------------------------------------------------

/// Wire spelling of an [`Algorithm`] (matches the CLI's `--algorithm`).
#[must_use]
pub fn algorithm_to_wire(algo: Algorithm) -> String {
    match algo {
        Algorithm::TwoApprox => "two-approx".into(),
        Algorithm::ThreeHalves => "three-halves".into(),
        Algorithm::Portfolio => "portfolio".into(),
        Algorithm::EpsilonSearch { eps_log2 } => format!("eps:{eps_log2}"),
    }
}

/// Parses the wire spelling of an [`Algorithm`].
pub fn algorithm_from_wire(s: &str) -> Result<Algorithm, JsonError> {
    match s {
        "two-approx" => Ok(Algorithm::TwoApprox),
        "three-halves" => Ok(Algorithm::ThreeHalves),
        "portfolio" => Ok(Algorithm::Portfolio),
        _ => s
            .strip_prefix("eps:")
            .and_then(|e| e.parse().ok())
            .map(|eps_log2| Algorithm::EpsilonSearch { eps_log2 })
            .ok_or_else(|| JsonError::new(format!("unknown algorithm `{s}`"))),
    }
}

/// Wire fields of a [`Delta`] (`"op"` plus its operands).
fn delta_fields(delta: Delta) -> Vec<(String, Value)> {
    match delta {
        Delta::AddJob { class, time } => vec![
            ("op".into(), Value::Str("add-job".into())),
            ("class".into(), Value::Int(class as i128)),
            ("time".into(), Value::Int(time.into())),
        ],
        Delta::RemoveJob { job } => vec![
            ("op".into(), Value::Str("remove-job".into())),
            ("job".into(), Value::Int(job as i128)),
        ],
        Delta::Retime { job, time } => vec![
            ("op".into(), Value::Str("retime".into())),
            ("job".into(), Value::Int(job as i128)),
            ("time".into(), Value::Int(time.into())),
        ],
    }
}

/// Parses the `"op"` + operand fields of a delta request.
fn delta_from_value(value: &Value) -> Result<Delta, JsonError> {
    let op = bss_json::required(value, "op")?
        .as_str()
        .ok_or_else(|| JsonError::new("delta `op` must be a string"))?;
    let int = |k: &str| -> Result<u64, JsonError> {
        bss_json::int_from(bss_json::required(value, k)?, k)
    };
    match op {
        "add-job" => Ok(Delta::AddJob {
            class: int("class")? as usize,
            time: int("time")?,
        }),
        "remove-job" => Ok(Delta::RemoveJob {
            job: int("job")? as usize,
        }),
        "retime" => Ok(Delta::Retime {
            job: int("job")? as usize,
            time: int("time")?,
        }),
        other => Err(JsonError::new(format!("unknown delta op `{other}`"))),
    }
}

fn completion_to_wire(c: Completion) -> &'static str {
    use bss_core::Interrupt;
    match c {
        Completion::Full => "full",
        Completion::Degraded(Interrupt::Deadline) => "degraded:deadline",
        Completion::Degraded(Interrupt::WorkExhausted) => "degraded:work",
        Completion::Degraded(Interrupt::Cancelled) | Completion::Cancelled => "cancelled",
    }
}

fn completion_from_wire(s: &str) -> Result<Completion, JsonError> {
    use bss_core::Interrupt;
    match s {
        "full" => Ok(Completion::Full),
        "degraded:deadline" => Ok(Completion::Degraded(Interrupt::Deadline)),
        "degraded:work" => Ok(Completion::Degraded(Interrupt::WorkExhausted)),
        "cancelled" => Ok(Completion::Cancelled),
        other => Err(JsonError::new(format!("unknown completion `{other}`"))),
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn envelope(id: u64, fields: Vec<(String, Value)>) -> Value {
    let mut all = vec![
        ("v".into(), Value::Int(PROTOCOL_VERSION)),
        ("id".into(), Value::Int(id as i128)),
    ];
    all.extend(fields);
    Value::Object(all)
}

impl ToJson for Request {
    fn to_json_value(&self) -> Value {
        match self {
            Request::Solve(req) => {
                let mut fields = vec![
                    ("kind".into(), Value::Str("solve".into())),
                    ("variant".into(), req.variant.to_json_value()),
                    ("algorithm".into(), Value::Str(algorithm_to_wire(req.algo))),
                ];
                if let Some(ms) = req.deadline_ms {
                    fields.push(("deadline_ms".into(), Value::Int(ms.into())));
                }
                if let Some(w) = req.work_budget {
                    fields.push(("work_budget".into(), Value::Int(w.into())));
                }
                fields.push(("schedule".into(), Value::Bool(req.want_schedule)));
                fields.push(("instance".into(), req.instance.to_json_value()));
                envelope(req.id, fields)
            }
            Request::Ping { id } => envelope(*id, vec![("kind".into(), Value::Str("ping".into()))]),
            Request::Stats { id } => {
                envelope(*id, vec![("kind".into(), Value::Str("stats".into()))])
            }
            Request::Shutdown { id } => {
                envelope(*id, vec![("kind".into(), Value::Str("shutdown".into()))])
            }
            Request::Sleep { id, ms } => envelope(
                *id,
                vec![
                    ("kind".into(), Value::Str("sleep".into())),
                    ("ms".into(), Value::Int((*ms).into())),
                ],
            ),
            Request::Session(req) => envelope(
                req.id,
                vec![
                    ("kind".into(), Value::Str("session".into())),
                    ("variant".into(), req.variant.to_json_value()),
                    ("algorithm".into(), Value::Str(algorithm_to_wire(req.algo))),
                    ("instance".into(), req.instance.to_json_value()),
                ],
            ),
            Request::Delta { id, delta } => {
                let mut fields = vec![("kind".into(), Value::Str("delta".into()))];
                fields.extend(delta_fields(*delta));
                envelope(*id, fields)
            }
            Request::Resolve { id, want_schedule } => envelope(
                *id,
                vec![
                    ("kind".into(), Value::Str("resolve".into())),
                    ("schedule".into(), Value::Bool(*want_schedule)),
                ],
            ),
        }
    }
}

fn check_version(value: &Value) -> Result<(), JsonError> {
    let v = bss_json::int_from::<i128>(bss_json::required(value, "v")?, "protocol version")?;
    if v != PROTOCOL_VERSION {
        return Err(JsonError::new(format!(
            "unsupported protocol version {v} (this build speaks {PROTOCOL_VERSION})"
        )));
    }
    Ok(())
}

fn envelope_id(value: &Value) -> Result<u64, JsonError> {
    bss_json::int_from(bss_json::required(value, "id")?, "request id")
}

/// The id of a message, when the envelope is intact enough to carry one —
/// used to echo ids even on otherwise-broken requests.
#[must_use]
pub fn peek_id(value: &Value) -> u64 {
    envelope_id(value).unwrap_or(0)
}

impl Request {
    /// Decodes a request envelope with a typed protocol error class:
    /// version mismatches get [`ErrorCode::UnsupportedVersion`],
    /// model-violating instances get [`ErrorCode::InvalidInstance`], and
    /// every other shape problem gets [`ErrorCode::BadRequest`]. The server
    /// answers straight from the returned code; no message inspection.
    ///
    /// # Errors
    /// [`RequestError`] carrying the class and detail.
    pub fn decode(value: &Value) -> Result<Self, RequestError> {
        let v = bss_json::int_from::<i128>(
            bss_json::required(value, "v").map_err(|e| RequestError::bad(&e))?,
            "protocol version",
        )
        .map_err(|e| RequestError::bad(&e))?;
        if v != PROTOCOL_VERSION {
            return Err(RequestError {
                code: ErrorCode::UnsupportedVersion,
                message: format!(
                    "unsupported protocol version {v} (this build speaks {PROTOCOL_VERSION})"
                ),
            });
        }
        let id = envelope_id(value).map_err(|e| RequestError::bad(&e))?;
        let bad = |err: JsonError| RequestError::bad(&err);
        let kind = bss_json::required(value, "kind")
            .map_err(bad)?
            .as_str()
            .ok_or_else(|| bad(JsonError::new("request `kind` must be a string")))?;
        match kind {
            "ping" => Ok(Request::Ping { id }),
            "stats" => Ok(Request::Stats { id }),
            "shutdown" => Ok(Request::Shutdown { id }),
            "sleep" => Ok(Request::Sleep {
                id,
                ms: bss_json::int_from(bss_json::required(value, "ms").map_err(bad)?, "sleep ms")
                    .map_err(bad)?,
            }),
            "solve" => {
                let (variant, algo) = decode_params(value)?;
                let deadline_ms = match value.field("deadline_ms") {
                    None | Some(Value::Null) => None,
                    Some(v) => Some(bss_json::int_from(v, "deadline_ms").map_err(bad)?),
                };
                let work_budget = match value.field("work_budget") {
                    None | Some(Value::Null) => None,
                    Some(v) => Some(bss_json::int_from(v, "work_budget").map_err(bad)?),
                };
                let want_schedule = decode_want_schedule(value)?;
                let instance = decode_instance(value)?;
                Ok(Request::Solve(Box::new(SolveRequest {
                    id,
                    instance,
                    variant,
                    algo,
                    deadline_ms,
                    work_budget,
                    want_schedule,
                })))
            }
            "session" => {
                let (variant, algo) = decode_params(value)?;
                let instance = decode_instance(value)?;
                Ok(Request::Session(Box::new(SessionRequest {
                    id,
                    instance,
                    variant,
                    algo,
                })))
            }
            "delta" => Ok(Request::Delta {
                id,
                delta: delta_from_value(value).map_err(bad)?,
            }),
            "resolve" => Ok(Request::Resolve {
                id,
                want_schedule: decode_want_schedule(value)?,
            }),
            other => Err(bad(JsonError::new(format!(
                "unknown request kind `{other}`"
            )))),
        }
    }
}

/// Decodes the shared `"variant"` + `"algorithm"` fields of solve-shaped
/// requests.
fn decode_params(value: &Value) -> Result<(Variant, Algorithm), RequestError> {
    let bad = |err: JsonError| RequestError::bad(&err);
    let variant = Variant::from_json_value(bss_json::required(value, "variant").map_err(bad)?)
        .map_err(bad)?;
    let algo = algorithm_from_wire(
        bss_json::required(value, "algorithm")
            .map_err(bad)?
            .as_str()
            .ok_or_else(|| bad(JsonError::new("`algorithm` must be a string")))?,
    )
    .map_err(bad)?;
    Ok((variant, algo))
}

/// Decodes the optional `"schedule"` bool (absent means `false`).
fn decode_want_schedule(value: &Value) -> Result<bool, RequestError> {
    match value.field("schedule") {
        None => Ok(false),
        Some(Value::Bool(b)) => Ok(*b),
        Some(other) => Err(RequestError::bad(&JsonError::new(format!(
            "`schedule` must be a bool, found {}",
            other.kind()
        )))),
    }
}

/// Decodes the `"instance"` object with the typed error-class split:
/// malformed JSON shape is [`ErrorCode::BadRequest`], well-formed data
/// violating the paper's model is [`ErrorCode::InvalidInstance`] — decided
/// by the error's *type*, not its text.
fn decode_instance(value: &Value) -> Result<Instance, RequestError> {
    Instance::from_json_value_checked(
        bss_json::required(value, "instance").map_err(|e| RequestError::bad(&e))?,
    )
    .map_err(|e| match e {
        IoError::Json(err) => RequestError::bad(&err),
        IoError::Model(err) => RequestError {
            code: ErrorCode::InvalidInstance,
            message: format!("invalid instance data: {err}"),
        },
    })
}

impl FromJson for Request {
    fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        Request::decode(value).map_err(|e| JsonError::new(e.message))
    }
}

impl ToJson for WireSolution {
    fn to_json_value(&self) -> Value {
        let mut fields = vec![
            ("makespan".into(), self.makespan.to_json_value()),
            ("accepted".into(), self.accepted.to_json_value()),
            ("ratio_bound".into(), self.ratio_bound.to_json_value()),
            ("certificate".into(), self.certificate.to_json_value()),
            ("probes".into(), Value::Int(self.probes.into())),
            (
                "completion".into(),
                Value::Str(completion_to_wire(self.completion).into()),
            ),
        ];
        if let Some(schedule) = &self.schedule {
            fields.push(("schedule".into(), schedule.to_json_value()));
        }
        Value::Object(fields)
    }
}

impl FromJson for WireSolution {
    fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        Ok(WireSolution {
            makespan: Rational::from_json_value(bss_json::required(value, "makespan")?)?,
            accepted: Rational::from_json_value(bss_json::required(value, "accepted")?)?,
            ratio_bound: Rational::from_json_value(bss_json::required(value, "ratio_bound")?)?,
            certificate: Rational::from_json_value(bss_json::required(value, "certificate")?)?,
            probes: bss_json::int_from(bss_json::required(value, "probes")?, "probes")?,
            completion: completion_from_wire(
                bss_json::required(value, "completion")?
                    .as_str()
                    .ok_or_else(|| JsonError::new("`completion` must be a string"))?,
            )?,
            schedule: match value.field("schedule") {
                None | Some(Value::Null) => None,
                Some(v) => Some(Schedule::from_json_value(v)?),
            },
        })
    }
}

impl ToJson for ServerStats {
    fn to_json_value(&self) -> Value {
        Value::Object(vec![
            ("solved".into(), Value::Int(self.solved.into())),
            ("shed".into(), Value::Int(self.shed.into())),
            ("errors".into(), Value::Int(self.errors.into())),
            ("cache_hits".into(), Value::Int(self.cache.hits.into())),
            ("cache_misses".into(), Value::Int(self.cache.misses.into())),
            (
                "cache_evictions".into(),
                Value::Int(self.cache.evictions.into()),
            ),
            (
                "cache_collisions".into(),
                Value::Int(self.cache.collisions.into()),
            ),
            ("cache_len".into(), Value::Int(self.cache.len.into())),
            ("workers".into(), Value::Int(self.workers.into())),
        ])
    }
}

impl FromJson for ServerStats {
    fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        let int = |k: &str| -> Result<u64, JsonError> {
            bss_json::int_from(bss_json::required(value, k)?, k)
        };
        Ok(ServerStats {
            solved: int("solved")?,
            shed: int("shed")?,
            errors: int("errors")?,
            cache: CacheStats {
                hits: int("cache_hits")?,
                misses: int("cache_misses")?,
                evictions: int("cache_evictions")?,
                collisions: int("cache_collisions")?,
                len: int("cache_len")?,
            },
            workers: int("workers")?,
        })
    }
}

impl ToJson for Response {
    fn to_json_value(&self) -> Value {
        match self {
            Response::Solved {
                id,
                cached,
                solution,
            } => envelope(
                *id,
                vec![
                    ("status".into(), Value::Str("ok".into())),
                    ("cached".into(), Value::Bool(*cached)),
                    ("solution".into(), solution.to_json_value()),
                ],
            ),
            Response::Shed {
                id,
                queued,
                capacity,
            } => envelope(
                *id,
                vec![
                    ("status".into(), Value::Str("shed".into())),
                    ("queued".into(), Value::Int((*queued).into())),
                    ("capacity".into(), Value::Int((*capacity).into())),
                ],
            ),
            Response::Error { id, code, message } => envelope(
                *id,
                vec![
                    ("status".into(), Value::Str("error".into())),
                    ("code".into(), Value::Str(code.as_str().into())),
                    ("message".into(), Value::Str(message.clone())),
                ],
            ),
            Response::Pong { id } => {
                envelope(*id, vec![("status".into(), Value::Str("pong".into()))])
            }
            Response::Stats { id, stats } => envelope(
                *id,
                vec![
                    ("status".into(), Value::Str("stats".into())),
                    ("stats".into(), stats.to_json_value()),
                ],
            ),
            Response::Session {
                id,
                jobs,
                content_hash,
            } => envelope(
                *id,
                vec![
                    ("status".into(), Value::Str("session".into())),
                    ("jobs".into(), Value::Int((*jobs).into())),
                    ("content_hash".into(), Value::Int((*content_hash).into())),
                ],
            ),
            Response::Bye { id } => {
                envelope(*id, vec![("status".into(), Value::Str("bye".into()))])
            }
        }
    }
}

impl FromJson for Response {
    fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        check_version(value)?;
        let id = envelope_id(value)?;
        let status = bss_json::required(value, "status")?
            .as_str()
            .ok_or_else(|| JsonError::new("response `status` must be a string"))?;
        match status {
            "ok" => Ok(Response::Solved {
                id,
                cached: matches!(bss_json::required(value, "cached")?, Value::Bool(true)),
                solution: WireSolution::from_json_value(bss_json::required(value, "solution")?)?,
            }),
            "shed" => Ok(Response::Shed {
                id,
                queued: bss_json::int_from(bss_json::required(value, "queued")?, "queued")?,
                capacity: bss_json::int_from(bss_json::required(value, "capacity")?, "capacity")?,
            }),
            "error" => {
                let code = bss_json::required(value, "code")?
                    .as_str()
                    .and_then(ErrorCode::from_wire)
                    .ok_or_else(|| JsonError::new("unknown error code"))?;
                let message = bss_json::required(value, "message")?
                    .as_str()
                    .unwrap_or_default()
                    .to_string();
                Ok(Response::Error { id, code, message })
            }
            "pong" => Ok(Response::Pong { id }),
            "stats" => Ok(Response::Stats {
                id,
                stats: ServerStats::from_json_value(bss_json::required(value, "stats")?)?,
            }),
            "session" => Ok(Response::Session {
                id,
                jobs: bss_json::int_from(bss_json::required(value, "jobs")?, "jobs")?,
                content_hash: bss_json::int_from(
                    bss_json::required(value, "content_hash")?,
                    "content_hash",
                )?,
            }),
            "bye" => Ok(Response::Bye { id }),
            other => Err(JsonError::new(format!("unknown response status `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_instance() -> Instance {
        let mut b = bss_instance::InstanceBuilder::new(2);
        b.add_batch(3, &[4, 5]);
        b.add_batch(1, &[2]);
        b.build().unwrap()
    }

    #[test]
    fn request_roundtrips() {
        let reqs = [
            Request::Solve(Box::new(SolveRequest {
                id: 7,
                instance: tiny_instance(),
                variant: Variant::Preemptive,
                algo: Algorithm::EpsilonSearch { eps_log2: 10 },
                deadline_ms: Some(50),
                work_budget: None,
                want_schedule: true,
            })),
            Request::Ping { id: 1 },
            Request::Stats { id: 2 },
            Request::Shutdown { id: 3 },
            Request::Sleep { id: 4, ms: 25 },
            Request::Session(Box::new(SessionRequest {
                id: 11,
                instance: tiny_instance(),
                variant: Variant::NonPreemptive,
                algo: Algorithm::EpsilonSearch { eps_log2: 6 },
            })),
            Request::Delta {
                id: 12,
                delta: Delta::AddJob { class: 1, time: 9 },
            },
            Request::Delta {
                id: 13,
                delta: Delta::RemoveJob { job: 2 },
            },
            Request::Delta {
                id: 14,
                delta: Delta::Retime { job: 0, time: 3 },
            },
            Request::Resolve {
                id: 15,
                want_schedule: true,
            },
        ];
        for req in reqs {
            let text = bss_json::encode_pretty(&req);
            let back: Request = bss_json::decode(&text).unwrap();
            match (&req, &back) {
                (Request::Solve(a), Request::Solve(b)) => {
                    assert_eq!(a.id, b.id);
                    assert_eq!(a.instance, b.instance);
                    assert_eq!(a.variant, b.variant);
                    assert_eq!(a.algo, b.algo);
                    assert_eq!(a.deadline_ms, b.deadline_ms);
                    assert_eq!(a.work_budget, b.work_budget);
                    assert_eq!(a.want_schedule, b.want_schedule);
                }
                (Request::Ping { id: a }, Request::Ping { id: b })
                | (Request::Stats { id: a }, Request::Stats { id: b })
                | (Request::Shutdown { id: a }, Request::Shutdown { id: b }) => {
                    assert_eq!(a, b);
                }
                (Request::Sleep { id: a, ms: am }, Request::Sleep { id: b, ms: bm }) => {
                    assert_eq!((a, am), (b, bm));
                }
                (Request::Session(a), Request::Session(b)) => {
                    assert_eq!(a.id, b.id);
                    assert_eq!(a.instance, b.instance);
                    assert_eq!(a.variant, b.variant);
                    assert_eq!(a.algo, b.algo);
                }
                (Request::Delta { id: a, delta: ad }, Request::Delta { id: b, delta: bd }) => {
                    assert_eq!((a, ad), (b, bd))
                }
                (
                    Request::Resolve {
                        id: a,
                        want_schedule: aw,
                    },
                    Request::Resolve {
                        id: b,
                        want_schedule: bw,
                    },
                ) => assert_eq!((a, aw), (b, bw)),
                other => panic!("kind changed in roundtrip: {other:?}"),
            }
        }
    }

    #[test]
    fn response_roundtrips() {
        let sol = bss_core::solve(
            &tiny_instance(),
            Variant::Splittable,
            Algorithm::ThreeHalves,
        );
        let responses = [
            Response::Solved {
                id: 7,
                cached: true,
                solution: WireSolution::of(&sol, true),
            },
            Response::Solved {
                id: 8,
                cached: false,
                solution: WireSolution::of(&sol, false),
            },
            Response::Shed {
                id: 9,
                queued: 128,
                capacity: 128,
            },
            Response::Error {
                id: 0,
                code: ErrorCode::TooLarge,
                message: "frame too big".into(),
            },
            Response::Pong { id: 1 },
            Response::Stats {
                id: 2,
                stats: ServerStats {
                    solved: 10,
                    shed: 1,
                    errors: 0,
                    cache: CacheStats {
                        hits: 5,
                        misses: 5,
                        evictions: 2,
                        collisions: 1,
                        len: 3,
                    },
                    workers: 4,
                },
            },
            Response::Session {
                id: 4,
                jobs: 13,
                content_hash: u64::MAX,
            },
            Response::Bye { id: 3 },
        ];
        for resp in responses {
            let text = bss_json::encode_pretty(&resp);
            let back: Response = bss_json::decode(&text).unwrap();
            match (&resp, &back) {
                (
                    Response::Solved {
                        id: a,
                        cached: ac,
                        solution: asol,
                    },
                    Response::Solved {
                        id: b,
                        cached: bc,
                        solution: bsol,
                    },
                ) => {
                    assert_eq!((a, ac), (b, bc));
                    assert_eq!(asol, bsol);
                }
                (
                    Response::Shed {
                        id: a,
                        queued: aq,
                        capacity: ac,
                    },
                    Response::Shed {
                        id: b,
                        queued: bq,
                        capacity: bc,
                    },
                ) => assert_eq!((a, aq, ac), (b, bq, bc)),
                (
                    Response::Error {
                        id: a,
                        code: acode,
                        message: am,
                    },
                    Response::Error {
                        id: b,
                        code: bcode,
                        message: bm,
                    },
                ) => assert_eq!((a, acode, am), (b, bcode, bm)),
                (Response::Pong { id: a }, Response::Pong { id: b })
                | (Response::Bye { id: a }, Response::Bye { id: b }) => assert_eq!(a, b),
                (
                    Response::Stats {
                        id: a,
                        stats: astats,
                    },
                    Response::Stats {
                        id: b,
                        stats: bstats,
                    },
                ) => {
                    assert_eq!((a, astats), (b, bstats));
                }
                (
                    Response::Session {
                        id: a,
                        jobs: aj,
                        content_hash: ah,
                    },
                    Response::Session {
                        id: b,
                        jobs: bj,
                        content_hash: bh,
                    },
                ) => assert_eq!((a, aj, ah), (b, bj, bh)),
                other => panic!("status changed in roundtrip: {other:?}"),
            }
        }
    }

    #[test]
    fn wrong_version_is_rejected() {
        let text = r#"{"v": 99, "id": 1, "kind": "ping"}"#;
        assert!(bss_json::decode::<Request>(text).is_err());
    }

    #[test]
    fn algorithm_wire_covers_all_variants() {
        for algo in [
            Algorithm::TwoApprox,
            Algorithm::ThreeHalves,
            Algorithm::Portfolio,
            Algorithm::EpsilonSearch { eps_log2: 12 },
        ] {
            assert_eq!(algorithm_from_wire(&algorithm_to_wire(algo)).unwrap(), algo);
        }
        assert!(algorithm_from_wire("eps:bogus").is_err());
        assert!(algorithm_from_wire("simplex").is_err());
    }
}
