//! A blocking client for the `bss-serve` protocol.
//!
//! One [`Client`] owns one connection and issues one request at a time
//! (request ids are assigned internally and checked on every response).
//! The load generator opens one client per simulated connection.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};

use bss_core::Algorithm;
use bss_instance::{Delta, Instance, Variant};
use bss_json::frame::{read_frame, write_frame, FrameError};
use bss_json::JsonError;

use crate::protocol::{
    ErrorCode, Request, Response, ServerStats, SessionRequest, SolveRequest, WireSolution,
    PROTOCOL_VERSION,
};

/// Client-side failure modes.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// Framing failure (truncated, oversized, or non-UTF-8 frame).
    Frame(FrameError),
    /// The server's response did not decode.
    Protocol(JsonError),
    /// The server closed the connection before answering.
    Disconnected,
    /// The server answered with a typed error.
    Server {
        /// The error class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The response id or status did not match the request.
    Mismatch(String),
}

impl core::fmt::Display for ClientError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Frame(e) => write!(f, "frame error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
            ClientError::Server { code, message } => {
                write!(f, "server error [{code}]: {message}")
            }
            ClientError::Mismatch(what) => write!(f, "response mismatch: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<JsonError> for ClientError {
    fn from(e: JsonError) -> Self {
        ClientError::Protocol(e)
    }
}

/// Per-solve knobs beyond the instance itself.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolveOptions {
    /// Wall-clock deadline, measured from arrival at the server.
    pub deadline_ms: Option<u64>,
    /// Work-unit budget.
    pub work_budget: Option<u64>,
    /// Ask for the full explicit schedule in the response.
    pub want_schedule: bool,
}

/// The two non-error outcomes of a solve request.
#[derive(Debug, Clone)]
pub enum SolveOutcome {
    /// The server solved (or cache-served) the request.
    Solved {
        /// Whether the answer came from the solve cache.
        cached: bool,
        /// The solution payload.
        solution: WireSolution,
    },
    /// Admission control refused the request; retry later.
    Shed {
        /// Queue depth at refusal.
        queued: u64,
        /// Configured queue capacity.
        capacity: u64,
    },
}

/// The acknowledged state of a server-side session, returned by
/// [`Client::session`] and [`Client::delta`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionAck {
    /// Jobs currently in the session's instance.
    pub jobs: u64,
    /// The state's content hash (equals the materialized instance's
    /// [`Instance::content_hash`]) — lets the client verify the server
    /// tracked its deltas without shipping the instance back.
    pub content_hash: u64,
}

/// A connected protocol client.
pub struct Client {
    stream: TcpStream,
    max_frame_bytes: usize,
    next_id: u64,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    /// [`ClientError::Io`] when the connection fails.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        // One small frame per request: disable Nagle so the write is not
        // held hostage to the peer's delayed ACK.
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream,
            max_frame_bytes: 32 << 20,
            next_id: 1,
        })
    }

    /// Round-trips one request.
    fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        let text = bss_json::encode_pretty(request);
        write_frame(&mut self.stream, &text, self.max_frame_bytes)?;
        let payload =
            read_frame(&mut self.stream, self.max_frame_bytes)?.ok_or(ClientError::Disconnected)?;
        Ok(bss_json::decode::<Response>(&payload)?)
    }

    fn check_id(&self, got: u64, want: u64) -> Result<(), ClientError> {
        if got == want {
            Ok(())
        } else {
            Err(ClientError::Mismatch(format!(
                "response id {got}, expected {want} (protocol v{PROTOCOL_VERSION})"
            )))
        }
    }

    /// Solves `instance` on the server.
    ///
    /// # Errors
    /// Any [`ClientError`]; a shed is a *success* ([`SolveOutcome::Shed`]),
    /// not an error.
    pub fn solve(
        &mut self,
        instance: &Instance,
        variant: Variant,
        algo: Algorithm,
        opts: SolveOptions,
    ) -> Result<SolveOutcome, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let request = Request::Solve(Box::new(SolveRequest {
            id,
            instance: instance.clone(),
            variant,
            algo,
            deadline_ms: opts.deadline_ms,
            work_budget: opts.work_budget,
            want_schedule: opts.want_schedule,
        }));
        match self.call(&request)? {
            Response::Solved {
                id: rid,
                cached,
                solution,
            } => {
                self.check_id(rid, id)?;
                Ok(SolveOutcome::Solved { cached, solution })
            }
            Response::Shed {
                id: rid,
                queued,
                capacity,
            } => {
                self.check_id(rid, id)?;
                Ok(SolveOutcome::Shed { queued, capacity })
            }
            Response::Error { code, message, .. } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Mismatch(format!(
                "unexpected response to solve: {other:?}"
            ))),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    /// Any [`ClientError`].
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        match self.call(&Request::Ping { id })? {
            Response::Pong { id: rid } => self.check_id(rid, id),
            Response::Error { code, message, .. } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Mismatch(format!(
                "unexpected response to ping: {other:?}"
            ))),
        }
    }

    /// Fetches the server's counter snapshot.
    ///
    /// # Errors
    /// Any [`ClientError`].
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        match self.call(&Request::Stats { id })? {
            Response::Stats { id: rid, stats } => {
                self.check_id(rid, id)?;
                Ok(stats)
            }
            Response::Error { code, message, .. } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Mismatch(format!(
                "unexpected response to stats: {other:?}"
            ))),
        }
    }

    /// Test instrumentation: occupy the server's dispatcher for `ms`
    /// milliseconds (requires `allow_test_ops` server-side). Blocks until
    /// the sleep completes.
    ///
    /// # Errors
    /// Any [`ClientError`]; [`ClientError::Server`] with
    /// [`ErrorCode::BadRequest`] when the server refuses test ops. A shed
    /// sleep reports [`ClientError::Mismatch`].
    pub fn sleep(&mut self, ms: u64) -> Result<(), ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        match self.call(&Request::Sleep { id, ms })? {
            Response::Pong { id: rid } => self.check_id(rid, id),
            Response::Error { code, message, .. } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Mismatch(format!(
                "unexpected response to sleep: {other:?}"
            ))),
        }
    }

    /// Like [`Client::sleep`] but surfaces a shed as [`SolveOutcome::Shed`]
    /// — the overload tests need to observe shedding on the sleep path.
    ///
    /// # Errors
    /// Any [`ClientError`].
    pub fn try_sleep(&mut self, ms: u64) -> Result<Option<(u64, u64)>, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        match self.call(&Request::Sleep { id, ms })? {
            Response::Pong { id: rid } => {
                self.check_id(rid, id)?;
                Ok(None)
            }
            Response::Shed {
                id: rid,
                queued,
                capacity,
            } => {
                self.check_id(rid, id)?;
                Ok(Some((queued, capacity)))
            }
            Response::Error { code, message, .. } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Mismatch(format!(
                "unexpected response to sleep: {other:?}"
            ))),
        }
    }

    /// Opens (or replaces) this connection's incremental session on the
    /// server, installing `instance` as the base state.
    ///
    /// # Errors
    /// Any [`ClientError`].
    pub fn session(
        &mut self,
        instance: &Instance,
        variant: Variant,
        algo: Algorithm,
    ) -> Result<SessionAck, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let request = Request::Session(Box::new(SessionRequest {
            id,
            instance: instance.clone(),
            variant,
            algo,
        }));
        self.session_call(&request, id)
    }

    /// Applies one delta to the server-side session.
    ///
    /// # Errors
    /// Any [`ClientError`]; a delta the model rejects (unknown job, emptied
    /// class) comes back as [`ClientError::Server`] with
    /// [`ErrorCode::InvalidInstance`] and leaves the session unchanged.
    pub fn delta(&mut self, delta: Delta) -> Result<SessionAck, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        self.session_call(&Request::Delta { id, delta }, id)
    }

    fn session_call(&mut self, request: &Request, id: u64) -> Result<SessionAck, ClientError> {
        match self.call(request)? {
            Response::Session {
                id: rid,
                jobs,
                content_hash,
            } => {
                self.check_id(rid, id)?;
                Ok(SessionAck { jobs, content_hash })
            }
            Response::Error { code, message, .. } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Mismatch(format!(
                "unexpected response to session/delta: {other:?}"
            ))),
        }
    }

    /// Solves the session's current state through the server's warm-start
    /// path; `cached` in the result marks a solve-cache hit.
    ///
    /// # Errors
    /// Any [`ClientError`]; resolving without a session is a
    /// [`ClientError::Server`] with [`ErrorCode::BadRequest`].
    pub fn resolve(&mut self, want_schedule: bool) -> Result<SolveOutcome, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        match self.call(&Request::Resolve { id, want_schedule })? {
            Response::Solved {
                id: rid,
                cached,
                solution,
            } => {
                self.check_id(rid, id)?;
                Ok(SolveOutcome::Solved { cached, solution })
            }
            Response::Error { code, message, .. } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Mismatch(format!(
                "unexpected response to resolve: {other:?}"
            ))),
        }
    }

    /// Asks the server to shut down (the response is `bye`).
    ///
    /// # Errors
    /// Any [`ClientError`].
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        match self.call(&Request::Shutdown { id })? {
            Response::Bye { id: rid } => self.check_id(rid, id),
            Response::Error { code, message, .. } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Mismatch(format!(
                "unexpected response to shutdown: {other:?}"
            ))),
        }
    }
}
