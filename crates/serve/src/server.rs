//! The solve server: TCP accept loop, bounded request queue, and a
//! micro-batching dispatcher over a thread-per-core [`SolvePool`].
//!
//! # Architecture
//!
//! ```text
//! accept loop ──► connection threads ──► bounded queue ──► dispatcher
//!                  (frame/parse/cache      (admission        (drains ≤ batch_max,
//!                   lookup, shed fast)      control)          SolvePool::solve_items)
//! ```
//!
//! One detached thread per connection owns the socket: it reads frames,
//! parses under the hardened [`bss_json`] limits, answers cache hits and
//! control requests inline, and enqueues solve work. The queue is bounded;
//! at capacity the connection thread answers with a typed
//! [`Response::Shed`] immediately instead of blocking — overload is a
//! first-class, machine-readable outcome, not a stalled socket.
//!
//! A single dispatcher thread drains up to `batch_max` queued requests at a
//! time and hands them to [`SolvePool::solve_items`], so requests that
//! arrived together are solved together across all cores on warm
//! workspaces (micro-batching), while each request keeps its *own*
//! [`SolveBudget`]. Deadlines are measured from **arrival** at the server
//! — time spent queued counts against a request's deadline, so a
//! `deadline_ms` is an honest service-level promise, and a request that
//! starves in the queue comes back `degraded`, never silently late.

use std::collections::VecDeque;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bss_core::{solve, solve_warm, Algorithm, SolveBudget, WarmStart};
use bss_instance::{IncrementalInstance, Variant};
use bss_json::frame::{read_frame, write_frame, FrameError};
use bss_json::ParseLimits;
use bss_par::{SolveItem, SolvePool};

use crate::cache::SolveCache;
use crate::protocol::{
    peek_id, ErrorCode, Request, Response, ServerStats, SessionRequest, SolveRequest, WireSolution,
};

/// Configuration of a server ([`spawn`]). The defaults serve production traffic;
/// tests narrow them to force specific behaviors (tiny queues for shedding,
/// tiny caches for eviction).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address. Port 0 binds an ephemeral port; read it back from
    /// [`ServerHandle::addr`].
    pub addr: String,
    /// Solver worker threads (0 = one per available core).
    pub workers: usize,
    /// Solve-cache entry bound (0 disables caching).
    pub cache_capacity: usize,
    /// Request-queue bound; requests beyond it are shed.
    pub queue_capacity: usize,
    /// Maximum requests drained into one pool batch.
    pub batch_max: usize,
    /// Maximum accepted frame payload, bytes.
    pub max_frame_bytes: usize,
    /// Maximum accepted JSON nesting depth.
    pub max_json_depth: usize,
    /// Honor `"kind":"sleep"` requests (test instrumentation that lets
    /// integration tests stall the dispatcher deterministically). Keep
    /// `false` outside tests.
    pub allow_test_ops: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            cache_capacity: 1024,
            queue_capacity: 1024,
            batch_max: 64,
            max_frame_bytes: 32 << 20,
            max_json_depth: 64,
            allow_test_ops: false,
        }
    }
}

/// One queued solve job: the parsed request plus its arrival time and the
/// channel its response travels back on.
struct Job {
    req: SolveRequest,
    hash: u64,
    enqueued: Instant,
    reply: mpsc::Sender<Response>,
}

/// Work items the dispatcher understands.
enum Work {
    Solve(Job),
    /// Test instrumentation: occupy the dispatcher for a while.
    Sleep {
        id: u64,
        ms: u64,
        reply: mpsc::Sender<Response>,
    },
}

/// State shared between connection threads and the dispatcher.
struct Shared {
    queue: Mutex<VecDeque<Work>>,
    queue_signal: Condvar,
    cache: Mutex<SolveCache>,
    shutdown: AtomicBool,
    solved: AtomicU64,
    shed: AtomicU64,
    errors: AtomicU64,
    config: ServeConfig,
    pool_threads: usize,
}

impl Shared {
    /// Locks the solve cache, recovering from lock poisoning. The cache's
    /// own methods never leave it mid-mutation at a panic point (the
    /// map/order structures are updated atomically from the caller's view),
    /// so a thread that panicked while *holding* the guard — e.g. a solve
    /// isolation failure on the dispatcher — must not turn every later
    /// cache access into a `.expect` crash that takes the whole service
    /// down. A poisoned lock degrades to "keep serving with the cache as
    /// it was", never to an outage.
    fn cache(&self) -> MutexGuard<'_, SolveCache> {
        self.cache.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn stats(&self) -> ServerStats {
        ServerStats {
            solved: self.solved.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            cache: self.cache().stats(),
            workers: self.pool_threads as u64,
        }
    }
}

/// A running server. Dropping the handle does **not** stop the server; call
/// [`ServerHandle::shutdown`] for a clean stop.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    dispatch_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound listen address (resolves port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the server stops — i.e. until some client sends a
    /// `shutdown` request. The CLI `serve` command parks on this.
    pub fn join(mut self) {
        if let Some(t) = self.dispatch_thread.take() {
            let _ = t.join();
        }
        // The dispatcher only exits once the shutdown flag is up; poke the
        // accept loop so it notices too.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    /// Stops the server: no new connections, the queue drains, in-flight
    /// responses are delivered, then both service threads join.
    pub fn shutdown(mut self) {
        self.signal_shutdown();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.dispatch_thread.take() {
            let _ = t.join();
        }
    }

    /// Test instrumentation: poisons the solve-cache mutex by panicking on
    /// a throwaway thread while holding it. Lets the regression suite prove
    /// the server keeps serving through a poisoned lock; useless (and
    /// hidden) outside tests.
    #[doc(hidden)]
    pub fn poison_cache_for_tests(&self) {
        let shared = Arc::clone(&self.shared);
        let _ = std::thread::spawn(move || {
            let _guard = shared.cache.lock().expect("not yet poisoned");
            panic!("deliberate poison");
        })
        .join();
    }

    fn signal_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the dispatcher out of its condvar wait.
        self.shared.queue_signal.notify_all();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }
}

/// Binds the listener and spawns the service threads.
///
/// # Errors
/// [`std::io::Error`] when the listen address cannot be bound.
pub fn spawn(config: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let pool_threads = if config.workers == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        config.workers
    };
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        queue_signal: Condvar::new(),
        cache: Mutex::new(SolveCache::new(config.cache_capacity)),
        shutdown: AtomicBool::new(false),
        solved: AtomicU64::new(0),
        shed: AtomicU64::new(0),
        errors: AtomicU64::new(0),
        config,
        pool_threads,
    });

    let dispatch_shared = Arc::clone(&shared);
    let dispatch_thread = std::thread::Builder::new()
        .name("bss-serve-dispatch".into())
        .spawn(move || dispatch_loop(&dispatch_shared))?;

    let accept_shared = Arc::clone(&shared);
    let accept_thread = std::thread::Builder::new()
        .name("bss-serve-accept".into())
        .spawn(move || accept_loop(&listener, &accept_shared))?;

    Ok(ServerHandle {
        addr,
        shared,
        accept_thread: Some(accept_thread),
        dispatch_thread: Some(dispatch_thread),
    })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        // Request/response frames are small and latency-bound; Nagle's
        // algorithm interacting with delayed ACKs costs ~40 ms per
        // round-trip on loopback.
        let _ = stream.set_nodelay(true);
        let conn_shared = Arc::clone(shared);
        // Detached: a connection thread exits when its peer hangs up or the
        // server shuts down; nothing joins it.
        let _ = std::thread::Builder::new()
            .name("bss-serve-conn".into())
            .spawn(move || connection_loop(stream, &conn_shared));
    }
}

/// The connection's incremental-solve session: the live instance plus the
/// previous resolve's dual bracket, from which the next resolve warm-starts.
struct SessionState {
    inc: IncrementalInstance,
    variant: Variant,
    algo: Algorithm,
    /// The last resolve's warm hint and the total load it was taken at
    /// (the load delta since then drives the bracket widening).
    prev: Option<(WarmStart, u64)>,
}

/// Serves one connection: frames in, frames out. The loop is strictly
/// serial — the next frame is read only after the previous request has been
/// answered — so responses are trivially in request order. Session state
/// (the incremental instance and its warm-start bracket) lives here, owned
/// by the connection thread, and dies with the connection.
fn connection_loop(stream: TcpStream, shared: &Arc<Shared>) {
    let mut reader = match stream.try_clone() {
        Ok(r) => r,
        Err(_) => return,
    };
    let mut writer = stream;
    let mut session: Option<SessionState> = None;
    let limits = ParseLimits {
        max_bytes: shared.config.max_frame_bytes,
        max_depth: shared.config.max_json_depth,
    };

    loop {
        let payload = match read_frame(&mut reader, shared.config.max_frame_bytes) {
            Ok(Some(p)) => p,
            // Clean EOF or a broken/oversized/truncated frame: either way
            // this connection is done. Oversized frames get a best-effort
            // typed reply first.
            Ok(None) => break,
            Err(FrameError::TooLarge { len, max }) => {
                send(
                    &mut writer,
                    &Response::Error {
                        id: 0,
                        code: ErrorCode::TooLarge,
                        message: format!("frame of {len} bytes exceeds the {max} byte limit"),
                    },
                    shared.config.max_frame_bytes,
                );
                break;
            }
            Err(_) => break,
        };

        let handled = match bss_json::parse_with_limits(&payload, &limits) {
            Err(err) => Handled::Reply(Response::Error {
                id: 0,
                code: ErrorCode::of_json(err.kind()),
                message: err.to_string(),
            }),
            Ok(value) => {
                let id = peek_id(&value);
                match Request::decode(&value) {
                    Err(err) => Handled::Reply(Response::Error {
                        id,
                        code: err.code,
                        message: err.message,
                    }),
                    Ok(request) => handle_request(request, &mut session, shared),
                }
            }
        };

        match handled {
            Handled::Reply(resp) => {
                let bye = matches!(resp, Response::Bye { .. });
                if !send(&mut writer, &resp, shared.config.max_frame_bytes) || bye {
                    break;
                }
            }
            Handled::Pending(reply_rx) => {
                // A job was enqueued: block until its response arrives. The
                // only sender lives inside the queued job, so if the
                // dispatcher dies (or the job is otherwise dropped
                // undelivered) this surfaces as a RecvError and the
                // connection closes instead of hanging forever.
                match reply_rx.recv() {
                    Ok(resp) => {
                        if !send(&mut writer, &resp, shared.config.max_frame_bytes) {
                            break;
                        }
                    }
                    Err(_) => break,
                }
            }
        }
    }
}

/// How one request was handled on the connection thread.
enum Handled {
    /// Answer immediately.
    Reply(Response),
    /// A job was enqueued; its response arrives on this receiver.
    Pending(mpsc::Receiver<Response>),
}

/// Handles one decoded request, answering inline or enqueueing a job whose
/// response will arrive on the returned receiver. Session requests mutate
/// the connection-local `session` and are answered inline: resolves are
/// latency-bound single solves on a warm bracket, so they skip the batch
/// queue and run right here on the connection thread.
fn handle_request(
    request: Request,
    session: &mut Option<SessionState>,
    shared: &Arc<Shared>,
) -> Handled {
    match request {
        Request::Ping { id } => Handled::Reply(Response::Pong { id }),
        Request::Stats { id } => Handled::Reply(Response::Stats {
            id,
            stats: shared.stats(),
        }),
        Request::Shutdown { id } => {
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.queue_signal.notify_all();
            Handled::Reply(Response::Bye { id })
        }
        Request::Sleep { id, ms } => {
            if !shared.config.allow_test_ops {
                return Handled::Reply(Response::Error {
                    id,
                    code: ErrorCode::BadRequest,
                    message: "sleep is a test op; this server does not allow test ops".into(),
                });
            }
            let (reply_tx, reply_rx) = mpsc::channel();
            match enqueue(
                Work::Sleep {
                    id,
                    ms,
                    reply: reply_tx,
                },
                id,
                shared,
            ) {
                Some(resp) => Handled::Reply(resp),
                None => Handled::Pending(reply_rx),
            }
        }
        Request::Solve(req) => {
            let hash = req.instance.content_hash();
            // Cache fast path: answered on the connection thread without
            // touching the queue, so hits stay cheap under load.
            let hit = shared
                .cache()
                .lookup(hash, &req.instance, req.variant, req.algo);
            if let Some(sol) = hit {
                return Handled::Reply(Response::Solved {
                    id: req.id,
                    cached: true,
                    solution: WireSolution::of(&sol, req.want_schedule),
                });
            }
            let id = req.id;
            let (reply_tx, reply_rx) = mpsc::channel();
            match enqueue(
                Work::Solve(Job {
                    req: *req,
                    hash,
                    enqueued: Instant::now(),
                    reply: reply_tx,
                }),
                id,
                shared,
            ) {
                Some(resp) => Handled::Reply(resp),
                None => Handled::Pending(reply_rx),
            }
        }
        Request::Session(req) => Handled::Reply(open_session(*req, session)),
        Request::Delta { id, delta } => Handled::Reply(apply_delta(id, delta, session)),
        Request::Resolve { id, want_schedule } => {
            Handled::Reply(resolve_session(id, want_schedule, session, shared))
        }
    }
}

/// Installs (or replaces) the connection's session.
fn open_session(req: SessionRequest, session: &mut Option<SessionState>) -> Response {
    let inc = IncrementalInstance::new(&req.instance);
    let resp = Response::Session {
        id: req.id,
        jobs: inc.num_jobs() as u64,
        content_hash: inc.content_hash(),
    };
    *session = Some(SessionState {
        inc,
        variant: req.variant,
        algo: req.algo,
        prev: None,
    });
    resp
}

/// Applies one delta to the connection's session. A rejected delta (unknown
/// job, emptied class, load overflow) leaves the session state untouched —
/// `IncrementalInstance::apply` is atomic on error — and answers with
/// [`ErrorCode::InvalidInstance`], mirroring the solve path's model-error
/// class.
fn apply_delta(
    id: u64,
    delta: bss_instance::Delta,
    session: &mut Option<SessionState>,
) -> Response {
    let Some(state) = session else {
        return no_session(id);
    };
    match state.inc.apply(delta) {
        Ok(()) => Response::Session {
            id,
            jobs: state.inc.num_jobs() as u64,
            content_hash: state.inc.content_hash(),
        },
        Err(err) => Response::Error {
            id,
            code: ErrorCode::InvalidInstance,
            message: format!("delta rejected: {err}"),
        },
    }
}

/// Solves the session's current state: the shared cache first (a session
/// revisiting a state — or another client solving the same instance — hits
/// it), then a warm-start re-solve seeded with the previous resolve's dual
/// bracket, widened by the load shift the deltas since then caused. Cold
/// solves only happen on a session's first resolve.
fn resolve_session(
    id: u64,
    want_schedule: bool,
    session: &mut Option<SessionState>,
    shared: &Arc<Shared>,
) -> Response {
    let Some(state) = session else {
        return no_session(id);
    };
    let hash = state.inc.content_hash();
    let load = state.inc.total_load_once();
    let instance = state.inc.materialize();
    if let Some(sol) = shared
        .cache()
        .lookup(hash, &instance, state.variant, state.algo)
    {
        // A hit still refreshes the warm bracket: the cached solution's
        // accepted/certificate window seeds the next resolve.
        state.prev = Some((WarmStart::of(&sol), load));
        return Response::Solved {
            id,
            cached: true,
            solution: WireSolution::of(&sol, want_schedule),
        };
    }
    let sol = match state.prev.take() {
        Some((hint, prev_load)) => {
            let hint = hint.widen_by_load_shift(
                u128::from(prev_load),
                u128::from(load),
                instance.machines(),
            );
            solve_warm(&instance, state.variant, state.algo, &hint).0
        }
        None => solve(&instance, state.variant, state.algo),
    };
    shared.solved.fetch_add(1, Ordering::Relaxed);
    let sol = Arc::new(sol);
    shared
        .cache()
        .insert(hash, &instance, state.variant, state.algo, &sol);
    state.prev = Some((WarmStart::of(&sol), load));
    Response::Solved {
        id,
        cached: false,
        solution: WireSolution::of(&sol, want_schedule),
    }
}

/// The typed reply to a delta/resolve with no open session.
fn no_session(id: u64) -> Response {
    Response::Error {
        id,
        code: ErrorCode::BadRequest,
        message: "no session on this connection; send a `session` request first".into(),
    }
}

/// Admission control: enqueue `work`, or answer with a typed shed/error.
fn enqueue(work: Work, id: u64, shared: &Arc<Shared>) -> Option<Response> {
    let mut queue = shared.queue.lock().expect("queue lock");
    // The shutdown flag must be read *while holding the queue lock*: the
    // dispatcher decides to exit under this lock (empty queue + flag up),
    // so a push serialized after that decision is guaranteed to observe the
    // flag and refuse here. Checking before locking would let a job slip
    // into a queue nobody drains, hanging its connection thread on a reply
    // that never comes.
    if shared.shutdown.load(Ordering::SeqCst) {
        return Some(Response::Error {
            id,
            code: ErrorCode::Internal,
            message: "server is shutting down".into(),
        });
    }
    if queue.len() >= shared.config.queue_capacity {
        shared.shed.fetch_add(1, Ordering::Relaxed);
        return Some(Response::Shed {
            id,
            queued: queue.len() as u64,
            capacity: shared.config.queue_capacity as u64,
        });
    }
    queue.push_back(work);
    drop(queue);
    shared.queue_signal.notify_one();
    None
}

/// The dispatcher: drains the queue in batches into the solve pool.
fn dispatch_loop(shared: &Arc<Shared>) {
    let mut pool = SolvePool::with_threads(shared.pool_threads);
    loop {
        let batch = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                if !queue.is_empty() {
                    let take = queue.len().min(shared.config.batch_max.max(1));
                    break queue.drain(..take).collect::<Vec<_>>();
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared.queue_signal.wait(queue).expect("queue condvar wait");
            }
        };

        let mut jobs = Vec::new();
        for work in batch {
            match work {
                Work::Solve(job) => jobs.push(job),
                Work::Sleep { id, ms, reply } => {
                    std::thread::sleep(Duration::from_millis(ms));
                    let _ = reply.send(Response::Pong { id });
                }
            }
        }
        if !jobs.is_empty() {
            solve_batch(&mut pool, jobs, shared);
        }
    }
}

/// Solves one drained batch on the pool and delivers every response.
fn solve_batch(pool: &mut SolvePool, jobs: Vec<Job>, shared: &Arc<Shared>) {
    // Budgets must outlive the SolveItem borrows; build them first.
    let budgets: Vec<Option<SolveBudget>> = jobs
        .iter()
        .map(|job| {
            let mut budget = SolveBudget::unlimited();
            let mut limited = false;
            if let Some(ms) = job.req.deadline_ms {
                // From *arrival*: queue time already spent counts.
                budget = budget.with_deadline_at(job.enqueued + Duration::from_millis(ms));
                limited = true;
            }
            if let Some(w) = job.req.work_budget {
                budget = budget.with_work_limit(w);
                limited = true;
            }
            limited.then_some(budget)
        })
        .collect();
    let items: Vec<SolveItem<'_>> = jobs
        .iter()
        .zip(&budgets)
        .map(|(job, budget)| SolveItem {
            instance: &job.req.instance,
            variant: job.req.variant,
            algo: job.req.algo,
            budget: budget.as_ref(),
        })
        .collect();

    let results = pool.solve_items(&items);

    for (job, result) in jobs.iter().zip(results) {
        let response = match result {
            Ok(solution) => {
                shared.solved.fetch_add(1, Ordering::Relaxed);
                let solution = Arc::new(solution);
                // Only Full completions are cacheable, and a key collision
                // with a different resident instance drops the insert —
                // both enforced inside the cache.
                shared.cache().insert(
                    job.hash,
                    &job.req.instance,
                    job.req.variant,
                    job.req.algo,
                    &solution,
                );
                Response::Solved {
                    id: job.req.id,
                    cached: false,
                    solution: WireSolution::of(&solution, job.req.want_schedule),
                }
            }
            Err(err) => {
                shared.errors.fetch_add(1, Ordering::Relaxed);
                Response::Error {
                    id: job.req.id,
                    code: ErrorCode::Internal,
                    message: format!("solve failed: {err}"),
                }
            }
        };
        let _ = job.reply.send(response);
    }
}

/// Encodes and frames a response onto the socket; `false` when the peer is
/// gone.
///
/// A response that exceeds `max_len` (e.g. a `want_schedule` reply whose
/// encoded schedule outgrows the frame bound even though the request fit)
/// is replaced by a small typed [`ErrorCode::TooLarge`] error carrying the
/// same request id. `write_frame` checks the length before emitting any
/// bytes, so the oversized payload never hits the wire and the stream stays
/// framed — the connection remains usable for further requests.
fn send(writer: &mut TcpStream, response: &Response, max_len: usize) -> bool {
    let text = bss_json::encode_pretty(response);
    match write_frame(writer, &text, max_len) {
        Ok(()) => writer.flush().is_ok(),
        Err(FrameError::TooLarge { len, max }) => {
            let error = Response::Error {
                id: response.id(),
                code: ErrorCode::TooLarge,
                message: format!(
                    "encoded response of {len} bytes exceeds the {max} byte frame limit; \
                     retry without the schedule or raise the server's max_frame_bytes"
                ),
            };
            write_frame(writer, &bss_json::encode_pretty(&error), max_len).is_ok()
                && writer.flush().is_ok()
        }
        Err(_) => false,
    }
}
