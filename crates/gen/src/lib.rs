//! Seeded workload generators.
//!
//! Provides the instance families used throughout the test suite and the
//! benchmark harness, mirroring the regimes the literature distinguishes:
//!
//! * [`uniform`] — setups and jobs from uniform ranges, classes of random size;
//! * [`small_batches`] — many light classes (`s_i + P(C_i)` well below `OPT`),
//!   the regime of Monma–Potts and Chen;
//! * [`single_job_batches`] — `|C_i| = 1`, the regime of Schuurman–Woeginger;
//! * [`expensive_setups`] — few classes with setups dominating processing
//!   time, exercising the `I_exp` machinery;
//! * [`zipf_classes`] — heavy-tailed class sizes;
//! * [`wide_delta`] — processing times spanning many orders of magnitude
//!   (stress for the `O(n log(n + Δ))` non-preemptive search);
//! * [`all_expensive`] — *every* class setup exceeds the mean load `N/m`,
//!   so every class is expensive at every guess in the certified window
//!   (the adversarial regime of the `I_exp` machinery, `c < m` forced);
//! * [`paper`] — handcrafted instances shaped like the paper's figures;
//! * [`seqdep`] — sequence-dependent families (uniform special case,
//!   TSP-path-derived, triangle-inequality-violating).
//!
//! All generators are deterministic in their seed.

pub mod online;
pub mod paper;
pub mod seqdep;

use bss_instance::{Instance, InstanceBuilder};
use bss_json::{ToJson, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A named, fully-seeded instance-family cell: everything needed to rebuild
/// one generated instance. The repro pipeline records these in its MANIFEST
/// so every committed artifact names the exact family parameters and seed it
/// was produced from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FamilySpec {
    /// [`uniform`].
    Uniform {
        /// Job count `n`.
        jobs: usize,
        /// Class count `c`.
        classes: usize,
        /// Machine count `m`.
        machines: usize,
        /// RNG seed.
        seed: u64,
    },
    /// [`small_batches`] (the class count is family-derived).
    SmallBatches {
        /// Job count `n`.
        jobs: usize,
        /// Machine count `m`.
        machines: usize,
        /// RNG seed.
        seed: u64,
    },
    /// [`single_job_batches`] (`c = n`).
    SingleJob {
        /// Job count `n` (= class count).
        jobs: usize,
        /// Machine count `m`.
        machines: usize,
        /// RNG seed.
        seed: u64,
    },
    /// [`expensive_setups`] (the class count is family-derived).
    ExpensiveSetups {
        /// Job count `n`.
        jobs: usize,
        /// Machine count `m`.
        machines: usize,
        /// RNG seed.
        seed: u64,
    },
    /// [`zipf_classes`].
    ZipfClasses {
        /// Job count `n`.
        jobs: usize,
        /// Class count `c`.
        classes: usize,
        /// Machine count `m`.
        machines: usize,
        /// RNG seed.
        seed: u64,
    },
    /// [`contended`].
    Contended {
        /// Job count `n`.
        jobs: usize,
        /// Class count `c`.
        classes: usize,
        /// Machine count `m`.
        machines: usize,
        /// RNG seed.
        seed: u64,
    },
    /// [`wide_delta`].
    WideDelta {
        /// Job count `n`.
        jobs: usize,
        /// Class count `c`.
        classes: usize,
        /// Machine count `m`.
        machines: usize,
        /// Largest processing time `Δ`.
        delta: u64,
        /// RNG seed.
        seed: u64,
    },
    /// [`all_expensive`].
    AllExpensive {
        /// Job count `n`.
        jobs: usize,
        /// Class count `c` (must stay below `machines`).
        classes: usize,
        /// Machine count `m`.
        machines: usize,
        /// RNG seed.
        seed: u64,
    },
    /// [`tiny`] (all shape parameters are seed-derived).
    Tiny {
        /// RNG seed.
        seed: u64,
    },
}

impl FamilySpec {
    /// The family's stable name (manifest / table labels).
    #[must_use]
    pub fn family(&self) -> &'static str {
        match self {
            FamilySpec::Uniform { .. } => "uniform",
            FamilySpec::SmallBatches { .. } => "small-batches",
            FamilySpec::SingleJob { .. } => "single-job",
            FamilySpec::ExpensiveSetups { .. } => "expensive",
            FamilySpec::ZipfClasses { .. } => "zipf",
            FamilySpec::Contended { .. } => "contended",
            FamilySpec::WideDelta { .. } => "wide-delta",
            FamilySpec::AllExpensive { .. } => "all-expensive",
            FamilySpec::Tiny { .. } => "tiny",
        }
    }

    /// The cell's RNG seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        match *self {
            FamilySpec::Uniform { seed, .. }
            | FamilySpec::SmallBatches { seed, .. }
            | FamilySpec::SingleJob { seed, .. }
            | FamilySpec::ExpensiveSetups { seed, .. }
            | FamilySpec::ZipfClasses { seed, .. }
            | FamilySpec::Contended { seed, .. }
            | FamilySpec::WideDelta { seed, .. }
            | FamilySpec::AllExpensive { seed, .. }
            | FamilySpec::Tiny { seed } => seed,
        }
    }

    /// The same cell with a different seed (sweeps hold the shape fixed and
    /// vary only this).
    #[must_use]
    pub fn reseeded(mut self, new_seed: u64) -> Self {
        match &mut self {
            FamilySpec::Uniform { seed, .. }
            | FamilySpec::SmallBatches { seed, .. }
            | FamilySpec::SingleJob { seed, .. }
            | FamilySpec::ExpensiveSetups { seed, .. }
            | FamilySpec::ZipfClasses { seed, .. }
            | FamilySpec::Contended { seed, .. }
            | FamilySpec::WideDelta { seed, .. }
            | FamilySpec::AllExpensive { seed, .. }
            | FamilySpec::Tiny { seed } => *seed = new_seed,
        }
        self
    }

    /// Builds the instance this cell describes.
    ///
    /// # Panics
    /// Propagates the underlying generator's shape preconditions (e.g.
    /// `c < m` for [`all_expensive`]) — a spec violating them is a
    /// programmer error, exactly as calling the generator directly would be.
    #[must_use]
    pub fn build(&self) -> Instance {
        match *self {
            FamilySpec::Uniform {
                jobs,
                classes,
                machines,
                seed,
            } => uniform(jobs, classes, machines, seed),
            FamilySpec::SmallBatches {
                jobs,
                machines,
                seed,
            } => small_batches(jobs, machines, seed),
            FamilySpec::SingleJob {
                jobs,
                machines,
                seed,
            } => single_job_batches(jobs, machines, seed),
            FamilySpec::ExpensiveSetups {
                jobs,
                machines,
                seed,
            } => expensive_setups(jobs, machines, seed),
            FamilySpec::ZipfClasses {
                jobs,
                classes,
                machines,
                seed,
            } => zipf_classes(jobs, classes, machines, seed),
            FamilySpec::Contended {
                jobs,
                classes,
                machines,
                seed,
            } => contended(jobs, classes, machines, seed),
            FamilySpec::WideDelta {
                jobs,
                classes,
                machines,
                delta,
                seed,
            } => wide_delta(jobs, classes, machines, delta, seed),
            FamilySpec::AllExpensive {
                jobs,
                classes,
                machines,
                seed,
            } => all_expensive(jobs, classes, machines, seed),
            FamilySpec::Tiny { seed } => tiny(seed),
        }
    }
}

impl ToJson for FamilySpec {
    fn to_json_value(&self) -> Value {
        let mut fields = vec![("family".into(), Value::Str(self.family().into()))];
        let mut push = |key: &str, v: u64| fields.push((key.into(), Value::Int(v as i128)));
        match *self {
            FamilySpec::Uniform {
                jobs,
                classes,
                machines,
                ..
            }
            | FamilySpec::ZipfClasses {
                jobs,
                classes,
                machines,
                ..
            }
            | FamilySpec::Contended {
                jobs,
                classes,
                machines,
                ..
            }
            | FamilySpec::AllExpensive {
                jobs,
                classes,
                machines,
                ..
            } => {
                push("jobs", jobs as u64);
                push("classes", classes as u64);
                push("machines", machines as u64);
            }
            FamilySpec::SmallBatches { jobs, machines, .. }
            | FamilySpec::SingleJob { jobs, machines, .. }
            | FamilySpec::ExpensiveSetups { jobs, machines, .. } => {
                push("jobs", jobs as u64);
                push("machines", machines as u64);
            }
            FamilySpec::WideDelta {
                jobs,
                classes,
                machines,
                delta,
                ..
            } => {
                push("jobs", jobs as u64);
                push("classes", classes as u64);
                push("machines", machines as u64);
                push("delta", delta);
            }
            FamilySpec::Tiny { .. } => {}
        }
        push("seed", self.seed());
        Value::Object(fields)
    }
}

/// Configuration for the general-purpose generator [`generate`].
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Number of jobs.
    pub jobs: usize,
    /// Number of classes (must be `<= jobs`).
    pub classes: usize,
    /// Number of machines.
    pub machines: usize,
    /// Inclusive range of setup times.
    pub setup_range: (u64, u64),
    /// Inclusive range of job processing times.
    pub job_range: (u64, u64),
    /// How job counts are distributed over classes.
    pub class_sizes: ClassSizes,
    /// RNG seed.
    pub seed: u64,
}

/// Distribution of jobs over classes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClassSizes {
    /// Every class receives `n/c` jobs (± 1).
    Equal,
    /// Each job picks a class uniformly at random.
    Uniform,
    /// Each job picks class `k` with probability `∝ (k+1)^-alpha`.
    Zipf(f64),
}

/// Generates an instance according to `cfg`.
///
/// Every class is guaranteed at least one job (the first `c` jobs are dealt
/// round-robin), so the result always satisfies the model invariants.
///
/// # Panics
/// Panics if `cfg.classes == 0`, `cfg.classes > cfg.jobs`, or a range is
/// empty/zero-based.
#[must_use]
pub fn generate(cfg: &GenConfig) -> Instance {
    assert!(
        cfg.classes > 0 && cfg.classes <= cfg.jobs,
        "need 1 <= c <= n"
    );
    assert!(cfg.setup_range.0 >= 1 && cfg.setup_range.0 <= cfg.setup_range.1);
    assert!(cfg.job_range.0 >= 1 && cfg.job_range.0 <= cfg.job_range.1);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut b = InstanceBuilder::new(cfg.machines);
    for _ in 0..cfg.classes {
        b.add_class(rng.gen_range(cfg.setup_range.0..=cfg.setup_range.1));
    }
    // Zipf weights, if requested.
    let zipf_cdf: Option<Vec<f64>> = match cfg.class_sizes {
        ClassSizes::Zipf(alpha) => {
            let mut acc = 0.0;
            let mut cdf = Vec::with_capacity(cfg.classes);
            for k in 0..cfg.classes {
                acc += 1.0 / ((k + 1) as f64).powf(alpha);
                cdf.push(acc);
            }
            let total = acc;
            for v in &mut cdf {
                *v /= total;
            }
            Some(cdf)
        }
        _ => None,
    };
    for j in 0..cfg.jobs {
        let class = if j < cfg.classes {
            j // guarantee non-empty classes
        } else {
            match cfg.class_sizes {
                ClassSizes::Equal => j % cfg.classes,
                ClassSizes::Uniform => rng.gen_range(0..cfg.classes),
                ClassSizes::Zipf(_) => {
                    let u: f64 = rng.gen();
                    let cdf = zipf_cdf.as_ref().expect("zipf cdf");
                    cdf.partition_point(|&p| p < u).min(cfg.classes - 1)
                }
            }
        };
        b.add_job(class, rng.gen_range(cfg.job_range.0..=cfg.job_range.1));
    }
    b.build().expect("generator produces valid instances")
}

/// Uniform workload: the default random suite.
#[must_use]
pub fn uniform(jobs: usize, classes: usize, machines: usize, seed: u64) -> Instance {
    generate(&GenConfig {
        jobs,
        classes,
        machines,
        setup_range: (1, 50),
        job_range: (1, 100),
        class_sizes: ClassSizes::Uniform,
        seed,
    })
}

/// Many light classes: small setups, small batches relative to `OPT`.
#[must_use]
pub fn small_batches(jobs: usize, machines: usize, seed: u64) -> Instance {
    let classes = (jobs / 3).max(machines.max(2)).min(jobs);
    generate(&GenConfig {
        jobs,
        classes,
        machines,
        setup_range: (1, 8),
        job_range: (1, 20),
        class_sizes: ClassSizes::Equal,
        seed,
    })
}

/// `|C_i| = 1`: one job per class (the Schuurman–Woeginger regime).
#[must_use]
pub fn single_job_batches(jobs: usize, machines: usize, seed: u64) -> Instance {
    generate(&GenConfig {
        jobs,
        classes: jobs,
        machines,
        setup_range: (1, 50),
        job_range: (1, 100),
        class_sizes: ClassSizes::Equal,
        seed,
    })
}

/// Few classes whose setups dominate: exercises expensive-class handling.
#[must_use]
pub fn expensive_setups(jobs: usize, machines: usize, seed: u64) -> Instance {
    // `~machines` classes, at least 2 when possible, never more than `jobs`
    // (written without `clamp`, whose `min > max` case panics for `jobs < 2`).
    let classes = machines.max(2).min(jobs);
    generate(&GenConfig {
        jobs,
        classes,
        machines,
        setup_range: (500, 1000),
        job_range: (1, 20),
        class_sizes: ClassSizes::Uniform,
        seed,
    })
}

/// Heavy-tailed class sizes.
#[must_use]
pub fn zipf_classes(jobs: usize, classes: usize, machines: usize, seed: u64) -> Instance {
    generate(&GenConfig {
        jobs,
        classes,
        machines,
        setup_range: (1, 50),
        job_range: (1, 100),
        class_sizes: ClassSizes::Zipf(1.5),
        seed,
    })
}

/// Job times spanning `[1, delta]` log-uniformly: stress for the integer
/// binary search of Theorem 8.
///
/// # Panics
/// Panics if `delta < 2` or `jobs == 0` (as with [`generate`], degenerate
/// shapes are precondition violations, not empty instances).
#[must_use]
pub fn wide_delta(jobs: usize, classes: usize, machines: usize, delta: u64, seed: u64) -> Instance {
    assert!(delta >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = InstanceBuilder::new(machines);
    let classes = classes.min(jobs).max(1);
    for _ in 0..classes {
        let exp = rng.gen_range(0.0..(delta as f64).ln());
        b.add_class((exp.exp() as u64).clamp(1, delta));
    }
    for j in 0..jobs {
        let class = if j < classes {
            j
        } else {
            rng.gen_range(0..classes)
        };
        let exp = rng.gen_range(0.0..(delta as f64).ln());
        b.add_job(class, (exp.exp() as u64).clamp(1, delta));
    }
    b.build().expect("generator produces valid instances")
}

/// Setup-dominated, machine-contended workload: every class's setup exceeds
/// its own processing load, so classes are *expensive* near `T_min = N/m`
/// whenever `c` is at most a small multiple of `m`. In that regime the dual
/// tests genuinely reject near `T_min` and the Class-Jumping structure
/// matters; with `c >> m` no class is expensive at `N/m` and every search
/// accepts immediately (an instructive structural fact in itself — see
/// EXPERIMENTS.md).
#[must_use]
pub fn contended(jobs: usize, classes: usize, machines: usize, seed: u64) -> Instance {
    let classes = classes.min(jobs).max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = InstanceBuilder::new(machines);
    let mut class_of = Vec::with_capacity(jobs);
    let mut loads = vec![0u64; classes];
    for j in 0..jobs {
        let class = j % classes;
        let t = rng.gen_range(50..=150u64);
        class_of.push((class, t));
        loads[class] += t;
    }
    for &load in &loads {
        // Setup comparable to the class's own processing load: keeps
        // s_max <= N/m while making classes expensive (s_i > T/2) with
        // beta_i >= 2 at T = N/m whenever c is in [m/2, m).
        let lo = load.max(1);
        b.add_class(rng.gen_range(lo..=lo + lo / 4));
    }
    for (class, t) in class_of {
        b.add_job(class, t);
    }
    b.build().expect("generator produces valid instances")
}

/// Every class setup strictly exceeds the mean load `N/m`: since
/// `T_min = max(N/m, s_max) ... 2·T_min` brackets the searches and
/// `s_i > N/m`, every class is *expensive* (`s_i > T/2`) at every guess the
/// algorithms probe in `[T_min, 2·T_min]` — the all-`I_exp` adversarial
/// regime, where the builders must place every class by wrapping over its
/// `β_i` machines and the cheap-class path never fires.
///
/// Requires `classes < machines` (otherwise `Σ s_i > c·N/m >= N`, a
/// contradiction) and, as everywhere, `1 <= classes <= jobs`.
///
/// # Panics
/// Panics when the shape constraints are violated (precondition, as with
/// [`generate`]).
#[must_use]
pub fn all_expensive(jobs: usize, classes: usize, machines: usize, seed: u64) -> Instance {
    assert!(classes >= 1 && classes <= jobs, "need 1 <= c <= n");
    assert!(
        classes < machines,
        "all-expensive needs c < m (else setups cannot all exceed N/m)"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let times: Vec<u64> = (0..jobs).map(|_| rng.gen_range(1..=60u64)).collect();
    let total_proc: u64 = times.iter().sum();
    let jitter: Vec<u64> = (0..classes).map(|_| rng.gen_range(0..=20u64)).collect();
    // Smallest K with K + jitter_i > (Σ(K + jitter) + P)/m for all i: start
    // at the c = m-1 closed form and double until the strict bound holds
    // (convergence is immediate; doubling only hardens the margin).
    let mut base = total_proc / (machines - classes) as u64 + 1;
    loop {
        let setup_sum: u64 = jitter.iter().map(|&d| base + d).sum();
        let n = setup_sum + total_proc;
        // min setup strictly above N/m  <=>  base * m > N (jitter >= 0).
        if (base as u128) * machines as u128 > n as u128 {
            break;
        }
        base *= 2;
    }
    let mut b = InstanceBuilder::new(machines);
    for &d in &jitter {
        b.add_class(base + d);
    }
    for (j, &t) in times.iter().enumerate() {
        let class = if j < classes { j } else { j % classes };
        b.add_job(class, t);
    }
    b.build().expect("generator produces valid instances")
}

/// Tiny random instances for exact-oracle comparisons (n <= 10, m <= 4).
#[must_use]
pub fn tiny(seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let machines = rng.gen_range(1..=4);
    let classes = rng.gen_range(1..=4usize);
    let jobs = rng.gen_range(classes..=9);
    generate(&GenConfig {
        jobs,
        classes,
        machines,
        setup_range: (1, 12),
        job_range: (1, 15),
        class_sizes: ClassSizes::Uniform,
        seed: rng.gen(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let a = uniform(100, 10, 4, 42);
        let b = uniform(100, 10, 4, 42);
        let c = uniform(100, 10, 4, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn respects_counts() {
        let inst = uniform(250, 17, 6, 1);
        assert_eq!(inst.num_jobs(), 250);
        assert_eq!(inst.num_classes(), 17);
        assert_eq!(inst.machines(), 6);
    }

    #[test]
    fn single_job_batches_have_one_job_each() {
        let inst = single_job_batches(40, 5, 7);
        assert_eq!(inst.num_classes(), 40);
        for i in 0..40 {
            assert_eq!(inst.class_jobs(i).len(), 1);
        }
    }

    #[test]
    fn zipf_is_skewed() {
        let inst = zipf_classes(2000, 20, 4, 3);
        let first = inst.class_jobs(0).len();
        let last = inst.class_jobs(19).len();
        assert!(first > 3 * last.max(1), "zipf head {first} vs tail {last}");
    }

    #[test]
    fn wide_delta_spans_magnitudes() {
        let inst = wide_delta(500, 20, 4, 1 << 30, 11);
        assert!(inst.tmax() > 1 << 10);
        assert!(inst.jobs().iter().any(|j| j.time < 100));
    }

    #[test]
    fn expensive_setups_are_expensive() {
        let inst = expensive_setups(60, 4, 5);
        assert!(inst.smax() >= 500);
    }

    #[test]
    fn all_expensive_setups_exceed_mean_load() {
        for seed in 0..20 {
            let inst = all_expensive(40, 5, 8, seed);
            let n = inst.total_load_once();
            let m = inst.machines() as u128;
            for i in 0..inst.num_classes() {
                // s_i > N/m, exactly (integer cross-multiplication).
                assert!(
                    inst.setup(i) as u128 * m > n as u128,
                    "seed {seed}: setup {} vs N/m = {}/{}",
                    inst.setup(i),
                    n,
                    m
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "c < m")]
    fn all_expensive_rejects_c_ge_m() {
        let _ = all_expensive(40, 8, 8, 0);
    }

    #[test]
    fn tiny_instances_valid_and_small() {
        for seed in 0..50 {
            let inst = tiny(seed);
            assert!(inst.num_jobs() <= 9);
            assert!(inst.machines() <= 4);
        }
    }

    #[test]
    fn family_specs_build_what_the_generators_build() {
        let cells = [
            FamilySpec::Uniform {
                jobs: 80,
                classes: 9,
                machines: 4,
                seed: 3,
            },
            FamilySpec::SmallBatches {
                jobs: 80,
                machines: 4,
                seed: 3,
            },
            FamilySpec::SingleJob {
                jobs: 30,
                machines: 4,
                seed: 3,
            },
            FamilySpec::ExpensiveSetups {
                jobs: 40,
                machines: 4,
                seed: 3,
            },
            FamilySpec::ZipfClasses {
                jobs: 200,
                classes: 12,
                machines: 4,
                seed: 3,
            },
            FamilySpec::Contended {
                jobs: 120,
                classes: 3,
                machines: 4,
                seed: 3,
            },
            FamilySpec::WideDelta {
                jobs: 60,
                classes: 6,
                machines: 4,
                delta: 1 << 20,
                seed: 3,
            },
            FamilySpec::AllExpensive {
                jobs: 40,
                classes: 3,
                machines: 8,
                seed: 3,
            },
            FamilySpec::Tiny { seed: 3 },
        ];
        let direct = [
            uniform(80, 9, 4, 3),
            small_batches(80, 4, 3),
            single_job_batches(30, 4, 3),
            expensive_setups(40, 4, 3),
            zipf_classes(200, 12, 4, 3),
            contended(120, 3, 4, 3),
            wide_delta(60, 6, 4, 1 << 20, 3),
            all_expensive(40, 3, 8, 3),
            tiny(3),
        ];
        for (spec, want) in cells.iter().zip(&direct) {
            assert_eq!(&spec.build(), want, "{}", spec.family());
            assert_eq!(spec.seed(), 3);
            // Reseeding changes only the seed; the rebuilt instance matches
            // the generator at the new seed.
            let reseeded = spec.reseeded(4);
            assert_eq!(reseeded.seed(), 4);
            assert_eq!(reseeded.family(), spec.family());
        }
    }

    #[test]
    fn family_spec_json_names_family_and_seed() {
        use bss_json::ToJson;
        let spec = FamilySpec::WideDelta {
            jobs: 60,
            classes: 6,
            machines: 4,
            delta: 1 << 20,
            seed: 7,
        };
        let v = spec.to_json_value();
        assert_eq!(
            v.field("family").and_then(bss_json::Value::as_str),
            Some("wide-delta")
        );
        assert_eq!(
            v.field("delta").and_then(bss_json::Value::as_i128),
            Some(1 << 20)
        );
        assert_eq!(v.field("seed").and_then(bss_json::Value::as_i128), Some(7));
    }

    #[test]
    fn equal_sizes_are_balanced() {
        let inst = generate(&GenConfig {
            jobs: 100,
            classes: 10,
            machines: 2,
            setup_range: (1, 2),
            job_range: (1, 2),
            class_sizes: ClassSizes::Equal,
            seed: 0,
        });
        for i in 0..10 {
            assert_eq!(inst.class_jobs(i).len(), 10);
        }
    }
}
