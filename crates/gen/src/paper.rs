//! Handcrafted instances shaped like the paper's figures.
//!
//! The paper's figures are schedule diagrams produced by running the
//! algorithms on small example instances. The exact numbers behind the
//! figures are not published, so these constructors build instances with the
//! same *structure* (which classes are expensive/cheap, how many machines
//! each class needs, which algorithm branch fires); the `repro-figures`
//! binary then renders the actual algorithm output next to the paper's
//! caption.

use bss_instance::{Instance, InstanceBuilder};

/// Figure 1: splittable 3/2-dual with `I_exp = {1,2,3,4}` and
/// `I_chp = {5,6,7,8}` (0-indexed: 0–3 expensive, 4–7 cheap).
///
/// At the algorithm's accepted makespan (≈ 100) the four expensive classes
/// need several machines each (different β_i), and the cheap classes wrap
/// over the leftover and empty machines between `T/2` and `3T/2`.
#[must_use]
pub fn fig1_splittable() -> Instance {
    let mut b = InstanceBuilder::new(12);
    // Expensive: setups > T/2 ≈ 50.
    b.add_batch(60, &[60, 60, 60]); // class 0: P=180
    b.add_batch(70, &[65, 65]); // class 1: P=130
    b.add_batch(80, &[40]); // class 2: P=40
    b.add_batch(55, &[45, 45]); // class 3: P=90

    // Cheap: setups <= 50.
    b.add_batch(30, &[20, 20, 20]); // class 4
    b.add_batch(20, &[25, 25]); // class 5
    b.add_batch(40, &[40, 40]); // class 6
    b.add_batch(10, &[15, 15]); // class 7
    b.build().expect("valid figure instance")
}

/// Figure 2: a *nice* preemptive instance (empty `I⁰_exp`) with
/// `I⁺_exp = {1, 2}` needing two machines each, a couple of `I⁻_exp`
/// classes paired on machines, and cheap classes wrapped at the top.
#[must_use]
pub fn fig2_nice_preemptive() -> Instance {
    let mut b = InstanceBuilder::new(9);
    // I+exp: s > T/2, s + P >= T (T ≈ 120).
    b.add_batch(65, &[55, 55, 40]); // class 0: s+P = 215 (α' ≈ 2)
    b.add_batch(70, &[50, 50, 20]); // class 1: s+P = 190

    // I−exp: s > T/2, s + P <= 3T/4 = 90 … needs T ≈ 120: s=61, P=20 → 81.
    b.add_batch(61, &[20]); // class 2
    b.add_batch(62, &[18]); // class 3
    b.add_batch(63, &[15]); // class 4

    // Cheap classes.
    b.add_batch(20, &[30, 30, 25]); // class 5
    b.add_batch(10, &[22, 22]); // class 6
    b.add_batch(5, &[12, 12, 12]); // class 7
    b.build().expect("valid figure instance")
}

/// Figures 3, 4, 9: a general preemptive instance with non-empty `I⁰_exp`
/// (two classes owning a *large machine* each), `I⁺_exp = {1,2}` and enough
/// light-cheap load (`I⁻_chp`, including big jobs `C*`) that the knapsack
/// branch 3.a fires.
#[must_use]
pub fn fig3_general_preemptive() -> Instance {
    let mut b = InstanceBuilder::new(10);
    // Target T ≈ 120.
    // I0exp: 3/4 T < s + P < T → (90, 120): s=61, P=35 → 96; s=65, P=40 → 105.
    b.add_batch(61, &[35]); // class 0 (large machine)
    b.add_batch(65, &[25, 15]); // class 1 (large machine)

    // I+exp: s + P >= T.
    b.add_batch(70, &[60, 60, 30]); // class 2
    b.add_batch(75, &[55, 55]); // class 3

    // I+chp: T/4 <= s <= T/2 → [30, 60].
    b.add_batch(35, &[30, 30]); // class 4

    // I−chp with big jobs (s + t > T/2 = 60): class 5 has C* jobs.
    b.add_batch(20, &[45, 45, 10]); // class 5: 20+45 = 65 > 60 → C* = {45, 45}
    b.add_batch(15, &[50, 8]); // class 6: 15+50 = 65 > 60 → C* = {50}

    // Plain light cheap load.
    b.add_batch(5, &[12, 12, 12, 12]); // class 7
    b.add_batch(8, &[18, 18]); // class 8
    b.build().expect("valid figure instance")
}

/// Figure 5: the γ-modified wrapping of `I⁺_exp` classes used by the
/// preemptive Class-Jumping search; same shape as Figure 2 but with
/// processing volumes that make `γ_i < β_i` visible.
#[must_use]
pub fn fig5_gamma_preemptive() -> Instance {
    let mut b = InstanceBuilder::new(8);
    b.add_batch(65, &[50, 50, 50, 30]); // class 0: P = 180
    b.add_batch(70, &[60, 60, 15]); // class 1: P = 135
    b.add_batch(62, &[20]); // class 2 (I−exp)
    b.add_batch(25, &[30, 30, 20]); // class 3 cheap
    b.add_batch(12, &[15, 15, 15]); // class 4 cheap
    b.build().expect("valid figure instance")
}

/// Figure 7: the next-fit 2-approximation example with `m = c = 5`.
#[must_use]
pub fn fig7_next_fit() -> Instance {
    let mut b = InstanceBuilder::new(5);
    b.add_batch(9, &[14, 11, 8]); // class 0
    b.add_batch(7, &[13, 9, 6]); // class 1
    b.add_batch(11, &[16, 7]); // class 2
    b.add_batch(6, &[12, 10, 5]); // class 3
    b.add_batch(8, &[15, 9]); // class 4
    b.build().expect("valid figure instance")
}

/// Figures 10–13: the non-preemptive 3/2-dual walkthrough with
/// `1 ∈ I_exp` and `{2,3,4,5} ⊆ I_chp` (0-indexed: class 0 expensive).
///
/// Class 1 owns big jobs (`J⁺`) and borderline jobs (`K`), so step 1 uses
/// both per-job machines and a preemptive K-wrap, steps 2–3 fill up, and
/// step 4's repair is non-trivial.
#[must_use]
pub fn fig10_nonpreemptive() -> Instance {
    let mut b = InstanceBuilder::new(12);
    // Target T ≈ 100.
    b.add_batch(60, &[35, 35, 35, 30, 25]); // class 0: expensive, α = 4
    b.add_batch(20, &[55, 52, 40, 35, 12, 10]); // class 1: J+ = {55, 52}, K = {40, 35}
    b.add_batch(15, &[38, 11, 9]); // class 2: K = {38}
    b.add_batch(10, &[20, 18, 7]); // class 3
    b.add_batch(5, &[16, 14, 6, 4]); // class 4
    b.build().expect("valid figure instance")
}

/// Figure 6's wrap-template illustration and Figure 8's Lemma-11 reordering
/// need only a tiny two-class instance.
#[must_use]
pub fn fig8_lemma11() -> Instance {
    let mut b = InstanceBuilder::new(3);
    // One I0exp class (s + P in (3/4 T, T) for T ≈ 100) plus filler.
    b.add_batch(55, &[40]); // class 0: s+P = 95
    b.add_batch(10, &[30, 30, 25, 20]); // class 1: cheap filler
    b.add_batch(8, &[22, 18]); // class 2
    b.build().expect("valid figure instance")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_figure_instances_build() {
        for inst in [
            fig1_splittable(),
            fig2_nice_preemptive(),
            fig3_general_preemptive(),
            fig5_gamma_preemptive(),
            fig7_next_fit(),
            fig10_nonpreemptive(),
            fig8_lemma11(),
        ] {
            assert!(inst.num_jobs() > 0);
            assert!(inst.machines() > 0);
        }
    }

    #[test]
    fn fig1_has_expected_class_split() {
        let inst = fig1_splittable();
        assert_eq!(inst.num_classes(), 8);
        // At T = 100: classes 0..4 expensive (s > 50), 4..8 cheap.
        for i in 0..4 {
            assert!(inst.setup(i) > 50);
        }
        for i in 4..8 {
            assert!(inst.setup(i) <= 50);
        }
    }

    #[test]
    fn fig7_matches_paper_shape() {
        let inst = fig7_next_fit();
        assert_eq!(inst.machines(), 5);
        assert_eq!(inst.num_classes(), 5);
    }

    #[test]
    fn fig10_class1_has_big_and_borderline_jobs() {
        let inst = fig10_nonpreemptive();
        // At T = 100: class 0 expensive.
        assert!(inst.setup(0) > 50);
        // class 1: jobs 55 and 52 are J+ (t > 50); 40 and 35 are K
        // (t <= 50 but s + t > 50).
        let times: Vec<u64> = inst
            .class_jobs(1)
            .iter()
            .map(|&j| inst.job(j).time)
            .collect();
        assert!(times.contains(&55) && times.contains(&40));
    }
}
