//! Seeded generators for sequence-dependent instances.
//!
//! Three families spanning the bridge's regimes:
//!
//! * [`uniform_setups`] — the uniform special case `s(c, c') = s(c')`
//!   (batch setups in disguise); reduces bit-exactly to a batch-setup
//!   instance and is the round-trip property-test family;
//! * [`tsp_path`] — TSP-path-derived: classes are random grid points, the
//!   switch matrix their (rounded) Euclidean distances — metric, symmetric,
//!   genuinely sequence-dependent;
//! * [`triangle_violating`] — asymmetric matrices with planted shortcut
//!   chains `s(i,k) > s(i,j) + s(j,k)`, the adversarial regime where
//!   nearest-neighbour chaining pays off and metric reasoning breaks.
//!
//! All generators are deterministic in their seed.

use bss_seqdep::SeqDepInstance;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The uniform special case: switching into class `j` costs `s_j` from
/// everywhere (zero diagonal), positive works — exactly the image of
/// `bss_seqdep::reduce::from_instance`.
#[must_use]
pub fn uniform_setups(classes: usize, machines: usize, seed: u64) -> SeqDepInstance {
    assert!(classes >= 1 && machines >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let setups: Vec<u64> = (0..classes).map(|_| rng.gen_range(1..=50)).collect();
    let work: Vec<u64> = (0..classes).map(|_| rng.gen_range(1..=120)).collect();
    let switch: Vec<Vec<u64>> = (0..classes)
        .map(|i| {
            (0..classes)
                .map(|j| if i == j { 0 } else { setups[j] })
                .collect()
        })
        .collect();
    SeqDepInstance::new(machines, setups, switch, work).expect("generator produces valid instances")
}

/// TSP-path-derived distances: `cities` random points on a `side × side`
/// grid, switch costs their Euclidean distances rounded to integers, one
/// machine, zero work per class (the paper's conclusion reduction).
#[must_use]
pub fn tsp_path(cities: usize, seed: u64) -> SeqDepInstance {
    assert!(cities >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let side = 1_000i64;
    let pts: Vec<(i64, i64)> = (0..cities)
        .map(|_| (rng.gen_range(0..side), rng.gen_range(0..side)))
        .collect();
    let dist: Vec<Vec<u64>> = pts
        .iter()
        .map(|&(x1, y1)| {
            pts.iter()
                .map(|&(x2, y2)| {
                    let (dx, dy) = ((x1 - x2) as f64, (y1 - y2) as f64);
                    (dx * dx + dy * dy).sqrt().round() as u64
                })
                .collect()
        })
        .collect();
    SeqDepInstance::from_tsp_path(dist).expect("generator produces valid instances")
}

/// Asymmetric switch costs with planted triangle-inequality violations:
/// a random base matrix plus a cheap "conveyor" chain
/// `0 → 1 → … → c-1` of unit switches, while direct links stay expensive —
/// so `s(i, k) > s(i, j) + s(j, k)` throughout the chain.
#[must_use]
pub fn triangle_violating(classes: usize, machines: usize, seed: u64) -> SeqDepInstance {
    assert!(classes >= 1 && machines >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut switch: Vec<Vec<u64>> = (0..classes)
        .map(|i| {
            (0..classes)
                .map(|j| if i == j { 0 } else { rng.gen_range(60..=120) })
                .collect()
        })
        .collect();
    // The cheap chain: consecutive classes switch for 1.
    for i in 0..classes.saturating_sub(1) {
        switch[i][i + 1] = 1;
    }
    let initial: Vec<u64> = (0..classes).map(|_| rng.gen_range(1..=30)).collect();
    let work: Vec<u64> = (0..classes).map(|_| rng.gen_range(1..=40)).collect();
    SeqDepInstance::new(machines, initial, switch, work)
        .expect("generator produces valid instances")
}

/// Tiny general instances for exact-oracle comparisons (c <= 6, m <= 4):
/// fully random asymmetric switch matrices with small entries — no planted
/// structure, so the oracle sees the unvarnished search space.
#[must_use]
pub fn tiny_seqdep(seed: u64) -> SeqDepInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let classes = rng.gen_range(2..=6usize);
    let machines = rng.gen_range(1..=4);
    let initial: Vec<u64> = (0..classes).map(|_| rng.gen_range(1..=12)).collect();
    let work: Vec<u64> = (0..classes).map(|_| rng.gen_range(1..=15)).collect();
    let switch: Vec<Vec<u64>> = (0..classes)
        .map(|i| {
            (0..classes)
                .map(|j| if i == j { 0 } else { rng.gen_range(1..=12) })
                .collect()
        })
        .collect();
    SeqDepInstance::new(machines, initial, switch, work)
        .expect("generator produces valid instances")
}

#[cfg(test)]
mod tests {
    use super::*;
    use bss_seqdep::reduce;

    #[test]
    fn uniform_family_is_uniform_and_deterministic() {
        let a = uniform_setups(8, 3, 7);
        let b = uniform_setups(8, 3, 7);
        assert_eq!(a, b);
        assert!(reduce::is_uniform(&a));
        let reduced = reduce::to_uniform_instance(&a).unwrap();
        assert_eq!(reduce::from_instance(&reduced), a);
    }

    #[test]
    fn tsp_family_is_symmetric_zero_diagonal() {
        let inst = tsp_path(12, 3);
        assert_eq!(inst.machines(), 1);
        for i in 0..12 {
            assert_eq!(inst.switch(i, i), 0);
            assert_eq!(inst.class_proc(i), 0);
            for j in 0..12 {
                assert_eq!(inst.switch(i, j), inst.switch(j, i));
            }
        }
        // Genuinely sequence-dependent (almost surely).
        assert!(!reduce::is_uniform(&inst));
    }

    #[test]
    fn triangle_family_plants_violations() {
        let inst = triangle_violating(10, 3, 5);
        // Some triple violates the triangle inequality through the chain.
        let violated = (0..10).any(|i| {
            (0..10).any(|j| {
                (0..10).any(|k| {
                    i != j
                        && j != k
                        && i != k
                        && inst.switch(i, k) > inst.switch(i, j) + inst.switch(j, k)
                })
            })
        });
        assert!(violated);
        assert!(!reduce::is_uniform(&inst));
    }
}
