//! Event-driven online workload simulator.
//!
//! An online workload is a seeded *base* instance plus a seeded stream of
//! timestamped instance deltas — job **arrivals**, job **departures**
//! (cancellations), and **reveals** (a job's processing time re-estimated
//! mid-flight, the uncertainty regime of Kawase–Makino–Phan–Sumita). The
//! simulator is a [`FamilySpec`]-style cell: a small, copyable,
//! JSON-serializable description from which the exact trace can always be
//! rebuilt, so the repro pipeline can commit online studies the same way it
//! commits static ones.
//!
//! Every generated trace is *valid by construction*: events are drawn
//! against a shadow [`IncrementalInstance`], so a departure never empties a
//! class and arrivals respect the configured job cap. Replaying the trace
//! through a consumer-side [`IncrementalInstance`] therefore never returns
//! a [`bss_instance::DeltaError`].

use bss_instance::{Delta, IncrementalInstance, Instance};
use bss_json::{ToJson, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::FamilySpec;

/// A seeded online-workload cell: base instance plus event process.
///
/// The event mix is controlled by three integer weights (an event kind is
/// drawn with probability proportional to its weight); infeasible draws
/// degrade deterministically — a departure that would empty every class, or
/// an arrival over the cap, falls back to a reveal — so the trace always
/// has exactly [`events`](OnlineSpec::events) events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OnlineSpec {
    /// The instance revealed at time zero.
    pub base: FamilySpec,
    /// Number of events in the trace.
    pub events: usize,
    /// Relative weight of job arrivals.
    pub arrivals: u32,
    /// Relative weight of job departures (cancellations).
    pub departures: u32,
    /// Relative weight of reveals (a resident job's time re-estimated).
    pub reveals: u32,
    /// Inclusive range of arriving / revealed processing times.
    pub job_range: (u64, u64),
    /// Hard cap on concurrent jobs (arrivals beyond it degrade to
    /// reveals); keeps oracle-gated studies inside the gate.
    pub max_jobs: usize,
    /// RNG seed of the event process.
    pub seed: u64,
}

impl OnlineSpec {
    /// A balanced default process over `base`: arrival-heavy with a steady
    /// trickle of cancellations and re-estimates, uncapped.
    #[must_use]
    pub fn poisson_like(base: FamilySpec, events: usize, seed: u64) -> Self {
        OnlineSpec {
            base,
            events,
            arrivals: 6,
            departures: 3,
            reveals: 2,
            job_range: (1, 100),
            max_jobs: usize::MAX,
            seed,
        }
    }

    /// The family name (manifest / table labels), derived from the base.
    #[must_use]
    pub fn family(&self) -> String {
        format!("online-{}", self.base.family())
    }

    /// The event-process RNG seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The same cell with base *and* event process reseeded (sweeps hold
    /// the shape fixed and vary only this).
    #[must_use]
    pub fn reseeded(mut self, new_seed: u64) -> Self {
        self.base = self.base.reseeded(new_seed);
        self.seed = new_seed;
        self
    }

    /// Generates the trace this cell describes.
    ///
    /// # Panics
    /// Propagates the base family's shape preconditions, and requires a
    /// non-empty `job_range` with positive lower bound.
    #[must_use]
    pub fn build(&self) -> OnlineTrace {
        assert!(
            self.job_range.0 >= 1 && self.job_range.0 <= self.job_range.1,
            "need a non-empty positive job range"
        );
        assert!(
            self.arrivals + self.departures + self.reveals > 0,
            "need at least one positive event weight"
        );
        let base = self.base.build();
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x6f6e_6c69_6e65); // "online"
        let mut shadow = IncrementalInstance::new(&base);
        let mut events = Vec::with_capacity(self.events);
        let mut clock = 0u64;
        let total = self.arrivals + self.departures + self.reveals;
        for _ in 0..self.events {
            clock += rng.gen_range(1..=8u64);
            let mut roll = rng.gen_range(0..total);
            // Degrade infeasible draws toward a reveal, which is always
            // possible (instances are never empty).
            if roll < self.arrivals && shadow.num_jobs() >= self.max_jobs {
                roll = self.arrivals + self.departures; // over the cap: reveal
            }
            let delta = if roll < self.arrivals {
                Delta::AddJob {
                    class: rng.gen_range(0..shadow.num_classes()),
                    time: rng.gen_range(self.job_range.0..=self.job_range.1),
                }
            } else if roll < self.arrivals + self.departures {
                // A uniformly random job among those whose class keeps at
                // least one other job; fall back to a reveal when every
                // class is a singleton.
                let removable: Vec<usize> = (0..shadow.num_jobs())
                    .filter(|&j| shadow.class_count(shadow.jobs()[j].class) > 1)
                    .collect();
                match removable.as_slice() {
                    [] => reveal(&shadow, &mut rng, self.job_range),
                    jobs => Delta::RemoveJob {
                        job: jobs[rng.gen_range(0..jobs.len())],
                    },
                }
            } else {
                reveal(&shadow, &mut rng, self.job_range)
            };
            shadow
                .apply(delta)
                .expect("the simulator only draws feasible deltas");
            events.push(OnlineEvent { at: clock, delta });
        }
        OnlineTrace { base, events }
    }
}

fn reveal(shadow: &IncrementalInstance, rng: &mut StdRng, range: (u64, u64)) -> Delta {
    Delta::Retime {
        job: rng.gen_range(0..shadow.num_jobs()),
        time: rng.gen_range(range.0..=range.1),
    }
}

impl ToJson for OnlineSpec {
    fn to_json_value(&self) -> Value {
        Value::Object(vec![
            ("family".into(), Value::Str(self.family())),
            ("base".into(), self.base.to_json_value()),
            ("events".into(), Value::Int(self.events as i128)),
            ("arrivals".into(), Value::Int(i128::from(self.arrivals))),
            ("departures".into(), Value::Int(i128::from(self.departures))),
            ("reveals".into(), Value::Int(i128::from(self.reveals))),
            ("job_lo".into(), Value::Int(i128::from(self.job_range.0))),
            ("job_hi".into(), Value::Int(i128::from(self.job_range.1))),
            (
                "max_jobs".into(),
                Value::Int(i128::try_from(self.max_jobs).unwrap_or(i128::MAX)),
            ),
            ("seed".into(), Value::Int(i128::from(self.seed))),
        ])
    }
}

/// One timestamped event of an online trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OnlineEvent {
    /// Virtual arrival time (strictly increasing along the trace).
    pub at: u64,
    /// The instance delta revealed at that time.
    pub delta: Delta,
}

/// A generated online workload: the base instance and its event stream.
///
/// The state *after* event `k` is obtained by replaying `events[..=k]` onto
/// an [`IncrementalInstance::new`] of `base`; [`OnlineTrace::state_after`]
/// does exactly that for tests and studies that need a single snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OnlineTrace {
    /// The instance revealed at time zero.
    pub base: Instance,
    /// The event stream, in virtual-time order.
    pub events: Vec<OnlineEvent>,
}

impl OnlineTrace {
    /// Materializes the instance state after the first `k` events
    /// (`k = 0` is the base).
    ///
    /// # Panics
    /// Panics if `k > self.events.len()`.
    #[must_use]
    pub fn state_after(&self, k: usize) -> Instance {
        let mut inc = IncrementalInstance::new(&self.base);
        for ev in &self.events[..k] {
            inc.apply(ev.delta)
                .expect("generated traces replay cleanly");
        }
        inc.materialize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(seed: u64) -> OnlineSpec {
        OnlineSpec::poisson_like(
            FamilySpec::Uniform {
                jobs: 30,
                classes: 5,
                machines: 4,
                seed,
            },
            40,
            seed,
        )
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(spec(9).build(), spec(9).build());
        assert_ne!(spec(9).build(), spec(10).build());
        let reseeded = spec(9).reseeded(10);
        assert_eq!(reseeded.seed(), 10);
        assert_eq!(reseeded.build(), spec(10).build());
    }

    #[test]
    fn traces_replay_cleanly_and_timestamps_increase() {
        for seed in 0..10 {
            let trace = spec(seed).build();
            assert_eq!(trace.events.len(), 40);
            let mut inc = IncrementalInstance::new(&trace.base);
            let mut last_at = 0;
            for ev in &trace.events {
                assert!(ev.at > last_at, "timestamps must strictly increase");
                last_at = ev.at;
                inc.apply(ev.delta).expect("trace must replay cleanly");
            }
            // Every prefix state is a valid, buildable instance.
            assert_eq!(trace.state_after(40), inc.materialize());
        }
    }

    #[test]
    fn default_mix_exercises_all_three_event_kinds() {
        let trace = spec(3).build();
        let (mut adds, mut removes, mut retimes) = (0, 0, 0);
        for ev in &trace.events {
            match ev.delta {
                Delta::AddJob { .. } => adds += 1,
                Delta::RemoveJob { .. } => removes += 1,
                Delta::Retime { .. } => retimes += 1,
            }
        }
        assert!(adds > 0 && removes > 0 && retimes > 0);
    }

    #[test]
    fn job_cap_is_respected_by_degrading_arrivals_to_reveals() {
        let mut capped = spec(5);
        capped.max_jobs = 31; // base has 30 jobs: at most one net arrival
        let trace = capped.build();
        let mut inc = IncrementalInstance::new(&trace.base);
        for ev in &trace.events {
            inc.apply(ev.delta).unwrap();
            assert!(inc.num_jobs() <= 31);
        }
        assert_eq!(trace.events.len(), 40);
    }

    #[test]
    fn all_singleton_classes_degrade_departures_to_reveals() {
        // One job per class: no departure is ever feasible.
        let mut s = OnlineSpec::poisson_like(
            FamilySpec::SingleJob {
                jobs: 6,
                machines: 2,
                seed: 1,
            },
            30,
            1,
        );
        s.arrivals = 0; // force the departure/reveal paths
        s.departures = 1;
        s.reveals = 1;
        let trace = s.build();
        assert!(trace
            .events
            .iter()
            .all(|ev| matches!(ev.delta, Delta::Retime { .. })));
    }

    #[test]
    fn json_names_family_base_and_seed() {
        let v = spec(7).to_json_value();
        assert_eq!(
            v.field("family").and_then(Value::as_str),
            Some("online-uniform")
        );
        assert_eq!(v.field("seed").and_then(Value::as_i128), Some(7));
        assert!(v.field("base").is_some());
    }
}
