//! Minimal JSON support for the workspace's wire formats.
//!
//! The instance and schedule crates expose a JSON import/export surface
//! (`bss inst.json`, `--schedule-out`, hand-edited fixture files). The build
//! environment has no access to crates.io, so instead of serde this crate
//! provides a small self-contained [`Value`] tree with a strict parser and a
//! pretty-printer, plus the [`ToJson`]/[`FromJson`] traits the model types
//! implement by hand.
//!
//! Numbers are kept exact: every JSON number without fraction or exponent is
//! an `i128` (covering `u64` times and `i128` rational components); anything
//! else parses as `f64`.
//!
//! For *network* input (the `bss-serve` wire protocol) the parser can be
//! bounded: [`parse_with_limits`] enforces a maximum payload size and a
//! maximum nesting depth with typed errors ([`JsonError::kind`]) instead of
//! unbounded allocation, and the [`frame`] module provides the
//! length-prefixed transport framing with the same size discipline.
//!
//! ```
//! use bss_json::{parse, to_string_pretty, Value};
//!
//! let v = parse(r#"{"machines": 3, "setups": [10, 4]}"#).unwrap();
//! assert_eq!(v.field("machines").and_then(Value::as_i128), Some(3));
//! let text = to_string_pretty(&v);
//! assert_eq!(parse(&text).unwrap(), v);
//! ```

use core::fmt;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number with no fractional part, kept exact.
    Int(i128),
    /// A number with a fraction or exponent.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object (`None` for other value kinds).
    #[must_use]
    pub fn field(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The exact integer, if this is an [`Value::Int`].
    #[must_use]
    pub fn as_i128(&self) -> Option<i128> {
        match *self {
            Value::Int(v) => Some(v),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short name for the value's kind, used in decode errors.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// What class of failure a [`JsonError`] reports — lets network code map
/// hostile input onto typed protocol replies instead of string-matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JsonErrorKind {
    /// Malformed JSON text (unexpected character, bad escape, ...).
    Syntax,
    /// The input exceeds the configured [`ParseLimits::max_bytes`].
    TooLarge,
    /// Nesting exceeds the configured [`ParseLimits::max_depth`].
    TooDeep,
    /// Well-formed JSON whose shape or values a [`FromJson`] impl rejected.
    Decode,
}

/// Error from [`parse`] or from [`FromJson`] decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    message: String,
    kind: JsonErrorKind,
}

impl JsonError {
    /// Creates a decode-kind error with the given message (the constructor
    /// every hand-written [`FromJson`] impl uses).
    #[must_use]
    pub fn new(message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
            kind: JsonErrorKind::Decode,
        }
    }

    /// Creates an error with an explicit kind.
    #[must_use]
    pub fn with_kind(message: impl Into<String>, kind: JsonErrorKind) -> Self {
        JsonError {
            message: message.into(),
            kind,
        }
    }

    /// The failure class.
    #[must_use]
    pub fn kind(&self) -> JsonErrorKind {
        self.kind
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for JsonError {}

/// Types that render themselves as a JSON [`Value`].
pub trait ToJson {
    /// Builds the JSON representation.
    fn to_json_value(&self) -> Value;
}

/// Types that decode themselves from a JSON [`Value`].
pub trait FromJson: Sized {
    /// Decodes from a parsed value.
    fn from_json_value(value: &Value) -> Result<Self, JsonError>;
}

/// Serializes any [`ToJson`] type to pretty-printed JSON text.
pub fn encode_pretty<T: ToJson>(value: &T) -> String {
    to_string_pretty(&value.to_json_value())
}

/// Parses JSON text and decodes it into any [`FromJson`] type.
pub fn decode<T: FromJson>(text: &str) -> Result<T, JsonError> {
    T::from_json_value(&parse(text)?)
}

// ---------------------------------------------------------------------------
// Decoding helpers shared by the hand-written FromJson impls.
// ---------------------------------------------------------------------------

/// Fetches a required object field.
pub fn required<'v>(value: &'v Value, key: &str) -> Result<&'v Value, JsonError> {
    match value {
        Value::Object(_) => value
            .field(key)
            .ok_or_else(|| JsonError::new(format!("missing field `{key}`"))),
        other => Err(JsonError::new(format!(
            "expected object with field `{key}`, found {}",
            other.kind()
        ))),
    }
}

/// Decodes an exact integer field into any integer type.
pub fn int_from<T: TryFrom<i128>>(value: &Value, what: &str) -> Result<T, JsonError> {
    let raw = value.as_i128().ok_or_else(|| {
        JsonError::new(format!(
            "expected integer for {what}, found {}",
            value.kind()
        ))
    })?;
    T::try_from(raw).map_err(|_| JsonError::new(format!("{what} out of range: {raw}")))
}

/// Decodes an array field elementwise.
pub fn vec_from<T, F>(value: &Value, what: &str, decode_item: F) -> Result<Vec<T>, JsonError>
where
    F: Fn(&Value) -> Result<T, JsonError>,
{
    value
        .as_array()
        .ok_or_else(|| {
            JsonError::new(format!("expected array for {what}, found {}", value.kind()))
        })?
        .iter()
        .map(decode_item)
        .collect()
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json_value).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        vec_from(value, "array", T::from_json_value)
    }
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

/// Pretty-prints with two-space indentation (the format `serde_json` uses,
/// so existing fixture files and diffs stay familiar).
#[must_use]
pub fn to_string_pretty(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, 0);
    out
}

fn write_value(out: &mut String, value: &Value, indent: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(v) => out.push_str(&v.to_string()),
        Value::Float(v) => {
            if v.is_finite() {
                // Guarantee a re-parsable float literal.
                let s = format!("{v}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(out, indent + 1);
                write_value(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(out, indent + 1);
                write_string(out, key);
                out.push_str(": ");
                write_value(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Bounds on what [`parse_with_limits`] will accept — the guard rails for
/// parsing untrusted network input.
///
/// The default (used by the plain [`parse`]) keeps the historical behavior:
/// no byte limit (trusted local files) and a 128-level depth bound that
/// protects the recursive parser's stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseLimits {
    /// Largest accepted input, in bytes ([`usize::MAX`] = unlimited).
    pub max_bytes: usize,
    /// Deepest accepted array/object nesting.
    pub max_depth: usize,
}

impl Default for ParseLimits {
    fn default() -> Self {
        ParseLimits {
            max_bytes: usize::MAX,
            max_depth: MAX_DEPTH,
        }
    }
}

/// Parses a complete JSON document (trailing garbage is an error).
pub fn parse(text: &str) -> Result<Value, JsonError> {
    parse_with_limits(text, &ParseLimits::default())
}

/// [`parse`] with explicit [`ParseLimits`]; the entry point for untrusted
/// input. Oversized input is rejected *before* any parsing work
/// ([`JsonErrorKind::TooLarge`]); nesting beyond the depth bound aborts with
/// [`JsonErrorKind::TooDeep`] instead of deep recursion.
pub fn parse_with_limits(text: &str, limits: &ParseLimits) -> Result<Value, JsonError> {
    if text.len() > limits.max_bytes {
        return Err(JsonError::with_kind(
            format!(
                "JSON payload of {} bytes exceeds the {}-byte limit",
                text.len(),
                limits.max_bytes
            ),
            JsonErrorKind::TooLarge,
        ));
    }
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        max_depth: limits.max_depth,
    };
    p.skip_ws();
    let value = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after JSON value"));
    }
    Ok(value)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    max_depth: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError::with_kind(
            format!("{message} at byte {}", self.pos),
            JsonErrorKind::Syntax,
        )
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, expected: u8) -> Result<(), JsonError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", expected as char)))
        }
    }

    /// `depth` counts the containers enclosing the value about to start, so
    /// a document whose deepest nesting is `max_depth` containers is
    /// accepted and one level more is rejected.
    fn check_depth(&self, depth: usize) -> Result<(), JsonError> {
        if depth >= self.max_depth {
            return Err(JsonError::with_kind(
                format!(
                    "nesting deeper than {} levels at byte {}",
                    self.max_depth, self.pos
                ),
                JsonErrorKind::TooDeep,
            ));
        }
        Ok(())
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => {
                self.check_depth(depth)?;
                self.parse_object(depth)
            }
            Some(b'[') => {
                self.check_depth(depth)?;
                self.parse_array(depth)
            }
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{word}`")))
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.parse_value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.parse_hex4()?;
                            // Surrogate pairs: only BMP scalars are produced
                            // by our printer; reject lone surrogates.
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(self.error("invalid \\u escape")),
                            }
                            continue;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.error("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this is safe).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && self.bytes[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                    out.push_str(
                        core::str::from_utf8(&self.bytes[start..end]).expect("valid UTF-8"),
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, JsonError> {
        let mut code: u32 = 0;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a') + 10,
                Some(c @ b'A'..=b'F') => u32::from(c - b'A') + 10,
                _ => return Err(self.error("invalid hex digit in \\u escape")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.error("expected digits"));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.error("expected digits after `.`"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.error("expected digits in exponent"));
            }
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.error("invalid number"))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| self.error("integer out of range"))
        }
    }
}

// ---------------------------------------------------------------------------
// Length-prefixed framing
// ---------------------------------------------------------------------------

/// Length-prefixed framing for JSON documents over a byte stream.
///
/// The `bss-serve` wire protocol sends each JSON document as one *frame*: a
/// 4-byte big-endian payload length followed by that many bytes of UTF-8
/// JSON. The reader enforces a caller-chosen maximum payload size *before*
/// allocating, so a hostile peer cannot trigger an unbounded allocation by
/// declaring a huge length.
pub mod frame {
    use std::io::{self, Read, Write};

    /// Size of the length prefix in bytes.
    pub const HEADER_LEN: usize = 4;

    /// Errors from [`read_frame`] / [`write_frame`].
    #[derive(Debug)]
    pub enum FrameError {
        /// The underlying stream failed.
        Io(io::Error),
        /// The peer declared (or asked us to send) a payload larger than the
        /// configured maximum. The stream is desynchronized after this —
        /// close the connection rather than reading on.
        TooLarge {
            /// The declared payload length.
            len: usize,
            /// The configured maximum.
            max: usize,
        },
        /// The payload was not valid UTF-8.
        Utf8,
        /// The stream ended mid-frame (a clean close *between* frames is
        /// reported as `Ok(None)` by [`read_frame`] instead).
        Truncated,
    }

    impl core::fmt::Display for FrameError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            match self {
                FrameError::Io(e) => write!(f, "frame I/O error: {e}"),
                FrameError::TooLarge { len, max } => {
                    write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
                }
                FrameError::Utf8 => write!(f, "frame payload is not valid UTF-8"),
                FrameError::Truncated => write!(f, "stream closed mid-frame"),
            }
        }
    }

    impl std::error::Error for FrameError {}

    impl From<io::Error> for FrameError {
        fn from(e: io::Error) -> Self {
            FrameError::Io(e)
        }
    }

    /// Writes one frame: 4-byte big-endian length, then the payload bytes.
    ///
    /// # Errors
    /// [`FrameError::TooLarge`] when the payload exceeds `max_len` (also the
    /// hard `u32` prefix range), otherwise any underlying I/O error.
    pub fn write_frame(
        w: &mut impl Write,
        payload: &str,
        max_len: usize,
    ) -> Result<(), FrameError> {
        let len = payload.len();
        if len > max_len || len > u32::MAX as usize {
            return Err(FrameError::TooLarge {
                len,
                max: max_len.min(u32::MAX as usize),
            });
        }
        w.write_all(&(len as u32).to_be_bytes())?;
        w.write_all(payload.as_bytes())?;
        w.flush()?;
        Ok(())
    }

    /// Reads one frame, returning `Ok(None)` on a clean end-of-stream at a
    /// frame boundary.
    ///
    /// The declared length is checked against `max_len` *before* the payload
    /// buffer is allocated.
    ///
    /// # Errors
    /// See [`FrameError`].
    pub fn read_frame(r: &mut impl Read, max_len: usize) -> Result<Option<String>, FrameError> {
        let mut header = [0u8; HEADER_LEN];
        let mut filled = 0;
        while filled < HEADER_LEN {
            match r.read(&mut header[filled..]) {
                Ok(0) if filled == 0 => return Ok(None),
                Ok(0) => return Err(FrameError::Truncated),
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(FrameError::Io(e)),
            }
        }
        let len = u32::from_be_bytes(header) as usize;
        if len > max_len {
            return Err(FrameError::TooLarge { len, max: max_len });
        }
        let mut payload = vec![0u8; len];
        match r.read_exact(&mut payload) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                return Err(FrameError::Truncated)
            }
            Err(e) => return Err(FrameError::Io(e)),
        }
        String::from_utf8(payload)
            .map(Some)
            .map_err(|_| FrameError::Utf8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips() {
        let doc = Value::Object(vec![
            ("machines".into(), Value::Int(3)),
            (
                "setups".into(),
                Value::Array(vec![Value::Int(10), Value::Int(4)]),
            ),
            ("name".into(), Value::Str("a \"quoted\"\nline".into())),
            ("flag".into(), Value::Bool(true)),
            ("nothing".into(), Value::Null),
            ("ratio".into(), Value::Float(1.5)),
            ("empty_arr".into(), Value::Array(vec![])),
            ("empty_obj".into(), Value::Object(vec![])),
            ("big".into(), Value::Int(i128::MAX)),
            ("neg".into(), Value::Int(i128::MIN)),
        ]);
        let text = to_string_pretty(&doc);
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn parses_standard_forms() {
        assert_eq!(parse("42").unwrap(), Value::Int(42));
        assert_eq!(parse("-7").unwrap(), Value::Int(-7));
        assert_eq!(parse("2.5").unwrap(), Value::Float(2.5));
        assert_eq!(parse("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(
            parse(" [1, 2] ").unwrap(),
            Value::Array(vec![Value::Int(1), Value::Int(2)])
        );
        assert_eq!(parse(r#""A""#).unwrap(), Value::Str("A".into()));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "01x",
            "\"unterminated",
            "1 2",
            "nul",
            "--1",
            "1.",
            "{\"a\" 1}",
            "[1 2]",
        ] {
            assert!(parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn field_lookup() {
        let v = parse(r#"{"a": 1, "b": [true]}"#).unwrap();
        assert_eq!(v.field("a").and_then(Value::as_i128), Some(1));
        assert!(v.field("c").is_none());
        assert_eq!(
            v.field("b").and_then(Value::as_array).map(<[Value]>::len),
            Some(1)
        );
    }
}
