//! Adversarial-input tests for the hardened parser and framing layer.
//!
//! The `bss-serve` daemon feeds *network* bytes into this crate, so hostile
//! input must come back as typed errors — never a panic, deep recursion, or
//! an allocation proportional to a peer-declared (rather than received)
//! size.

use std::io::Cursor;

use bss_json::frame::{read_frame, write_frame, FrameError, HEADER_LEN};
use bss_json::{parse, parse_with_limits, JsonErrorKind, ParseLimits, Value};

const NET: ParseLimits = ParseLimits {
    max_bytes: 4096,
    max_depth: 16,
};

#[test]
fn oversized_payload_is_rejected_before_parsing() {
    let big = format!("[{}1]", "1,".repeat(4096));
    let err = parse_with_limits(&big, &NET).unwrap_err();
    assert_eq!(err.kind(), JsonErrorKind::TooLarge);
    // The same document parses fine without the byte bound.
    assert!(parse(&big).is_ok());
}

#[test]
fn payload_at_exactly_the_limit_is_accepted() {
    let text = format!("\"{}\"", "x".repeat(NET.max_bytes - 2));
    assert_eq!(text.len(), NET.max_bytes);
    assert!(parse_with_limits(&text, &NET).is_ok());
}

#[test]
fn deep_array_nesting_is_typed_too_deep() {
    let deep = "[".repeat(64) + &"]".repeat(64);
    let err = parse_with_limits(&deep, &NET).unwrap_err();
    assert_eq!(err.kind(), JsonErrorKind::TooDeep);
}

#[test]
fn deep_object_nesting_is_typed_too_deep() {
    let deep = "{\"a\":".repeat(64) + "1" + &"}".repeat(64);
    let err = parse_with_limits(&deep, &NET).unwrap_err();
    assert_eq!(err.kind(), JsonErrorKind::TooDeep);
}

#[test]
fn nesting_at_exactly_the_depth_bound_is_accepted() {
    let depth = NET.max_depth;
    let ok = "[".repeat(depth) + &"]".repeat(depth);
    assert!(parse_with_limits(&ok, &NET).is_ok());
    let over = "[".repeat(depth + 1) + &"]".repeat(depth + 1);
    assert_eq!(
        parse_with_limits(&over, &NET).unwrap_err().kind(),
        JsonErrorKind::TooDeep
    );
}

#[test]
fn default_limits_keep_the_historical_depth_bound() {
    let deep = "[".repeat(500) + &"]".repeat(500);
    assert_eq!(parse(&deep).unwrap_err().kind(), JsonErrorKind::TooDeep);
    let ok = "[".repeat(128) + &"]".repeat(128);
    assert!(parse(&ok).is_ok());
}

#[test]
fn syntax_errors_are_typed_syntax() {
    for bad in ["{", "[1,", "\"unterminated", "nul", "1 2", "\u{1}"] {
        let err = parse_with_limits(bad, &NET).unwrap_err();
        assert_eq!(err.kind(), JsonErrorKind::Syntax, "input `{bad}`");
    }
}

#[test]
fn decode_errors_are_typed_decode() {
    let err = bss_json::int_from::<u64>(&Value::Str("no".into()), "field").unwrap_err();
    assert_eq!(err.kind(), JsonErrorKind::Decode);
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

#[test]
fn frame_roundtrip() {
    let mut buf = Vec::new();
    write_frame(&mut buf, r#"{"id": 1}"#, 1024).unwrap();
    write_frame(&mut buf, "", 1024).unwrap();
    let mut r = Cursor::new(buf);
    assert_eq!(
        read_frame(&mut r, 1024).unwrap().as_deref(),
        Some(r#"{"id": 1}"#)
    );
    assert_eq!(read_frame(&mut r, 1024).unwrap().as_deref(), Some(""));
    assert!(read_frame(&mut r, 1024).unwrap().is_none(), "clean EOF");
}

#[test]
fn declared_huge_length_is_rejected_without_allocation() {
    // A 4 GiB declaration backed by no bytes at all: the reader must refuse
    // at the header, not try to allocate the declared buffer.
    let mut r = Cursor::new(0xFFFF_FF00u32.to_be_bytes().to_vec());
    match read_frame(&mut r, 1 << 20) {
        Err(FrameError::TooLarge { len, max }) => {
            assert_eq!(len, 0xFFFF_FF00);
            assert_eq!(max, 1 << 20);
        }
        other => panic!("expected TooLarge, got {other:?}"),
    }
}

#[test]
fn truncated_header_and_payload_are_typed() {
    // Two header bytes, then EOF.
    let mut r = Cursor::new(vec![0u8, 0]);
    assert!(matches!(
        read_frame(&mut r, 1024),
        Err(FrameError::Truncated)
    ));
    // Full header declaring 10 bytes, only 3 delivered.
    let mut buf = 10u32.to_be_bytes().to_vec();
    buf.extend_from_slice(b"abc");
    let mut r = Cursor::new(buf);
    assert!(matches!(
        read_frame(&mut r, 1024),
        Err(FrameError::Truncated)
    ));
}

#[test]
fn non_utf8_payload_is_typed() {
    let mut buf = 2u32.to_be_bytes().to_vec();
    buf.extend_from_slice(&[0xFF, 0xFE]);
    let mut r = Cursor::new(buf);
    assert!(matches!(read_frame(&mut r, 1024), Err(FrameError::Utf8)));
}

#[test]
fn write_frame_refuses_oversized_payload() {
    let mut buf = Vec::new();
    let payload = "x".repeat(100);
    assert!(matches!(
        write_frame(&mut buf, &payload, 99),
        Err(FrameError::TooLarge { len: 100, max: 99 })
    ));
    assert!(buf.is_empty(), "nothing written on refusal");
}

#[test]
fn header_len_matches_the_wire_prefix() {
    let mut buf = Vec::new();
    write_frame(&mut buf, "abc", 16).unwrap();
    assert_eq!(buf.len(), HEADER_LEN + 3);
    assert_eq!(&buf[..HEADER_LEN], &3u32.to_be_bytes());
}
