//! Cooperative solve budgets for anytime solving under deadlines.
//!
//! Every solver in this workspace is *interruptible*: the searches check a
//! shared [`SolveBudget`] at each probe (and the exact backend at a node
//! stride), and on expiry they wind down to the best certified answer they
//! hold instead of running to completion — the anytime contract documented
//! in `bss-core`. The budget combines three independent limits:
//!
//! * a **wall-clock deadline** ([`SolveBudget::with_deadline`]);
//! * a **work budget** — dual-test probes and exact search nodes share one
//!   unit counter ([`SolveBudget::with_work_limit`]), unifying the
//!   historical `bss-exact` node budget with the approximation searches;
//! * a **cancellation token** ([`CancelToken`]) flipped from another thread.
//!
//! A budget is checked *cooperatively*: solvers call
//! [`SolveBudget::charge_work`] before each unit of work and
//! [`SolveBudget::poll`] at cheap checkpoints. Checks never block and never
//! panic (outside injected chaos faults); an exceeded limit surfaces as a
//! typed [`Interrupt`] that callers translate into graceful degradation.
//!
//! # Fault injection (`chaos` feature)
//!
//! With the `chaos` feature a [`FaultPlan`] can be installed on a budget:
//! at the `at`-th checkpoint the budget panics, latches cancellation, or
//! latches deadline expiry — deterministically, with no wall clock
//! involved. `bss-chaos` sweeps these plans over every checkpoint index to
//! prove the workspace-wide invariant *any interruption yields either a
//! valid certified solution or a typed error*.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a solve was interrupted before it could run to completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Interrupt {
    /// The wall-clock deadline passed.
    Deadline,
    /// The work budget (probes + exact nodes) is spent.
    WorkExhausted,
    /// The [`CancelToken`] was cancelled.
    Cancelled,
}

impl fmt::Display for Interrupt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Interrupt::Deadline => write!(f, "deadline expired"),
            Interrupt::WorkExhausted => write!(f, "work budget exhausted"),
            Interrupt::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// A shareable cancellation flag: clone it, hand one copy to the solving
/// thread (via [`SolveBudget::with_cancel`]) and keep the other to
/// [`CancelToken::cancel`] from anywhere. Cancellation is sticky.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation; every budget holding a clone of this token
    /// reports [`Interrupt::Cancelled`] from its next check on.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether [`CancelToken::cancel`] has been called.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// A deterministic fault to inject at a checkpoint (`chaos` feature).
#[cfg(feature = "chaos")]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Panic at the checkpoint — models a solver bug mid-flight; the API
    /// boundary must isolate it into a typed error.
    Panic,
    /// Latch cancellation at the checkpoint, as if a [`CancelToken`] fired.
    Cancel,
    /// Latch deadline expiry at the checkpoint — a deterministic stand-in
    /// for wall-clock expiry (no real clock involved).
    DeadlineExpiry,
}

/// Inject `fault` at the `at`-th budget checkpoint (1-indexed; checkpoint
/// counting is deterministic for a fixed instance/algorithm).
#[cfg(feature = "chaos")]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// The checkpoint index the fault fires at (first checkpoint = 1).
    pub at: u64,
    /// What happens there.
    pub fault: Fault,
}

/// The cooperative budget of one solve: deadline + work limit + cancel
/// token, checked by every search layer.
///
/// The zero-cost default is [`SolveBudget::unlimited`] — no deadline, no
/// work limit, no token — under which every budgeted entry point is
/// bit-identical to its historical unbudgeted counterpart (guarded by
/// equivalence tests). Counters are atomic so one budget may be observed
/// from other threads (e.g. per-item checks inside `parallel_map`).
#[derive(Debug, Default)]
pub struct SolveBudget {
    deadline: Option<Instant>,
    /// `None` = unlimited.
    work_max: Option<u64>,
    work_used: AtomicU64,
    checkpoints: AtomicU64,
    cancel: Option<CancelToken>,
    #[cfg(feature = "chaos")]
    fault: Option<FaultPlan>,
    #[cfg(feature = "chaos")]
    fault_cancel: AtomicBool,
    #[cfg(feature = "chaos")]
    fault_deadline: AtomicBool,
}

impl SolveBudget {
    /// No limits at all: every check passes, nothing is ever interrupted.
    #[must_use]
    pub fn unlimited() -> Self {
        SolveBudget::default()
    }

    /// Adds a wall-clock deadline `d` from now.
    #[must_use]
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(Instant::now() + d);
        self
    }

    /// Adds an absolute wall-clock deadline.
    #[must_use]
    pub fn with_deadline_at(mut self, at: Instant) -> Self {
        self.deadline = Some(at);
        self
    }

    /// Caps the total work: dual-test probes and exact search nodes each
    /// cost one unit from this shared pool.
    #[must_use]
    pub fn with_work_limit(mut self, units: u64) -> Self {
        self.work_max = Some(units);
        self
    }

    /// Attaches a cancellation token (cloned; the caller keeps the other
    /// end).
    #[must_use]
    pub fn with_cancel(mut self, token: &CancelToken) -> Self {
        self.cancel = Some(token.clone());
        self
    }

    /// Installs a deterministic fault plan (`chaos` feature).
    #[cfg(feature = "chaos")]
    #[must_use]
    pub fn with_fault(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Whether any limit (or fault plan) is installed. Budget-aware drivers
    /// use this to skip degradation bookkeeping (e.g. the eager fallback
    /// safety net) on the unlimited fast path.
    #[must_use]
    pub fn is_limited(&self) -> bool {
        #[cfg(feature = "chaos")]
        let fault = self.fault.is_some();
        #[cfg(not(feature = "chaos"))]
        let fault = false;
        self.deadline.is_some() || self.work_max.is_some() || self.cancel.is_some() || fault
    }

    /// Work units charged so far (probes + exact nodes).
    #[must_use]
    pub fn work_used(&self) -> u64 {
        self.work_used.load(Ordering::Relaxed)
    }

    /// Checkpoints passed so far. Deterministic for a fixed
    /// instance/algorithm pair, which is what lets the chaos suite target
    /// "the k-th checkpoint" exactly.
    #[must_use]
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints.load(Ordering::Relaxed)
    }

    /// Non-charging check: has any limit already tripped?
    ///
    /// Does not bump the checkpoint counter and never fires a fault plan —
    /// safe to call anywhere, any number of times.
    ///
    /// # Errors
    /// The [`Interrupt`] that applies, checked in the order cancellation →
    /// deadline → work.
    pub fn poll(&self) -> Result<(), Interrupt> {
        #[cfg(feature = "chaos")]
        {
            if self.fault_cancel.load(Ordering::Relaxed) {
                return Err(Interrupt::Cancelled);
            }
            if self.fault_deadline.load(Ordering::Relaxed) {
                return Err(Interrupt::Deadline);
            }
        }
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(Interrupt::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(Interrupt::Deadline);
            }
        }
        if let Some(max) = self.work_max {
            if self.work_used() >= max {
                return Err(Interrupt::WorkExhausted);
            }
        }
        Ok(())
    }

    /// A cooperative checkpoint: bumps the checkpoint counter, fires any
    /// due injected fault, then polls the limits. Charges no work.
    ///
    /// # Errors
    /// See [`SolveBudget::poll`].
    ///
    /// # Panics
    /// Only with the `chaos` feature, when an installed [`Fault::Panic`]
    /// plan is due at this checkpoint.
    pub fn checkpoint(&self) -> Result<(), Interrupt> {
        let k = self.checkpoints.fetch_add(1, Ordering::Relaxed) + 1;
        #[cfg(feature = "chaos")]
        self.apply_fault(k);
        #[cfg(not(feature = "chaos"))]
        let _ = k;
        self.poll()
    }

    /// Charges `units` of work at a checkpoint.
    ///
    /// # Errors
    /// An [`Interrupt`] when a limit has tripped — including
    /// [`Interrupt::WorkExhausted`] when this very charge crosses the work
    /// limit, in which case the unit of work must **not** be performed.
    ///
    /// # Panics
    /// Only under an injected `chaos` fault (see [`SolveBudget::checkpoint`]).
    pub fn charge_work(&self, units: u64) -> Result<(), Interrupt> {
        self.checkpoint()?;
        let prev = self.work_used.fetch_add(units, Ordering::Relaxed);
        match self.work_max {
            Some(max) if prev.saturating_add(units) > max => Err(Interrupt::WorkExhausted),
            _ => Ok(()),
        }
    }

    /// Charges one dual-test probe ([`SolveBudget::charge_work`] with one
    /// unit) — the call every search driver makes before each probe.
    ///
    /// # Errors
    /// See [`SolveBudget::charge_work`].
    pub fn charge_probe(&self) -> Result<(), Interrupt> {
        self.charge_work(1)
    }

    #[cfg(feature = "chaos")]
    fn apply_fault(&self, k: u64) {
        let Some(plan) = self.fault else { return };
        if k != plan.at {
            return;
        }
        match plan.fault {
            Fault::Panic => panic!("bss-chaos: injected panic at checkpoint {k}"),
            Fault::Cancel => self.fault_cancel.store(true, Ordering::Relaxed),
            Fault::DeadlineExpiry => self.fault_deadline.store(true, Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_interrupts() {
        let b = SolveBudget::unlimited();
        assert!(!b.is_limited());
        for _ in 0..1000 {
            assert_eq!(b.charge_probe(), Ok(()));
        }
        assert_eq!(b.poll(), Ok(()));
        assert_eq!(b.work_used(), 1000);
        assert_eq!(b.checkpoints(), 1000);
    }

    #[test]
    fn work_limit_allows_exactly_n_probes() {
        let b = SolveBudget::unlimited().with_work_limit(3);
        assert!(b.is_limited());
        assert_eq!(b.charge_probe(), Ok(()));
        assert_eq!(b.charge_probe(), Ok(()));
        assert_eq!(b.charge_probe(), Ok(()));
        assert_eq!(b.charge_probe(), Err(Interrupt::WorkExhausted));
        assert_eq!(b.poll(), Err(Interrupt::WorkExhausted));
    }

    #[test]
    fn zero_work_budget_interrupts_immediately() {
        let b = SolveBudget::unlimited().with_work_limit(0);
        assert_eq!(b.poll(), Err(Interrupt::WorkExhausted));
        assert_eq!(b.charge_probe(), Err(Interrupt::WorkExhausted));
    }

    #[test]
    fn cancel_token_is_sticky_and_shared() {
        let token = CancelToken::new();
        let b = SolveBudget::unlimited().with_cancel(&token);
        assert_eq!(b.poll(), Ok(()));
        token.cancel();
        assert_eq!(b.poll(), Err(Interrupt::Cancelled));
        assert_eq!(b.charge_probe(), Err(Interrupt::Cancelled));
        assert!(token.is_cancelled());
    }

    #[test]
    fn expired_deadline_interrupts() {
        let b = SolveBudget::unlimited().with_deadline(Duration::ZERO);
        assert_eq!(b.poll(), Err(Interrupt::Deadline));
    }

    #[test]
    fn far_deadline_does_not_interrupt() {
        let b = SolveBudget::unlimited().with_deadline(Duration::from_secs(3600));
        assert_eq!(b.charge_probe(), Ok(()));
    }

    #[test]
    fn cancellation_outranks_other_interrupts() {
        let token = CancelToken::new();
        token.cancel();
        let b = SolveBudget::unlimited()
            .with_cancel(&token)
            .with_work_limit(0)
            .with_deadline(Duration::ZERO);
        assert_eq!(b.poll(), Err(Interrupt::Cancelled));
    }

    #[cfg(feature = "chaos")]
    mod chaos {
        use super::*;

        #[test]
        fn injected_cancel_latches_at_exact_checkpoint() {
            let b = SolveBudget::unlimited().with_fault(FaultPlan {
                at: 3,
                fault: Fault::Cancel,
            });
            assert_eq!(b.checkpoint(), Ok(()));
            assert_eq!(b.checkpoint(), Ok(()));
            assert_eq!(b.checkpoint(), Err(Interrupt::Cancelled));
            assert_eq!(b.checkpoint(), Err(Interrupt::Cancelled)); // sticky
        }

        #[test]
        fn injected_deadline_needs_no_clock() {
            let b = SolveBudget::unlimited().with_fault(FaultPlan {
                at: 1,
                fault: Fault::DeadlineExpiry,
            });
            assert_eq!(b.checkpoint(), Err(Interrupt::Deadline));
        }

        #[test]
        fn injected_panic_fires_exactly_once_at_k() {
            let b = SolveBudget::unlimited().with_fault(FaultPlan {
                at: 2,
                fault: Fault::Panic,
            });
            assert_eq!(b.checkpoint(), Ok(()));
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| b.checkpoint()));
            assert!(caught.is_err());
            // Past the index the plan is spent.
            assert_eq!(b.checkpoint(), Ok(()));
        }
    }
}
