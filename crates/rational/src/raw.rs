//! Deferred-normalization arithmetic for hot accumulation loops.
//!
//! [`Rational`] keeps every value in canonical reduced form, which costs a
//! binary gcd per constructed value. The dual-approximation probes of the
//! scheduling algorithms sum thousands of terms per guess and only *compare*
//! the result once — the canonical form of every intermediate sum is wasted
//! work. [`RawRational`] is the accumulator for those loops: it keeps an
//! unreduced `num/den` (with `den > 0`), performs gcd-free additions, and
//! reduces only on exposure ([`RawRational::reduce`]) or when an intermediate
//! would leave the `i128` headroom (a normalize-and-retry step, mirroring how
//! [`Rational`] itself reduces to keep products inside `i128`).

use core::cmp::Ordering;
use core::ops::{AddAssign, SubAssign};

use crate::Rational;

/// An unreduced rational accumulator `num / den` with `den > 0`.
///
/// Semantically identical to the [`Rational`] it reduces to; only the
/// representation is lazy. Overflow behaviour matches [`Rational`]: if a
/// value cannot be represented even after full reduction, the operation
/// panics.
///
/// ```
/// use bss_rational::{RawRational, Rational};
///
/// let mut acc = RawRational::ZERO;
/// acc += Rational::new(1, 6);
/// acc += Rational::new(1, 3);
/// acc += 2u64;
/// assert_eq!(acc.reduce(), Rational::new(5, 2));
/// assert!(acc < Rational::from(3u64));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct RawRational {
    num: i128,
    den: i128,
}

impl RawRational {
    /// The value `0`.
    pub const ZERO: RawRational = RawRational { num: 0, den: 1 };

    /// Creates an integral accumulator.
    #[must_use]
    #[inline]
    pub const fn from_int(v: i128) -> Self {
        RawRational { num: v, den: 1 }
    }

    /// `true` iff the value is strictly negative.
    #[must_use]
    #[inline]
    pub const fn is_negative(&self) -> bool {
        self.num < 0
    }

    /// `true` iff the value is strictly positive.
    #[must_use]
    #[inline]
    pub const fn is_positive(&self) -> bool {
        self.num > 0
    }

    /// Exposes the canonical reduced value (the only place a gcd is paid).
    #[must_use]
    #[inline]
    pub fn reduce(&self) -> Rational {
        Rational::new(self.num, self.den)
    }

    /// Gcd-free `self += rn/rd` (`rd > 0`); `false` on `i128` overflow.
    #[inline]
    fn add_raw(&mut self, rn: i128, rd: i128) -> bool {
        debug_assert!(rd > 0);
        if rd == self.den {
            // Common case: matching denominators (integers in particular).
            match self.num.checked_add(rn) {
                Some(n) => {
                    self.num = n;
                    true
                }
                None => false,
            }
        } else {
            let (Some(a), Some(b), Some(d)) = (
                self.num.checked_mul(rd),
                rn.checked_mul(self.den),
                self.den.checked_mul(rd),
            ) else {
                return false;
            };
            match a.checked_add(b) {
                Some(n) => {
                    self.num = n;
                    self.den = d;
                    true
                }
                None => false,
            }
        }
    }

    /// `self += rn/rd`, normalizing and retrying once when the gcd-free step
    /// overflows.
    ///
    /// # Panics
    /// Panics exactly when fully-reduced [`Rational`] addition would: the
    /// fallback normalizes and delegates to [`Rational::checked_add`], whose
    /// lcm-via-gcd intermediates are the tightest exact representation.
    #[inline]
    fn add_checked(&mut self, rn: i128, rd: i128) {
        if self.add_raw(rn, rd) {
            return;
        }
        let sum = self
            .reduce()
            .checked_add(Rational::new(rn, rd))
            .expect("Rational overflow in add");
        self.num = sum.numer();
        self.den = sum.denom();
    }

    /// Three-way comparison against a reduced value.
    #[must_use]
    #[inline]
    pub fn cmp_rational(&self, rhs: Rational) -> Ordering {
        self.cmp_raw(rhs.numer(), rhs.denom())
    }

    fn cmp_raw(&self, rn: i128, rd: i128) -> Ordering {
        debug_assert!(rd > 0);
        if self.den == rd {
            return self.num.cmp(&rn);
        }
        if let (Some(lhs), Some(rhs)) = (self.num.checked_mul(rd), rn.checked_mul(self.den)) {
            return lhs.cmp(&rhs);
        }
        // Cross-multiplication left i128: reduce a copy and retry (reduced
        // operands are the same values, so the ordering is unchanged).
        let lhs = self.reduce();
        let rhs = Rational::new(rn, rd);
        lhs.cmp(&rhs)
    }
}

impl Default for RawRational {
    fn default() -> Self {
        RawRational::ZERO
    }
}

impl From<Rational> for RawRational {
    #[inline]
    fn from(r: Rational) -> Self {
        RawRational {
            num: r.numer(),
            den: r.denom(),
        }
    }
}

impl From<u64> for RawRational {
    #[inline]
    fn from(v: u64) -> Self {
        RawRational::from_int(v as i128)
    }
}

impl AddAssign<Rational> for RawRational {
    #[inline]
    fn add_assign(&mut self, rhs: Rational) {
        self.add_checked(rhs.numer(), rhs.denom());
    }
}

impl AddAssign<RawRational> for RawRational {
    #[inline]
    fn add_assign(&mut self, rhs: RawRational) {
        self.add_checked(rhs.num, rhs.den);
    }
}

impl AddAssign<u64> for RawRational {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.add_checked(rhs as i128, 1);
    }
}

impl SubAssign<Rational> for RawRational {
    #[inline]
    fn sub_assign(&mut self, rhs: Rational) {
        self.add_checked(-rhs.numer(), rhs.denom());
    }
}

impl SubAssign<RawRational> for RawRational {
    #[inline]
    fn sub_assign(&mut self, rhs: RawRational) {
        self.add_checked(-rhs.num, rhs.den);
    }
}

impl SubAssign<u64> for RawRational {
    #[inline]
    fn sub_assign(&mut self, rhs: u64) {
        self.add_checked(-(rhs as i128), 1);
    }
}

impl PartialEq for RawRational {
    fn eq(&self, other: &Self) -> bool {
        self.cmp_raw(other.num, other.den) == Ordering::Equal
    }
}

impl Eq for RawRational {}

impl PartialOrd for RawRational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for RawRational {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_raw(other.num, other.den)
    }
}

impl PartialEq<Rational> for RawRational {
    fn eq(&self, other: &Rational) -> bool {
        self.cmp_rational(*other) == Ordering::Equal
    }
}

impl PartialOrd<Rational> for RawRational {
    #[inline]
    fn partial_cmp(&self, other: &Rational) -> Option<Ordering> {
        Some(self.cmp_rational(*other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_like_rational() {
        let terms = [
            Rational::new(1, 6),
            Rational::new(2, 3),
            Rational::from(41u64),
            Rational::new(-7, 4),
        ];
        let mut raw = RawRational::ZERO;
        let mut reference = Rational::ZERO;
        for t in terms {
            raw += t;
            reference += t;
            assert_eq!(raw.reduce(), reference);
            assert_eq!(raw.cmp_rational(reference), Ordering::Equal);
        }
    }

    #[test]
    fn subtraction_and_sign() {
        let mut raw = RawRational::from(10u64);
        raw -= Rational::new(21, 2);
        assert!(raw.is_negative());
        assert_eq!(raw.reduce(), Rational::new(-1, 2));
        raw += 1u64;
        assert!(raw.is_positive());
    }

    #[test]
    fn ordering_against_rational() {
        let mut raw = RawRational::ZERO;
        raw += Rational::new(2, 4); // stays unreduced internally
        assert!(raw == Rational::new(1, 2));
        assert!(raw < Rational::new(2, 3));
        assert!(raw > Rational::new(1, 3));
    }

    #[test]
    fn near_overflow_normalizes_instead_of_panicking() {
        // Large same-value terms with huge denominators force the
        // normalize-and-retry path.
        let big = Rational::new(1i128 << 62, (1i128 << 31) + 1);
        let mut raw = RawRational::ZERO;
        let mut reference = Rational::ZERO;
        for _ in 0..8 {
            raw += big;
            raw += Rational::new(1, (1 << 31) - 1);
            reference += big;
            reference += Rational::new(1, (1 << 31) - 1);
        }
        assert_eq!(raw.reduce(), reference);
    }

    #[test]
    fn raw_raw_ops() {
        let mut a = RawRational::from(Rational::new(5, 6));
        let b = RawRational::from(Rational::new(1, 6));
        a += b;
        assert_eq!(a.reduce(), Rational::ONE);
        a -= b;
        a -= b;
        assert_eq!(a.reduce(), Rational::new(2, 3));
        assert!(a > b);
    }

    #[test]
    fn gcd_never_called_on_matching_denominators() {
        // Purely behavioural check: integer accumulation round-trips exactly.
        let mut raw = RawRational::ZERO;
        for v in 0..1000u64 {
            raw += v;
        }
        assert_eq!(raw.reduce(), Rational::from(499_500u64));
    }
}
