//! The [`Rational`] number type.

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use core::str::FromStr;

use bss_json::{FromJson, JsonError, ToJson, Value};

use crate::gcd;

/// An exact rational number `num / den` with `den > 0` and `gcd(|num|, den) == 1`.
///
/// All arithmetic is checked: overflow of the underlying `i128` representation
/// panics. The scheduling instance model keeps all inputs below `2^60`, which
/// leaves ample headroom for the products formed by the algorithms.
///
/// ```
/// use bss_rational::Rational;
///
/// let half = Rational::new(1, 2);
/// let third = Rational::new(1, 3);
/// assert_eq!(half + third, Rational::new(5, 6));
/// assert!(half > third);
/// assert_eq!((half * Rational::from(4)).to_string(), "2");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

impl ToJson for Rational {
    fn to_json_value(&self) -> Value {
        Value::Object(vec![
            ("num".into(), Value::Int(self.num)),
            ("den".into(), Value::Int(self.den)),
        ])
    }
}

impl Rational {
    /// Largest `|numerator|` accepted from the JSON wire format.
    ///
    /// Together with [`Rational::MAX_WIRE_DEN`] this keeps every pairwise
    /// comparison (`num * den` cross-multiplication, at most `2^126`) inside
    /// `i128`, so exact arithmetic on decoded values cannot overflow before
    /// a validator gets the chance to inspect them. The system itself emits
    /// values far below these bounds (numerators up to `~2^60`, denominators
    /// up to small multiples of the machine count).
    pub const MAX_WIRE_NUM: i128 = 1 << 94;
    /// Largest denominator accepted from the JSON wire format.
    pub const MAX_WIRE_DEN: i128 = 1 << 32;
}

impl FromJson for Rational {
    fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        let num: i128 = bss_json::int_from(bss_json::required(value, "num")?, "Rational.num")?;
        let den: i128 = bss_json::int_from(bss_json::required(value, "den")?, "Rational.den")?;
        if den <= 0 || den > Rational::MAX_WIRE_DEN {
            return Err(JsonError::new(format!(
                "Rational.den must be in [1, 2^32], got {den}"
            )));
        }
        // The magnitude bound also excludes `i128::MIN`, whose
        // `unsigned_abs() as i128` wraps and would hang `gcd`.
        if !(-Rational::MAX_WIRE_NUM..=Rational::MAX_WIRE_NUM).contains(&num) {
            return Err(JsonError::new("Rational.num out of range (|num| > 2^94)"));
        }
        Ok(Rational::new(num, den))
    }
}

impl Rational {
    /// The value `0`.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The value `1`.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Creates a reduced rational from a numerator and a non-zero denominator.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    #[must_use]
    #[inline]
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "Rational denominator must be non-zero");
        let (num, den) = if den < 0 { (-num, -den) } else { (num, den) };
        // Hot-path shortcuts: integral and zero values need no gcd at all
        // (binary gcd on a 60-bit numerator costs dozens of iterations, and
        // the scheduling algorithms form integral values constantly).
        if den == 1 {
            return Rational { num, den: 1 };
        }
        if num == 0 {
            return Rational::ZERO;
        }
        let g = gcd(num.unsigned_abs() as i128, den);
        if g <= 1 {
            Rational { num, den }
        } else {
            Rational {
                num: num / g,
                den: den / g,
            }
        }
    }

    /// Creates an integral rational.
    #[must_use]
    pub const fn from_int(v: i128) -> Self {
        Rational { num: v, den: 1 }
    }

    /// The numerator of the reduced representation.
    #[must_use]
    pub const fn numer(&self) -> i128 {
        self.num
    }

    /// The (positive) denominator of the reduced representation.
    #[must_use]
    pub const fn denom(&self) -> i128 {
        self.den
    }

    /// `true` iff the value is zero.
    #[must_use]
    pub const fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// `true` iff the value is strictly positive.
    #[must_use]
    pub const fn is_positive(&self) -> bool {
        self.num > 0
    }

    /// `true` iff the value is strictly negative.
    #[must_use]
    pub const fn is_negative(&self) -> bool {
        self.num < 0
    }

    /// `true` iff the value is an integer.
    #[must_use]
    pub const fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// Largest integer `<= self`.
    #[must_use]
    pub fn floor(&self) -> i128 {
        if self.num >= 0 {
            self.num / self.den
        } else {
            (self.num - (self.den - 1)) / self.den
        }
    }

    /// Smallest integer `>= self`.
    #[must_use]
    pub fn ceil(&self) -> i128 {
        if self.num > 0 {
            (self.num + (self.den - 1)) / self.den
        } else {
            self.num / self.den
        }
    }

    /// Absolute value.
    #[must_use]
    pub fn abs(&self) -> Self {
        Rational {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if the value is zero.
    #[must_use]
    #[inline]
    pub fn recip(&self) -> Self {
        assert!(self.num != 0, "cannot invert zero");
        // The reciprocal of a reduced fraction is reduced; only the sign
        // moves to the numerator.
        if self.num < 0 {
            Rational {
                num: -self.den,
                den: -self.num,
            }
        } else {
            Rational {
                num: self.den,
                den: self.num,
            }
        }
    }

    /// `self / 2` — the half-threshold `T/2` shows up throughout the paper.
    ///
    /// Gcd-free: for a reduced `num/den`, either `num` is even (then
    /// `num/2 / den` is reduced) or `num` is odd (then `num / 2den` is —
    /// `gcd(num, 2) = 1` and `gcd(num, den) = 1`).
    #[must_use]
    #[inline]
    pub fn half(&self) -> Self {
        if self.num % 2 == 0 {
            Rational {
                num: self.num / 2,
                den: self.den,
            }
        } else {
            Rational {
                num: self.num,
                den: self.den.checked_mul(2).expect("Rational overflow"),
            }
        }
    }

    /// Smaller of two values.
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Larger of two values.
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Lossy conversion for rendering and statistics; never used in the
    /// algorithms' accept/reject decisions.
    #[must_use]
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Overflow-aware addition: `None` instead of the panic of `+`. Used by
    /// consumers of untrusted data (e.g. schedule validation) that must
    /// degrade to an error report rather than abort.
    #[inline]
    pub fn checked_add(self, rhs: Self) -> Option<Self> {
        // Fast paths: integral values add without any gcd, and equal
        // denominators need only the final reduction.
        if self.den == rhs.den {
            let num = self.num.checked_add(rhs.num)?;
            if self.den == 1 {
                return Some(Rational { num, den: 1 });
            }
            return Some(Rational::new(num, self.den));
        }
        // Integer + fraction needs no gcd either: for reduced `a/b`,
        // `gcd(a + c·b, b) = gcd(a, b) = 1`, so the sum is already canonical.
        if rhs.den == 1 {
            let num = self.num.checked_add(rhs.num.checked_mul(self.den)?)?;
            return Some(Rational { num, den: self.den });
        }
        if self.den == 1 {
            let num = rhs.num.checked_add(self.num.checked_mul(rhs.den)?)?;
            return Some(Rational { num, den: rhs.den });
        }
        // a/b + c/d = (a*(lcm/b) + c*(lcm/d)) / lcm, computed via the gcd of
        // the denominators to keep intermediates small.
        let g = gcd(self.den, rhs.den);
        let lhs_scale = rhs.den / g;
        let rhs_scale = self.den / g;
        let num = self
            .num
            .checked_mul(lhs_scale)?
            .checked_add(rhs.num.checked_mul(rhs_scale)?)?;
        let den = self.den.checked_mul(lhs_scale)?;
        Some(Rational::new(num, den))
    }

    #[inline]
    fn checked_mul_r(self, rhs: Self) -> Option<Self> {
        // Fast path: integer times integer never needs a gcd.
        if self.den == 1 && rhs.den == 1 {
            return Some(Rational {
                num: self.num.checked_mul(rhs.num)?,
                den: 1,
            });
        }
        // Cross-reduce before multiplying to keep intermediates small. The
        // cross-reduced product of two reduced fractions is itself reduced
        // (each remaining numerator factor is coprime to both denominator
        // factors), so it can be constructed directly — no further gcd. A
        // zero stays canonical: `0/1` forces `g1 = rhs.den`, `g2 = 1`.
        let g1 = gcd(self.num.unsigned_abs() as i128, rhs.den);
        let g2 = gcd(rhs.num.unsigned_abs() as i128, self.den);
        let num = (self.num / g1).checked_mul(rhs.num / g2)?;
        let den = (self.den / g2).checked_mul(rhs.den / g1)?;
        Some(Rational { num, den })
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl From<i128> for Rational {
    #[inline]
    fn from(v: i128) -> Self {
        Rational::from_int(v)
    }
}

impl From<i64> for Rational {
    #[inline]
    fn from(v: i64) -> Self {
        Rational::from_int(v as i128)
    }
}

impl From<u64> for Rational {
    #[inline]
    fn from(v: u64) -> Self {
        Rational::from_int(v as i128)
    }
}

impl From<u32> for Rational {
    #[inline]
    fn from(v: u32) -> Self {
        Rational::from_int(v as i128)
    }
}

impl From<i32> for Rational {
    #[inline]
    fn from(v: i32) -> Self {
        Rational::from_int(v as i128)
    }
}

impl From<usize> for Rational {
    #[inline]
    fn from(v: usize) -> Self {
        Rational::from_int(v as i128)
    }
}

impl PartialOrd for Rational {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // Equal denominators (in particular integer vs integer) compare by
        // numerator alone — the search loops hit this path constantly.
        if self.den == other.den {
            return self.num.cmp(&other.num);
        }
        // a/b ? c/d  <=>  a*d ? c*b  (b, d > 0)
        let lhs = self.num.checked_mul(other.den).expect("Rational overflow");
        let rhs = other.num.checked_mul(self.den).expect("Rational overflow");
        lhs.cmp(&rhs)
    }
}

impl Add for Rational {
    type Output = Rational;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        self.checked_add(rhs).expect("Rational overflow in add")
    }
}

impl Sub for Rational {
    type Output = Rational;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        self.checked_add(-rhs).expect("Rational overflow in sub")
    }
}

impl Mul for Rational {
    type Output = Rational;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        self.checked_mul_r(rhs).expect("Rational overflow in mul")
    }
}

impl Div for Rational {
    type Output = Rational;
    #[inline]
    fn div(self, rhs: Self) -> Self {
        assert!(rhs.num != 0, "Rational division by zero");
        self.checked_mul_r(rhs.recip())
            .expect("Rational overflow in div")
    }
}

impl Neg for Rational {
    type Output = Rational;
    #[inline]
    fn neg(self) -> Self {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl AddAssign for Rational {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for Rational {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for Rational {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl DivAssign for Rational {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

macro_rules! scalar_ops {
    ($($t:ty),*) => {$(
        impl Add<$t> for Rational {
            type Output = Rational;
            fn add(self, rhs: $t) -> Rational { self + Rational::from(rhs) }
        }
        impl Sub<$t> for Rational {
            type Output = Rational;
            fn sub(self, rhs: $t) -> Rational { self - Rational::from(rhs) }
        }
        impl Mul<$t> for Rational {
            type Output = Rational;
            fn mul(self, rhs: $t) -> Rational { self * Rational::from(rhs) }
        }
        impl Div<$t> for Rational {
            type Output = Rational;
            fn div(self, rhs: $t) -> Rational { self / Rational::from(rhs) }
        }
        impl AddAssign<$t> for Rational {
            fn add_assign(&mut self, rhs: $t) { *self = *self + rhs; }
        }
        impl SubAssign<$t> for Rational {
            fn sub_assign(&mut self, rhs: $t) { *self = *self - rhs; }
        }
    )*};
}

scalar_ops!(i128, i32, u64, u32, usize);

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Error returned by [`Rational::from_str`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRationalError(String);

impl fmt::Display for ParseRationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational literal: {}", self.0)
    }
}

impl std::error::Error for ParseRationalError {}

impl FromStr for Rational {
    type Err = ParseRationalError;

    /// Parses `"a"` or `"a/b"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = || ParseRationalError(s.to_owned());
        match s.split_once('/') {
            None => s
                .trim()
                .parse::<i128>()
                .map(Rational::from_int)
                .map_err(|_| bad()),
            Some((n, d)) => {
                let num = n.trim().parse::<i128>().map_err(|_| bad())?;
                let den = d.trim().parse::<i128>().map_err(|_| bad())?;
                if den == 0 {
                    return Err(bad());
                }
                Ok(Rational::new(num, den))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn reduction_and_sign_normalization() {
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
        assert_eq!(Rational::new(-2, -4), Rational::new(1, 2));
        assert_eq!(Rational::new(2, -4), Rational::new(-1, 2));
        assert_eq!(Rational::new(0, -5), Rational::ZERO);
        assert_eq!(Rational::new(6, 3).denom(), 1);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }

    #[test]
    fn ordering() {
        let vals = [
            Rational::new(-3, 2),
            Rational::new(-1, 3),
            Rational::ZERO,
            Rational::new(1, 3),
            Rational::new(1, 2),
            Rational::ONE,
            Rational::new(7, 2),
        ];
        for w in vals.windows(2) {
            assert!(w[0] < w[1], "{} < {}", w[0], w[1]);
        }
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(Rational::new(7, 2).floor(), 3);
        assert_eq!(Rational::new(7, 2).ceil(), 4);
        assert_eq!(Rational::new(-7, 2).floor(), -4);
        assert_eq!(Rational::new(-7, 2).ceil(), -3);
        assert_eq!(Rational::from_int(5).floor(), 5);
        assert_eq!(Rational::from_int(5).ceil(), 5);
        assert_eq!(Rational::ZERO.floor(), 0);
        assert_eq!(Rational::ZERO.ceil(), 0);
    }

    #[test]
    fn arithmetic_basics() {
        let a = Rational::new(3, 4);
        let b = Rational::new(5, 6);
        assert_eq!(a + b, Rational::new(19, 12));
        assert_eq!(a - b, Rational::new(-1, 12));
        assert_eq!(a * b, Rational::new(5, 8));
        assert_eq!(a / b, Rational::new(9, 10));
        assert_eq!(-a, Rational::new(-3, 4));
        assert_eq!(a.half(), Rational::new(3, 8));
        assert_eq!(a.recip(), Rational::new(4, 3));
    }

    #[test]
    fn scalar_ops() {
        let a = Rational::new(1, 2);
        assert_eq!(a + 1u64, Rational::new(3, 2));
        assert_eq!(a * 4u64, Rational::from_int(2));
        assert_eq!(a / 2u64, Rational::new(1, 4));
        assert_eq!(a - 1u64, Rational::new(-1, 2));
    }

    #[test]
    fn display_and_parse_roundtrip() {
        for s in ["0", "5", "-5", "1/2", "-7/3"] {
            let r: Rational = s.parse().unwrap();
            assert_eq!(r.to_string(), s);
        }
        assert!("1/0".parse::<Rational>().is_err());
        assert!("x".parse::<Rational>().is_err());
    }

    #[test]
    fn json_roundtrip_and_rejections() {
        let r = Rational::new(-7, 3);
        assert_eq!(
            bss_json::decode::<Rational>(&bss_json::encode_pretty(&r)).unwrap(),
            r
        );
        // i128::MIN would wrap inside gcd; non-positive denominators are invalid.
        let min = i128::MIN;
        assert!(bss_json::decode::<Rational>(&format!(r#"{{"num": {min}, "den": 1}}"#)).is_err());
        assert!(bss_json::decode::<Rational>(r#"{"num": 1, "den": 0}"#).is_err());
        assert!(bss_json::decode::<Rational>(r#"{"num": 1, "den": -2}"#).is_err());
    }

    #[test]
    fn min_max() {
        let a = Rational::new(1, 3);
        let b = Rational::new(1, 2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    fn arb_rational() -> impl Strategy<Value = Rational> {
        (-1_000_000i128..1_000_000, 1i128..1_000).prop_map(|(n, d)| Rational::new(n, d))
    }

    proptest! {
        #[test]
        fn prop_add_commutative(a in arb_rational(), b in arb_rational()) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn prop_add_associative(a in arb_rational(), b in arb_rational(), c in arb_rational()) {
            prop_assert_eq!((a + b) + c, a + (b + c));
        }

        #[test]
        fn prop_mul_distributes(a in arb_rational(), b in arb_rational(), c in arb_rational()) {
            prop_assert_eq!(a * (b + c), a * b + a * c);
        }

        #[test]
        fn prop_sub_add_inverse(a in arb_rational(), b in arb_rational()) {
            prop_assert_eq!(a - b + b, a);
        }

        #[test]
        fn prop_div_mul_inverse(a in arb_rational(), b in arb_rational()) {
            prop_assume!(!b.is_zero());
            prop_assert_eq!(a / b * b, a);
        }

        #[test]
        fn prop_always_reduced(a in arb_rational()) {
            let g = crate::gcd(a.numer().unsigned_abs() as i128, a.denom());
            prop_assert!(g <= 1 || a.numer() == 0);
            prop_assert!(a.denom() > 0);
        }

        #[test]
        fn prop_floor_ceil_bracket(a in arb_rational()) {
            let f = Rational::from_int(a.floor());
            let c = Rational::from_int(a.ceil());
            prop_assert!(f <= a && a <= c);
            prop_assert!(c - f <= Rational::ONE);
            if a.is_integer() {
                prop_assert_eq!(f, c);
            }
        }

        #[test]
        fn prop_ordering_matches_f64(a in arb_rational(), b in arb_rational()) {
            // The f64 projection of moderate rationals preserves strict order.
            if (a.to_f64() - b.to_f64()).abs() > 1e-6 {
                prop_assert_eq!(a < b, a.to_f64() < b.to_f64());
            }
        }

        #[test]
        fn prop_parse_roundtrip(a in arb_rational()) {
            let s = a.to_string();
            prop_assert_eq!(s.parse::<Rational>().unwrap(), a);
        }
    }
}
