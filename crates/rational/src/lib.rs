//! Exact rational arithmetic for scheduling times.
//!
//! Every makespan guess, job-piece length and start time produced by the
//! algorithms of Deppert & Jansen (SPAA 2019) is a rational number: the
//! Class-Jumping searches probe values such as `2*P_f / (beta_f + k)`, the
//! continuous knapsack splits one item at a rational fraction, and Batch
//! Wrapping splits jobs at rational gap borders. Floating point would make the
//! accept/reject decisions of the dual approximation tests unreliable, so this
//! crate provides a small, exact, always-reduced rational type over `i128`.
//!
//! The companion instance model bounds all inputs so that `N = sum(s) + sum(t)
//! <= 2^60`; with reduced representations every product formed by the
//! algorithms stays far below `i128::MAX`, and all arithmetic here is checked:
//! an overflow panics instead of silently wrapping.

mod rational;
mod raw;

pub use rational::{ParseRationalError, Rational};
pub use raw::RawRational;

/// Greatest common divisor of two non-negative `i128` values (binary GCD).
///
/// `gcd(0, x) == x` and `gcd(0, 0) == 0`.
#[must_use]
#[inline]
pub fn gcd(mut a: i128, mut b: i128) -> i128 {
    debug_assert!(a >= 0 && b >= 0, "gcd expects non-negative inputs");
    if a == 0 {
        return b;
    }
    if b == 0 {
        return a;
    }
    // Unit operands dominate the scheduling hot paths (integer-valued
    // rationals); skip the binary-gcd loop for them.
    if a == 1 || b == 1 {
        return 1;
    }
    let shift = (a | b).trailing_zeros();
    a >>= a.trailing_zeros();
    loop {
        b >>= b.trailing_zeros();
        if a > b {
            core::mem::swap(&mut a, &mut b);
        }
        b -= a;
        if b == 0 {
            return a << shift;
        }
    }
}

#[cfg(test)]
mod gcd_tests {
    use super::gcd;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(0, 7), 7);
        assert_eq!(gcd(7, 0), 7);
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(17, 13), 1);
        assert_eq!(gcd(1 << 40, 1 << 20), 1 << 20);
    }

    #[test]
    fn gcd_divides_both() {
        for a in 1..60i128 {
            for b in 1..60i128 {
                let g = gcd(a, b);
                assert_eq!(a % g, 0);
                assert_eq!(b % g, 0);
            }
        }
    }
}
