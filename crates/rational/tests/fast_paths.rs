//! Property tests pinning the arithmetic fast paths to a naive,
//! always-fully-reduced reference implementation.
//!
//! `Rational` now short-circuits several hot cases (equal denominators,
//! integer operands, cross-reduced multiplication without a final gcd) and
//! `RawRational` defers normalization entirely; these suites assert that
//! every such shortcut agrees with textbook reduced-fraction arithmetic
//! across the JSON wire-format bounds (`|num| <= 2^94`, `den <= 2^32`),
//! including the `i128` headroom edges where cross-multiplication is within
//! a factor of two of overflow.

use std::cmp::Ordering;

use bss_rational::{gcd, Rational, RawRational};
use proptest::prelude::*;

/// Textbook reference: reduce by gcd after every operation, compare by
/// cross-multiplication. Deliberately naive — no fast paths to share bugs
/// with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Reference {
    num: i128,
    den: i128,
}

impl Reference {
    fn new(num: i128, den: i128) -> Self {
        assert!(den != 0);
        let (num, den) = if den < 0 { (-num, -den) } else { (num, den) };
        let g = gcd(num.unsigned_abs() as i128, den).max(1);
        Reference {
            num: num / g,
            den: den / g,
        }
    }

    fn of(r: Rational) -> Self {
        Reference::new(r.numer(), r.denom())
    }

    fn add(self, rhs: Reference) -> Reference {
        Reference::new(self.num * rhs.den + rhs.num * self.den, self.den * rhs.den)
    }

    fn mul(self, rhs: Reference) -> Reference {
        Reference::new(self.num * rhs.num, self.den * rhs.den)
    }

    fn cmp(self, rhs: Reference) -> Ordering {
        (self.num * rhs.den).cmp(&(rhs.num * self.den))
    }

    fn matches(self, r: Rational) -> bool {
        self.num == r.numer() && self.den == r.denom()
    }
}

/// Values safe for reference addition/multiplication without overflowing the
/// naive (un-cross-reduced) intermediates: the system's own emission range.
fn arb_moderate() -> impl Strategy<Value = Rational> {
    ((-(1i128 << 60)..(1i128 << 60)), 1i128..(1i128 << 32)).prop_map(|(n, d)| Rational::new(n, d))
}

/// Values with smooth (`2^a 3^b 5^c 7^d`) denominators, mirroring how the
/// scheduler's intermediate values all share denominators derived from one
/// guess `T`: any lcm over these stays below `2^20`, so long accumulations
/// remain exactly representable.
fn arb_smooth() -> impl Strategy<Value = Rational> {
    (
        (-(1i128 << 60)..(1i128 << 60)),
        0u32..7,
        0u32..5,
        0u32..3,
        0u32..2,
    )
        .prop_map(|(n, a, b, c, d)| {
            let den = (1i128 << a) * 3i128.pow(b) * 5i128.pow(c) * 7i128.pow(d);
            Rational::new(n, den)
        })
}

/// Values spanning the full wire-format bounds; only comparisons are exact
/// up here (cross products stay below `2^126`).
fn arb_wire() -> impl Strategy<Value = Rational> {
    (
        (-Rational::MAX_WIRE_NUM..=Rational::MAX_WIRE_NUM),
        1i128..=Rational::MAX_WIRE_DEN,
    )
        .prop_map(|(n, d)| Rational::new(n, d))
}

proptest! {
    #[test]
    fn add_matches_reference(a in arb_moderate(), b in arb_moderate()) {
        let expected = Reference::of(a).add(Reference::of(b));
        prop_assert!(expected.matches(a + b));
    }

    #[test]
    fn integer_fast_paths_match_reference(a in arb_moderate(), k in -(1i128 << 60)..(1i128 << 60)) {
        // Exercises the den == 1 shortcuts on both sides.
        let int = Rational::from_int(k);
        let expected = Reference::of(a).add(Reference::new(k, 1));
        prop_assert!(expected.matches(a + int));
        prop_assert!(expected.matches(int + a));
        prop_assert!(Reference::of(a).mul(Reference::new(k, 1)).matches(a * int));
    }

    #[test]
    fn mul_matches_reference(
        a in ((-(1i128 << 40)..(1i128 << 40)), 1i128..(1i128 << 20)).prop_map(|(n, d)| Rational::new(n, d)),
        b in ((-(1i128 << 40)..(1i128 << 40)), 1i128..(1i128 << 20)).prop_map(|(n, d)| Rational::new(n, d)),
    ) {
        let expected = Reference::of(a).mul(Reference::of(b));
        prop_assert!(expected.matches(a * b));
    }

    #[test]
    fn cmp_matches_reference_across_wire_bounds(a in arb_wire(), b in arb_wire()) {
        prop_assert_eq!(a.cmp(&b), Reference::of(a).cmp(Reference::of(b)));
        // Antisymmetry through the fast paths.
        prop_assert_eq!(b.cmp(&a), Reference::of(a).cmp(Reference::of(b)).reverse());
    }

    #[test]
    fn equal_denominator_cmp_fast_path(n1 in -(1i128 << 90)..(1i128 << 90), n2 in -(1i128 << 90)..(1i128 << 90), d in 1i128..(1i128 << 31)) {
        let (a, b) = (Rational::new(n1, d), Rational::new(n2, d));
        prop_assert_eq!(a.cmp(&b), Reference::of(a).cmp(Reference::of(b)));
    }

    #[test]
    fn half_matches_division(a in arb_moderate()) {
        prop_assert_eq!(a.half(), a / Rational::from_int(2));
        prop_assert_eq!(a.half() + a.half(), a);
    }

    #[test]
    fn recip_matches_reference(a in arb_moderate()) {
        prop_assume!(!a.is_zero());
        let r = a.recip();
        prop_assert!(r.denom() > 0);
        prop_assert_eq!(a * r, Rational::ONE);
    }

    #[test]
    fn raw_accumulation_matches_reduced_sum(terms in proptest::collection::vec(arb_smooth(), 1..24)) {
        let mut raw = RawRational::ZERO;
        let mut reference = Rational::ZERO;
        for t in &terms {
            raw += *t;
            reference += *t;
        }
        prop_assert_eq!(raw.reduce(), reference);
        prop_assert_eq!(raw.cmp_rational(reference), Ordering::Equal);
        prop_assert_eq!(raw.cmp_rational(reference + Rational::ONE), Ordering::Less);
        prop_assert_eq!(raw.cmp_rational(reference - Rational::ONE), Ordering::Greater);
    }

    #[test]
    fn raw_mixed_add_sub_matches(terms in proptest::collection::vec((arb_smooth(), 0u32..2), 1..24)) {
        let mut raw = RawRational::ZERO;
        let mut reference = Rational::ZERO;
        for (t, subtract) in &terms {
            if *subtract == 1 {
                raw -= *t;
                reference -= *t;
            } else {
                raw += *t;
                reference += *t;
            }
        }
        prop_assert_eq!(raw.reduce(), reference);
    }
}

#[test]
fn cmp_at_i128_headroom_edges() {
    // Cross products here are within a factor of four of i128::MAX; the
    // fast-path comparisons must stay exact.
    let top = Rational::new(Rational::MAX_WIRE_NUM, Rational::MAX_WIRE_DEN);
    let just_below = Rational::new(Rational::MAX_WIRE_NUM - 1, Rational::MAX_WIRE_DEN);
    assert_eq!(top.cmp(&just_below), Ordering::Greater);
    assert_eq!(just_below.cmp(&top), Ordering::Less);
    assert_eq!(top.cmp(&top), Ordering::Equal);

    let neg_top = Rational::new(-Rational::MAX_WIRE_NUM, Rational::MAX_WIRE_DEN);
    assert_eq!(neg_top.cmp(&top), Ordering::Less);
    assert_eq!(neg_top.cmp(&neg_top), Ordering::Equal);

    // Integer vs extreme fraction exercises the den == 1 side of cmp.
    let int = Rational::from_int((1i128 << 62) + 1);
    assert_eq!(int.cmp(&top), Ordering::Greater);
    assert_eq!(top.cmp(&int), Ordering::Less);
}

#[test]
fn raw_normalize_retry_at_headroom_edge() {
    // Repeatedly adding a term with a large prime-ish denominator drives the
    // deferred representation toward the i128 edge and forces the
    // normalize-and-retry path; exactness must survive it.
    let term = Rational::new((1i128 << 61) + 1, (1i128 << 31) - 1);
    let mut raw = RawRational::ZERO;
    let mut reference = Rational::ZERO;
    for _ in 0..12 {
        raw += term;
        reference += term;
        assert_eq!(raw.reduce(), reference);
    }
    assert_eq!(raw.cmp_rational(reference), Ordering::Equal);
}
