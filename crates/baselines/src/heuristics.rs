//! Heuristic baselines.

use bss_instance::{Instance, LowerBounds, Variant};
use bss_rational::Rational;
use bss_schedule::Schedule;
use bss_wrap::{wrap_into, GapRun, Template, WrapSequence};

/// Monma–Potts-style batch wrap-around heuristic for the preemptive variant.
///
/// Wraps the flat batch sequence into one gap `[s_max, s_max + T_min)` per
/// machine, `T_min = max(N/m, max_i(s_i + t^(i)_max))`, splitting jobs at
/// borders with a fresh setup below the next gap (McNaughton-style; this is
/// what the original "wrap-around rule" heuristic resembles). Makespan
/// `<= s_max + T_min < 2·OPT`, matching the flavor of the
/// `2 − 1/(⌊m/2⌋+1)` guarantee the paper improves on.
#[must_use]
pub fn monma_potts(inst: &Instance) -> Schedule {
    let m = inst.machines();
    let t_min = LowerBounds::of(inst).tmin(Variant::Preemptive);
    let smax = Rational::from(inst.smax());
    let template = Template::new(vec![GapRun {
        first_machine: 0,
        count: m,
        a: smax,
        b: smax + t_min,
    }]);
    let mut q = WrapSequence::new();
    for i in 0..inst.num_classes() {
        q.push_batch(
            i,
            Rational::from(inst.setup(i)),
            inst.class_jobs(i)
                .iter()
                .map(|&j| (j, Rational::from(inst.job(j).time))),
        );
    }
    // Capacity: m·T_min >= N = L(Q); setups fit below since a = s_max.
    // Jobs never self-parallelize: t_j <= T_min - s_i <= gap height.
    let mut out = Schedule::new(m);
    wrap_into(&q, template.runs(), inst.setups(), &mut out)
        .expect("m*T_min >= N guarantees capacity");
    out
}

/// LPT list scheduling of whole batches: classes sorted by `s_i + P(C_i)`
/// descending, each assigned (with one setup) to the least-loaded machine.
/// Non-preemptive feasible; the folk baseline for batch scheduling.
#[must_use]
pub fn lpt_batches(inst: &Instance) -> Schedule {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let mut order: Vec<usize> = (0..inst.num_classes()).collect();
    order.sort_by_key(|&i| Reverse(inst.setup(i) + inst.class_proc(i)));
    // Min-heap of (load, machine).
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
        (0..inst.machines()).map(|u| Reverse((0u64, u))).collect();
    let mut s = Schedule::new(inst.machines());
    for i in order {
        let Reverse((load, u)) = heap.pop().expect("m >= 1");
        let mut at = Rational::from(load);
        let setup = Rational::from(inst.setup(i));
        s.push_setup(u, at, setup, i);
        at += setup;
        for &j in inst.class_jobs(i) {
            let len = Rational::from(inst.job(j).time);
            s.push_piece(u, at, len, j, i);
            at += len;
        }
        heap.push(Reverse((load + inst.setup(i) + inst.class_proc(i), u)));
    }
    s
}

/// Next-fit over the flat batch sequence with threshold `2·T_min`
/// (the strategy behind Jansen & Land's `O(n)` 3-approximation): fill the
/// current machine until the threshold is passed, then move on, re-paying a
/// setup when a class straddles machines. Never splits jobs.
#[must_use]
pub fn next_fit_batches(inst: &Instance) -> Schedule {
    let m = inst.machines();
    let threshold = LowerBounds::of(inst).tmin(Variant::NonPreemptive) * 2u64;
    let mut s = Schedule::new(m);
    let mut u = 0usize;
    let mut at = Rational::ZERO;
    for i in 0..inst.num_classes() {
        let setup = Rational::from(inst.setup(i));
        let mut configured = false;
        for &j in inst.class_jobs(i) {
            let len = Rational::from(inst.job(j).time);
            if at >= threshold && u + 1 < m {
                u += 1;
                at = Rational::ZERO;
                configured = false;
            }
            if !configured {
                s.push_setup(u, at, setup, i);
                at += setup;
                configured = true;
            }
            s.push_piece(u, at, len, j, i);
            at += len;
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use bss_instance::InstanceBuilder;
    use bss_schedule::validate;

    use super::*;

    fn instances() -> Vec<Instance> {
        let mut v = vec![];
        for seed in 0..15 {
            v.push(bss_gen::uniform(50, 7, 4, seed));
        }
        v.push(bss_gen::expensive_setups(30, 4, 1));
        v.push(bss_gen::single_job_batches(25, 5, 2));
        let mut b = InstanceBuilder::new(1);
        b.add_batch(3, &[5, 5]);
        v.push(b.build().unwrap());
        v
    }

    #[test]
    fn monma_potts_validates_and_is_2_approx() {
        for inst in instances() {
            let s = monma_potts(&inst);
            let v = validate(&s, &inst, Variant::Preemptive);
            assert!(v.is_empty(), "{v:?}");
            let bound =
                LowerBounds::of(&inst).tmin(Variant::Preemptive) + Rational::from(inst.smax());
            assert!(s.makespan() <= bound);
            // The bound itself certifies ratio < 2.
            assert!(bound < LowerBounds::of(&inst).tmin(Variant::Preemptive) * 2u64 + 1u64);
        }
    }

    #[test]
    fn lpt_validates_nonpreemptive() {
        for inst in instances() {
            let s = lpt_batches(&inst);
            let v = validate(&s, &inst, Variant::NonPreemptive);
            assert!(v.is_empty(), "{v:?}");
        }
    }

    #[test]
    fn next_fit_validates_nonpreemptive() {
        for inst in instances() {
            let s = next_fit_batches(&inst);
            let v = validate(&s, &inst, Variant::NonPreemptive);
            assert!(v.is_empty(), "{v:?}");
        }
    }

    #[test]
    fn lpt_single_class_uses_one_machine() {
        let mut b = InstanceBuilder::new(4);
        b.add_batch(2, &[3, 3, 3]);
        let inst = b.build().unwrap();
        let s = lpt_batches(&inst);
        assert_eq!(s.makespan(), Rational::from(11u64));
        let used: std::collections::HashSet<usize> =
            s.placements().iter().map(|p| p.machine).collect();
        assert_eq!(used.len(), 1);
    }

    #[test]
    fn next_fit_respects_machine_limit() {
        let inst = bss_gen::uniform(200, 20, 3, 9);
        let s = next_fit_batches(&inst);
        assert!(s.placements().iter().all(|p| p.machine < 3));
        assert!(validate(&s, &inst, Variant::NonPreemptive).is_empty());
    }
}
