//! Exact branch-and-bound for small non-preemptive instances.
//!
//! On one machine, only the *set* of jobs matters: its completion time is the
//! job times plus one setup per distinct class. Branch-and-bound assigns jobs
//! (largest first) to machines with symmetry breaking (a job may open at most
//! one empty machine) and prunes with the average-load bound. Exact for the
//! oracle sizes used in tests (`n <= ~14`); this is the `OPT` against which
//! approximation ratios are certified.

use bss_instance::Instance;

/// Size limits for the exact solver (a guard against accidental exponential
/// blow-ups in test code).
#[derive(Debug, Clone, Copy)]
pub struct ExactLimits {
    /// Maximum number of jobs.
    pub max_jobs: usize,
    /// Maximum number of machines.
    pub max_machines: usize,
}

impl Default for ExactLimits {
    fn default() -> Self {
        ExactLimits {
            max_jobs: 14,
            max_machines: 5,
        }
    }
}

/// Computes the exact non-preemptive optimal makespan, or `None` if the
/// instance exceeds `limits`.
#[must_use]
pub fn exact_nonpreemptive(inst: &Instance, limits: ExactLimits) -> Option<u64> {
    if inst.num_jobs() > limits.max_jobs
        || inst.machines() > limits.max_machines
        || inst.num_classes() > 64
    {
        return None;
    }
    let m = inst.machines().min(inst.num_jobs());
    // Jobs sorted by descending time (helps pruning).
    let mut jobs: Vec<(u64, usize)> = (0..inst.num_jobs())
        .map(|j| (inst.job(j).time, inst.job(j).class))
        .collect();
    jobs.sort_by_key(|j| std::cmp::Reverse(j.0));

    struct State<'a> {
        inst: &'a Instance,
        jobs: Vec<(u64, usize)>,
        loads: Vec<u64>,
        class_masks: Vec<u64>,
        best: u64,
        suffix_total: Vec<u64>,
    }

    impl State<'_> {
        fn dfs(&mut self, idx: usize) {
            let current_max = *self.loads.iter().max().expect("m >= 1");
            if current_max >= self.best {
                return;
            }
            if idx == self.jobs.len() {
                self.best = current_max;
                return;
            }
            // Average-load lower bound over remaining work (setups ignored —
            // still a valid bound).
            let total: u64 = self.loads.iter().sum::<u64>() + self.suffix_total[idx];
            let avg = total.div_ceil(self.loads.len() as u64);
            if avg.max(current_max) >= self.best {
                return;
            }
            let (time, class) = self.jobs[idx];
            let mut opened_empty = false;
            for u in 0..self.loads.len() {
                if self.loads[u] == 0 {
                    if opened_empty {
                        continue; // symmetry: one empty machine suffices
                    }
                    opened_empty = true;
                }
                let bit = 1u64 << class;
                let setup = if self.class_masks[u] & bit == 0 {
                    self.inst.setup(class)
                } else {
                    0
                };
                self.loads[u] += time + setup;
                self.class_masks[u] |= bit;
                let had = setup > 0;
                self.dfs(idx + 1);
                self.loads[u] -= time + setup;
                if had {
                    self.class_masks[u] &= !bit;
                }
                // Careful: only clear the class bit if no other job of this
                // class remains on u. Since we fully undo in reverse DFS
                // order and `had` tracks whether *this* placement paid the
                // setup, the mask restore above is exact.
            }
        }
    }

    // Upper bound: everything on one machine.
    let ub = inst.total_load_once();
    let mut suffix_total = vec![0u64; jobs.len() + 1];
    for i in (0..jobs.len()).rev() {
        suffix_total[i] = suffix_total[i + 1] + jobs[i].0;
    }
    let mut st = State {
        inst,
        jobs,
        loads: vec![0; m],
        class_masks: vec![0; m],
        best: ub + 1,
        suffix_total,
    };
    st.dfs(0);
    Some(st.best.min(ub))
}

#[cfg(test)]
mod tests {
    use bss_instance::{InstanceBuilder, LowerBounds, Variant};

    use super::*;

    #[test]
    fn single_machine_is_total_load() {
        let mut b = InstanceBuilder::new(1);
        b.add_batch(3, &[4, 5]);
        b.add_batch(2, &[6]);
        let inst = b.build().unwrap();
        assert_eq!(exact_nonpreemptive(&inst, ExactLimits::default()), Some(20));
    }

    #[test]
    fn two_machines_split_classes() {
        // Two identical classes: one per machine.
        let mut b = InstanceBuilder::new(2);
        b.add_batch(2, &[5]);
        b.add_batch(2, &[5]);
        let inst = b.build().unwrap();
        assert_eq!(exact_nonpreemptive(&inst, ExactLimits::default()), Some(7));
    }

    #[test]
    fn setup_sharing_beats_splitting() {
        // One class with two jobs; splitting pays the setup twice.
        let mut b = InstanceBuilder::new(2);
        b.add_batch(10, &[2, 2]);
        let inst = b.build().unwrap();
        // Together: 14 on one machine; split: max(12, 12) = 12.
        assert_eq!(exact_nonpreemptive(&inst, ExactLimits::default()), Some(12));
    }

    #[test]
    fn setup_sharing_wins_when_setups_huge() {
        let mut b = InstanceBuilder::new(2);
        b.add_batch(100, &[2, 2]);
        let inst = b.build().unwrap();
        // Split: 102 each; together: 104. Split still wins (102).
        assert_eq!(
            exact_nonpreemptive(&inst, ExactLimits::default()),
            Some(102)
        );
    }

    #[test]
    fn respects_limits() {
        let inst = bss_gen::uniform(100, 10, 4, 0);
        assert_eq!(exact_nonpreemptive(&inst, ExactLimits::default()), None);
    }

    #[test]
    fn opt_at_least_lower_bounds() {
        for seed in 0..40 {
            let inst = bss_gen::tiny(seed);
            let opt = exact_nonpreemptive(&inst, ExactLimits::default()).expect("tiny");
            let lb = LowerBounds::of(&inst);
            assert!(
                bss_rational::Rational::from(opt) >= lb.avg_load,
                "seed {seed}"
            );
            assert!(opt >= lb.setup_plus_job, "seed {seed}");
            assert!(opt > lb.smax, "seed {seed}");
            assert!(
                bss_rational::Rational::from(opt) <= lb.tmin(Variant::NonPreemptive) * 2u64,
                "seed {seed}: 2-approx window"
            );
        }
    }
}
