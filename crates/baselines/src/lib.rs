//! Prior-work comparators and exact oracles.
//!
//! These are the baselines Table 1 of the paper compares against, plus an
//! exact branch-and-bound optimum used to certify approximation ratios on
//! small instances:
//!
//! * [`monma_potts`] — the batch wrap-around heuristic in the spirit of
//!   Monma & Potts (1993), the previous best preemptive algorithm
//!   (ratio `2 − 1/(⌊m/2⌋+1)`); reconstructed from the published
//!   description (wrap whole batches around a threshold, split jobs at the
//!   border with a fresh setup).
//! * [`lpt_batches`] — longest-processing-time list scheduling of whole
//!   batches (the folk baseline; non-preemptive feasible).
//! * [`next_fit_batches`] — the next-fit strategy underlying Jansen & Land's
//!   `O(n)` 3-approximation for the non-preemptive case.
//! * [`exact_nonpreemptive`] — branch-and-bound over per-machine class sets,
//!   exact for small instances; the ratio oracle of the test suite.

mod exact;
mod heuristics;

pub use exact::{exact_nonpreemptive, ExactLimits};
pub use heuristics::{lpt_batches, monma_potts, next_fit_batches};
