//! The high-level solver API.
//!
//! Since the unified-surface refactor the entry points here are thin: the
//! [`solve`] family wraps the instance in a [`BssProblem`](crate::BssProblem)
//! and hands it to the variant-generic driver
//! [`solve_problem`](crate::solve_problem). [`Algorithm`], [`ScheduleRepr`]
//! and [`Solution`] are shared by *every* problem on that surface
//! (sequence-dependent instances included) rather than duplicated per model.

use core::fmt;
use std::sync::OnceLock;

use bss_budget::{Interrupt, SolveBudget};
use bss_instance::{Instance, Variant};
use bss_rational::Rational;
use bss_schedule::{CompactSchedule, Schedule};

use crate::problem::{
    solve_problem, solve_problem_budgeted, solve_problem_par, solve_problem_par_budgeted,
    BssProblem, Problem,
};
use crate::search::{epsilon_search_between_warm, WarmStats};
use crate::workspace::DualWorkspace;
use crate::Trace;

/// Algorithm selector for [`solve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// The `O(n)` 2-approximation (Theorem 1).
    TwoApprox,
    /// The `(3/2 + ε)`-approximation via binary search (Theorem 2), with
    /// `eps = 1/2^eps_log2`.
    EpsilonSearch {
        /// `ε = 2^-eps_log2`; the search performs `O(eps_log2)` probes.
        eps_log2: u32,
    },
    /// The 3/2-approximation: Class Jumping for splittable (Theorem 3) and
    /// preemptive (Theorem 6), exact integer search for non-preemptive
    /// (Theorem 8).
    ThreeHalves,
    /// Runs [`Algorithm::ThreeHalves`] *and* [`Algorithm::TwoApprox`] and
    /// keeps the schedule with the smaller makespan. Still a guaranteed
    /// 3/2-approximation (the pool contains one), but much better on easy
    /// instances, where the dual builders spend their full `3T/2` budget
    /// while simple wrapping packs near the lower bound. Still `O(n + search)`.
    ///
    /// On tiny instances (see [`crate::Problem::exact_oracle`]) the
    /// portfolio additionally runs the `bss-exact` branch-and-bound: a
    /// closed search returns the true optimum with `ratio_bound` 1 and
    /// `certificate = makespan = OPT`; a non-closed search still tightens
    /// the certificate with its proven lower bound.
    Portfolio,
}

/// How far a solve got before returning — the anytime contract's status,
/// mirroring the exact crate's `ExactStatus` sandwich.
///
/// Under an unlimited [`SolveBudget`] every solve is [`Completion::Full`]
/// and bit-identical to the unbudgeted entry points (guarded by equivalence
/// tests). Interrupted solves still return a *valid* schedule with honest
/// accounting: `makespan <= ratio_bound · accepted` always holds, and the
/// certificate only reflects genuinely probed rejections — but the accepted
/// guess may sit above `OPT`, which is exactly what the widened
/// `ratio_bound` of a degraded solve prices in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completion {
    /// The search ran to completion; all documented guarantees hold
    /// unchanged.
    Full,
    /// The deadline or work budget expired mid-search; the solution is the
    /// best certified one held at that point (the search's right bracket,
    /// or the `O(n)` safety-net fallback when that is better).
    Degraded(Interrupt),
    /// The [`bss_budget::CancelToken`] fired; degradation semantics are the
    /// same as [`Completion::Degraded`], kept distinct so callers can tell
    /// an abandoned request from an overrunning one.
    Cancelled,
}

impl Completion {
    /// Maps a search interrupt onto the completion status.
    #[must_use]
    pub fn of(interrupt: Option<Interrupt>) -> Self {
        match interrupt {
            None => Completion::Full,
            Some(Interrupt::Cancelled) => Completion::Cancelled,
            Some(i) => Completion::Degraded(i),
        }
    }

    /// Whether the solve ran to completion.
    #[must_use]
    pub fn is_full(&self) -> bool {
        matches!(self, Completion::Full)
    }
}

impl fmt::Display for Completion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Completion::Full => write!(f, "full"),
            Completion::Degraded(i) => write!(f, "degraded ({i})"),
            Completion::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// A solver failure isolated at the API boundary — the budgeted entry
/// points catch panics (`catch_unwind`), reset the workspace, and return
/// this typed error instead of unwinding into the caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// Exact rational arithmetic left `i128` headroom (astronomically
    /// scaled inputs); the solve cannot represent its intermediate values.
    Overflow {
        /// The overflow site's panic message.
        message: String,
    },
    /// Any other panic escaping a solver — a bug, or an injected chaos
    /// fault. The workspace has been reset and is safe to reuse.
    Panicked {
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl SolveError {
    /// Classifies a caught panic payload.
    pub(crate) fn from_panic(payload: &(dyn std::any::Any + Send)) -> Self {
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_else(|| "non-string panic payload".to_string());
        if message.contains("overflow") {
            SolveError::Overflow { message }
        } else {
            SolveError::Panicked { message }
        }
    }
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Overflow { message } => write!(f, "arithmetic overflow: {message}"),
            SolveError::Panicked { message } => write!(f, "solver panicked: {message}"),
        }
    }
}

impl std::error::Error for SolveError {}

/// The schedule representation a solver produced natively.
///
/// Splittable algorithms emit the compact configuration-group form (their
/// near-linear bounds depend on never writing all machines out); the other
/// variants emit explicit placements.
#[derive(Debug, Clone)]
pub enum ScheduleRepr {
    /// An explicit placement list.
    Explicit(Schedule),
    /// Machine configurations with multiplicities.
    Compact(CompactSchedule),
}

/// A solved instance.
///
/// The schedule is kept in the representation the algorithm produced
/// ([`ScheduleRepr`]); [`Solution::schedule`] expands a compact form
/// **lazily, once**, on first access — callers that only need the makespan,
/// the compact groups, or the certificate never pay `O(total_items + m)`.
#[derive(Debug, Clone)]
pub struct Solution {
    /// The solver-native schedule representation.
    repr: ScheduleRepr,
    /// Lazily expanded explicit form of a compact `repr`.
    expanded: OnceLock<Schedule>,
    /// The schedule's makespan.
    pub makespan: Rational,
    /// The accepted makespan guess; `makespan <= ratio_bound · accepted`.
    pub accepted: Rational,
    /// The proven approximation factor of this run relative to `accepted`.
    pub ratio_bound: Rational,
    /// A certified strict lower bound on `OPT` (from `T_min` and rejected
    /// guesses); `makespan / certificate` upper-bounds the true ratio.
    pub certificate: Rational,
    /// Dual-test probes performed by the search (0 for direct algorithms).
    pub probes: usize,
    /// How far the solve got before returning ([`Completion::Full`] for
    /// every unbudgeted solve).
    pub completion: Completion,
}

impl Solution {
    /// The explicit schedule (feasible for the requested variant).
    ///
    /// For compact-native solutions the expansion runs on first call and is
    /// cached; repeated calls are free.
    #[must_use]
    pub fn schedule(&self) -> &Schedule {
        match &self.repr {
            ScheduleRepr::Explicit(s) => s,
            ScheduleRepr::Compact(c) => self.expanded.get_or_init(|| {
                c.expand()
                    .expect("solver-produced compact schedules are in machine range")
            }),
        }
    }

    /// Consumes the solution, returning the explicit schedule.
    #[must_use]
    pub fn into_schedule(self) -> Schedule {
        match self.repr {
            ScheduleRepr::Explicit(s) => s,
            ScheduleRepr::Compact(c) => match self.expanded.into_inner() {
                Some(s) => s,
                None => c
                    .expand()
                    .expect("solver-produced compact schedules are in machine range"),
            },
        }
    }

    /// The compact form, when the algorithm produced one natively
    /// (splittable algorithms).
    #[must_use]
    pub fn compact(&self) -> Option<&CompactSchedule> {
        match &self.repr {
            ScheduleRepr::Compact(c) => Some(c),
            ScheduleRepr::Explicit(_) => None,
        }
    }

    /// The solver-native representation.
    #[must_use]
    pub fn repr(&self) -> &ScheduleRepr {
        &self.repr
    }
}

/// Solves `inst` under `variant` with the chosen algorithm.
///
/// Every returned schedule is feasible for `variant` (the test suite
/// validates this exhaustively) and satisfies
/// `makespan <= ratio_bound · OPT`.
#[must_use]
pub fn solve(inst: &Instance, variant: Variant, algo: Algorithm) -> Solution {
    solve_traced(inst, variant, algo, &mut Trace::disabled())
}

/// [`solve`] on a reusable [`DualWorkspace`]: all probe and builder buffers
/// are borrowed from `ws`, so repeated solves (or the many probes inside one
/// search) share a single allocation footprint. The result is identical to
/// [`solve`], which merely allocates a fresh workspace per call.
#[must_use]
pub fn solve_with(
    ws: &mut DualWorkspace,
    inst: &Instance,
    variant: Variant,
    algo: Algorithm,
) -> Solution {
    solve_traced_with(ws, inst, variant, algo, &mut Trace::disabled())
}

/// [`solve`] with step tracing (used by the figure-regeneration harness).
#[must_use]
pub fn solve_traced(
    inst: &Instance,
    variant: Variant,
    algo: Algorithm,
    trace: &mut Trace,
) -> Solution {
    solve_traced_with(&mut DualWorkspace::new(), inst, variant, algo, trace)
}

/// [`solve_traced`] on a reusable [`DualWorkspace`].
#[must_use]
pub fn solve_traced_with(
    ws: &mut DualWorkspace,
    inst: &Instance,
    variant: Variant,
    algo: Algorithm,
    trace: &mut Trace,
) -> Solution {
    solve_problem(ws, &BssProblem::new(inst, variant), algo, trace)
}

/// A previous solve's accepted dual bracket, seeding a warm-start re-solve
/// after an instance delta (see [`solve_warm`]).
///
/// Built from the previous [`Solution`] via [`WarmStart::of`] and widened by
/// the delta's per-machine load shift via [`WarmStart::widen_by_load_shift`].
/// The hint is purely an acceleration: a wrong or stale bracket costs extra
/// probes, never a wrong answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarmStart {
    /// The previous solve's accepted guess — the bracket top.
    pub accepted: Rational,
    /// The previous solve's certified lower bound — the bracket floor.
    pub certificate: Rational,
    /// Absolute widening applied symmetrically to both ends, covering how
    /// far the delta may have moved the optimum.
    pub widen: Rational,
}

impl WarmStart {
    /// The bracket a completed solve proved, with no widening yet.
    #[must_use]
    pub fn of(sol: &Solution) -> Self {
        WarmStart {
            accepted: sol.accepted,
            certificate: sol.certificate,
            widen: Rational::ZERO,
        }
    }

    /// Widens the bracket by the delta's per-machine load shift
    /// `|new_load - old_load| / m` — an upper bound on how far adding or
    /// removing that much work can move `T_min`-anchored optima between two
    /// consecutive session states. Accumulates across calls, so applying it
    /// once per delta of a burst keeps the hint sound for the burst's total
    /// shift.
    #[must_use]
    pub fn widen_by_load_shift(self, old_load: u128, new_load: u128, machines: usize) -> Self {
        let shift = old_load.abs_diff(new_load);
        debug_assert!(machines > 0);
        let shift = Rational::new(
            i128::try_from(shift).expect("load fits the instance cap"),
            i128::try_from(machines.max(1)).expect("machine count fits i128"),
        );
        WarmStart {
            widen: self.widen + shift,
            ..self
        }
    }

    /// The hint interval `[certificate - widen, accepted + widen]` handed to
    /// the warm search (clamped into the search window there).
    #[must_use]
    pub fn hint(&self) -> (Rational, Rational) {
        (self.certificate - self.widen, self.accepted + self.widen)
    }
}

/// [`solve`] seeded with a previous solve's dual bracket: the warm-start
/// re-solve for incremental workloads.
///
/// For [`Algorithm::EpsilonSearch`] the epsilon search replays its exact
/// cold bisection through a monotonicity memo seeded at the hint points
/// (see [`crate::search::epsilon_search_between_warm`]), so the returned
/// [`Solution`] is **bit-identical** to [`solve`] on the same instance in
/// every field except [`Solution::probes`], which counts only the dual
/// tests genuinely evaluated — the probe savings are the point, and the
/// returned [`WarmStats`] itemizes them. Algorithms without a warm form
/// ([`Algorithm::TwoApprox`], [`Algorithm::ThreeHalves`],
/// [`Algorithm::Portfolio`]) delegate to the cold solve unchanged and
/// report `WarmStats { warmed: false, .. }`.
#[must_use]
pub fn solve_warm(
    inst: &Instance,
    variant: Variant,
    algo: Algorithm,
    warm: &WarmStart,
) -> (Solution, WarmStats) {
    solve_warm_with(&mut DualWorkspace::new(), inst, variant, algo, warm)
}

/// [`solve_warm`] on a reusable [`DualWorkspace`].
#[must_use]
pub fn solve_warm_with(
    ws: &mut DualWorkspace,
    inst: &Instance,
    variant: Variant,
    algo: Algorithm,
    warm: &WarmStart,
) -> (Solution, WarmStats) {
    let Algorithm::EpsilonSearch { eps_log2 } = algo else {
        return (solve_with(ws, inst, variant, algo), WarmStats::default());
    };
    let problem = BssProblem::new(inst, variant);
    let t_min = problem.t_min();
    let eps = Rational::new(1, 1 << eps_log2.min(60));
    let (hint_lo, hint_hi) = warm.hint();
    let (out, stats) = epsilon_search_between_warm(
        t_min,
        problem.search_hi(),
        eps * t_min,
        hint_lo,
        hint_hi,
        |t| problem.probe(ws, t),
    );
    // Mirror the cold driver's build-at-accepted flow, defensive-rejection
    // fallback included, so warm and cold schedules cannot diverge.
    let trace = &mut Trace::disabled();
    let (accepted, repr) = match problem.build(ws, out.accepted, trace) {
        Some(r) => (out.accepted, r),
        None => {
            let hi = problem.t_safe();
            (
                hi,
                problem
                    .build(ws, hi, trace)
                    .expect("t_safe is accepted and builds"),
            )
        }
    };
    let cert = out.rejected.unwrap_or(t_min).max(t_min);
    let sol = finish(
        repr,
        accepted,
        problem.dual_ratio() * (eps + 1u64),
        cert,
        out.probes,
    );
    (sol, stats)
}

/// [`solve`] under a cooperative [`SolveBudget`]: the anytime entry point.
///
/// On deadline expiry, work-budget exhaustion or cancellation the solve
/// *degrades instead of failing* — the returned [`Solution`] carries the
/// best certified schedule held at the interrupt (tagged by
/// [`Solution::completion`]) with an honestly widened
/// [`Solution::ratio_bound`]. Solver panics are isolated at this boundary
/// into a typed [`SolveError`]; the transient workspace is discarded either
/// way.
///
/// Under [`SolveBudget::unlimited`] the result is bit-identical to
/// [`solve`].
///
/// # Errors
/// [`SolveError`] when the solver panicked (a bug or an injected chaos
/// fault) — never because a budget expired.
pub fn solve_budgeted(
    inst: &Instance,
    variant: Variant,
    algo: Algorithm,
    budget: &SolveBudget,
) -> Result<Solution, SolveError> {
    solve_budgeted_with(&mut DualWorkspace::new(), inst, variant, algo, budget)
}

/// [`solve_budgeted`] on a reusable [`DualWorkspace`]. After an error the
/// workspace has been epoch-reset and is safe to reuse (guarded by the
/// poisoning regression suite).
///
/// # Errors
/// See [`solve_budgeted`].
pub fn solve_budgeted_with(
    ws: &mut DualWorkspace,
    inst: &Instance,
    variant: Variant,
    algo: Algorithm,
    budget: &SolveBudget,
) -> Result<Solution, SolveError> {
    solve_problem_budgeted(
        ws,
        &BssProblem::new(inst, variant),
        algo,
        budget,
        &mut Trace::disabled(),
    )
}

/// [`solve`] with `threads` threads of speculative parallelism on the probe
/// ladders (see [`crate::par`]). Bit-identical to [`solve`] at every thread
/// count — parallelism buys wall-clock, never different answers — so
/// `threads` is a pure performance knob: `1` is the sequential solver,
/// values above the instance's probe-ladder depth saturate.
#[must_use]
pub fn solve_par(inst: &Instance, variant: Variant, algo: Algorithm, threads: usize) -> Solution {
    solve_par_with(&mut DualWorkspace::new(), inst, variant, algo, threads)
}

/// [`solve_par`] on a reusable [`DualWorkspace`] (the committed search path
/// probes on `ws`; each speculative worker owns a transient workspace).
#[must_use]
pub fn solve_par_with(
    ws: &mut DualWorkspace,
    inst: &Instance,
    variant: Variant,
    algo: Algorithm,
    threads: usize,
) -> Solution {
    solve_problem_par(
        ws,
        &BssProblem::new(inst, variant),
        algo,
        threads,
        &mut Trace::disabled(),
    )
}

/// [`solve_budgeted`] with speculative parallel probing: the committed
/// search charges the budget in exactly the sequential order (worker
/// threads poll without charging), so work-limit interruption points are
/// deterministic and identical to the sequential solve.
///
/// # Errors
/// See [`solve_budgeted`].
pub fn solve_par_budgeted(
    inst: &Instance,
    variant: Variant,
    algo: Algorithm,
    threads: usize,
    budget: &SolveBudget,
) -> Result<Solution, SolveError> {
    solve_par_budgeted_with(
        &mut DualWorkspace::new(),
        inst,
        variant,
        algo,
        threads,
        budget,
    )
}

/// [`solve_par_budgeted`] on a reusable [`DualWorkspace`].
///
/// # Errors
/// See [`solve_budgeted`].
pub fn solve_par_budgeted_with(
    ws: &mut DualWorkspace,
    inst: &Instance,
    variant: Variant,
    algo: Algorithm,
    threads: usize,
    budget: &SolveBudget,
) -> Result<Solution, SolveError> {
    solve_problem_par_budgeted(
        ws,
        &BssProblem::new(inst, variant),
        algo,
        threads,
        budget,
        &mut Trace::disabled(),
    )
}

pub(crate) fn finish(
    repr: ScheduleRepr,
    accepted: Rational,
    ratio_bound: Rational,
    certificate: Rational,
    probes: usize,
) -> Solution {
    let makespan = match &repr {
        ScheduleRepr::Explicit(s) => s.makespan(),
        ScheduleRepr::Compact(c) => c.makespan(),
    };
    Solution {
        repr,
        expanded: OnceLock::new(),
        makespan,
        accepted,
        ratio_bound,
        certificate,
        probes,
        completion: Completion::Full,
    }
}

#[cfg(test)]
mod tests {
    use bss_schedule::{validate, validate_compact};

    use super::*;

    const ALGOS: [Algorithm; 3] = [
        Algorithm::TwoApprox,
        Algorithm::EpsilonSearch { eps_log2: 7 },
        Algorithm::ThreeHalves,
    ];

    #[test]
    fn full_matrix_validates_and_meets_bounds() {
        for seed in 0..10 {
            let inst = bss_gen::uniform(50, 7, 4, seed);
            for variant in Variant::ALL {
                for algo in ALGOS {
                    let sol = solve(&inst, variant, algo);
                    let v = validate(sol.schedule(), &inst, variant);
                    assert!(v.is_empty(), "{variant} {algo:?}: {v:?}");
                    // Compact-native solutions also pass the compact-aware
                    // validator, without expansion.
                    if let Some(compact) = sol.compact() {
                        let cv = validate_compact(compact, &inst, variant);
                        assert!(cv.is_empty(), "{variant} {algo:?}: {cv:?}");
                    }
                    assert!(
                        sol.makespan <= sol.ratio_bound * sol.accepted,
                        "{variant} {algo:?}: {} > {} * {}",
                        sol.makespan,
                        sol.ratio_bound,
                        sol.accepted
                    );
                    assert!(sol.certificate <= sol.makespan);
                }
            }
        }
    }

    #[test]
    fn variant_relaxation_order_on_makespans() {
        // More freedom can only help: for the same 3/2 algorithm family the
        // splittable makespan certificate is never above the non-preemptive
        // one by more than the approximation slack. We check the weaker,
        // always-true statement: each variant's makespan is within its own
        // bound of its own certificate.
        for seed in 0..10 {
            let inst = bss_gen::uniform(40, 6, 3, seed);
            for variant in Variant::ALL {
                let sol = solve(&inst, variant, Algorithm::ThreeHalves);
                let certified_ratio = sol.makespan / sol.certificate;
                assert!(
                    certified_ratio <= Rational::from(2u64),
                    "{variant}: certified ratio {certified_ratio}"
                );
            }
        }
    }

    #[test]
    fn epsilon_probe_budget() {
        let inst = bss_gen::uniform(60, 8, 4, 1);
        let coarse = solve(
            &inst,
            Variant::Splittable,
            Algorithm::EpsilonSearch { eps_log2: 2 },
        );
        let fine = solve(
            &inst,
            Variant::Splittable,
            Algorithm::EpsilonSearch { eps_log2: 12 },
        );
        assert!(coarse.probes <= fine.probes);
        assert!(fine.probes <= 16);
    }

    #[test]
    fn portfolio_dominates_both_members() {
        for seed in 0..10 {
            let inst = bss_gen::uniform(60, 8, 4, seed);
            for variant in Variant::ALL {
                let p = solve(&inst, variant, Algorithm::Portfolio);
                let a = solve(&inst, variant, Algorithm::ThreeHalves);
                let b = solve(&inst, variant, Algorithm::TwoApprox);
                assert!(p.makespan <= a.makespan.min(b.makespan));
                assert!(validate(p.schedule(), &inst, variant).is_empty());
                assert_eq!(p.ratio_bound, Rational::new(3, 2));
                assert!(p.certificate >= a.certificate.max(b.certificate));
            }
        }
    }

    /// Warm-start re-solve after a one-job delta is bit-identical to the
    /// cold solve on the same materialized instance in every field but
    /// `probes` — and genuinely cheaper in probes across the matrix.
    #[test]
    fn warm_resolve_is_bit_identical_to_cold_with_fewer_probes() {
        use bss_instance::{Delta, IncrementalInstance};

        let algo = Algorithm::EpsilonSearch { eps_log2: 10 };
        // (warm, cold) probe counts of the pairs where the cold search
        // genuinely bisected — immediate-accept solves cost 1 probe cold
        // and can never be beaten by a 2-seed warm start.
        let mut searched_pairs = Vec::new();
        for seed in 0..5 {
            let base = bss_gen::uniform(200, 8, 5, seed);
            let mut inc = IncrementalInstance::new(&base);
            let old_load = u128::from(inc.total_load_once());
            inc.apply(Delta::AddJob { class: 0, time: 17 }).unwrap();
            let inst = inc.materialize();
            for variant in Variant::ALL {
                let prev = solve(&base, variant, algo);
                let hint = WarmStart::of(&prev).widen_by_load_shift(
                    old_load,
                    u128::from(inc.total_load_once()),
                    base.machines(),
                );
                let cold = solve(&inst, variant, algo);
                let (warm, stats) = solve_warm(&inst, variant, algo, &hint);
                assert!(stats.warmed);
                assert_eq!(warm.makespan, cold.makespan, "{variant}");
                assert_eq!(warm.accepted, cold.accepted, "{variant}");
                assert_eq!(warm.ratio_bound, cold.ratio_bound, "{variant}");
                assert_eq!(warm.certificate, cold.certificate, "{variant}");
                assert_eq!(warm.completion, cold.completion, "{variant}");
                assert_eq!(warm.schedule(), cold.schedule(), "{variant}");
                assert_eq!(warm.probes, stats.probes, "{variant}");
                assert!(
                    stats.probes <= cold.probes + 2,
                    "{variant}: warm ran {} probes, cold {}",
                    stats.probes,
                    cold.probes
                );
                if cold.probes >= 8 {
                    searched_pairs.push((stats.probes, cold.probes));
                }
            }
        }
        assert!(
            !searched_pairs.is_empty(),
            "the matrix must exercise at least one genuine bisection"
        );
        let warm_total: usize = searched_pairs.iter().map(|&(w, _)| w).sum();
        let cold_total: usize = searched_pairs.iter().map(|&(_, c)| c).sum();
        assert!(
            warm_total * 2 < cold_total,
            "one-job deltas should re-solve in well under half the cold probes \
             (warm {warm_total}, cold {cold_total}; pairs {searched_pairs:?})"
        );
    }

    /// Algorithms without a warm form delegate to the cold solve unchanged.
    #[test]
    fn warm_solve_delegates_cold_for_direct_algorithms() {
        let inst = bss_gen::uniform(40, 6, 3, 4);
        let hint = WarmStart {
            accepted: Rational::from(1_000_000u64),
            certificate: Rational::ONE,
            widen: Rational::ZERO,
        };
        for algo in [Algorithm::TwoApprox, Algorithm::ThreeHalves] {
            for variant in Variant::ALL {
                let cold = solve(&inst, variant, algo);
                let (warm, stats) = solve_warm(&inst, variant, algo, &hint);
                assert!(!stats.warmed);
                assert_eq!(stats, WarmStats::default());
                assert_eq!(warm.makespan, cold.makespan);
                assert_eq!(warm.probes, cold.probes);
                assert_eq!(warm.schedule(), cold.schedule());
            }
        }
    }

    #[test]
    fn compact_present_only_for_splittable() {
        let inst = bss_gen::uniform(30, 5, 3, 2);
        assert!(solve(&inst, Variant::Splittable, Algorithm::ThreeHalves)
            .compact()
            .is_some());
        assert!(solve(&inst, Variant::Preemptive, Algorithm::ThreeHalves)
            .compact()
            .is_none());
    }

    #[test]
    fn expansion_is_lazy_and_cached() {
        let inst = bss_gen::uniform(40, 6, 8, 3);
        let sol = solve(&inst, Variant::Splittable, Algorithm::ThreeHalves);
        // Makespan was computed straight off the compact form.
        assert_eq!(sol.makespan, sol.compact().unwrap().makespan());
        // First access expands; the second returns the same cached object.
        let first = sol.schedule() as *const Schedule;
        let second = sol.schedule() as *const Schedule;
        assert_eq!(first, second);
        assert_eq!(sol.schedule().makespan(), sol.makespan);
        // into_schedule hands out the cached expansion.
        let makespan = sol.makespan;
        let schedule = sol.into_schedule();
        assert_eq!(schedule.makespan(), makespan);
    }
}
