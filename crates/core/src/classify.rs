//! Class partitions and machine-count bounds for a makespan guess `T`.
//!
//! For a guess `T`, the paper partitions classes by setup size (Section 2):
//!
//! * **expensive** `I_exp`: `s_i > T/2`, further split (Section 4.1) into
//!   `I⁺_exp` (`T <= s_i + P(C_i)`), `I⁰_exp` (`3T/4 < s_i + P(C_i) < T`) and
//!   `I⁻_exp` (`s_i + P(C_i) <= 3T/4`);
//! * **cheap** `I_chp`: `s_i <= T/2`, split into `I⁺_chp` (`T/4 <= s_i`) and
//!   `I⁻_chp` (`s_i < T/4`).
//!
//! The machine-count bounds of Lemma 1 and Section 4.4:
//! `α_i = ⌈P(C_i)/(T-s_i)⌉`, `α'_i = ⌊P(C_i)/(T-s_i)⌋`, `β_i = ⌈2P(C_i)/T⌉`,
//! `β'_i = ⌊2P(C_i)/T⌋`, and the γ-count used by the preemptive
//! Class-Jumping search, `γ_i = max(1, ⌈(P(C_i) - (T - s_i)) / (T/2)⌉)`.

use bss_instance::{ClassId, Instance, JobId};
use bss_rational::Rational;

/// The class partition at makespan guess `T`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Classification {
    /// `I⁺_exp`: expensive, `T <= s_i + P(C_i)`.
    pub iexp_plus: Vec<ClassId>,
    /// `I⁰_exp`: expensive, `3T/4 < s_i + P(C_i) < T` (the large-machine classes).
    pub iexp_zero: Vec<ClassId>,
    /// `I⁻_exp`: expensive, `s_i + P(C_i) <= 3T/4`.
    pub iexp_minus: Vec<ClassId>,
    /// `I⁺_chp`: cheap, `T/4 <= s_i <= T/2`.
    pub ichp_plus: Vec<ClassId>,
    /// `I⁻_chp`: cheap, `s_i < T/4`.
    pub ichp_minus: Vec<ClassId>,
}

impl Classification {
    /// All expensive classes (`I_exp`), in class order.
    #[must_use]
    pub fn iexp(&self) -> Vec<ClassId> {
        let mut v: Vec<ClassId> = self
            .iexp_plus
            .iter()
            .chain(&self.iexp_zero)
            .chain(&self.iexp_minus)
            .copied()
            .collect();
        v.sort_unstable();
        v
    }

    /// All cheap classes (`I_chp`), in class order.
    #[must_use]
    pub fn ichp(&self) -> Vec<ClassId> {
        let mut v: Vec<ClassId> = self
            .ichp_plus
            .iter()
            .chain(&self.ichp_minus)
            .copied()
            .collect();
        v.sort_unstable();
        v
    }
}

/// Computes the class partition at guess `t` in `O(c)`.
#[must_use]
pub fn classify(inst: &Instance, t: Rational) -> Classification {
    let mut cls = Classification::default();
    classify_into(inst, t, &mut cls);
    cls
}

/// [`classify`] into a caller-owned [`Classification`], clearing and reusing
/// its buffers — the allocation-free form used by the probe workspaces.
pub fn classify_into(inst: &Instance, t: Rational, cls: &mut Classification) {
    cls.iexp_plus.clear();
    cls.iexp_zero.clear();
    cls.iexp_minus.clear();
    cls.ichp_plus.clear();
    cls.ichp_minus.clear();
    for i in 0..inst.num_classes() {
        let s = inst.setup(i);
        let sp = s + inst.class_proc(i); // s_i + P(C_i), integer
        if Rational::from(2 * s) > t {
            // expensive
            if t <= Rational::from(sp) {
                cls.iexp_plus.push(i);
            } else if Rational::from(4 * sp) > t * 3u64 {
                cls.iexp_zero.push(i);
            } else {
                cls.iexp_minus.push(i);
            }
        } else if Rational::from(4 * s) >= t {
            cls.ichp_plus.push(i);
        } else {
            cls.ichp_minus.push(i);
        }
    }
}

/// `⌈a/b⌉` for `a >= 0`, `b > 0` (remainder form: immune to `a + b`
/// overflow).
#[inline]
fn ceil_div(a: i128, b: i128) -> i128 {
    debug_assert!(a >= 0 && b > 0);
    a / b + (a % b != 0) as i128
}

/// `⌈(p · t.den) / q_num⌉` computed gcd-free in integers when the products
/// fit `i128`; falls back to exact rational division otherwise (possible
/// only for the huge search-bracket denominators near the headroom bound).
#[inline]
fn ceil_ratio(p: u64, t_num: i128, t_den: i128, fallback: impl Fn() -> i128) -> i128 {
    match (p as i128).checked_mul(t_den) {
        Some(scaled) => ceil_div(scaled, t_num),
        None => fallback(),
    }
}

/// `α_i = ⌈P(C_i)/(T - s_i)⌉` — minimal setups of class `i` in any
/// `T`-feasible schedule (Lemma 1). Requires `s_i < T`.
///
/// `P/(T-s) = P·den / (num - s·den)`, so the count is one gcd-free integer
/// ceiling division whenever the scaled numerator fits `i128`.
#[must_use]
#[inline]
pub fn alpha(inst: &Instance, t: Rational, class: ClassId) -> usize {
    let p = inst.class_proc(class);
    let fallback = || (Rational::from(p) / (t - inst.setup(class))).ceil() as usize;
    match scaled_gap(inst.setup(class), t) {
        Some(d) => ceil_ratio(p, d, t.denom(), || fallback() as i128) as usize,
        None => fallback(),
    }
}

/// `t.num - s·t.den` (the scaled `T - s_i`), `None` when the product leaves
/// `i128` — then the caller takes the exact rational route, matching the
/// overflow-panics-never-wraps discipline of [`Rational`] itself.
#[inline]
fn scaled_gap(setup: u64, t: Rational) -> Option<i128> {
    let d = t.numer() - (setup as i128).checked_mul(t.denom())?;
    debug_assert!(d > 0, "alpha/alpha' require s_i < T");
    Some(d)
}

/// `α'_i = ⌊P(C_i)/(T - s_i)⌋` (machine count used by Algorithm 2 for
/// `I⁺_exp`). Requires `s_i < T`.
#[must_use]
#[inline]
pub fn alpha_prime(inst: &Instance, t: Rational, class: ClassId) -> usize {
    let p = inst.class_proc(class);
    match scaled_gap(inst.setup(class), t).zip((p as i128).checked_mul(t.denom())) {
        Some((d, scaled)) => (scaled / d) as usize,
        None => (Rational::from(p) / (t - inst.setup(class))).floor() as usize,
    }
}

/// `β_i = ⌈2 P(C_i)/T⌉` — minimal machines for an expensive class (Lemma 1).
#[must_use]
#[inline]
pub fn beta(inst: &Instance, t: Rational, class: ClassId) -> usize {
    let p2 = 2 * inst.class_proc(class);
    ceil_ratio(p2, t.numer(), t.denom(), || (Rational::from(p2) / t).ceil()) as usize
}

/// `β'_i = ⌊2 P(C_i)/T⌋`.
#[must_use]
#[inline]
pub fn beta_prime(inst: &Instance, t: Rational, class: ClassId) -> usize {
    let p2 = 2 * inst.class_proc(class);
    match (p2 as i128).checked_mul(t.denom()) {
        Some(scaled) => (scaled / t.numer()) as usize,
        None => (Rational::from(p2) / t).floor() as usize,
    }
}

/// `γ_i`: machines used by the γ-modified wrapping of `I⁺_exp` classes
/// (Section 4.4) — the minimal `k >= 1` with `k·T/2 + (T - s_i) >= P(C_i)`.
///
/// Equivalently `max(1, ⌈2(P_i + s_i - T)/T⌉)`, which jumps exactly at the
/// paper's points `T = 2(s_i + P_i)/(γ + 2)`.
#[must_use]
#[inline]
pub fn gamma(inst: &Instance, t: Rational, class: ClassId) -> usize {
    let sp2 = 2 * (inst.class_proc(class) + inst.setup(class));
    // need = (sp2·den - 2·num) / num; ceil for a possibly negative numerator.
    let fallback = || {
        let need = Rational::from(sp2) / t - 2u64;
        need.ceil().max(1) as usize
    };
    match (sp2 as i128)
        .checked_mul(t.denom())
        .zip(t.numer().checked_mul(2))
        .and_then(|(scaled, num2)| scaled.checked_sub(num2))
    {
        Some(a) => {
            let num = t.numer();
            let need = if a >= 0 { ceil_div(a, num) } else { a / num };
            need.max(1) as usize
        }
        None => fallback(),
    }
}

/// Big jobs `C*_i = { j ∈ C_i : s_i + t_j > T/2 }` of a cheap-light class.
#[must_use]
pub fn cstar(inst: &Instance, t: Rational, class: ClassId) -> Vec<JobId> {
    let s = inst.setup(class);
    let half = t.half();
    inst.class_jobs(class)
        .iter()
        .copied()
        .filter(|&j| Rational::from(s + inst.job(j).time) > half)
        .collect()
}

#[cfg(test)]
mod tests {
    use bss_instance::InstanceBuilder;

    use super::*;

    fn r(v: i128) -> Rational {
        Rational::from_int(v)
    }

    /// T = 100. Classes tuned to hit every partition cell.
    fn inst() -> Instance {
        let mut b = InstanceBuilder::new(8);
        b.add_batch(60, &[50, 30]); // 0: exp, s+P=140 >= 100 → I+exp
        b.add_batch(55, &[25]); // 1: exp, s+P=80 ∈ (75, 100) → I0exp
        b.add_batch(70, &[4]); // 2: exp, s+P=74 <= 75 → I−exp
        b.add_batch(30, &[20, 20]); // 3: chp, s ∈ [25, 50] → I+chp
        b.add_batch(10, &[45, 5]); // 4: chp, s < 25 → I−chp; 10+45 > 50 → C*
        b.build().unwrap()
    }

    #[test]
    fn partition_cells() {
        let cls = classify(&inst(), r(100));
        assert_eq!(cls.iexp_plus, vec![0]);
        assert_eq!(cls.iexp_zero, vec![1]);
        assert_eq!(cls.iexp_minus, vec![2]);
        assert_eq!(cls.ichp_plus, vec![3]);
        assert_eq!(cls.ichp_minus, vec![4]);
        assert_eq!(cls.iexp(), vec![0, 1, 2]);
        assert_eq!(cls.ichp(), vec![3, 4]);
    }

    #[test]
    fn boundary_cases() {
        // s = T/2 exactly → cheap (expensive requires s > T/2 strictly).
        let mut b = InstanceBuilder::new(1);
        b.add_batch(50, &[1]);
        let inst = b.build().unwrap();
        let cls = classify(&inst, r(100));
        assert!(cls.iexp().is_empty());
        assert_eq!(cls.ichp_plus, vec![0]);
        // s = T/4 exactly → I+chp.
        let cls = classify(&inst, r(200));
        assert_eq!(cls.ichp_plus, vec![0]);
        // s < T/4 → I−chp.
        let cls = classify(&inst, r(201));
        assert_eq!(cls.ichp_minus, vec![0]);
    }

    #[test]
    fn machine_counts() {
        let inst = inst();
        let t = r(100);
        // class 0: P = 80, T - s = 40 → α = 2, α' = 2; β = ⌈160/100⌉ = 2.
        assert_eq!(alpha(&inst, t, 0), 2);
        assert_eq!(alpha_prime(&inst, t, 0), 2);
        assert_eq!(beta(&inst, t, 0), 2);
        assert_eq!(beta_prime(&inst, t, 0), 1);
        // γ: minimal k ≥ 1 with 50k + 40 ≥ 80 → k = 1.
        assert_eq!(gamma(&inst, t, 0), 1);
    }

    #[test]
    fn alpha_ceils_and_floors_differ() {
        let mut b = InstanceBuilder::new(4);
        b.add_batch(60, &[30, 30, 30]); // P = 90, T−s = 40: α=3, α'=2
        let inst = b.build().unwrap();
        assert_eq!(alpha(&inst, r(100), 0), 3);
        assert_eq!(alpha_prime(&inst, r(100), 0), 2);
    }

    #[test]
    fn gamma_jump_points() {
        // γ jumps exactly at T = 2(s+P)/(k+2).
        let mut b = InstanceBuilder::new(4);
        b.add_batch(60, &[70, 70]); // s+P = 200
        let inst = b.build().unwrap();
        // At T = 2*200/(1+2) = 400/3: γ = 1.
        let t1 = Rational::new(400, 3);
        assert_eq!(gamma(&inst, t1, 0), 1);
        // Slightly below: γ = 2.
        assert_eq!(gamma(&inst, Rational::new(399, 3), 0), 2);
        // At T = 2*200/(2+2) = 100: γ = 2.
        assert_eq!(gamma(&inst, r(100), 0), 2);
        assert_eq!(gamma(&inst, r(99), 0), 3);
    }

    #[test]
    fn gamma_at_least_one() {
        let mut b = InstanceBuilder::new(2);
        b.add_batch(60, &[1]);
        let inst = b.build().unwrap();
        assert_eq!(gamma(&inst, r(100), 0), 1);
    }

    #[test]
    fn cstar_selects_borderline_jobs() {
        let inst = inst();
        // class 4: s=10; jobs 45 (10+45=55 > 50 → C*) and 5 (15 <= 50).
        let cs = cstar(&inst, r(100), 4);
        assert_eq!(cs.len(), 1);
        assert_eq!(inst.job(cs[0]).time, 45);
    }

    #[test]
    fn beta_le_alpha_for_expensive(// Lemma 1: i ∈ I_exp ⇒ β_i <= α_i.
    ) {
        let inst = inst();
        let t = r(100);
        for i in classify(&inst, t).iexp() {
            if Rational::from(inst.setup(i)) < t {
                assert!(beta(&inst, t, i) <= alpha(&inst, t, i), "class {i}");
            }
        }
    }
}
