//! The splittable 3/2-dual approximation (Theorem 7, Appendix C).
//!
//! Accept/reject test: with `β_i = ⌈2 P(C_i)/T⌉`,
//! `L_split = P(J) + Σ_chp s_i + Σ_exp β_i s_i` and `m_exp = Σ_exp β_i`,
//! reject iff `m·T < L_split` or `m < m_exp` (then `T < OPT`).
//!
//! Build: each expensive class is wrapped over `β_i` machines with gaps of
//! job capacity `T/2` above its setups; the cheap classes are wrapped between
//! `T/2` and `3T/2` over the partially-filled last machines (with `T/2`
//! reserved for one cheap setup) and the remaining empty machines — Figure 1.

use bss_instance::{ClassId, Instance};
use bss_rational::{Rational, RawRational};
use bss_schedule::CompactSchedule;
use bss_wrap::{batch_items, wrap_iter_append, GapRun, SeqItem};

use crate::classify::{beta, classify_into};
use crate::workspace::DualWorkspace;
use crate::Trace;

/// The `O(c)` dual test of Theorem 7: `true` iff `T` is accepted.
#[must_use]
pub fn accepts(inst: &Instance, t: Rational) -> bool {
    accepts_in(&mut DualWorkspace::new(), inst, t)
}

/// [`accepts`] on a reusable workspace — allocation-free after warm-up, with
/// the load `L_split` accumulated gcd-free.
#[must_use]
pub fn accepts_in(ws: &mut DualWorkspace, inst: &Instance, t: Rational) -> bool {
    // OPT > s_max always, so any T < s_max is rejected. (T = s_max may be
    // accepted: the build keeps every machine within 3T/2 whenever
    // s_i <= T, which the searches' probe points guarantee.)
    if t < Rational::from(inst.smax()) {
        return false;
    }
    ws.prepare_for(inst);
    classify_into(inst, t, &mut ws.cls);
    let mut l_split = RawRational::from(inst.total_proc());
    let mut m_exp = 0usize;
    // The test is order-insensitive, so the expensive cells chain directly
    // (no sorted-merge allocation as in the builder).
    for &i in ws
        .cls
        .iexp_plus
        .iter()
        .chain(ws.cls.iexp_zero.iter())
        .chain(ws.cls.iexp_minus.iter())
    {
        let b = beta(inst, t, i);
        m_exp += b;
        l_split += inst.setup(i) * b as u64;
    }
    for &i in ws.cls.ichp_plus.iter().chain(ws.cls.ichp_minus.iter()) {
        l_split += inst.setup(i);
    }
    m_exp <= inst.machines() && l_split <= t * inst.machines()
}

/// The 3/2-dual builder: `None` = rejected (`T < OPT`), `Some(schedule)` has
/// makespan `<= 3T/2`. Runs in `O(n)` and emits a compact schedule with
/// `O(n + c)` stored items.
#[must_use]
pub fn dual(inst: &Instance, t: Rational) -> Option<CompactSchedule> {
    dual_traced_in(&mut DualWorkspace::new(), inst, t, &mut Trace::disabled())
}

/// [`dual`] on a reusable workspace.
#[must_use]
pub fn dual_in(ws: &mut DualWorkspace, inst: &Instance, t: Rational) -> Option<CompactSchedule> {
    dual_traced_in(ws, inst, t, &mut Trace::disabled())
}

/// [`dual`] with step snapshots (Figure 1(a) after step 1, Figure 1(b) after
/// step 2). Tracing expands the compact schedule, so only use it for
/// rendering.
#[must_use]
pub fn dual_traced(inst: &Instance, t: Rational, trace: &mut Trace) -> Option<CompactSchedule> {
    dual_traced_in(&mut DualWorkspace::new(), inst, t, trace)
}

/// [`dual_traced`] on a reusable workspace.
#[must_use]
pub fn dual_traced_in(
    ws: &mut DualWorkspace,
    inst: &Instance,
    t: Rational,
    trace: &mut Trace,
) -> Option<CompactSchedule> {
    let mut out = CompactSchedule::new(inst.machines());
    dual_into(ws, inst, t, trace, &mut out).then_some(out)
}

/// [`dual_in`] that assembles the compact schedule in a caller-provided
/// `out` (reset at entry): every wrap appends its configuration groups
/// directly — no per-wrap `CompactSchedule` and no group cloning. A warm
/// workspace build allocates only `out`'s own group storage.
///
/// Returns `false` on rejection (`T < OPT`); `out` then holds a partial
/// schedule the caller must discard (or reset).
#[must_use]
pub fn dual_into(
    ws: &mut DualWorkspace,
    inst: &Instance,
    t: Rational,
    trace: &mut Trace,
    out: &mut CompactSchedule,
) -> bool {
    let m = inst.machines();
    out.reset(m);
    if !accepts_in(ws, inst, t) {
        return false;
    }
    let half = t.half();

    // Step 1: expensive classes, β_i machines each, gaps of job capacity T/2
    // above the setups. The expensive cells are walked in sorted class order
    // (matching the historical `iexp()` order) via a three-way merge over
    // the already-sorted partition cells.
    let mut next_machine = 0usize;
    ws.partial.clear();
    let cls = &ws.cls;
    let mut exp_cells = [
        cls.iexp_plus.as_slice(),
        cls.iexp_zero.as_slice(),
        cls.iexp_minus.as_slice(),
    ];
    while let Some(cell) = exp_cells
        .iter()
        .enumerate()
        .filter(|(_, c)| !c.is_empty())
        .min_by_key(|(_, c)| c[0])
        .map(|(k, _)| k)
    {
        let i = exp_cells[cell][0];
        exp_cells[cell] = &exp_cells[cell][1..];

        let s = Rational::from(inst.setup(i));
        let b = beta(inst, t, i);
        let p = Rational::from(inst.class_proc(i));
        ws.scratch.clear();
        ws.scratch
            .runs
            .push(GapRun::single(next_machine, Rational::ZERO, s + half));
        if b > 1 {
            ws.scratch.runs.push(GapRun {
                first_machine: next_machine + 1,
                count: b - 1,
                a: s,
                b: s + half,
            });
        }
        // The batch streams lazily from the instance — no WrapSequence.
        wrap_iter_append(class_batch(inst, i), &ws.scratch.runs, inst.setups(), out)
            .expect("Theorem 7: expensive template capacity suffices");
        // Load of the last machine: s_i + (P_i - (β_i - 1)·T/2).
        let last_load = s + (p - half * (b - 1) as u64);
        let last_machine = next_machine + b - 1;
        if last_load < t {
            ws.partial.push((last_machine, last_load));
        }
        next_machine += b;
    }
    if trace.is_enabled() {
        trace.snap(
            "step 1: expensive classes",
            &out.expand().expect("builder emits in-range groups"),
        );
    }

    // Step 2: cheap classes between T/2 and 3T/2, over the partial machines
    // (reserving T/2 for one cheap setup) and the empty machines.
    let has_cheap = !ws.cls.ichp_plus.is_empty() || !ws.cls.ichp_minus.is_empty();
    if has_cheap {
        ws.scratch.clear();
        for &(u, load) in &ws.partial {
            ws.scratch
                .runs
                .push(GapRun::single(u, load + half, t + half));
        }
        if next_machine < m {
            ws.scratch.runs.push(GapRun {
                first_machine: next_machine,
                count: m - next_machine,
                a: half,
                b: t + half,
            });
        }
        if ws.scratch.runs.is_empty() {
            // All machines exactly full of expensive load but cheap load
            // remains: impossible under the accept test.
            return false;
        }
        // Cheap classes in sorted class order (two-way merge of the cells),
        // streamed lazily batch by batch — the wrap consumes the items as
        // they are produced, nothing is materialized.
        let merged = SortedMerge {
            a: ws.cls.ichp_plus.as_slice(),
            b: ws.cls.ichp_minus.as_slice(),
        };
        wrap_iter_append(
            merged.flat_map(|i| class_batch(inst, i)),
            &ws.scratch.runs,
            inst.setups(),
            out,
        )
        .expect("Theorem 7: cheap template capacity suffices");
    }
    if trace.is_enabled() {
        trace.snap(
            "step 2: cheap classes wrapped",
            &out.expand().expect("builder emits in-range groups"),
        );
    }
    debug_assert!(out.makespan() <= t + half);
    true
}

/// All of class `i` as a lazy wrap stream: its setup, then its jobs, read
/// straight off the instance (no intermediate sequence).
pub(crate) fn class_batch<'a>(
    inst: &'a Instance,
    i: ClassId,
) -> impl Iterator<Item = SeqItem> + 'a {
    batch_items(
        i,
        Rational::from(inst.setup(i)),
        inst.class_jobs(i)
            .iter()
            .map(|&j| (j, Rational::from(inst.job(j).time))),
    )
}

/// Ascending merge of two sorted class lists (partition cells), as a lazy
/// iterator — the allocation-free replacement for materializing the merged
/// order.
struct SortedMerge<'a> {
    a: &'a [ClassId],
    b: &'a [ClassId],
}

impl Iterator for SortedMerge<'_> {
    type Item = ClassId;

    fn next(&mut self) -> Option<ClassId> {
        match (self.a.first(), self.b.first()) {
            (Some(&x), Some(&y)) if x < y => {
                self.a = &self.a[1..];
                Some(x)
            }
            (Some(_), Some(&y)) => {
                self.b = &self.b[1..];
                Some(y)
            }
            (Some(&x), None) => {
                self.a = &self.a[1..];
                Some(x)
            }
            (None, Some(&y)) => {
                self.b = &self.b[1..];
                Some(y)
            }
            (None, None) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use bss_instance::{InstanceBuilder, LowerBounds, Variant};
    use bss_schedule::validate;

    use super::*;

    fn r(v: i128) -> Rational {
        Rational::from_int(v)
    }

    fn check_at(inst: &Instance, t: Rational) -> bool {
        match dual(inst, t) {
            None => false,
            Some(cs) => {
                let s = cs.expand().expect("in range");
                let v = validate(&s, inst, Variant::Splittable);
                assert!(v.is_empty(), "T={t}: {v:?}");
                assert!(
                    s.makespan() <= t * Rational::new(3, 2),
                    "T={t}: makespan {} > 3T/2",
                    s.makespan()
                );
                true
            }
        }
    }

    #[test]
    fn accepts_at_twice_tmin_always() {
        for seed in 0..20 {
            let inst = bss_gen::uniform(50, 6, 4, seed);
            let t2 = LowerBounds::of(&inst).tmin(Variant::Splittable) * 2u64;
            assert!(check_at(&inst, t2), "2*Tmin must be accepted");
        }
    }

    #[test]
    fn rejects_below_smax() {
        let mut b = InstanceBuilder::new(4);
        b.add_batch(100, &[1]);
        b.add_batch(1, &[1]);
        let inst = b.build().unwrap();
        assert!(!accepts(&inst, r(99)));
        assert!(!accepts(&inst, r(50)));
        // T = s_max itself may be accepted (and the build is 3T/2-feasible).
        assert!(check_at(&inst, r(100)));
    }

    #[test]
    fn acceptance_is_monotone() {
        for seed in 0..20 {
            let inst = bss_gen::uniform(40, 8, 3, seed);
            let tmin = LowerBounds::of(&inst).tmin(Variant::Splittable);
            let mut last = false;
            for k in 0..=20u64 {
                // Sweep T from Tmin/2 to ~2.5 Tmin.
                let t = tmin * Rational::new(10 + 4 * k as i128, 20);
                let now = accepts(&inst, t);
                assert!(!last || now, "acceptance not monotone at seed {seed}");
                last = now;
            }
        }
    }

    #[test]
    fn expensive_only_instance() {
        let mut b = InstanceBuilder::new(6);
        b.add_batch(60, &[50, 50, 50]); // huge expensive class
        b.add_batch(70, &[30]);
        let inst = b.build().unwrap();
        let t2 = LowerBounds::of(&inst).tmin(Variant::Splittable) * 2u64;
        assert!(check_at(&inst, t2));
    }

    #[test]
    fn cheap_only_instance() {
        let mut b = InstanceBuilder::new(3);
        b.add_batch(2, &[5, 5, 5, 5]);
        b.add_batch(3, &[7, 7]);
        let inst = b.build().unwrap();
        let t2 = LowerBounds::of(&inst).tmin(Variant::Splittable) * 2u64;
        assert!(check_at(&inst, t2));
    }

    #[test]
    fn single_machine() {
        let mut b = InstanceBuilder::new(1);
        b.add_batch(5, &[3, 3]);
        b.add_batch(2, &[4]);
        let inst = b.build().unwrap();
        // N = 17; at T = 17 everything fits on one machine.
        assert!(check_at(&inst, r(17)));
    }

    #[test]
    fn paper_figure1_instance() {
        let inst = bss_gen::paper::fig1_splittable();
        let lb = LowerBounds::of(&inst);
        let t2 = lb.tmin(Variant::Splittable) * 2u64;
        assert!(check_at(&inst, t2));
    }

    #[test]
    fn randomized_accept_and_validate() {
        for seed in 0..25 {
            let inst = bss_gen::uniform(80, 10, 5, seed);
            let tmin = LowerBounds::of(&inst).tmin(Variant::Splittable);
            for num in [21i128, 25, 30, 40] {
                let t = tmin * Rational::new(num, 20);
                check_at(&inst, t); // validates whenever accepted
            }
        }
        for seed in 0..10 {
            let inst = bss_gen::expensive_setups(40, 6, seed);
            let tmin = LowerBounds::of(&inst).tmin(Variant::Splittable);
            check_at(&inst, tmin * 2u64);
        }
    }

    /// Compact output must stay near-linear in n + c, not m.
    #[test]
    fn compact_output_size_independent_of_m() {
        let mut b = InstanceBuilder::new(5000);
        b.add_batch(10, &[100_000]); // one giant splittable job
        b.add_batch(1, &[5, 5]);
        let inst = b.build().unwrap();
        let t2 = LowerBounds::of(&inst).tmin(Variant::Splittable) * 2u64;
        let cs = dual(&inst, t2).expect("accepted");
        assert!(
            cs.stored_items() < 100,
            "stored items {} should not scale with m",
            cs.stored_items()
        );
    }
}
