//! Class Jumping for the splittable variant (Algorithm 1, Theorem 3).
//!
//! A *jump* of an expensive class `i` is a guess `T = 2P_i/z` (`z ∈ N`):
//! below it, scheduling `C_i` needs one more machine. The search maintains a
//! right interval `(T_fail, T_ok]` (`T_fail` rejected, `T_ok` accepted) and
//! narrows it with binary searches until no jump of any class lies strictly
//! inside; there the load function `L_split` is constant, so either `T_ok` or
//! the fixed point `L_split/m` is the smallest acceptable guess — and both
//! are `<= OPT` (Section 3.4). Total work: `O(n + c log(c+m))` — `O(n)` once
//! for the aggregates, `O(c)` per probe, `O(log(c+m))` probes.

use std::cell::Cell;

use bss_budget::{Interrupt, SolveBudget};
use bss_instance::{Instance, LowerBounds, Variant};
use bss_rational::Rational;
use bss_schedule::CompactSchedule;

use crate::classify::{beta, classify_into};
use crate::search::{refine_right_interval_opt, SearchOutcome};
use crate::workspace::DualWorkspace;

use super::{accepts_in, dual_in};

/// One budgeted dual-test probe: charges the budget, bumps the shared
/// counter, then runs the accept test. `None` means the budget interrupted
/// *before* the test ran (the counter is untouched and `stop` latched);
/// call sites wrap this in short-lived closures so the workspace borrow
/// stays local to each search step.
fn probe(
    ws: &mut DualWorkspace,
    inst: &Instance,
    probes: &Cell<usize>,
    stop: &Cell<Option<Interrupt>>,
    budget: &SolveBudget,
    t: Rational,
) -> Option<bool> {
    if stop.get().is_some() {
        return None;
    }
    if let Err(i) = budget.charge_probe() {
        stop.set(Some(i));
        return None;
    }
    probes.set(probes.get() + 1);
    Some(accepts_in(ws, inst, t))
}

/// Runs Class Jumping; returns the accepted guess (`<= OPT`), the compact
/// schedule built there (makespan `<= 3/2 · accepted`) and the rejection
/// certificate.
#[must_use]
pub fn class_jumping(inst: &Instance) -> SearchOutcome<CompactSchedule> {
    class_jumping_in(&mut DualWorkspace::new(), inst)
}

/// [`class_jumping`] on a reusable workspace: all probes share one
/// allocation footprint.
#[must_use]
pub fn class_jumping_in(ws: &mut DualWorkspace, inst: &Instance) -> SearchOutcome<CompactSchedule> {
    class_jumping_budgeted_in(ws, inst, &SolveBudget::unlimited()).0
}

/// [`class_jumping_in`] under a cooperative [`SolveBudget`].
///
/// Bit-identical to the unbudgeted search when the budget never trips. On
/// interruption the search winds down to its current right bracket `hi` —
/// accepted throughout by the search invariant — builds there, and reports
/// the interrupt alongside: the result is a valid 3/2-dual schedule whose
/// `accepted` may merely sit above `OPT`. `rejected` stays restricted to
/// genuinely certified rejections, so the certificate never lies.
#[must_use]
pub fn class_jumping_budgeted_in(
    ws: &mut DualWorkspace,
    inst: &Instance,
    budget: &SolveBudget,
) -> (SearchOutcome<CompactSchedule>, Option<Interrupt>) {
    let probes = Cell::new(0usize);
    let stop = Cell::new(None::<Interrupt>);

    let t_min = LowerBounds::of(inst).tmin(Variant::Splittable);
    match probe(ws, inst, &probes, &stop, budget, t_min) {
        Some(true) => {
            let schedule = dual_in(ws, inst, t_min).expect("probe accepted");
            return (
                SearchOutcome {
                    accepted: t_min,
                    schedule,
                    rejected: None,
                    probes: probes.get(),
                },
                None,
            );
        }
        Some(false) => {}
        None => {
            // Interrupted before anything was learned: Theorem 1's window
            // top is accepted unconditionally; build there, certify nothing.
            let hi = t_min * 2u64;
            let schedule = dual_in(ws, inst, hi).expect("2·T_min is accepted (Theorem 1)");
            return (
                SearchOutcome {
                    accepted: hi,
                    schedule,
                    rejected: None,
                    probes: probes.get(),
                },
                stop.get(),
            );
        }
    }
    let mut lo = t_min; // rejected
    let mut hi = t_min * 2u64; // accepted (Theorem 1: OPT <= 2 T_min)

    // Checked without `probe`: the counted probe sequence must be identical
    // in debug and release builds (the repro goldens commit probe counts).
    debug_assert!(accepts_in(ws, inst, hi));

    // Step 4: pin the expensive/cheap partition — no boundary 2·s̃_i strictly
    // inside (lo, hi). The candidate buffer is workspace-owned; it is taken
    // out for the probe loop (probes borrow the whole workspace) and put
    // back afterwards, so warm searches reuse its allocation. An interrupt
    // inside any refinement stops it at the certified sub-bracket (probes
    // return `None` from then on, so later stages fall through to `hi`).
    let mut boundaries = core::mem::take(&mut ws.thresholds);
    boundaries.clear();
    boundaries.extend(inst.setups().iter().map(|&s| Rational::from(2 * s)));
    boundaries.sort_unstable();
    boundaries.dedup();
    let (l2, h2) = refine_right_interval_opt(lo, hi, &boundaries, |t| {
        probe(ws, inst, &probes, &stop, budget, t)
    });
    ws.thresholds = boundaries;
    lo = l2;
    hi = h2;

    // The partition is now constant on the open interval; evaluate it at the
    // midpoint. The pinned expensive classes are copied out of the probe
    // classification (later probes overwrite it).
    let mid = (lo + hi).half();
    classify_into(inst, mid, &mut ws.cls);
    let mut iexp = core::mem::take(&mut ws.jump_classes);
    iexp.clear();
    iexp.extend_from_slice(&ws.cls.iexp_plus);
    iexp.extend_from_slice(&ws.cls.iexp_zero);
    iexp.extend_from_slice(&ws.cls.iexp_minus);
    iexp.sort_unstable();

    let chosen = if stop.get().is_some() {
        hi
    } else if iexp.is_empty() {
        // No expensive classes: L_split is constant on the interval.
        let l_const = Rational::from(inst.total_load_once());
        finishing_move(ws, inst, lo, hi, 0, l_const, &probes, &stop, budget)
    } else {
        // Step 5: fastest jumping class f (largest P_f).
        let f = *iexp
            .iter()
            .max_by_key(|&&i| inst.class_proc(i))
            .expect("non-empty");
        let pf2 = Rational::from(2 * inst.class_proc(f));

        // Step 6: narrow to a single jump gap of f. Jumps of f inside
        // (lo, hi) are 2P_f/z for z in (2P_f/hi, 2P_f/lo).
        let z_lo = (pf2 / hi).floor() + 1; // smallest z with 2P_f/z < hi
        let z_hi = {
            let c = pf2 / lo;
            if c.is_integer() {
                c.floor() - 1
            } else {
                c.floor()
            }
        }; // largest z with 2P_f/z > lo
        if z_lo <= z_hi {
            let mut jumps = core::mem::take(&mut ws.jumps);
            jumps.clear();
            if z_hi - z_lo <= 64 {
                // Few jumps: enumerate directly.
                jumps.extend((z_lo..=z_hi).rev().map(|z| pf2 / z));
            } else {
                // Many jumps: binary search over z (monotone acceptance in T).
                let mut a = z_lo; // T_{z_lo} largest
                let mut b = z_hi;
                // Find largest z whose jump is accepted.
                let mut best: Option<i128> = None;
                while a <= b {
                    let zm = a + (b - a) / 2;
                    match probe(ws, inst, &probes, &stop, budget, pf2 / zm) {
                        Some(true) => {
                            best = Some(zm);
                            a = zm + 1;
                        }
                        Some(false) => b = zm - 1,
                        None => break,
                    }
                }
                if stop.get().is_none() {
                    match best {
                        Some(z) => {
                            hi = pf2 / z;
                            if z < z_hi {
                                lo = pf2 / (z + 1);
                            }
                        }
                        None => lo = pf2 / z_lo,
                    }
                } else if let Some(z) = best {
                    // Interrupted mid-bisection: the largest accepted jump
                    // tightens `hi` (genuinely probed), but `lo` must not
                    // move — the unprobed region may still hold accepted
                    // guesses, so `pf2 / (z + 1)` is not certified rejected.
                    hi = pf2 / z;
                }
            }
            if !jumps.is_empty() {
                let (l3, h3) = refine_right_interval_opt(lo, hi, &jumps, |t| {
                    probe(ws, inst, &probes, &stop, budget, t)
                });
                lo = l3;
                hi = h3;
            }
            ws.jumps = jumps;
        }

        if stop.get().is_some() {
            hi
        } else {
            // Step 7+8: inside one f-gap each class jumps at most once
            // (Lemma 3).
            let mut other_jumps = core::mem::take(&mut ws.jumps);
            other_jumps.clear();
            for &i in &iexp {
                let z = beta(inst, hi, i); // β_i at the right end
                let cand = Rational::from(2 * inst.class_proc(i)) / z as u64;
                if lo < cand && cand < hi {
                    other_jumps.push(cand);
                }
            }
            other_jumps.sort_unstable();
            other_jumps.dedup();
            let (l4, h4) = refine_right_interval_opt(lo, hi, &other_jumps, |t| {
                probe(ws, inst, &probes, &stop, budget, t)
            });
            ws.jumps = other_jumps;
            lo = l4;
            hi = h4;

            if stop.get().is_some() {
                hi
            } else {
                // Step 9: the load is constant on the open interval (lo, hi).
                let m2 = (lo + hi).half();
                classify_into(inst, m2, &mut ws.cls);
                let mut m_exp = 0usize;
                let mut l_open = Rational::from(inst.total_proc());
                for &i in ws
                    .cls
                    .iexp_plus
                    .iter()
                    .chain(&ws.cls.iexp_zero)
                    .chain(&ws.cls.iexp_minus)
                {
                    let b = beta(inst, m2, i);
                    m_exp += b;
                    l_open += Rational::from(inst.setup(i) * b as u64);
                }
                for &i in ws.cls.ichp_plus.iter().chain(&ws.cls.ichp_minus) {
                    l_open += Rational::from(inst.setup(i));
                }
                finishing_move(ws, inst, lo, hi, m_exp, l_open, &probes, &stop, budget)
            }
        }
    };
    ws.jump_classes = iexp;

    let schedule = dual_in(ws, inst, chosen).expect("chosen guess must be accepted");
    (
        SearchOutcome {
            accepted: chosen,
            schedule,
            rejected: Some(lo),
            probes: probes.get(),
        },
        stop.get(),
    )
}

/// The final case analysis of Algorithm 1, step 9: on a jump-free right
/// interval with open-interval machine demand `m_exp` and load `l_open`,
/// return the smallest certified-acceptable guess. An interrupted probe
/// falls into the defensive `hi` branch — the right end stays accepted.
#[allow(clippy::too_many_arguments)]
fn finishing_move(
    ws: &mut DualWorkspace,
    inst: &Instance,
    lo: Rational,
    hi: Rational,
    m_exp: usize,
    l_open: Rational,
    probes: &Cell<usize>,
    stop: &Cell<Option<Interrupt>>,
    budget: &SolveBudget,
) -> Rational {
    if inst.machines() < m_exp {
        // The whole open interval is machine-infeasible: OPT >= hi.
        return hi;
    }
    let t_new = l_open / inst.machines();
    if t_new >= hi {
        // Everything below hi is load-infeasible: OPT >= hi.
        return hi;
    }
    if t_new > lo && probe(ws, inst, probes, stop, budget, t_new) == Some(true) {
        t_new
    } else {
        // Defensive: fall back to the known-accepted right end.
        hi
    }
}

#[cfg(test)]
mod tests {
    use bss_instance::{InstanceBuilder, Variant};
    use bss_schedule::validate;

    use super::*;

    fn check(inst: &Instance) -> (Rational, Rational) {
        let out = class_jumping(inst);
        let s = out.schedule.expand().expect("in range");
        let v = validate(&s, inst, Variant::Splittable);
        assert!(v.is_empty(), "{v:?}");
        let makespan = s.makespan();
        assert!(
            makespan <= out.accepted * Rational::new(3, 2),
            "makespan {makespan} > 3/2 * {}",
            out.accepted
        );
        // The accepted guess is never below the instance lower bound…
        let tmin = LowerBounds::of(inst).tmin(Variant::Splittable);
        assert!(out.accepted >= tmin);
        // …and never above the certified window.
        assert!(out.accepted <= tmin * 2u64);
        if let Some(rej) = out.rejected {
            assert!(rej < out.accepted);
        }
        (out.accepted, makespan)
    }

    #[test]
    fn paper_figure1_instance() {
        let inst = bss_gen::paper::fig1_splittable();
        check(&inst);
    }

    #[test]
    fn uniform_suite() {
        for seed in 0..30 {
            let inst = bss_gen::uniform(60, 8, 4, seed);
            check(&inst);
        }
    }

    #[test]
    fn expensive_suite() {
        for seed in 0..15 {
            let inst = bss_gen::expensive_setups(40, 5, seed);
            check(&inst);
        }
    }

    #[test]
    fn single_job_batches() {
        for seed in 0..10 {
            let inst = bss_gen::single_job_batches(30, 4, seed);
            check(&inst);
        }
    }

    #[test]
    fn small_batches_suite() {
        for seed in 0..10 {
            let inst = bss_gen::small_batches(50, 4, seed);
            check(&inst);
        }
    }

    #[test]
    fn many_machines() {
        for seed in 0..10 {
            let inst = bss_gen::uniform(40, 6, 64, seed);
            check(&inst);
        }
    }

    #[test]
    fn one_class_one_machine() {
        let mut b = InstanceBuilder::new(1);
        b.add_batch(3, &[4]);
        let inst = b.build().unwrap();
        let (accepted, makespan) = check(&inst);
        // OPT = setup + job = 7 = T_min; the guess is exact, the schedule is
        // within the 3/2 guarantee (the dual reserves the [0, T/2) band).
        assert_eq!(accepted, Rational::from(7u64));
        assert!(makespan <= Rational::new(21, 2));
    }

    /// Cross-check: class jumping must never be worse than the ε-search on
    /// the same dual, and its accepted guess must be ≤ every accepted guess
    /// the ε-search finds.
    #[test]
    fn agrees_with_epsilon_search() {
        use crate::search::epsilon_search;
        for seed in 0..15 {
            let inst = bss_gen::uniform(50, 7, 4, seed);
            let tmin = LowerBounds::of(&inst).tmin(Variant::Splittable);
            let eps = epsilon_search(tmin, Rational::new(1, 1 << 12), |t| {
                crate::splittable::accepts(&inst, t)
            });
            let jump = class_jumping(&inst);
            // Jumping's accepted value is exact-optimal for the dual, the
            // ε-search's is within (1+ε); allow the ε slack.
            let slack = Rational::new(4097, 4096);
            assert!(
                jump.accepted <= eps.accepted * slack,
                "seed {seed}: jumping {} vs eps {}",
                jump.accepted,
                eps.accepted
            );
        }
    }
}
