//! The splittable variant `P|split,setup=s_i|Cmax`.
//!
//! * [`dual`]: the 3/2-dual approximation of Theorem 7 (Appendix C) — `O(n)`
//!   per guess, compact output.
//! * [`accepts`]: the `O(c)` accept/reject test of the same theorem, used by
//!   the searches.
//! * [`class_jumping`]: Algorithm 1 / Theorem 3 — the full 3/2-approximation
//!   in `O(n + c log(c+m))`.

mod dual;
pub(crate) use dual::class_batch;
mod jumping;

pub use dual::{accepts, accepts_in, dual, dual_in, dual_into, dual_traced, dual_traced_in};
pub use jumping::{class_jumping, class_jumping_budgeted_in, class_jumping_in};
