//! The `O(n)` 2-approximations (Theorem 1; Lemmas 8 and 9).

use bss_instance::{Instance, LowerBounds, Variant};
use bss_rational::Rational;
use bss_schedule::{CompactSchedule, Schedule};
use bss_wrap::{wrap_iter_append, GapRun};

use crate::workspace::DualWorkspace;
use crate::Trace;

/// Lemma 8: splittable 2-approximation in `O(n)`.
///
/// Wraps the single sequence of all batches into one gap `[s_max, s_max +
/// N/m)` per machine; moved setups fit below because `s_max` is reserved.
/// Makespan `<= s_max + N/m <= 2·max(N/m, s_max) <= 2·OPT`.
#[must_use]
pub fn splittable_two_approx(inst: &Instance) -> CompactSchedule {
    splittable_two_approx_in(&mut DualWorkspace::new(), inst)
}

/// [`splittable_two_approx`] on a reusable workspace (the one-run template
/// lives in the workspace's scratch; the batches stream lazily off the
/// instance and the wrap appends its groups directly to the output — no
/// `O(n)` wrap sequence is ever materialized).
#[must_use]
pub fn splittable_two_approx_in(ws: &mut DualWorkspace, inst: &Instance) -> CompactSchedule {
    let m = inst.machines();
    let smax = Rational::from(inst.smax());
    let per_machine = Rational::from(inst.total_load_once()) / m;
    ws.scratch.clear();
    ws.scratch.runs.push(GapRun {
        first_machine: 0,
        count: m,
        a: smax,
        b: smax + per_machine,
    });
    // Capacity S(ω) = N = L(Q) exactly; Lemma 6 applies.
    let mut out = CompactSchedule::new(m);
    let batches = (0..inst.num_classes()).flat_map(|i| crate::splittable::class_batch(inst, i));
    wrap_iter_append(batches, &ws.scratch.runs, inst.setups(), &mut out)
        .expect("Lemma 8: template capacity equals load");
    out
}

/// Lemma 9: non-preemptive (and hence preemptive) 2-approximation in `O(n)`.
///
/// Phase 1 runs next-fit with threshold `T_min` over the flat batch sequence;
/// phase 2 moves each machine's over-border item to the head of the next
/// machine (prepending a fresh setup when the moved item is a job), restoring
/// setup coverage; trailing setups are dropped. Every machine ends at
/// `<= 2·T_min <= 2·OPT`.
///
/// `trace` receives the phase-1 schedule (Figure 7 left) and the repaired
/// schedule (Figure 7 right).
#[must_use]
pub fn greedy_two_approx(inst: &Instance, trace: &mut Trace) -> Schedule {
    #[derive(Clone, Copy)]
    enum It {
        Setup(usize),
        Job(usize, usize), // (job, class)
    }
    fn len_of(inst: &Instance, it: &It) -> u64 {
        match *it {
            It::Setup(c) => inst.setup(c),
            It::Job(j, _) => inst.job(j).time,
        }
    }

    let m = inst.machines();
    let t_min = LowerBounds::of(inst).tmin(Variant::NonPreemptive);
    // Phase 1: next-fit with threshold T_min.
    let mut stacks: Vec<Vec<It>> = vec![Vec::new()];
    let mut load = Rational::ZERO;
    let push = |stacks: &mut Vec<Vec<It>>, load: &mut Rational, it: It, len: u64| {
        stacks.last_mut().expect("non-empty").push(it);
        *load += len;
        if *load >= t_min && stacks.len() < m {
            stacks.push(Vec::new());
            *load = Rational::ZERO;
        }
    };
    for i in 0..inst.num_classes() {
        push(&mut stacks, &mut load, It::Setup(i), inst.setup(i));
        for &j in inst.class_jobs(i) {
            push(&mut stacks, &mut load, It::Job(j, i), inst.job(j).time);
        }
    }
    if trace.is_enabled() {
        trace.snap("phase 1: next-fit", &stacks_to_schedule(inst, &stacks));
    }

    // Phase 2: move each machine's border-crossing last item to the next
    // machine's head; decisions are taken on the phase-1 stacks.
    let used = stacks.len();
    let mut moved: Vec<Vec<It>> = vec![Vec::new(); used];
    for u in 0..used.saturating_sub(1) {
        let total: u64 = stacks[u].iter().map(|it| len_of(inst, it)).sum();
        if Rational::from(total) > t_min {
            let last = stacks[u].pop().expect("overfull machine has items");
            match last {
                It::Setup(_) => moved[u + 1].push(last),
                It::Job(_, c) => {
                    moved[u + 1].push(It::Setup(c));
                    moved[u + 1].push(last);
                }
            }
        }
    }
    for (u, mut head) in moved.into_iter().enumerate() {
        if !head.is_empty() {
            head.extend(stacks[u].iter().copied());
            stacks[u] = head;
        }
    }
    // Coverage repair: when a machine's load hit T_min *exactly*, nothing was
    // moved, and the next machine may open with naked jobs mid-class — insert
    // the missing setup (at most one per machine, so the 2·T_min bound keeps).
    for stack in &mut stacks {
        let mut configured: Option<usize> = None;
        let mut fix = None;
        for (idx, it) in stack.iter().enumerate() {
            match *it {
                It::Setup(c) => configured = Some(c),
                It::Job(_, c) => {
                    if configured != Some(c) {
                        fix = Some((idx, c));
                        break;
                    }
                }
            }
        }
        if let Some((idx, c)) = fix {
            stack.insert(idx, It::Setup(c));
        }
    }
    // Drop unnecessary trailing setups.
    for stack in &mut stacks {
        while matches!(stack.last(), Some(It::Setup(_))) {
            stack.pop();
        }
    }
    let schedule = stacks_to_schedule(inst, &stacks);
    trace.snap("phase 2: repaired", &schedule);
    return schedule;

    fn stacks_to_schedule(inst: &Instance, stacks: &[Vec<It>]) -> Schedule {
        let mut s = Schedule::new(inst.machines());
        for (u, stack) in stacks.iter().enumerate() {
            let mut t = Rational::ZERO;
            for it in stack {
                match *it {
                    It::Setup(c) => {
                        let len = Rational::from(inst.setup(c));
                        s.push_setup(u, t, len, c);
                        t += len;
                    }
                    It::Job(j, c) => {
                        let len = Rational::from(inst.job(j).time);
                        s.push_piece(u, t, len, j, c);
                        t += len;
                    }
                }
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use bss_instance::InstanceBuilder;
    use bss_schedule::validate;

    use super::*;

    fn check_two_approx(inst: &Instance) {
        // Splittable.
        let cs = splittable_two_approx(inst);
        let s = cs.expand().expect("in range");
        let v = validate(&s, inst, Variant::Splittable);
        assert!(v.is_empty(), "splittable: {v:?}");
        let bound = LowerBounds::of(inst).tmin(Variant::Splittable) * 2u64;
        assert!(s.makespan() <= bound, "{} > {}", s.makespan(), bound);

        // Non-preemptive / preemptive.
        let s = greedy_two_approx(inst, &mut Trace::disabled());
        for variant in [Variant::NonPreemptive, Variant::Preemptive] {
            let v = validate(&s, inst, variant);
            assert!(v.is_empty(), "{variant}: {v:?}");
        }
        let bound = LowerBounds::of(inst).tmin(Variant::NonPreemptive) * 2u64;
        assert!(s.makespan() <= bound, "{} > {}", s.makespan(), bound);
    }

    #[test]
    fn single_class_single_machine() {
        let mut b = InstanceBuilder::new(1);
        b.add_batch(5, &[3, 4, 5]);
        check_two_approx(&b.build().unwrap());
    }

    #[test]
    fn figure7_shape() {
        // m = c = 5 like the paper's Figure 7.
        let mut b = InstanceBuilder::new(5);
        b.add_batch(9, &[14, 11, 8]);
        b.add_batch(7, &[13, 9, 6]);
        b.add_batch(11, &[16, 7]);
        b.add_batch(6, &[12, 10, 5]);
        b.add_batch(8, &[15, 9]);
        check_two_approx(&b.build().unwrap());
    }

    #[test]
    fn many_machines_few_jobs() {
        let mut b = InstanceBuilder::new(20);
        b.add_batch(2, &[1, 1]);
        b.add_batch(3, &[4]);
        check_two_approx(&b.build().unwrap());
    }

    #[test]
    fn huge_setup_dominates() {
        let mut b = InstanceBuilder::new(3);
        b.add_batch(1000, &[1, 1, 1]);
        b.add_batch(1, &[2, 2]);
        check_two_approx(&b.build().unwrap());
    }

    #[test]
    fn trace_captures_both_phases() {
        let mut b = InstanceBuilder::new(5);
        b.add_batch(9, &[14, 11, 8]);
        b.add_batch(7, &[13, 9, 6]);
        b.add_batch(11, &[16, 7]);
        b.add_batch(6, &[12, 10, 5]);
        b.add_batch(8, &[15, 9]);
        let inst = b.build().unwrap();
        let mut trace = Trace::enabled();
        let _ = greedy_two_approx(&inst, &mut trace);
        assert_eq!(trace.steps().len(), 2);
    }

    #[test]
    fn randomized_suite() {
        for seed in 0..30 {
            let inst = bss_gen::uniform(60, 8, 4, seed);
            check_two_approx(&inst);
        }
        for seed in 0..10 {
            check_two_approx(&bss_gen::expensive_setups(30, 3, seed));
            check_two_approx(&bss_gen::single_job_batches(25, 5, seed));
        }
    }
}
