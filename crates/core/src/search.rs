//! Generic search drivers over dual approximation tests.
//!
//! A ρ-dual approximation algorithm (Hochbaum–Shmoys) takes a guess `T` and
//! either *rejects* it — certifying `T < OPT` — or builds a schedule of
//! makespan at most `ρT`. The paper turns its 3/2-dual algorithms into full
//! approximations three ways:
//!
//! * [`epsilon_search`]: plain binary search on `[T_min, 2·T_min]` down to a
//!   relative gap `ε` — Theorem 2's `(3/2+ε)`-approximation in `O(n log 1/ε)`;
//! * [`integer_search`]: for the non-preemptive variant `OPT` is integral, so
//!   an exact integer binary search yields a true 3/2-approximation in
//!   `⌈log(T_min)⌉` probes — Theorem 8;
//! * Class Jumping (in the per-variant modules) replaces the geometric search
//!   with a jump-structure search for the splittable and preemptive variants.

use bss_budget::{Interrupt, SolveBudget};
use bss_rational::{gcd, Rational};

/// Outcome of a dual-approximation search.
#[derive(Debug, Clone)]
pub struct SearchOutcome<S> {
    /// The accepted guess; the schedule's makespan is at most `ρ ·
    /// accepted`.
    pub accepted: Rational,
    /// The schedule built at `accepted`.
    pub schedule: S,
    /// The largest guess the dual test rejected, if any — a certificate that
    /// `OPT > rejected`.
    pub rejected: Option<Rational>,
    /// Number of dual-test probes performed (for the running-time studies).
    pub probes: usize,
}

/// The search bracket `[lo, hi]` plus the termination gap, held as plain
/// integers over one shared denominator (a `Guess`-style representation).
///
/// The binary-search loop then needs only integer comparisons and shifts:
/// no gcd, no rational re-normalization per iteration. A rational is
/// materialized (one gcd) only at the probe points, where it is dwarfed by
/// the `O(n)` dual test it feeds. Midpoints double the denominator at most
/// once per iteration; when that would leave the `i128` headroom the bracket
/// renormalizes by the common gcd, matching the overflow discipline (and
/// panic behaviour) of [`Rational`] itself.
#[derive(Clone)]
pub(crate) struct Bracket {
    lo: i128,
    hi: i128,
    gap: i128,
    den: i128,
    mid: i128,
}

impl Bracket {
    pub(crate) fn new(lo: Rational, hi: Rational, gap: Rational) -> Bracket {
        Self::try_new(lo, hi, gap).expect("Rational overflow in search bracket")
    }

    /// [`Bracket::new`] without the overflow panic — the speculative planner
    /// must not fail on brackets the committed search might never construct.
    pub(crate) fn try_new(lo: Rational, hi: Rational, gap: Rational) -> Option<Bracket> {
        let den = lcm(lo.denom(), hi.denom()).and_then(|d| lcm(d, gap.denom()))?;
        let scale = |r: Rational| r.numer().checked_mul(den / r.denom());
        Some(Bracket {
            lo: scale(lo)?,
            hi: scale(hi)?,
            gap: scale(gap)?,
            den,
            mid: 0,
        })
    }

    /// `hi - lo > gap` — the loop condition, a pure integer comparison.
    pub(crate) fn is_wide(&self) -> bool {
        self.hi - self.lo > self.gap
    }

    /// Computes the midpoint, remembers it for [`Bracket::accept_mid`] /
    /// [`Bracket::reject_mid`], and exposes it as a reduced [`Rational`].
    pub(crate) fn split(&mut self) -> Rational {
        self.try_split()
            .expect("Rational overflow in search bracket")
    }

    /// [`Bracket::split`] without the overflow panic (again for the
    /// speculative planner; the committed walk keeps the panicking form so
    /// its behaviour matches the sequential search exactly).
    pub(crate) fn try_split(&mut self) -> Option<Rational> {
        loop {
            if let Some(sum) = self.lo.checked_add(self.hi) {
                if sum % 2 == 0 {
                    self.mid = sum / 2;
                    return Some(Rational::new(self.mid, self.den));
                }
                // Odd sum: double every component so the midpoint is exact.
                if let (Some(d), Some(l), Some(h), Some(g)) = (
                    self.den.checked_mul(2),
                    self.lo.checked_mul(2),
                    self.hi.checked_mul(2),
                    self.gap.checked_mul(2),
                ) {
                    self.den = d;
                    self.lo = l;
                    self.hi = h;
                    self.gap = g;
                    self.mid = sum; // (2·lo + 2·hi) / 2
                    return Some(Rational::new(self.mid, self.den));
                }
            }
            if !self.renormalize() {
                return None;
            }
        }
    }

    pub(crate) fn accept_mid(&mut self) {
        self.hi = self.mid;
    }

    pub(crate) fn reject_mid(&mut self) {
        self.lo = self.mid;
    }

    pub(crate) fn lo_rational(&self) -> Rational {
        Rational::new(self.lo, self.den)
    }

    pub(crate) fn hi_rational(&self) -> Rational {
        Rational::new(self.hi, self.den)
    }

    /// Divides every component by their common gcd to regain headroom;
    /// `false` when the components share no factor — the exact value
    /// genuinely leaves `i128`, exactly as plain [`Rational`] arithmetic
    /// would (callers turn that into the panic or a planning stop).
    fn renormalize(&mut self) -> bool {
        let g = gcd(gcd(self.lo, self.hi), gcd(self.gap, self.den));
        if g <= 1 {
            return false;
        }
        self.lo /= g;
        self.hi /= g;
        self.gap /= g;
        self.den /= g;
        true
    }
}

/// `lcm(a, b)` for positive denominators; `None` on overflow.
fn lcm(a: i128, b: i128) -> Option<i128> {
    (a / gcd(a, b)).checked_mul(b)
}

/// Outcome of a probe-only search: the guess bracket, without a schedule.
///
/// The searches probe with the `O(n)`-or-better dual *test* and leave
/// schedule construction to the caller, who builds **exactly once**, at
/// `accepted` — the compact-first pipeline never constructs per-probe
/// schedules that are immediately thrown away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeOutcome<T> {
    /// The smallest guess the search certified acceptable; a builder run at
    /// this guess must succeed (the dual algorithms are deterministic in
    /// `T`).
    pub accepted: T,
    /// The largest rejected guess, if any — a certificate that
    /// `OPT > rejected`.
    pub rejected: Option<T>,
    /// Number of dual-test probes performed.
    pub probes: usize,
}

/// Binary search on `[t_min, 2 t_min]` until the bracket is narrower than
/// `eps * t_min` (Theorem 2).
///
/// `accepts` is the dual test (`false` certifies `T < OPT`). Preconditions:
/// `t_min <= OPT` and `accepts(2 t_min)` holds (both follow from Theorem 1).
///
/// The returned `accepted` satisfies `accepted < (1 + eps) · OPT`, so a
/// ρ-dual schedule built there is a `ρ(1+ε)`-approximation.
pub fn epsilon_search(
    t_min: Rational,
    eps: Rational,
    accepts: impl FnMut(Rational) -> bool,
) -> ProbeOutcome<Rational> {
    assert!(t_min.is_positive() && eps.is_positive());
    epsilon_search_between(t_min, t_min * 2u64, eps * t_min, accepts)
}

/// Outcome of a budgeted probe search: the (possibly early-stopped) bracket
/// plus the interrupt that stopped it, if any.
///
/// When `interrupt` is `Some`, the search wound down early; `accepted` is
/// still a guess the builder is guaranteed to realize (the current right
/// bracket, maintained accepted throughout), and `rejected` carries only
/// *genuinely certified* rejections — an interrupted search never
/// extrapolates its certificate from unprobed guesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetedProbe<T> {
    /// The search bracket as of completion or interruption.
    pub outcome: ProbeOutcome<T>,
    /// Why the search stopped early, if it did.
    pub interrupt: Option<Interrupt>,
}

/// [`epsilon_search`] over an explicit bracket `[t_lo, t_hi]` with absolute
/// termination gap `gap` — the generic driver for problems whose guaranteed
/// upper seed is not `2·T_min` (heuristic duals seed with their own safe
/// guess; see `Problem::search_hi`).
///
/// Preconditions: `t_lo <= t_hi` and `accepts(t_hi)` holds (asserted on the
/// paths that reach it).
pub fn epsilon_search_between(
    t_lo: Rational,
    t_hi: Rational,
    gap: Rational,
    accepts: impl FnMut(Rational) -> bool,
) -> ProbeOutcome<Rational> {
    epsilon_search_between_budgeted(t_lo, t_hi, gap, &SolveBudget::unlimited(), accepts).outcome
}

/// [`epsilon_search_between`] under a cooperative [`SolveBudget`]: one work
/// unit is charged *before* each probe, and an exceeded budget stops the
/// search at its current bracket instead of narrowing further.
///
/// Under an unlimited budget the probe sequence (and thus the outcome) is
/// bit-identical to [`epsilon_search_between`] — the plain driver is this
/// function. On interruption the returned `accepted` is the current right
/// bracket (the precondition seed `t_hi` when nothing was probed yet), which
/// the caller's builder is guaranteed to realize.
pub fn epsilon_search_between_budgeted(
    t_lo: Rational,
    t_hi: Rational,
    gap: Rational,
    budget: &SolveBudget,
    mut accepts: impl FnMut(Rational) -> bool,
) -> BudgetedProbe<Rational> {
    assert!(t_lo.is_positive() && gap.is_positive() && t_lo <= t_hi);
    let mut probes = 0;
    if let Err(i) = budget.charge_probe() {
        return BudgetedProbe {
            outcome: ProbeOutcome {
                accepted: t_hi,
                rejected: None,
                probes,
            },
            interrupt: Some(i),
        };
    }
    probes = 1;
    if accepts(t_lo) {
        // t_lo <= OPT, so a build here is even a clean ρ-approximation.
        return BudgetedProbe {
            outcome: ProbeOutcome {
                accepted: t_lo,
                rejected: None,
                probes,
            },
            interrupt: None,
        };
    }
    // lo rejected; hi accepted by precondition.
    let mut bracket = Bracket::new(t_lo, t_hi, gap);
    if let Err(i) = budget.charge_probe() {
        return BudgetedProbe {
            outcome: ProbeOutcome {
                accepted: t_hi,
                rejected: Some(t_lo),
                probes,
            },
            interrupt: Some(i),
        };
    }
    probes += 1;
    assert!(
        accepts(bracket.hi_rational()),
        "the search's upper seed must be accepted"
    );
    let mut interrupt = None;
    while bracket.is_wide() {
        let mid = bracket.split();
        if let Err(i) = budget.charge_probe() {
            interrupt = Some(i);
            break;
        }
        probes += 1;
        if accepts(mid) {
            bracket.accept_mid();
        } else {
            bracket.reject_mid();
        }
    }
    BudgetedProbe {
        outcome: ProbeOutcome {
            accepted: bracket.hi_rational(),
            rejected: Some(bracket.lo_rational()),
            probes,
        },
        interrupt,
    }
}

/// Counters of a warm-started search, in the style of
/// [`crate::ParSearchStats`]: how much probing the previous solve's bracket
/// saved. The solution's `probes` field carries `probes` (dual tests
/// genuinely run); `skipped` is the savings.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WarmStats {
    /// Dual probes genuinely evaluated (hint seeding plus memo misses).
    pub probes: usize,
    /// Bisection queries answered from the monotonicity memo for free — the
    /// cold search would have probed each of these.
    pub skipped: usize,
    /// Of `probes`, how many seeded the memo at the hint points.
    pub seed_probes: usize,
    /// Whether the warm path ran at all (`false` when the algorithm has no
    /// warm form and the solve delegated to the cold path).
    pub warmed: bool,
}

/// The monotonicity memo of a warm search: a probed acceptance at `t`
/// proves acceptance for every `t' >= t`, a probed rejection for every
/// `t' <= t` — the same monotonicity of the dual tests in `T` that makes
/// bisection meaningful in the first place. Memo answers are therefore
/// implied by *actual probe outcomes on this instance*: a wrong hint costs
/// extra probes, never a wrong answer.
#[derive(Default)]
struct WarmMemo {
    proven_accept: Option<Rational>,
    proven_reject: Option<Rational>,
    probes: usize,
    skipped: usize,
}

impl WarmMemo {
    fn resolve(&mut self, t: Rational, accepts: &mut impl FnMut(Rational) -> bool) -> bool {
        if self.proven_accept.is_some_and(|pa| t >= pa) {
            self.skipped += 1;
            return true;
        }
        if self.proven_reject.is_some_and(|pr| t <= pr) {
            self.skipped += 1;
            return false;
        }
        self.probes += 1;
        let ok = accepts(t);
        if ok {
            self.proven_accept = Some(self.proven_accept.map_or(t, |pa| pa.min(t)));
        } else {
            self.proven_reject = Some(self.proven_reject.map_or(t, |pr| pr.max(t)));
        }
        ok
    }
}

/// [`epsilon_search_between`] seeded by a previous solve's accepted bracket:
/// the warm-start re-solve driver for small instance deltas.
///
/// The search replays the **exact** cold bisection, answering each query
/// from a monotonicity memo when its outcome is already proven and probing
/// otherwise. The memo is seeded by probing the hint points `hint_hi` and
/// `hint_lo` (the previous bracket widened by the delta's load change,
/// clamped into `[t_lo, t_hi]`; a rejection at `hint_hi` certifies
/// rejection at `hint_lo` for free) — but only once the cold flow's first
/// query has certified a genuine bisection, so an immediate-accept solve
/// stays exactly one probe, hint or no hint. Because the replayed control flow is the
/// cold algorithm and memo answers equal what the probe would return (the
/// memo exploits the dual test's monotonicity: a probed acceptance at `t`
/// certifies every `t' >= t`, a rejection every `t' <= t`), the returned
/// bracket — `accepted`, `rejected`, and hence
/// the built schedule and certificate — is **bit-identical** to
/// [`epsilon_search_between`] on the same inputs; only the number of probes
/// actually evaluated differs. A hint that brackets the new optimum tightly
/// answers most bisection queries from the two seed probes; a useless hint
/// degrades to the cold probe count plus at most two seeds.
///
/// The returned outcome's `probes` field counts genuinely evaluated probes
/// (equal to `stats.probes`); `stats.skipped` counts the memo's free
/// answers — the cold search's probe count is `probes + skipped` whenever
/// the seeds resolved every hint-side query, and at most that otherwise.
pub fn epsilon_search_between_warm(
    t_lo: Rational,
    t_hi: Rational,
    gap: Rational,
    hint_lo: Rational,
    hint_hi: Rational,
    mut accepts: impl FnMut(Rational) -> bool,
) -> (ProbeOutcome<Rational>, WarmStats) {
    assert!(t_lo.is_positive() && gap.is_positive() && t_lo <= t_hi);
    let mut memo = WarmMemo::default();
    // Clamp the hints into the search window and order them.
    let hint_hi = hint_hi.min(t_hi).max(t_lo);
    let hint_lo = hint_lo.max(t_lo).min(hint_hi);
    let mut seed_probes = 0;

    // The cold `epsilon_search_between` control flow, query for query, with
    // `memo.resolve` in place of the raw probe. The first query (`t_lo`)
    // runs *before* any hint seeding: an immediate-accept solve must stay
    // exactly one probe, hint or no hint.
    let outcome = if memo.resolve(t_lo, &mut accepts) {
        ProbeOutcome {
            accepted: t_lo,
            rejected: None,
            probes: 0,
        }
    } else {
        // A genuine bisection: seed the memo with real probe outcomes at
        // the hint points. Probing the top first lets a stale hint (new
        // OPT above the old bracket) skip the bottom seed entirely —
        // rejection at `hint_hi` already covers it. Hints that clamp onto
        // `t_lo` resolve from the memo and cost nothing.
        let skipped_pre = memo.skipped;
        let probes_pre = memo.probes;
        if memo.resolve(hint_hi, &mut accepts) && hint_lo < hint_hi {
            memo.resolve(hint_lo, &mut accepts);
        }
        seed_probes = memo.probes - probes_pre;
        memo.skipped = skipped_pre; // seed dedup is not a bisection saving

        let mut bracket = Bracket::new(t_lo, t_hi, gap);
        assert!(
            memo.resolve(bracket.hi_rational(), &mut accepts),
            "the search's upper seed must be accepted"
        );
        while bracket.is_wide() {
            let mid = bracket.split();
            if memo.resolve(mid, &mut accepts) {
                bracket.accept_mid();
            } else {
                bracket.reject_mid();
            }
        }
        ProbeOutcome {
            accepted: bracket.hi_rational(),
            rejected: Some(bracket.lo_rational()),
            probes: 0,
        }
    };
    let stats = WarmStats {
        probes: memo.probes,
        skipped: memo.skipped,
        seed_probes,
        warmed: true,
    };
    (
        ProbeOutcome {
            probes: memo.probes,
            ..outcome
        },
        stats,
    )
}

/// Exact binary search over integral makespans in `[t_lo, t_hi]` (Theorem 8).
///
/// Preconditions: `OPT` is an integer with `t_lo <= OPT` and `accepts(t_hi)`
/// holds. Maintains the invariant "`lo` rejected ⇒ `OPT >= lo + 1`", so the
/// returned `accepted` is `<= OPT` and a ρ-dual schedule built there a clean
/// ρ-approximation.
pub fn integer_search(t_lo: u64, t_hi: u64, accepts: impl FnMut(u64) -> bool) -> ProbeOutcome<u64> {
    integer_search_budgeted(t_lo, t_hi, &SolveBudget::unlimited(), accepts).outcome
}

/// [`integer_search`] under a cooperative [`SolveBudget`] — same contract as
/// [`epsilon_search_between_budgeted`]: bit-identical when unlimited, stops
/// at the current (still accepted) right bracket on interruption, and the
/// certificate only ever reflects genuinely probed rejections.
pub fn integer_search_budgeted(
    t_lo: u64,
    t_hi: u64,
    budget: &SolveBudget,
    mut accepts: impl FnMut(u64) -> bool,
) -> BudgetedProbe<u64> {
    assert!(t_lo <= t_hi);
    let mut probes = 0;
    if let Err(i) = budget.charge_probe() {
        return BudgetedProbe {
            outcome: ProbeOutcome {
                accepted: t_hi,
                rejected: None,
                probes,
            },
            interrupt: Some(i),
        };
    }
    probes = 1;
    if accepts(t_lo) {
        return BudgetedProbe {
            outcome: ProbeOutcome {
                accepted: t_lo,
                rejected: None,
                probes,
            },
            interrupt: None,
        };
    }
    let mut lo = t_lo; // rejected
    let mut hi = t_hi;
    if let Err(i) = budget.charge_probe() {
        return BudgetedProbe {
            outcome: ProbeOutcome {
                accepted: hi,
                rejected: Some(lo),
                probes,
            },
            interrupt: Some(i),
        };
    }
    probes += 1;
    assert!(accepts(hi), "upper bound must be accepted");
    let mut interrupt = None;
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if let Err(i) = budget.charge_probe() {
            interrupt = Some(i);
            break;
        }
        probes += 1;
        if accepts(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    BudgetedProbe {
        outcome: ProbeOutcome {
            accepted: hi,
            rejected: Some(lo),
            probes,
        },
        interrupt,
    }
}

/// Narrows a right interval `(lo, hi]` (`lo` rejected, `hi` accepted) over a
/// *sorted* list of candidate guesses strictly inside `(lo, hi)`, probing
/// with binary search. Returns the narrowed `(lo, hi)` bracket with no
/// candidate strictly inside.
///
/// Used by the Class-Jumping searches, where candidates are partition
/// boundaries or class jumps. Probes are counted by the caller's `accepts`
/// closure alone — this function deliberately returns no count of its own,
/// so the two can never be added together again (the double-counting bug
/// the repro goldens flushed out).
pub fn refine_right_interval(
    lo: Rational,
    hi: Rational,
    candidates: &[Rational],
    mut accepts: impl FnMut(Rational) -> bool,
) -> (Rational, Rational) {
    refine_right_interval_opt(lo, hi, candidates, |t| Some(accepts(t)))
}

/// [`refine_right_interval`] with an *interruptible* probe: a `None` from
/// `accepts` (the budgeted probes' "budget exceeded" signal) stops the
/// refinement immediately. The bracket then reflects exactly the probes that
/// genuinely ran — `lo` moves only past candidates whose rejection the
/// binary-search invariant certifies (probed, or below a probed rejection),
/// and `hi` only onto candidates probed accepted — so the right-bracket
/// invariant (`lo` certified rejected, `hi` accepted) survives interruption.
///
/// When `accepts` never returns `None` the probe sequence and result are
/// bit-identical to [`refine_right_interval`] (which is implemented on this
/// driver).
pub fn refine_right_interval_opt(
    mut lo: Rational,
    mut hi: Rational,
    candidates: &[Rational],
    mut accepts: impl FnMut(Rational) -> Option<bool>,
) -> (Rational, Rational) {
    debug_assert!(candidates.windows(2).all(|w| w[0] < w[1]), "sorted unique");
    // Candidates strictly inside (lo, hi).
    let begin = candidates.partition_point(|c| *c <= lo);
    let end = candidates.partition_point(|c| *c < hi);
    if begin >= end {
        return (lo, hi);
    }
    let cands = &candidates[begin..end];
    // Find the leftmost accepted candidate, exploiting that everything left
    // of a rejected candidate stays bracketed by `lo`.
    let mut l = 0usize; // cands[..l] rejected region boundary
    let mut r = cands.len(); // cands[r..] accepted region boundary
    let mut leftmost_accept: Option<usize> = None;
    while l < r {
        let mid = l + (r - l) / 2;
        match accepts(cands[mid]) {
            Some(true) => {
                leftmost_accept = Some(mid);
                r = mid;
            }
            Some(false) => l = mid + 1,
            None => break,
        }
    }
    // Finalize from the binary-search invariants alone; they hold both at
    // completion (l == r) and at an interruption (l < r): `cands[..l]` are
    // certified rejected (monotone acceptance below the probed rejection at
    // `l - 1`), `leftmost_accept` was probed accepted.
    if l > 0 {
        lo = cands[l - 1];
    }
    if let Some(idx) = leftmost_accept {
        hi = cands[idx];
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(v: i128) -> Rational {
        Rational::from_int(v)
    }

    /// A fake dual test: accepts exactly T >= threshold.
    fn fake(threshold: Rational) -> impl FnMut(Rational) -> bool {
        move |t| t >= threshold
    }

    #[test]
    fn epsilon_search_converges() {
        // OPT = 137, T_min = 100.
        let out = epsilon_search(r(100), Rational::new(1, 100), fake(r(137)));
        assert!(out.accepted >= r(137));
        assert!(out.accepted <= r(138)); // within eps * t_min = 1
        assert!(out.rejected.unwrap() < r(137));
        assert!(out.probes <= 12);
    }

    #[test]
    fn epsilon_search_immediate_accept() {
        let out = epsilon_search(r(100), Rational::new(1, 10), fake(r(50)));
        assert_eq!(out.accepted, r(100));
        assert_eq!(out.rejected, None);
        assert_eq!(out.probes, 1);
    }

    #[test]
    fn epsilon_probe_count_scales_with_log_inv_eps() {
        let coarse = epsilon_search(r(1000), Rational::new(1, 4), fake(r(1999)));
        let fine = epsilon_search(r(1000), Rational::new(1, 4096), fake(r(1999)));
        assert!(coarse.probes < fine.probes);
        assert!(fine.probes <= 16);
    }

    /// A counting fake dual: accepts T >= threshold, tallying evaluations.
    fn counting_fake(threshold: Rational, count: &mut usize) -> impl FnMut(Rational) -> bool + '_ {
        move |t| {
            *count += 1;
            t >= threshold
        }
    }

    /// The warm search with any hint — tight, loose, stale, inverted —
    /// returns the cold search's exact bracket.
    #[test]
    fn warm_search_bracket_is_bit_identical_to_cold_for_any_hint() {
        let (t_lo, t_hi, gap) = (r(100), r(200), r(1));
        for threshold in [101, 137, 150, 199] {
            let cold = epsilon_search_between(t_lo, t_hi, gap, fake(r(threshold)));
            for (hint_lo, hint_hi) in [
                (r(threshold - 1), r(threshold + 1)), // tight and correct
                (r(100), r(200)),                     // the whole window
                (r(1), r(5)),                         // stale, below the window
                (r(500), r(900)),                     // stale, above the window
                (r(190), r(110)),                     // inverted
            ] {
                let (warm, stats) = epsilon_search_between_warm(
                    t_lo,
                    t_hi,
                    gap,
                    hint_lo,
                    hint_hi,
                    fake(r(threshold)),
                );
                assert_eq!(warm.accepted, cold.accepted);
                assert_eq!(warm.rejected, cold.rejected);
                assert!(stats.warmed);
                assert_eq!(warm.probes, stats.probes);
                // A warm solve never probes more than cold + the two seeds.
                assert!(stats.probes <= cold.probes + 2);
            }
        }
    }

    /// Immediate-accept replays identically too (accepted = t_lo, no
    /// rejection certificate).
    #[test]
    fn warm_search_immediate_accept_matches_cold() {
        let cold = epsilon_search_between(r(100), r(200), r(1), fake(r(50)));
        let (warm, _) =
            epsilon_search_between_warm(r(100), r(200), r(1), r(90), r(110), fake(r(50)));
        assert_eq!(warm.accepted, cold.accepted);
        assert_eq!(warm.rejected, cold.rejected);
        assert_eq!(warm.accepted, r(100));
        assert_eq!(warm.rejected, None);
    }

    /// A tight hint answers most bisection queries from the two seed
    /// probes: the savings the online layer is built on.
    #[test]
    fn tight_hint_probes_a_fraction_of_cold() {
        let threshold = r(137);
        let gap = Rational::new(1, 1 << 20); // deep search: many cold probes
        let mut cold_evals = 0;
        let cold = epsilon_search_between(
            r(100),
            r(200),
            gap,
            counting_fake(threshold, &mut cold_evals),
        );
        let mut warm_evals = 0;
        let (warm, stats) = epsilon_search_between_warm(
            r(100),
            r(200),
            gap,
            cold.rejected.unwrap(),
            cold.accepted,
            counting_fake(threshold, &mut warm_evals),
        );
        assert_eq!(warm.accepted, cold.accepted);
        assert_eq!(warm.rejected, cold.rejected);
        // The previous bracket is gap-narrow, so the replayed bisection
        // resolves every query from the memo until it re-enters the hint
        // interval: only the two seeds plus O(1) boundary probes run.
        assert_eq!(warm_evals, stats.probes);
        assert_eq!(stats.seed_probes, 2);
        assert!(
            stats.probes <= 4,
            "expected nearly free replay, ran {} probes",
            stats.probes
        );
        assert!(stats.skipped >= cold.probes - stats.probes);
        assert!(cold_evals == cold.probes);
    }

    /// A wrong hint degrades probe count, never the answer, and is bounded
    /// by cold + seeds.
    #[test]
    fn useless_hint_costs_at_most_the_two_seeds() {
        let threshold = r(137);
        let cold = epsilon_search_between(r(100), r(200), r(1), fake(threshold));
        let (warm, stats) =
            epsilon_search_between_warm(r(100), r(200), r(1), r(1), r(2), fake(threshold));
        assert_eq!(warm.accepted, cold.accepted);
        assert_eq!(warm.rejected, cold.rejected);
        // Both hints clamp to t_lo = 100, whose rejection the replay's own
        // first query already proved: the seeds resolve from the memo for
        // free and the warm search degrades to exactly the cold one.
        assert_eq!(stats.seed_probes, 0);
        assert_eq!(stats.probes, cold.probes);
    }

    #[test]
    fn integer_search_is_exact() {
        let threshold = 137u64;
        let out = integer_search(100, 200, |t| t >= threshold);
        assert_eq!(out.accepted, 137);
        assert_eq!(out.rejected, Some(136));
    }

    #[test]
    fn integer_search_immediate() {
        let out = integer_search(100, 200, |_| true);
        assert_eq!(out.accepted, 100);
        assert_eq!(out.rejected, None);
    }

    #[test]
    fn refine_narrows_to_candidate_free_bracket() {
        let threshold = r(57);
        let cands = vec![r(20), r(40), r(60), r(80)];
        let accepts = |t: Rational| t >= threshold;
        let (lo, hi) = refine_right_interval(r(10), r(100), &cands, accepts);
        // No candidate strictly inside (lo, hi); bracket still brackets 57.
        assert_eq!((lo, hi), (r(40), r(60)));
    }

    #[test]
    fn refine_all_rejected() {
        let cands = vec![r(20), r(40)];
        let (lo, hi) = refine_right_interval(r(10), r(100), &cands, |t| t >= r(99));
        assert_eq!((lo, hi), (r(40), r(100)));
    }

    #[test]
    fn refine_all_accepted() {
        let cands = vec![r(20), r(40)];
        let (lo, hi) = refine_right_interval(r(10), r(100), &cands, |t| t >= r(15));
        assert_eq!((lo, hi), (r(10), r(20)));
    }

    #[test]
    fn refine_ignores_outside_candidates() {
        let cands = vec![r(5), r(10), r(50), r(100), r(120)];
        let (lo, hi) = refine_right_interval(r(10), r(100), &cands, |t| t >= r(60));
        assert_eq!((lo, hi), (r(50), r(100)));
    }
}
