//! Step-by-step instrumentation of the dual algorithms.
//!
//! The paper's figures show the schedule *after individual algorithm steps*
//! (e.g. Figure 1(a) = splittable step 1, Figures 10–13 = non-preemptive
//! steps 1–4). Builders accept a [`Trace`] and snapshot the partial schedule
//! at each step boundary; a disabled trace is a no-op so the hot path pays a
//! branch, not a clone.

use bss_schedule::Schedule;

/// Collects named schedule snapshots.
#[derive(Debug, Default)]
pub struct Trace {
    enabled: bool,
    steps: Vec<(String, Schedule)>,
}

impl Trace {
    /// A trace that records snapshots.
    #[must_use]
    pub fn enabled() -> Self {
        Trace {
            enabled: true,
            steps: Vec::new(),
        }
    }

    /// A no-op trace (the default).
    #[must_use]
    pub fn disabled() -> Self {
        Trace::default()
    }

    /// `true` if snapshots are recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records a snapshot (clones only when enabled).
    pub fn snap(&mut self, label: impl Into<String>, schedule: &Schedule) {
        if self.enabled {
            self.steps.push((label.into(), schedule.clone()));
        }
    }

    /// The recorded `(label, snapshot)` pairs.
    #[must_use]
    pub fn steps(&self) -> &[(String, Schedule)] {
        &self.steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.snap("step", &Schedule::new(1));
        assert!(t.steps().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let mut t = Trace::enabled();
        t.snap("a", &Schedule::new(1));
        t.snap("b", &Schedule::new(2));
        let labels: Vec<&str> = t.steps().iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(labels, vec!["a", "b"]);
    }
}
