//! Speculative parallel search drivers: the sequential bisections of
//! [`crate::search`], executed as wavefronts of speculative probes on worker
//! threads — **bit-identical** outcome and probe accounting to the
//! sequential searches at every thread count.
//!
//! # How determinism survives parallelism
//!
//! A binary search is a path through a decision tree: each probed midpoint
//! has exactly two successors (the midpoints after an accept and after a
//! reject), and the sequential search walks one root-to-leaf path. The
//! parallel driver exploits that the *whole tree* is known in advance:
//!
//! 1. **Plan.** From the current bracket it expands the next `k` tree nodes
//!    in BFS order (`k` = thread count), each node carrying the exact
//!    midpoint the sequential search would probe on that path, plus a link
//!    to its parent and the parent outcome that leads to it.
//! 2. **Speculate.** Worker threads — each owning its own
//!    [`DualWorkspace`] — claim nodes through an atomic cursor and probe
//!    them. A node whose already-published ancestor outcome contradicts its
//!    path is dead (the sequential search can never reach it) and is
//!    skipped at claim time; when the committed walk retires a wavefront
//!    early, its [`CancelToken`] kills the remaining losers the same way.
//! 3. **Commit.** The coordinator replays the *sequential* search verbatim
//!    against the published results: it charges the [`SolveBudget`] in
//!    exactly the sequential probe order, consumes each needed result (or
//!    recomputes it inline on the caller's workspace when a worker had to
//!    skip), and steps the master bracket. Only committed probes are
//!    charged or counted — speculative work is free by construction, so
//!    brackets, probe counts, interrupt points and even panic behaviour
//!    match the sequential search bit for bit.
//!
//! The win is wall-clock: with `k` threads a full wavefront resolves
//! `⌊log₂(k+1)⌋` committed bisection levels per probe round (plus one more
//! whenever the committed path stays on the wavefront's deepest planned
//! node), so an ε-search-dominated solve contracts from `L` sequential
//! probe times to roughly `L / log₂(k+1)` rounds. [`ParSearchStats`]
//! reports that critical path, machine-independently.
//!
//! Worker probe panics are *not* propagated eagerly: a speculative loser is
//! a probe the sequential search never runs, so its panic must not surface.
//! A panicking node is recorded as skipped; if the committed walk actually
//! consumes it, the inline recomputation re-raises the panic on the calling
//! thread — exactly where the sequential search would have panicked.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use bss_budget::{CancelToken, SolveBudget};
use bss_rational::Rational;

use crate::search::{Bracket, BudgetedProbe, ProbeOutcome};
use crate::workspace::DualWorkspace;

/// Wavefront accounting of one parallel search — the deterministic
/// critical-path metric the benches report (independent of how many cores
/// the host actually has).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParSearchStats {
    /// Speculative wavefronts published (each costs one probe wall-time
    /// when every worker has a core).
    pub rounds: usize,
    /// Speculative probe slots issued across all wavefronts (committed +
    /// losers).
    pub speculated: usize,
    /// Probes the coordinator recomputed inline because a worker had to
    /// skip the node (budget trip observed worker-side, or a caught panic).
    pub inline: usize,
}

/// The sequential bisection state a wavefront is planned from — implemented
/// by the rational ε-bracket and the Theorem-8 integer bracket, so one
/// driver serves both searches.
trait Bisect: Clone {
    type Guess: Copy + PartialEq + Send + Sync + core::fmt::Debug;
    fn is_wide(&self) -> bool;
    /// The committed split: panics on overflow exactly as the sequential
    /// search does.
    fn split(&mut self) -> Self::Guess;
    /// The planning split: `None` instead of a panic (a speculative path
    /// must not fail where the committed path might never go).
    fn try_split(&mut self) -> Option<Self::Guess>;
    fn accept_mid(&mut self);
    fn reject_mid(&mut self);
    fn lo_guess(&self) -> Self::Guess;
    fn hi_guess(&self) -> Self::Guess;
}

impl Bisect for Bracket {
    type Guess = Rational;
    fn is_wide(&self) -> bool {
        Bracket::is_wide(self)
    }
    fn split(&mut self) -> Rational {
        Bracket::split(self)
    }
    fn try_split(&mut self) -> Option<Rational> {
        Bracket::try_split(self)
    }
    fn accept_mid(&mut self) {
        Bracket::accept_mid(self);
    }
    fn reject_mid(&mut self) {
        Bracket::reject_mid(self);
    }
    fn lo_guess(&self) -> Rational {
        self.lo_rational()
    }
    fn hi_guess(&self) -> Rational {
        self.hi_rational()
    }
}

/// The integer bracket of [`crate::search::integer_search_budgeted`]:
/// `lo` rejected, `hi` accepted, loop while `hi - lo > 1`.
#[derive(Clone)]
struct IntBracket {
    lo: u64,
    hi: u64,
    mid: u64,
}

impl Bisect for IntBracket {
    type Guess = u64;
    fn is_wide(&self) -> bool {
        self.hi - self.lo > 1
    }
    fn split(&mut self) -> u64 {
        self.mid = self.lo + (self.hi - self.lo) / 2;
        self.mid
    }
    fn try_split(&mut self) -> Option<u64> {
        Some(self.split())
    }
    fn accept_mid(&mut self) {
        self.hi = self.mid;
    }
    fn reject_mid(&mut self) {
        self.lo = self.mid;
    }
    fn lo_guess(&self) -> u64 {
        self.lo
    }
    fn hi_guess(&self) -> u64 {
        self.hi
    }
}

const NONE: usize = usize::MAX;

// A node's published result.
const PENDING: u8 = 0;
const ACCEPT: u8 = 1;
const REJECT: u8 = 2;
const SKIP: u8 = 3;

/// One planned speculative probe: the exact guess the sequential search
/// probes on this decision-tree path.
struct SpecNode<G> {
    guess: G,
    /// Index of the node whose outcome leads here (`NONE` for roots).
    parent: usize,
    /// Which parent outcome leads here: `true` = parent accepted.
    expect_accept: bool,
    /// `children[0]` = on-accept successor, `children[1]` = on-reject
    /// (`NONE` when unplanned) — lets the committed walk stay on the
    /// wavefront without searching.
    children: [usize; 2],
}

/// One published wavefront.
struct Round<G> {
    nodes: Vec<SpecNode<G>>,
    results: Vec<AtomicU8>,
    cursor: AtomicUsize,
    /// Cancelled when the committed walk retires this round — unclaimed
    /// losers are skipped instead of probed.
    abort: CancelToken,
}

/// Coordinator ↔ worker handoff: the current round plus lifecycle flags.
struct Handoff<G> {
    epoch: u64,
    shutdown: bool,
    round: Option<Arc<Round<G>>>,
}

struct Engine<'a, G, F> {
    probe: &'a F,
    budget: &'a SolveBudget,
    state: Mutex<Handoff<G>>,
    /// Workers wait here for a new round (or shutdown).
    work_cv: Condvar,
    /// The coordinator waits here for results it needs.
    done_cv: Condvar,
}

impl<'a, G, F> Engine<'a, G, F>
where
    G: Copy + Send + Sync,
    F: Fn(&mut DualWorkspace, G) -> bool + Sync,
{
    fn new(probe: &'a F, budget: &'a SolveBudget) -> Self {
        Engine {
            probe,
            budget,
            state: Mutex::new(Handoff {
                epoch: 0,
                shutdown: false,
                round: None,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        }
    }

    /// Publishes a new wavefront and wakes the workers.
    fn publish(&self, nodes: Vec<SpecNode<G>>) -> Arc<Round<G>> {
        let round = Arc::new(Round {
            results: nodes.iter().map(|_| AtomicU8::new(PENDING)).collect(),
            nodes,
            cursor: AtomicUsize::new(0),
            abort: CancelToken::new(),
        });
        let mut h = self.state.lock().expect("engine lock");
        h.epoch += 1;
        h.round = Some(Arc::clone(&round));
        drop(h);
        self.work_cv.notify_all();
        round
    }

    /// Blocks until node `i` has a published result.
    fn await_result(&self, round: &Round<G>, i: usize) -> u8 {
        let r = round.results[i].load(Ordering::Acquire);
        if r != PENDING {
            return r;
        }
        let mut h = self.state.lock().expect("engine lock");
        loop {
            let r = round.results[i].load(Ordering::Acquire);
            if r != PENDING {
                return r;
            }
            h = self.done_cv.wait(h).expect("engine lock");
        }
    }

    /// Consumes node `i`'s result for the committed walk; a skipped node is
    /// recomputed inline on the caller's workspace (re-raising any panic
    /// exactly where the sequential search would).
    fn consume(
        &self,
        round: &Round<G>,
        i: usize,
        ws: &mut DualWorkspace,
        stats: &mut ParSearchStats,
    ) -> bool {
        match self.await_result(round, i) {
            ACCEPT => true,
            REJECT => false,
            _ => {
                stats.inline += 1;
                (self.probe)(ws, round.nodes[i].guess)
            }
        }
    }

    fn worker(&self) {
        let mut ws = DualWorkspace::new();
        let mut seen = 0u64;
        loop {
            let round = {
                let mut h = self.state.lock().expect("engine lock");
                loop {
                    if h.shutdown {
                        return;
                    }
                    if h.epoch != seen {
                        seen = h.epoch;
                        if let Some(r) = &h.round {
                            break Arc::clone(r);
                        }
                    }
                    h = self.work_cv.wait(h).expect("engine lock");
                }
            };
            loop {
                let i = round.cursor.fetch_add(1, Ordering::Relaxed);
                if i >= round.nodes.len() {
                    break;
                }
                let res = if round.abort.is_cancelled()
                    || !viable(&round, i)
                    || self.budget.poll().is_err()
                {
                    SKIP
                } else {
                    match catch_unwind(AssertUnwindSafe(|| {
                        (self.probe)(&mut ws, round.nodes[i].guess)
                    })) {
                        Ok(true) => ACCEPT,
                        Ok(false) => REJECT,
                        Err(_) => {
                            // A speculative panic must not surface unless the
                            // committed path consumes this node — then the
                            // inline recomputation re-raises it. Reset the
                            // workspace: buffers abandoned mid-probe hold
                            // arbitrary partial state.
                            ws.reset();
                            SKIP
                        }
                    }
                };
                round.results[i].store(res, Ordering::Release);
                // Publish under the lock so a coordinator between its check
                // and its wait cannot miss the wakeup.
                let _h = self.state.lock().expect("engine lock");
                self.done_cv.notify_all();
            }
        }
    }
}

/// Dead-path pruning: a node whose already-published ancestor outcome
/// contradicts the path leading here can never be consumed.
fn viable<G>(round: &Round<G>, mut i: usize) -> bool {
    loop {
        let parent = round.nodes[i].parent;
        if parent == NONE {
            return true;
        }
        let published = round.results[parent].load(Ordering::Acquire);
        let expect = if round.nodes[i].expect_accept {
            ACCEPT
        } else {
            REJECT
        };
        // PENDING and SKIP leave the direction open; only a contradicting
        // probed outcome kills the path.
        if published == ACCEPT || published == REJECT {
            if published != expect {
                return false;
            }
        }
        i = parent;
    }
}

/// Expands the bisection tree from `state` in BFS order (shallow nodes
/// first — they are claimed first and are most likely committed), hanging
/// the root off `(root_parent, root_expect)`, until `capacity` nodes exist.
fn push_tree<B: Bisect>(
    nodes: &mut Vec<SpecNode<B::Guess>>,
    state: &B,
    root_parent: usize,
    root_expect: bool,
    capacity: usize,
) {
    let mut queue: VecDeque<(B, usize, bool)> = VecDeque::new();
    queue.push_back((state.clone(), root_parent, root_expect));
    while nodes.len() < capacity {
        let Some((mut s, parent, expect)) = queue.pop_front() else {
            break;
        };
        if !s.is_wide() {
            continue;
        }
        let Some(guess) = s.try_split() else {
            continue;
        };
        let idx = nodes.len();
        nodes.push(SpecNode {
            guess,
            parent,
            expect_accept: expect,
            children: [NONE, NONE],
        });
        if parent != NONE {
            nodes[parent].children[usize::from(!expect)] = idx;
        }
        let mut acc = s.clone();
        acc.accept_mid();
        queue.push_back((acc, idx, true));
        let mut rej = s;
        rej.reject_mid();
        queue.push_back((rej, idx, false));
    }
}

/// Sets the shutdown flag when the coordinator leaves the scope — normally
/// or by unwinding (an assert or re-raised probe panic) — so the workers
/// always drain and `thread::scope` can join.
struct ShutdownGuard<'s, 'a, G, F>(&'s Engine<'a, G, F>);

impl<G, F> Drop for ShutdownGuard<'_, '_, G, F> {
    fn drop(&mut self) {
        let mut h = self.0.state.lock().expect("engine lock");
        h.shutdown = true;
        if let Some(r) = &h.round {
            r.abort.cancel();
        }
        drop(h);
        self.0.work_cv.notify_all();
    }
}

/// The shared driver: seeds (`t_lo`, then `t_hi`) and the bisection loop,
/// replayed in the exact sequential order against speculative results.
///
/// `planned` is the bracket used for wavefront planning (`None` when its
/// construction would overflow — the committed path then recreates it with
/// the sequential panic behaviour, *after* the `t_lo` probe, exactly as the
/// sequential search does). `make_master` builds the committed bracket.
#[allow(clippy::too_many_arguments)]
fn search_par<B, F>(
    t_lo: B::Guess,
    t_hi: B::Guess,
    threads: usize,
    budget: &SolveBudget,
    ws: &mut DualWorkspace,
    probe: &F,
    planned: Option<B>,
    make_master: impl FnOnce() -> B,
    seed_msg: &'static str,
    stats: &mut ParSearchStats,
) -> BudgetedProbe<B::Guess>
where
    B: Bisect,
    F: Fn(&mut DualWorkspace, B::Guess) -> bool + Sync,
{
    debug_assert!(threads > 1);
    let engine = Engine::new(probe, budget);
    let mut result = None;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| engine.worker());
        }
        let _guard = ShutdownGuard(&engine);

        // Round 0: both seed probes plus the first speculative tree. The
        // tree hangs off the `t_hi` node (committed only after `t_lo`
        // rejected and `t_hi` accepted — the same order the sequential
        // search discovers them in).
        let mut nodes = vec![
            SpecNode {
                guess: t_lo,
                parent: NONE,
                expect_accept: false,
                children: [NONE, NONE],
            },
            SpecNode {
                guess: t_hi,
                parent: 0,
                expect_accept: false,
                children: [NONE, NONE],
            },
        ];
        if let Some(state) = &planned {
            // Seeds resolve in the same wavefront as the first tree levels,
            // so round 0 gets the full `threads` of tree capacity on top.
            push_tree(&mut nodes, state, 1, true, threads + 2);
        }
        stats.rounds += 1;
        stats.speculated += nodes.len();
        let mut round = engine.publish(nodes);

        // --- Sequential replay begins: identical charge/probe order. ---
        let mut probes = 0usize;
        if let Err(i) = budget.charge_probe() {
            result = Some(BudgetedProbe {
                outcome: ProbeOutcome {
                    accepted: t_hi,
                    rejected: None,
                    probes,
                },
                interrupt: Some(i),
            });
            return;
        }
        probes = 1;
        if engine.consume(&round, 0, ws, stats) {
            result = Some(BudgetedProbe {
                outcome: ProbeOutcome {
                    accepted: t_lo,
                    rejected: None,
                    probes,
                },
                interrupt: None,
            });
            return;
        }
        // lo rejected; hi accepted by precondition.
        let mut state = make_master();
        if let Err(i) = budget.charge_probe() {
            result = Some(BudgetedProbe {
                outcome: ProbeOutcome {
                    accepted: t_hi,
                    rejected: Some(t_lo),
                    probes,
                },
                interrupt: Some(i),
            });
            return;
        }
        probes += 1;
        assert!(engine.consume(&round, 1, ws, stats), "{}", seed_msg);
        let mut cur = follow(&round, 1, true);
        let mut interrupt = None;
        while state.is_wide() {
            if cur.is_none() {
                // Walked off the planned wavefront: retire it (killing its
                // unclaimed losers) and speculate a fresh tree rooted at the
                // current bracket's next midpoint.
                round.abort.cancel();
                let mut nodes = Vec::new();
                push_tree(&mut nodes, &state, NONE, false, threads);
                if !nodes.is_empty() {
                    stats.rounds += 1;
                    stats.speculated += nodes.len();
                    round = engine.publish(nodes);
                    cur = Some(0);
                }
                // Planning overflow leaves `cur` unset: the walk continues
                // inline, with the sequential panic behaviour.
            }
            let mid = state.split();
            if let Err(i) = budget.charge_probe() {
                interrupt = Some(i);
                break;
            }
            probes += 1;
            let accepted = match cur {
                Some(i) => {
                    debug_assert!(round.nodes[i].guess == mid, "planned guess diverged");
                    engine.consume(&round, i, ws, stats)
                }
                None => (engine.probe)(ws, mid),
            };
            if accepted {
                state.accept_mid();
            } else {
                state.reject_mid();
            }
            cur = cur.and_then(|i| follow(&round, i, accepted));
        }
        round.abort.cancel();
        result = Some(BudgetedProbe {
            outcome: ProbeOutcome {
                accepted: state.hi_guess(),
                rejected: Some(state.lo_guess()),
                probes,
            },
            interrupt,
        });
    });
    result.expect("coordinator always sets the result")
}

/// The planned successor of node `i` after outcome `accepted`, if any.
fn follow<G>(round: &Round<G>, i: usize, accepted: bool) -> Option<usize> {
    let child = round.nodes[i].children[usize::from(!accepted)];
    (child != NONE).then_some(child)
}

/// Parallel [`crate::search::epsilon_search`]: binary search on
/// `[t_min, 2·t_min]` to gap `ε·t_min` (Theorem 2), with speculative
/// wavefronts on `threads` workers. Bit-identical outcome and probe count
/// to the sequential search at every thread count; `threads <= 1` *is* the
/// sequential search.
///
/// `probe` receives the workspace of whichever thread runs it — workers own
/// one each, the committed path uses `ws`.
pub fn epsilon_search_par<F>(
    t_min: Rational,
    eps: Rational,
    threads: usize,
    ws: &mut DualWorkspace,
    probe: F,
) -> ProbeOutcome<Rational>
where
    F: Fn(&mut DualWorkspace, Rational) -> bool + Sync,
{
    assert!(t_min.is_positive() && eps.is_positive());
    epsilon_search_between_par_budgeted(
        t_min,
        t_min * 2u64,
        eps * t_min,
        threads,
        &SolveBudget::unlimited(),
        ws,
        probe,
    )
    .outcome
}

/// Parallel [`crate::search::epsilon_search_between`] (explicit bracket and
/// absolute gap).
pub fn epsilon_search_between_par<F>(
    t_lo: Rational,
    t_hi: Rational,
    gap: Rational,
    threads: usize,
    ws: &mut DualWorkspace,
    probe: F,
) -> ProbeOutcome<Rational>
where
    F: Fn(&mut DualWorkspace, Rational) -> bool + Sync,
{
    epsilon_search_between_par_budgeted(
        t_lo,
        t_hi,
        gap,
        threads,
        &SolveBudget::unlimited(),
        ws,
        probe,
    )
    .outcome
}

/// Parallel [`crate::search::epsilon_search_between_budgeted`]: the full
/// budget-aware driver. Only committed probes are charged, in exactly the
/// sequential order, so work-limit interruption points are deterministic
/// and identical to the sequential search; workers poll (without charging)
/// so deadlines and cancellation stop speculation promptly.
pub fn epsilon_search_between_par_budgeted<F>(
    t_lo: Rational,
    t_hi: Rational,
    gap: Rational,
    threads: usize,
    budget: &SolveBudget,
    ws: &mut DualWorkspace,
    probe: F,
) -> BudgetedProbe<Rational>
where
    F: Fn(&mut DualWorkspace, Rational) -> bool + Sync,
{
    epsilon_search_between_par_stats(t_lo, t_hi, gap, threads, budget, ws, probe).0
}

/// [`epsilon_search_between_par_budgeted`] that also reports the wavefront
/// accounting — the deterministic critical-path metric of `benches/par.rs`.
pub fn epsilon_search_between_par_stats<F>(
    t_lo: Rational,
    t_hi: Rational,
    gap: Rational,
    threads: usize,
    budget: &SolveBudget,
    ws: &mut DualWorkspace,
    probe: F,
) -> (BudgetedProbe<Rational>, ParSearchStats)
where
    F: Fn(&mut DualWorkspace, Rational) -> bool + Sync,
{
    assert!(t_lo.is_positive() && gap.is_positive() && t_lo <= t_hi);
    let mut stats = ParSearchStats::default();
    if threads <= 1 {
        let ws = &mut *ws;
        let out = crate::search::epsilon_search_between_budgeted(t_lo, t_hi, gap, budget, |t| {
            probe(ws, t)
        });
        return (out, stats);
    }
    let out = search_par(
        t_lo,
        t_hi,
        threads,
        budget,
        ws,
        &probe,
        Bracket::try_new(t_lo, t_hi, gap),
        || Bracket::new(t_lo, t_hi, gap),
        "the search's upper seed must be accepted",
        &mut stats,
    );
    (out, stats)
}

/// Parallel [`crate::search::integer_search`] (Theorem 8's exact integral
/// search). Same determinism contract as [`epsilon_search_par`].
pub fn integer_search_par<F>(
    t_lo: u64,
    t_hi: u64,
    threads: usize,
    ws: &mut DualWorkspace,
    probe: F,
) -> ProbeOutcome<u64>
where
    F: Fn(&mut DualWorkspace, u64) -> bool + Sync,
{
    integer_search_par_budgeted(t_lo, t_hi, threads, &SolveBudget::unlimited(), ws, probe).outcome
}

/// Parallel [`crate::search::integer_search_budgeted`].
pub fn integer_search_par_budgeted<F>(
    t_lo: u64,
    t_hi: u64,
    threads: usize,
    budget: &SolveBudget,
    ws: &mut DualWorkspace,
    probe: F,
) -> BudgetedProbe<u64>
where
    F: Fn(&mut DualWorkspace, u64) -> bool + Sync,
{
    assert!(t_lo <= t_hi);
    if threads <= 1 {
        let ws = &mut *ws;
        return crate::search::integer_search_budgeted(t_lo, t_hi, budget, |t| probe(ws, t));
    }
    let mut stats = ParSearchStats::default();
    search_par(
        t_lo,
        t_hi,
        threads,
        budget,
        ws,
        &probe,
        Some(IntBracket {
            lo: t_lo,
            hi: t_hi,
            mid: 0,
        }),
        || IntBracket {
            lo: t_lo,
            hi: t_hi,
            mid: 0,
        },
        "upper bound must be accepted",
        &mut stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{epsilon_search_between_budgeted, integer_search_budgeted};

    fn r(v: i128) -> Rational {
        Rational::from_int(v)
    }

    const THREADS: [usize; 4] = [1, 2, 4, 8];

    #[test]
    fn epsilon_par_matches_sequential_bitwise() {
        for denom in [3i128, 7, 64, 1000] {
            for num in [301i128, 399, 555, 599] {
                let threshold = Rational::new(num, denom);
                let seq = epsilon_search_between_budgeted(
                    r(100),
                    r(200),
                    Rational::new(1, 128),
                    &SolveBudget::unlimited(),
                    |t| t >= threshold,
                );
                for threads in THREADS {
                    let mut ws = DualWorkspace::new();
                    let par = epsilon_search_between_par_budgeted(
                        r(100),
                        r(200),
                        Rational::new(1, 128),
                        threads,
                        &SolveBudget::unlimited(),
                        &mut ws,
                        |_, t| t >= threshold,
                    );
                    assert_eq!(par, seq, "threads={threads} threshold={threshold}");
                }
            }
        }
    }

    #[test]
    fn epsilon_par_immediate_accept() {
        for threads in THREADS {
            let mut ws = DualWorkspace::new();
            let out = epsilon_search_par(r(100), Rational::new(1, 10), threads, &mut ws, |_, t| {
                t >= r(50)
            });
            assert_eq!(out.accepted, r(100));
            assert_eq!(out.rejected, None);
            assert_eq!(out.probes, 1);
        }
    }

    #[test]
    fn integer_par_matches_sequential_bitwise() {
        for threshold in [101u64, 137, 199, 200, 777, 1000] {
            let seq =
                integer_search_budgeted(100, 1000, &SolveBudget::unlimited(), |t| t >= threshold);
            for threads in THREADS {
                let mut ws = DualWorkspace::new();
                let par = integer_search_par_budgeted(
                    100,
                    1000,
                    threads,
                    &SolveBudget::unlimited(),
                    &mut ws,
                    |_, t| t >= threshold,
                );
                assert_eq!(par, seq, "threads={threads} threshold={threshold}");
            }
        }
    }

    #[test]
    fn work_limit_interruption_points_are_deterministic() {
        // Sweep every work-limit: the interrupted bracket must match the
        // sequential search's at the same limit, at every thread count.
        let threshold = 137u64;
        for limit in 0..12 {
            let seq_budget = SolveBudget::unlimited().with_work_limit(limit);
            let seq = integer_search_budgeted(100, 1000, &seq_budget, |t| t >= threshold);
            for threads in THREADS {
                let par_budget = SolveBudget::unlimited().with_work_limit(limit);
                let mut ws = DualWorkspace::new();
                let par = integer_search_par_budgeted(
                    100,
                    1000,
                    threads,
                    &par_budget,
                    &mut ws,
                    |_, t| t >= threshold,
                );
                assert_eq!(par, seq, "threads={threads} limit={limit}");
                assert_eq!(seq_budget.work_used(), par_budget.work_used());
            }
        }
    }

    #[test]
    fn committed_panic_propagates_loser_panic_does_not() {
        // Probe panics at one loser guess the committed path never visits:
        // the parallel search must still match the sequential one.
        let threshold = 137u64;
        let seq = integer_search_budgeted(100, 1000, &SolveBudget::unlimited(), |t| t >= threshold);
        let mut ws = DualWorkspace::new();
        let par = integer_search_par_budgeted(
            100,
            1000,
            8,
            &SolveBudget::unlimited(),
            &mut ws,
            |_, t| {
                // 775 = mid of (550, 1000], a reject-side path the committed
                // walk (which accepts at 550's level) never takes.
                assert!(t != 775, "loser probe");
                t >= threshold
            },
        );
        assert_eq!(par, seq);

        // A panic at a guess the committed path *does* probe propagates.
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let mut ws = DualWorkspace::new();
            integer_search_par_budgeted(100, 1000, 8, &SolveBudget::unlimited(), &mut ws, |_, t| {
                assert!(t != 550, "committed probe");
                t >= threshold
            })
        }));
        assert!(caught.is_err(), "committed-path panic must propagate");
    }

    #[test]
    fn cancellation_stops_the_search() {
        let token = CancelToken::new();
        let budget = SolveBudget::unlimited().with_cancel(&token);
        token.cancel();
        let mut ws = DualWorkspace::new();
        let par = integer_search_par_budgeted(100, 1000, 4, &budget, &mut ws, |_, t| t >= 137);
        // Identical to the sequential search under a pre-cancelled budget:
        // nothing probed, bracket untouched.
        let seq = integer_search_budgeted(100, 1000, &budget, |t| t >= 137);
        assert_eq!(par, seq);
        assert!(par.interrupt.is_some());
    }

    #[test]
    fn stats_report_the_wavefront_critical_path() {
        let threshold = Rational::new(555, 4);
        let mut ws = DualWorkspace::new();
        let (par, stats) = epsilon_search_between_par_stats(
            r(100),
            r(200),
            Rational::new(1, 1 << 16),
            8,
            &SolveBudget::unlimited(),
            &mut ws,
            |_, t| t >= threshold,
        );
        assert!(par.interrupt.is_none());
        assert!(stats.rounds >= 1);
        assert!(stats.speculated >= par.outcome.probes);
        // The whole point: the wavefront critical path is much shorter than
        // the sequential probe ladder. 8 threads commit >= 3 levels/round.
        assert!(
            stats.rounds <= 1 + par.outcome.probes.div_ceil(3),
            "rounds {} vs probes {}",
            stats.rounds,
            par.outcome.probes
        );
        assert_eq!(stats.inline, 0, "no skips under an unlimited budget");
    }
}
