//! Sequence-dependent setups on the unified solve surface.
//!
//! [`SeqDepProblem`] implements [`Problem`] for [`SeqDepInstance`], closing
//! the bridge ROADMAP asked for: seqdep instances are solved, validated and
//! benchmarked through the same [`solve_problem`] driver (and the same
//! [`Solution`] type) as the paper's batch-setup variants.
//!
//! Two regimes, chosen automatically at construction:
//!
//! * **Uniform** (`s(c, c') = s(c')` — the batch-setup special case):
//!   [`bss_seqdep::reduce::to_uniform_instance`] reduces bit-exactly to a
//!   batch-setup instance with one job per class, and the direct search
//!   *is* the non-preemptive Theorem-8 search on the reduction. The optima
//!   of the two models coincide (see `bss_seqdep::reduce`), so the 3/2
//!   guarantee and the rejection certificates transfer unchanged.
//! * **General** (APX-hard): the heuristic dual of [`bss_seqdep::solver`] —
//!   a capacity-bounded nearest-neighbour builder searched over the load
//!   lower bound. Acceptance is constructive (`makespan <= 2·accepted` by
//!   the ceiling), rejections certify nothing
//!   ([`Problem::probe_certifies`] is `false`), and the certificate stays
//!   the instance-only `T_min` — `makespan / certificate` is the honest
//!   a-posteriori quality statement.

use bss_budget::{Interrupt, SolveBudget};
use bss_instance::Instance;
use bss_rational::Rational;
use bss_schedule::Schedule;
use bss_seqdep::{solver, SeqDepInstance};

use crate::api::{Algorithm, ScheduleRepr, Solution, SolveError};
use crate::problem::{solve_problem_budgeted, BssProblem, DirectSolve, Problem};
use crate::workspace::DualWorkspace;
use crate::{solve_problem, Trace};

/// A sequence-dependent instance on the unified solve surface.
#[derive(Debug)]
pub struct SeqDepProblem<'a> {
    inst: &'a SeqDepInstance,
    /// The bit-exact batch-setup reduction, when the instance is uniform —
    /// borrowed from the instance's own memo, so re-building the bridge
    /// never re-pays the `O(c²)` uniformity scan.
    uniform: Option<&'a Instance>,
}

impl<'a> SeqDepProblem<'a> {
    /// Wraps `inst`; the uniform special case is detected once per
    /// *instance* (memoized on [`SeqDepInstance::uniform_reduction`]), not
    /// once per construction.
    #[must_use]
    pub fn new(inst: &'a SeqDepInstance) -> Self {
        SeqDepProblem {
            inst,
            uniform: inst.uniform_reduction(),
        }
    }

    /// The batch-setup reduction this problem solves through, when the
    /// instance is the uniform special case.
    #[must_use]
    pub fn uniform_reduction(&self) -> Option<&Instance> {
        self.uniform
    }

    /// Emits `orders` as an explicit schedule through the solver's single
    /// emission convention ([`solver::emit_orders`]).
    fn orders_to_repr(&self, orders: &[Vec<usize>]) -> ScheduleRepr {
        let mut out = Schedule::new(self.inst.machines());
        solver::emit_orders(self.inst, orders, &mut out);
        ScheduleRepr::Explicit(out)
    }

    /// The shared tail of the general-regime direct search: build at the
    /// accepted guess (falling back to `t_safe` on a defensive rejection)
    /// and assemble the [`DirectSolve`] — identical for the sequential and
    /// parallel probe ladders.
    fn general_direct_finish(
        &self,
        ws: &mut DualWorkspace,
        trace: &mut Trace,
        eps: Rational,
        budgeted: crate::search::BudgetedProbe<Rational>,
    ) -> (DirectSolve, Option<Interrupt>) {
        let t_min = self.t_min();
        let out = budgeted.outcome;
        let (accepted, repr) = match self.build(ws, out.accepted, trace) {
            Some(r) => (out.accepted, r),
            None => {
                let hi = self.t_safe();
                (
                    hi,
                    self.build(ws, hi, trace)
                        .expect("t_safe is accepted and builds"),
                )
            }
        };
        (
            DirectSolve {
                repr,
                accepted,
                certificate: t_min,
                probes: out.probes,
                ratio: self.dual_ratio() * (eps + 1u64),
            },
            budgeted.interrupt,
        )
    }
}

impl Problem for SeqDepProblem<'_> {
    fn name(&self) -> &'static str {
        "seqdep"
    }

    fn t_min(&self) -> Rational {
        // Floored at 1: an instance whose every cost is zero has OPT = 0
        // (any schedule is optimal and free), and the searches need a
        // positive anchor. The floor keeps every division and search
        // precondition well-defined; `makespan <= ratio_bound · accepted`
        // still holds trivially (a zero makespan is below any bound), and
        // certificates are clamped to the makespan by the driver.
        bss_seqdep::t_min(self.inst).max(Rational::ONE)
    }

    fn t_safe(&self) -> Rational {
        solver::t_safe(self.inst).max(self.t_min())
    }

    fn search_hi(&self) -> Rational {
        // 2·T_min is not provably accepted by a heuristic dual; the safe
        // guess (half the sequential weight) is, constructively.
        self.t_safe()
    }

    fn probe_certifies(&self) -> bool {
        false
    }

    fn dual_ratio(&self) -> Rational {
        Rational::from(2u64)
    }

    fn probe(&self, ws: &mut DualWorkspace, t: Rational) -> bool {
        solver::probe_in(&mut ws.seqdep, self.inst, t)
    }

    fn build(
        &self,
        ws: &mut DualWorkspace,
        t: Rational,
        _trace: &mut Trace,
    ) -> Option<ScheduleRepr> {
        let mut out = Schedule::new(self.inst.machines());
        solver::build_into(&mut ws.seqdep, self.inst, t, &mut out)
            .then_some(ScheduleRepr::Explicit(out))
    }

    fn fallback(&self, _ws: &mut DualWorkspace, _trace: &mut Trace) -> (ScheduleRepr, Rational) {
        // The nearest-neighbour + LPT list heuristic; no constant-factor
        // proof exists (APX-hardness), so the factor is certified
        // a-posteriori against T_min — exact rational arithmetic, the
        // documented `makespan <= ratio_bound * accepted` invariant holds by
        // construction of the ratio.
        let orders = bss_seqdep::nearest_neighbor_schedule(self.inst);
        let makespan = Rational::from(self.inst.makespan(&orders));
        let repr = self.orders_to_repr(&orders);
        let ratio = makespan / self.t_min();
        (repr, ratio.max(Rational::from(1u64)))
    }

    fn direct_search(&self, ws: &mut DualWorkspace, trace: &mut Trace) -> DirectSolve {
        self.direct_search_budgeted(ws, &SolveBudget::unlimited(), trace)
            .0
    }

    fn direct_search_budgeted(
        &self,
        ws: &mut DualWorkspace,
        budget: &SolveBudget,
        trace: &mut Trace,
    ) -> (DirectSolve, Option<Interrupt>) {
        if let Some(reduced) = self.uniform {
            // Uniform special case: the optima coincide, so Theorem 8's
            // search on the reduction is a genuine 3/2-approximation here,
            // rejection certificates included.
            return BssProblem::new(reduced, bss_instance::Variant::NonPreemptive)
                .direct_search_budgeted(ws, budget, trace);
        }
        // General case: a fine ε-search over the heuristic dual.
        let t_min = self.t_min();
        let eps = Rational::new(1, 1024);
        let budgeted = crate::search::epsilon_search_between_budgeted(
            t_min,
            self.search_hi(),
            eps * t_min,
            budget,
            |t| self.probe(ws, t),
        );
        self.general_direct_finish(ws, trace, eps, budgeted)
    }

    fn direct_search_par_budgeted(
        &self,
        ws: &mut DualWorkspace,
        threads: usize,
        budget: &SolveBudget,
        trace: &mut Trace,
    ) -> (DirectSolve, Option<Interrupt>) {
        if threads <= 1 {
            return self.direct_search_budgeted(ws, budget, trace);
        }
        if let Some(reduced) = self.uniform {
            // The reduction's Theorem-8 integer bisection goes wide.
            return BssProblem::new(reduced, bss_instance::Variant::NonPreemptive)
                .direct_search_par_budgeted(ws, threads, budget, trace);
        }
        // General case: the same fine ε-search, speculative wavefronts on
        // the heuristic dual (each worker probes on its own workspace).
        let t_min = self.t_min();
        let eps = Rational::new(1, 1024);
        let budgeted = crate::par::epsilon_search_between_par_budgeted(
            t_min,
            self.search_hi(),
            eps * t_min,
            threads,
            budget,
            ws,
            |w, t| self.probe(w, t),
        );
        self.general_direct_finish(ws, trace, eps, budgeted)
    }

    fn exact_oracle(&self) -> Option<bss_exact::ExactSolve> {
        self.exact_oracle_budgeted(&SolveBudget::unlimited())
    }

    fn exact_oracle_budgeted(&self, budget: &SolveBudget) -> Option<bss_exact::ExactSolve> {
        // The seqdep oracle branches on classes, not jobs; keep it to
        // shapes the class-order search finishes comfortably.
        if self.inst.num_classes() > 8 || self.inst.machines() > 4 {
            return None;
        }
        bss_exact::solve_seqdep_budgeted(self.inst, &bss_exact::ExactConfig::default(), budget).ok()
    }
}

/// Solves a sequence-dependent instance through the unified surface.
///
/// Uniform instances route through the batch-setup reduction (proven
/// guarantees); general instances run the heuristic dual — see
/// [`SeqDepProblem`].
#[must_use]
pub fn solve_seqdep(inst: &SeqDepInstance, algo: Algorithm) -> Solution {
    solve_seqdep_with(&mut DualWorkspace::new(), inst, algo)
}

/// [`solve_seqdep`] on a reusable workspace: warm solves allocate nothing
/// beyond the output schedule (proven by the `zero_alloc` suite).
#[must_use]
pub fn solve_seqdep_with(
    ws: &mut DualWorkspace,
    inst: &SeqDepInstance,
    algo: Algorithm,
) -> Solution {
    solve_problem(ws, &SeqDepProblem::new(inst), algo, &mut Trace::disabled())
}

/// [`solve_seqdep`] under a [`SolveBudget`] at the safe API boundary:
/// interrupts degrade gracefully (see [`crate::Completion`]), panics
/// surface as typed [`SolveError`]s.
///
/// # Errors
/// [`SolveError`] when the solver panicked; interruption is **not** an
/// error.
pub fn solve_seqdep_budgeted(
    inst: &SeqDepInstance,
    algo: Algorithm,
    budget: &SolveBudget,
) -> Result<Solution, SolveError> {
    solve_seqdep_budgeted_with(&mut DualWorkspace::new(), inst, algo, budget)
}

/// [`solve_seqdep_budgeted`] on a reusable workspace (reset automatically
/// if a panic is caught, so it stays safe to reuse).
///
/// # Errors
/// [`SolveError`] when the solver panicked; interruption is **not** an
/// error.
pub fn solve_seqdep_budgeted_with(
    ws: &mut DualWorkspace,
    inst: &SeqDepInstance,
    algo: Algorithm,
    budget: &SolveBudget,
) -> Result<Solution, SolveError> {
    solve_problem_budgeted(
        ws,
        &SeqDepProblem::new(inst),
        algo,
        budget,
        &mut Trace::disabled(),
    )
}

/// [`solve_seqdep`] with `threads` threads of speculative parallelism on
/// the probe ladders (bit-identical to [`solve_seqdep`] at every thread
/// count; see [`crate::par`]). The uniform regime parallelizes the
/// reduction's Theorem-8 integer search; the general regime the heuristic
/// dual's ε-search.
#[must_use]
pub fn solve_seqdep_par(inst: &SeqDepInstance, algo: Algorithm, threads: usize) -> Solution {
    crate::problem::solve_problem_par(
        &mut DualWorkspace::new(),
        &SeqDepProblem::new(inst),
        algo,
        threads,
        &mut Trace::disabled(),
    )
}

/// [`solve_seqdep_budgeted`] with speculative parallel probing.
///
/// # Errors
/// [`SolveError`] when the solver panicked; interruption is **not** an
/// error.
pub fn solve_seqdep_par_budgeted(
    inst: &SeqDepInstance,
    algo: Algorithm,
    threads: usize,
    budget: &SolveBudget,
) -> Result<Solution, SolveError> {
    crate::problem::solve_problem_par_budgeted(
        &mut DualWorkspace::new(),
        &SeqDepProblem::new(inst),
        algo,
        threads,
        budget,
        &mut Trace::disabled(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bss_seqdep::reduce;

    fn general_instance(seed: u64, c: usize, m: usize) -> SeqDepInstance {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let switch: Vec<Vec<u64>> = (0..c)
            .map(|i| {
                (0..c)
                    .map(|j| if i == j { 0 } else { rng.gen_range(1..30) })
                    .collect()
            })
            .collect();
        let initial: Vec<u64> = (0..c).map(|_| rng.gen_range(1..30)).collect();
        let work: Vec<u64> = (0..c).map(|_| rng.gen_range(1..60)).collect();
        SeqDepInstance::new(m, initial, switch, work).unwrap()
    }

    #[test]
    fn general_instances_meet_the_documented_invariants() {
        for seed in 0..10 {
            let inst = general_instance(seed, 12, 3);
            for algo in [
                Algorithm::TwoApprox,
                Algorithm::EpsilonSearch { eps_log2: 8 },
                Algorithm::ThreeHalves,
                Algorithm::Portfolio,
            ] {
                let sol = solve_seqdep(&inst, algo);
                assert!(
                    sol.makespan <= sol.ratio_bound * sol.accepted,
                    "{algo:?}: {} > {} * {}",
                    sol.makespan,
                    sol.ratio_bound,
                    sol.accepted
                );
                assert!(sol.certificate >= bss_seqdep::t_min(&inst).min(sol.makespan));
                assert!(sol.certificate <= sol.makespan);
                // The schedule's own makespan is what the solution reports.
                assert_eq!(sol.schedule().makespan(), sol.makespan);
            }
        }
    }

    #[test]
    fn uniform_instances_inherit_the_three_halves_guarantee() {
        for seed in 0..10 {
            let bss = bss_gen::uniform(24, 6, 3, seed);
            let sd = reduce::from_instance(&bss);
            let p = SeqDepProblem::new(&sd);
            assert!(p.uniform_reduction().is_some());
            let sol = solve_seqdep(&sd, Algorithm::ThreeHalves);
            assert_eq!(sol.ratio_bound, Rational::new(3, 2));
            // Map back to orders and confirm with the seqdep evaluator.
            let reduced = p.uniform_reduction().unwrap();
            let orders = reduce::orders_from_schedule(sol.schedule(), reduced);
            let confirmed = Rational::from(sd.makespan(&orders));
            assert!(confirmed <= sol.makespan);
            assert!(confirmed <= sol.ratio_bound * sol.accepted);
        }
    }

    #[test]
    fn portfolio_never_loses_to_its_members() {
        for seed in 0..10 {
            let inst = general_instance(seed, 10, 4);
            let p = solve_seqdep(&inst, Algorithm::Portfolio);
            let a = solve_seqdep(&inst, Algorithm::ThreeHalves);
            let b = solve_seqdep(&inst, Algorithm::TwoApprox);
            assert!(p.makespan <= a.makespan.min(b.makespan));
            assert!(p.makespan <= p.ratio_bound * p.accepted);
        }
    }

    #[test]
    fn solve_is_deterministic() {
        let inst = general_instance(5, 14, 4);
        let a = solve_seqdep(&inst, Algorithm::ThreeHalves);
        let b = solve_seqdep(&inst, Algorithm::ThreeHalves);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.accepted, b.accepted);
        assert_eq!(a.schedule().placements(), b.schedule().placements());
    }
}
