//! Reusable buffers for the dual-probe hot path.
//!
//! The searches of Theorems 2, 3, 6 and 8 call an `O(n)` dual test
//! `O(log 1/ε)` (or `O(log(c+m))`) times with different guesses `T`. Before
//! this module, every probe rebuilt its classification vectors, hash sets
//! and knapsack buffers from scratch — roughly ten heap allocations per
//! probe. A [`DualWorkspace`] owns all of those buffers; one workspace
//! serves a whole search (or any number of [`solve`](crate::solve) calls),
//! so after the first probe warms the capacities up, the probe path performs
//! **zero** heap allocations (asserted by the `zero_alloc` test suite).
//!
//! The per-probe `HashSet<ClassId>`/`HashSet<JobId>` lookups are replaced by
//! [`MarkVec`], an epoch-based mark vector sized from the [`Instance`]:
//! `O(1)` clear, `O(1)` membership, no hashing, no allocation.

use bss_instance::{ClassId, Instance, JobId};
use bss_knapsack::CkItem;
use bss_rational::Rational;
use bss_wrap::{GapRun, WrapSequence};

use crate::classify::Classification;

/// Epoch-based mark vector: membership marks that clear in `O(1)` by
/// bumping an epoch counter instead of touching the storage.
#[derive(Debug, Default, Clone)]
pub(crate) struct MarkVec {
    epoch: u32,
    marks: Vec<u32>,
}

impl MarkVec {
    /// Clears all marks and ensures indices `0..n` are addressable.
    pub(crate) fn reset(&mut self, n: usize) {
        if self.marks.len() < n {
            self.marks.resize(n, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Epoch wrapped: old marks could alias the fresh epoch.
            self.marks.fill(0);
            self.epoch = 1;
        }
    }

    pub(crate) fn mark(&mut self, i: usize) {
        self.marks[i] = self.epoch;
    }

    pub(crate) fn is_marked(&self, i: usize) -> bool {
        self.marks[i] == self.epoch
    }
}

/// Per-class aggregate over the big jobs `C*_i = { j : s_i + t_j > T/2 }` of
/// a light-cheap class — all the probe needs from `C*_i`, without
/// materializing the job list.
#[derive(Debug, Clone, Copy)]
pub(crate) struct IstarAgg {
    pub class: ClassId,
    /// `|C*_i|`.
    pub big_count: u64,
    /// `P(C*_i)`.
    pub big_proc: u64,
}

/// A job piece destined for the bottom band of the large machines
/// (preemptive Algorithm 3, Figure 4).
#[derive(Debug, Clone)]
pub(crate) struct KPiece {
    pub class: ClassId,
    pub job: JobId,
    pub len: Rational,
}

/// Scratch buffers for assembling one wrap call: the sequence and the gap
/// runs, both cleared and rebuilt per wrap without reallocating. Kept as its
/// own struct so builders can borrow it mutably while the plan buffers
/// ([`DualWorkspace::cheap`], [`DualWorkspace::arena`], …) stay borrowed
/// immutably.
#[derive(Debug, Default)]
pub(crate) struct WrapScratch {
    /// The wrap sequence `Q` under construction.
    pub seq: WrapSequence,
    /// The gap runs `ω` under construction.
    pub runs: Vec<GapRun>,
}

impl WrapScratch {
    /// Clears both buffers, keeping capacity.
    pub(crate) fn clear(&mut self) {
        self.seq.clear();
        self.runs.clear();
    }
}

/// One stacked item of the non-preemptive builder (items are contiguous
/// from time 0 on their machine).
#[derive(Debug, Clone, Copy)]
pub(crate) struct NpItem {
    /// `None` = setup, `Some(j)` = piece of job `j`.
    pub job: Option<JobId>,
    pub class: ClassId,
    pub len: u64,
    /// Global placement sequence number (drives the step-4 repair order).
    pub seq: usize,
    /// Placed by step 3 (candidate for the border-crossing move).
    pub step3: bool,
}

/// Per-class job partition of the non-preemptive builder, as ranges into
/// [`DualWorkspace::np_jobs`]: `[start, big_end)` holds `J⁺ ∩ C_i`,
/// `[big_end, bord_end)` the borderline jobs `K ∩ C_i`, `[bord_end, end)`
/// the light jobs `C'_i`. Expensive classes keep an empty range.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct NpClassRange {
    pub start: u32,
    pub big_end: u32,
    pub bord_end: u32,
    pub end: u32,
}

/// Reusable buffers for the dual probes and builders of all three variants.
///
/// Create one with [`DualWorkspace::new`] and thread it through
/// [`solve_with`](crate::solve_with) (or the `_in`-suffixed algorithm entry
/// points) to amortize every per-probe buffer across a whole search — or
/// across many solves: the workspace grows to the largest instance it has
/// seen and never shrinks. Results are bit-identical to the
/// workspace-free entry points, which simply allocate a fresh workspace
/// internally.
#[derive(Debug, Default)]
pub struct DualWorkspace {
    /// Class partition of the current probe.
    pub(crate) cls: Classification,
    /// Machine counts for `I⁺_exp`, aligned with `cls.iexp_plus`.
    pub(crate) counts: Vec<usize>,
    /// Big-job aggregates of the light-cheap classes (order of
    /// `cls.ichp_minus`, classes with `C*_i = ∅` skipped).
    pub(crate) istar: Vec<IstarAgg>,
    /// Knapsack input (aligned with `istar`).
    pub(crate) ck_items: Vec<CkItem>,
    /// Knapsack solution `x` (aligned with `istar`).
    pub(crate) ck_x: Vec<Rational>,
    /// Knapsack ordering scratch.
    pub(crate) ck_order: Vec<usize>,
    /// Class membership marks (istar membership during plan building).
    pub(crate) class_mark: MarkVec,
    /// Cheap batches of the current preemptive plan.
    pub(crate) cheap: Vec<crate::preemptive::nice::Batch>,
    /// Piece storage for split batches (see
    /// [`BatchJobs::Pieces`](crate::preemptive::nice::BatchJobs)).
    pub(crate) arena: Vec<(JobId, Rational)>,
    /// Bottom-band pieces of the current preemptive plan.
    pub(crate) k_pieces: Vec<KPiece>,
    /// Bottom-band split: indices into `k_pieces` with `len > T/4` (`K⁺`).
    pub(crate) k_big: Vec<usize>,
    /// Bottom-band split: indices into `k_pieces` with `len <= T/4` (`K⁻`).
    pub(crate) k_small: Vec<usize>,
    /// Partial machines of the splittable builder: `(machine, load)`.
    pub(crate) partial: Vec<(usize, Rational)>,
    /// Non-preemptive repair: earliest placement sequence per job.
    pub(crate) job_min_seq: Vec<usize>,
    /// Non-preemptive repair: piece count per job.
    pub(crate) job_count: Vec<u32>,
    /// Non-preemptive builder: flat per-class big/borderline/light partition.
    pub(crate) np_jobs: Vec<JobId>,
    /// Ranges of `np_jobs` per class.
    pub(crate) np_ranges: Vec<NpClassRange>,
    /// Non-preemptive builder: fillable machines, flat.
    pub(crate) np_fillable: Vec<usize>,
    /// Ranges of `np_fillable` per class.
    pub(crate) np_fill_ranges: Vec<(u32, u32)>,
    /// Non-preemptive builder: the step-3 item queue.
    pub(crate) np_queue: Vec<NpItem>,
    /// Non-preemptive builder: machine stacks (outer vector and inner
    /// capacities survive across builds; `np_used` stacks are live).
    pub(crate) np_stacks: Vec<Vec<NpItem>>,
    /// Non-preemptive builder: machine loads, aligned with `np_stacks`.
    pub(crate) np_loads: Vec<u64>,
    /// Non-preemptive repair: machines holding step-3 items.
    pub(crate) np_step3: Vec<usize>,
    /// Class-Jumping searches: partition thresholds / jump candidates.
    pub(crate) thresholds: Vec<Rational>,
    /// Class-Jumping searches: jump guesses of one refinement round.
    pub(crate) jumps: Vec<Rational>,
    /// Class-Jumping searches: the pinned `I⁺_exp` (or `I_exp`) classes,
    /// copied out of `cls` so later probes may overwrite the partition.
    pub(crate) jump_classes: Vec<ClassId>,
    /// Scratch for assembling wrap calls (sequence + gap runs).
    pub(crate) scratch: WrapScratch,
    /// Sequence-dependent solver scratch (probe orders, finish times); owned
    /// here so `SeqDepProblem` solves share the one-workspace-per-search
    /// discipline of the batch-setup paths.
    pub(crate) seqdep: bss_seqdep::solver::SeqDepScratch,
}

impl DualWorkspace {
    /// An empty workspace; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        DualWorkspace::default()
    }

    /// Restores the workspace to its freshly-constructed state.
    ///
    /// The budgeted solve boundary calls this after catching a solver panic
    /// mid-probe, when buffers may hold arbitrary partial state: a reset
    /// workspace is guaranteed bit-identical to a fresh one (guarded by the
    /// poisoning regression suite). This is a cold path — it drops the
    /// warmed-up capacities; ordinary interrupted solves (deadline, cancel)
    /// need no reset, because `prepare_for` re-establishes every per-probe
    /// invariant at the next solve anyway.
    pub fn reset(&mut self) {
        *self = DualWorkspace::default();
    }

    /// Clears all probe/plan state and reserves capacities sized from
    /// `inst`, so every subsequent push this probe stays within capacity.
    /// Idempotent: after the first call for a given instance size this is a
    /// handful of capacity checks and never allocates.
    pub(crate) fn prepare_for(&mut self, inst: &Instance) {
        let c = inst.num_classes();
        let n = inst.num_jobs();
        // `cls` is cleared by `classify_into` itself (the single owner of
        // that invariant); here we only pre-size its buffers.
        self.cls.iexp_plus.reserve(c);
        self.cls.iexp_zero.reserve(c);
        self.cls.iexp_minus.reserve(c);
        self.cls.ichp_plus.reserve(c);
        self.cls.ichp_minus.reserve(c);
        self.counts.clear();
        self.counts.reserve(c);
        self.istar.clear();
        self.istar.reserve(c);
        self.ck_items.clear();
        self.ck_items.reserve(c);
        self.ck_x.clear();
        self.ck_x.reserve(c);
        self.ck_order.clear();
        self.ck_order.reserve(c);
        self.cheap.clear();
        self.cheap.reserve(c);
        // Every job contributes at most one bottom-band piece and at most
        // one arena piece per plan.
        self.arena.clear();
        self.arena.reserve(n);
        self.k_pieces.clear();
        self.k_pieces.reserve(n);
        self.k_big.clear();
        self.k_small.clear();
        self.partial.clear();
        self.job_min_seq.clear();
        self.job_min_seq.reserve(n);
        self.job_count.clear();
        self.job_count.reserve(n);
        self.np_jobs.clear();
        self.np_jobs.reserve(n);
        self.np_ranges.clear();
        self.np_ranges.reserve(c);
        self.np_fillable.clear();
        self.np_fill_ranges.clear();
        self.np_queue.clear();
        self.np_step3.clear();
        self.scratch.clear();
        // `np_stacks`/`np_loads` are reset by the non-preemptive builder
        // itself (it tracks how many stacks are live); `thresholds`, `jumps`
        // and `jump_classes` belong to the searches, which clear them at
        // each use.
    }
}
