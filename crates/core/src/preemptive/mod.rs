//! The preemptive variant `P|pmtn,setup=s_i|Cmax` — the paper's main result.
//!
//! * [`nice_dual`]: Theorem 4 — 3/2-dual approximation for *nice* instances
//!   (`I⁰_exp = ∅`).
//! * [`dual`] / [`accepts`]: Theorem 5 / Algorithm 3 — the general 3/2-dual
//!   with large machines and the continuous-knapsack placement decision.
//! * [`class_jumping`]: Theorem 6 / Algorithm 4 — the full 3/2-approximation
//!   in `O(n log(c+m)) ⊆ O(n log n)`, improving on the previous best ratio of
//!   `2 − 1/(⌊m/2⌋+1)` (Monma & Potts 1993).

pub(crate) mod dual;
mod jumping;
pub(crate) mod nice;

pub use dual::{accepts, accepts_in, dual, dual_in, dual_into};
pub use jumping::{class_jumping, class_jumping_budgeted_in, class_jumping_in};
pub use nice::{is_nice, nice_dual, CountMode};
