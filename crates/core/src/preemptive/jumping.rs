//! Class Jumping for the preemptive variant (Algorithm 4, Theorem 6).
//!
//! Same skeleton as the splittable search, with two changes (Section 4.4):
//!
//! * `I⁺_exp` classes are wrapped with the γ-count, whose jumps
//!   `T = 2(s_i + P_i)/(γ + 2)` depend on `s_i + P_i` — so the *fastest
//!   jumping class* is the one maximizing `s_i + P_i` (Lemma 5);
//! * the guess also determines the partitions `I⁺/⁰/⁻_exp`, `I±_chp`, the
//!   big-job sets `C*_i` and the knapsack zero-set, so step 2 first pins all
//!   partition thresholds (`2s_i`, `4s_i`, `s_i+P_i`, `4(s_i+P_i)/3`,
//!   `2(s_i+t_j)`) with binary searches.
//!
//! The paper leaves the stabilization of the knapsack zero-set schematic; as
//! documented in DESIGN.md we finish with a bounded fixed-point iteration
//! `T ← L_pmtn(T)/m` inside the final jump-free bracket. The returned guess
//! is always *accepted* (so `makespan <= 3/2 · accepted` unconditionally);
//! its optimality (`accepted <= OPT`) is validated against exact optima in
//! the test suite and against certificates in the benches.

use std::cell::Cell;

use bss_budget::{Interrupt, SolveBudget};
use bss_instance::{Instance, LowerBounds, Variant};
use bss_rational::Rational;
use bss_schedule::Schedule;

use crate::classify::{classify_into, gamma};
use crate::search::{refine_right_interval_opt, SearchOutcome};
use crate::workspace::DualWorkspace;
use crate::Trace;

use super::dual::{accepts_in, aggregates_in, dual_in};
use super::CountMode;

const MODE: CountMode = CountMode::Gamma;

/// One budgeted dual-test probe: charges the budget, bumps the shared
/// counter, then runs the accept test. `None` means the budget interrupted
/// before the test ran (`stop` latched, counter untouched); call sites wrap
/// this in short-lived closures so the workspace borrow stays local to each
/// search step.
fn probe(
    ws: &mut DualWorkspace,
    inst: &Instance,
    probes: &Cell<usize>,
    stop: &Cell<Option<Interrupt>>,
    budget: &SolveBudget,
    t: Rational,
) -> Option<bool> {
    if stop.get().is_some() {
        return None;
    }
    if let Err(i) = budget.charge_probe() {
        stop.set(Some(i));
        return None;
    }
    probes.set(probes.get() + 1);
    Some(accepts_in(ws, inst, t, MODE))
}

/// Runs preemptive Class Jumping; the schedule's makespan is
/// `<= 3/2 · accepted`.
#[must_use]
pub fn class_jumping(inst: &Instance) -> SearchOutcome<Schedule> {
    class_jumping_in(&mut DualWorkspace::new(), inst)
}

/// [`class_jumping`] on a reusable workspace: all `O(log(c+m))` probes share
/// one allocation footprint.
#[must_use]
pub fn class_jumping_in(ws: &mut DualWorkspace, inst: &Instance) -> SearchOutcome<Schedule> {
    class_jumping_budgeted_in(ws, inst, &SolveBudget::unlimited()).0
}

/// [`class_jumping_in`] under a cooperative [`SolveBudget`]: bit-identical
/// when the budget never trips; on interruption the search winds down to
/// its current (still accepted) right bracket, builds there and reports the
/// interrupt — same contract as the splittable search.
#[must_use]
pub fn class_jumping_budgeted_in(
    ws: &mut DualWorkspace,
    inst: &Instance,
    budget: &SolveBudget,
) -> (SearchOutcome<Schedule>, Option<Interrupt>) {
    if inst.machines() >= inst.num_jobs() {
        return (trivial(inst), None);
    }
    let probes = Cell::new(0usize);
    let stop = Cell::new(None::<Interrupt>);

    let t_min = LowerBounds::of(inst).tmin(Variant::Preemptive);
    match probe(ws, inst, &probes, &stop, budget, t_min) {
        Some(true) => {
            let schedule =
                dual_in(ws, inst, t_min, MODE, &mut Trace::disabled()).expect("accepted");
            return (
                SearchOutcome {
                    accepted: t_min,
                    schedule,
                    rejected: None,
                    probes: probes.get(),
                },
                None,
            );
        }
        Some(false) => {}
        None => {
            // Interrupted before anything was learned: Theorem 1's window
            // top is accepted unconditionally; build there, certify nothing.
            let hi = t_min * 2u64;
            let schedule = dual_in(ws, inst, hi, MODE, &mut Trace::disabled())
                .expect("2·T_min is accepted (Theorem 1)");
            return (
                SearchOutcome {
                    accepted: hi,
                    schedule,
                    rejected: None,
                    probes: probes.get(),
                },
                stop.get(),
            );
        }
    }
    let mut lo = t_min;
    let mut hi = t_min * 2u64;

    // Step 2: pin every partition threshold. The candidate buffer is
    // workspace-owned (taken out for the probe loop, put back after), so
    // warm searches reuse its allocation.
    let mut thresholds = core::mem::take(&mut ws.thresholds);
    thresholds.clear();
    for i in 0..inst.num_classes() {
        let s = inst.setup(i);
        let sp = s + inst.class_proc(i);
        thresholds.push(Rational::from(2 * s)); // expensive/cheap
        thresholds.push(Rational::from(4 * s)); // I+chp / I−chp
        thresholds.push(Rational::from(sp)); // I+exp / I0exp
        thresholds.push(Rational::new(4 * sp as i128, 3)); // I0exp / I−exp
    }
    for job in inst.jobs() {
        thresholds.push(Rational::from(2 * (inst.setup(job.class) + job.time)));
        // C*
    }
    thresholds.sort_unstable();
    thresholds.dedup();
    let (l2, h2) = refine_right_interval_opt(lo, hi, &thresholds, |t| {
        probe(ws, inst, &probes, &stop, budget, t)
    });
    ws.thresholds = thresholds;
    lo = l2;
    hi = h2;

    // Partitions are now constant on the open interval; the pinned I⁺_exp
    // classes are copied out of the probe classification (later probes
    // overwrite it).
    let mid = (lo + hi).half();
    classify_into(inst, mid, &mut ws.cls);
    let mut iexp_plus = core::mem::take(&mut ws.jump_classes);
    iexp_plus.clear();
    iexp_plus.extend_from_slice(&ws.cls.iexp_plus);

    if stop.get().is_none() && !iexp_plus.is_empty() {
        // Step 3: fastest jumping class f = argmax (s_f + P_f).
        let f = *iexp_plus
            .iter()
            .max_by_key(|&&i| inst.setup(i) + inst.class_proc(i))
            .expect("non-empty");
        let sp2 = Rational::from(2 * (inst.setup(f) + inst.class_proc(f)));

        // Step 4: narrow to one jump gap of f. Jumps at 2(s+P)/w for integer
        // w = γ + 2 >= 3 in (2(s+P)/hi, 2(s+P)/lo).
        let w_lo = ((sp2 / hi).floor() + 1).max(3);
        let w_hi = {
            let c = sp2 / lo;
            if c.is_integer() {
                c.floor() - 1
            } else {
                c.floor()
            }
        };
        if w_lo <= w_hi {
            if w_hi - w_lo <= 64 {
                let mut jumps = core::mem::take(&mut ws.jumps);
                jumps.clear();
                jumps.extend((w_lo..=w_hi).rev().map(|w| sp2 / w));
                let (l3, h3) = refine_right_interval_opt(lo, hi, &jumps, |t| {
                    probe(ws, inst, &probes, &stop, budget, t)
                });
                ws.jumps = jumps;
                lo = l3;
                hi = h3;
            } else {
                // Binary search over w (acceptance monotone in T).
                let (mut a, mut b) = (w_lo, w_hi);
                let mut best: Option<i128> = None;
                while a <= b {
                    let wm = a + (b - a) / 2;
                    match probe(ws, inst, &probes, &stop, budget, sp2 / wm) {
                        Some(true) => {
                            best = Some(wm);
                            a = wm + 1;
                        }
                        Some(false) => b = wm - 1,
                        None => break,
                    }
                }
                if stop.get().is_none() {
                    match best {
                        Some(w) => {
                            hi = sp2 / w;
                            if w < w_hi {
                                lo = sp2 / (w + 1);
                            }
                        }
                        None => lo = sp2 / w_lo,
                    }
                } else if let Some(w) = best {
                    // Interrupted mid-bisection: the largest accepted jump
                    // tightens `hi` (genuinely probed); `lo` must not move —
                    // the unprobed region may still hold accepted guesses.
                    hi = sp2 / w;
                }
            }
        }

        if stop.get().is_none() {
            // Steps 5–6: each class jumps at most once inside one f-gap
            // (Lemma 5); collect and pin those jumps.
            let mut jumps = core::mem::take(&mut ws.jumps);
            jumps.clear();
            for &i in &iexp_plus {
                let g = gamma(inst, hi, i);
                let cand =
                    Rational::from(2 * (inst.setup(i) + inst.class_proc(i))) / (g + 2) as u64;
                if lo < cand && cand < hi {
                    jumps.push(cand);
                }
            }
            jumps.sort_unstable();
            jumps.dedup();
            let (l4, h4) = refine_right_interval_opt(lo, hi, &jumps, |t| {
                probe(ws, inst, &probes, &stop, budget, t)
            });
            ws.jumps = jumps;
            lo = l4;
            hi = h4;
        }
    }
    ws.jump_classes = iexp_plus;

    // Step 7: finishing move with a bounded fixed-point iteration on the
    // load (the knapsack zero-set may still move inside the bracket). Under
    // an interrupt it degenerates to `hi` immediately (its probes no-op).
    let chosen = if stop.get().is_some() {
        hi
    } else {
        finishing_move(ws, inst, lo, hi, &probes, &stop, budget)
    };
    let schedule = dual_in(ws, inst, chosen, MODE, &mut Trace::disabled())
        .expect("finishing move returns an accepted guess");
    (
        SearchOutcome {
            accepted: chosen,
            schedule,
            rejected: Some(lo),
            probes: probes.get(),
        },
        stop.get(),
    )
}

/// The finishing case analysis (step 9 analogue) with a bounded fixed-point
/// iteration for the knapsack wobble. The load evaluation `L_pmtn(T)` is the
/// probe's own aggregate computation ([`aggregates_in`]), so the logic exists
/// exactly once.
///
/// Inside the jump-free bracket the reject constraints are piecewise linear
/// in `T`, so the accept boundary is one of three crossings:
///
/// * the load bound `L_pmtn(T) <= m T` (constant `L_pmtn` up to the
///   knapsack zero-set, hence the fixed-point iteration);
/// * the case-3.a capacity `Y(T) = F - L* >= 0`, with slope
///   `(m - l) + |C*|/2`;
/// * the case-3.a membership flip itself, where `F(T)` (slope `m - l`)
///   crosses `Σ_{I*chp} (s_i + P(C_i))` — below it the capacity constraint
///   re-engages, so the plain load crossing is only valid above it.
///
/// Each round evaluates the structure at the bracket midpoint, takes the
/// largest in-bracket crossing as the candidate, and probes it: accepted
/// candidates are returned (the boundary, up to zero-set wobble), rejected
/// ones shrink the bracket from the left. When every locally visible
/// constraint clears the bracket yet `lo` is rejected, the structure flips
/// somewhere below the midpoint and the bracket bisects instead.
fn finishing_move(
    ws: &mut DualWorkspace,
    inst: &Instance,
    mut lo: Rational,
    mut hi: Rational,
    probes: &Cell<usize>,
    stop: &Cell<Option<Interrupt>>,
    budget: &SolveBudget,
) -> Rational {
    let m = inst.machines();
    for _ in 0..32 {
        let mid = (lo + hi).half();
        // The crossing candidates reduce to structure-sized denominators,
        // but the bisection branch doubles `mid`'s denominator each round —
        // and a fine guess compounds downstream (the knapsack fraction and
        // the split-piece lengths cube it). Cap it well inside `i128`
        // headroom; `hi` is accepted, and an optimum wedged less than
        // 2^-12 of the bracket above a rejected `lo` would need a larger
        // denominator than any schedule of these integral instances has.
        if mid.denom() > 1 << 12 {
            return hi;
        }
        // `None` here means `m < m'` or below the trivial bound — both
        // constant on the bracket, so the right end is the answer.
        let Some(agg) = aggregates_in(ws, inst, mid, MODE) else {
            return hi;
        };
        let l = ws.cls.iexp_zero.len();
        let mut t_new = agg.l_pmtn.reduce() / m;
        if agg.case_a {
            let slope =
                Rational::from((m - l) as u64) + Rational::new(i128::from(agg.big_total), 2);
            if slope.is_positive() {
                t_new = t_new.max(mid - agg.y.reduce() / slope);
            } else if agg.y.is_negative() {
                return hi; // Y < 0 and non-increasing: the bracket rejects
            }
        } else if m > l {
            let t_a = mid
                - (agg.f_free.reduce() - agg.istar_full.reduce()) / Rational::from((m - l) as u64);
            t_new = t_new.max(t_a);
        }
        if t_new >= hi {
            return hi;
        }
        if t_new <= lo {
            // Locally everything above `lo` accepts, yet `lo` was rejected:
            // a structure flip hides below `mid`; bisect toward it.
            match probe(ws, inst, probes, stop, budget, mid) {
                Some(true) => hi = mid,
                Some(false) => lo = mid,
                None => return hi, // interrupted: the right end is accepted
            }
            continue;
        }
        match probe(ws, inst, probes, stop, budget, t_new) {
            Some(true) => return t_new,
            // The structure at t_new differs (zero-set moved): shrink, retry.
            Some(false) => lo = t_new,
            None => return hi, // interrupted: the right end is accepted
        }
    }
    hi
}

/// `m >= n`: one job (plus setup) per machine is optimal (Note 1).
fn trivial(inst: &Instance) -> SearchOutcome<Schedule> {
    let mut s = Schedule::new(inst.machines());
    for j in 0..inst.num_jobs() {
        let job = inst.job(j);
        let setup = Rational::from(inst.setup(job.class));
        s.push_setup(j, Rational::ZERO, setup, job.class);
        s.push_piece(j, setup, Rational::from(job.time), j, job.class);
    }
    SearchOutcome {
        accepted: Rational::from(inst.max_setup_plus_tmax()),
        schedule: s,
        rejected: None,
        probes: 0,
    }
}

#[cfg(test)]
mod tests {
    use bss_instance::{InstanceBuilder, Variant};
    use bss_schedule::validate;

    use super::*;

    fn check(inst: &Instance) -> (Rational, Rational) {
        let out = class_jumping(inst);
        let v = validate(&out.schedule, inst, Variant::Preemptive);
        assert!(v.is_empty(), "{v:?}");
        let makespan = out.schedule.makespan();
        assert!(
            makespan <= out.accepted * Rational::new(3, 2),
            "makespan {makespan} > 3/2 · {}",
            out.accepted
        );
        let tmin = LowerBounds::of(inst).tmin(Variant::Preemptive);
        assert!(out.accepted >= tmin.min(makespan)); // trivial path may beat tmin? no: >= tmin
        assert!(out.accepted <= tmin * 2u64);
        (out.accepted, makespan)
    }

    #[test]
    fn uniform_suite() {
        for seed in 0..25 {
            check(&bss_gen::uniform(60, 8, 4, seed));
        }
    }

    #[test]
    fn paper_instances() {
        check(&bss_gen::paper::fig2_nice_preemptive());
        check(&bss_gen::paper::fig3_general_preemptive());
        check(&bss_gen::paper::fig5_gamma_preemptive());
    }

    #[test]
    fn expensive_and_single_job_suites() {
        for seed in 0..10 {
            check(&bss_gen::expensive_setups(40, 5, seed));
            check(&bss_gen::single_job_batches(30, 4, seed));
        }
    }

    #[test]
    fn small_batches_suite() {
        for seed in 0..10 {
            check(&bss_gen::small_batches(50, 4, seed));
        }
    }

    #[test]
    fn trivial_many_machines() {
        let mut b = InstanceBuilder::new(10);
        b.add_batch(5, &[7, 3]);
        let inst = b.build().unwrap();
        let out = class_jumping(&inst);
        assert_eq!(out.schedule.makespan(), Rational::from(12u64));
        assert!(validate(&out.schedule, &inst, Variant::Preemptive).is_empty());
    }

    /// The accepted guess should essentially match the ε-search's.
    #[test]
    fn agrees_with_epsilon_search() {
        use crate::search::epsilon_search;
        for seed in 0..10 {
            let inst = bss_gen::uniform(50, 7, 4, seed);
            let tmin = LowerBounds::of(&inst).tmin(Variant::Preemptive);
            let eps = epsilon_search(tmin, Rational::new(1, 1 << 12), |t| {
                crate::preemptive::accepts(&inst, t, MODE)
            });
            let jump = class_jumping(&inst);
            let slack = Rational::new(4097, 4096);
            assert!(
                jump.accepted <= eps.accepted * slack,
                "seed {seed}: jumping {} vs eps {}",
                jump.accepted,
                eps.accepted
            );
        }
    }
}
