//! The general preemptive 3/2-dual approximation (Algorithm 3, Theorem 5).
//!
//! 1. Every `I⁰_exp` class gets its own *large machine*, its batch starting
//!    at `T/2` (sound by Lemmas 10 and 11).
//! 2. Big jobs of light-cheap classes (`C*_i`, `s_i + t_j > T/2`) are split
//!    into `j(1)` (length `T/2 - s_i`) and `j(2)` (length `s_i + t_j - T/2`):
//!    by Lemma 4, at least `j(2)` must run outside the large machines.
//! 3. If the free time `F` outside the large machines cannot hold all of
//!    `I*_chp` (case 3.a), a **continuous knapsack** picks the classes that
//!    are scheduled entirely outside (profit `s_i`, weight `P(C_i) - L*_i`,
//!    capacity `Y = F - L*`); the rest contribute only their obligatory
//!    pieces to the *nice* residual instance and their light remainder `K`
//!    goes to the bottom (`[0, T/2]` band) of the large machines — big `K⁺`
//!    jobs one per machine, small `K⁻` jobs wrapped over `[T/4, T/2)` gaps
//!    (Figure 4). Otherwise (case 3.b) a greedy split fills the nice
//!    instance exactly and the remainder is handled the same way.
//!
//! The band discipline (`K` below `T/2`, cheap nice load above `T/2`) is what
//! keeps split jobs from running in parallel with themselves.

use bss_instance::{ClassId, Instance, JobId};
use bss_knapsack::{continuous_knapsack, CkItem};
use bss_rational::Rational;
use bss_schedule::Schedule;
use bss_wrap::{wrap, GapRun, Template, WrapSequence};

use crate::classify::{classify, cstar, Classification};
use crate::Trace;

use super::nice::{build_nice, Batch, NiceParts};
use super::CountMode;

/// A job piece destined for the bottom band of the large machines.
#[derive(Debug, Clone)]
struct KPiece {
    class: ClassId,
    job: JobId,
    len: Rational,
}

/// Everything needed to build the schedule once the guess is accepted.
struct Plan {
    cls: Classification,
    /// Machine counts for `I⁺_exp` (aligned with `cls.iexp_plus`).
    counts: Vec<usize>,
    /// Cheap batches of the nice residual instance.
    cheap_batches: Vec<Batch>,
    /// Bottom-band pieces, grouped later into `K⁺`/`K⁻`.
    k_pieces: Vec<KPiece>,
    /// Class whose pieces lead the `K⁻` wrap (the knapsack split item /
    /// greedy split class).
    k_first_class: Option<ClassId>,
}

/// The test-plus-planning phase shared by [`accepts`] and [`dual`].
fn prepare(inst: &Instance, t: Rational, mode: CountMode) -> Option<Plan> {
    if t < Rational::from(inst.max_setup_plus_tmax()) {
        return None;
    }
    let m = inst.machines();
    let half = t.half();
    let cls = classify(inst, t);
    let l = cls.iexp_zero.len();

    // Machine requirement m' (Theorem 5).
    let counts: Vec<usize> = cls
        .iexp_plus
        .iter()
        .map(|&i| mode.count(inst, t, i))
        .collect();
    let m_req = l + counts.iter().sum::<usize>() + cls.iexp_minus.len().div_ceil(2);
    if m_req > m {
        return None;
    }

    // Big jobs of light-cheap classes.
    let istar: Vec<(ClassId, Vec<JobId>)> = cls
        .ichp_minus
        .iter()
        .filter_map(|&i| {
            let cs = cstar(inst, t, i);
            if cs.is_empty() {
                None
            } else {
                Some((i, cs))
            }
        })
        .collect();
    let istar_set: std::collections::HashSet<ClassId> = istar.iter().map(|&(i, _)| i).collect();

    // Free time F outside the large machines (Equation 3).
    let mut base_load = Rational::ZERO;
    for (&i, &a) in cls.iexp_plus.iter().zip(&counts) {
        base_load += Rational::from(inst.setup(i) * a as u64 + inst.class_proc(i));
    }
    for &i in cls.iexp_minus.iter().chain(cls.ichp_plus.iter()) {
        base_load += Rational::from(inst.setup(i) + inst.class_proc(i));
    }
    let f_free = t * (m - l) - base_load;
    let istar_full: Rational = istar
        .iter()
        .map(|&(i, _)| Rational::from(inst.setup(i) + inst.class_proc(i)))
        .fold(Rational::ZERO, |a, b| a + b);

    // Common part of L_pmtn: P(J) + Σ_plus a_i s_i + Σ_{[c] \ I+exp} s_i.
    let mut l_pmtn = Rational::from(inst.total_proc());
    for (&i, &a) in cls.iexp_plus.iter().zip(&counts) {
        l_pmtn += Rational::from(inst.setup(i) * a as u64);
    }
    let plus_set: std::collections::HashSet<ClassId> = cls.iexp_plus.iter().copied().collect();
    for i in 0..inst.num_classes() {
        if !plus_set.contains(&i) {
            l_pmtn += Rational::from(inst.setup(i));
        }
    }

    let mut cheap_batches: Vec<Batch> = cls
        .ichp_plus
        .iter()
        .map(|&i| Batch::full(inst, i))
        .collect();
    let mut k_pieces: Vec<KPiece> = Vec::new();
    let mut k_first_class = None;

    if f_free < istar_full {
        // ---- Case 3.a: knapsack over I*chp. ----
        // Obligatory outside-load L*_i = P(C*_i) - |C*_i| (T/2 - s_i).
        let mut l_star = Rational::ZERO;
        let mut weights: Vec<Rational> = Vec::with_capacity(istar.len());
        for (i, cs) in &istar {
            let s = inst.setup(*i);
            let pc: u64 = cs.iter().map(|&j| inst.job(j).time).sum();
            let li = Rational::from(pc) - (half - s) * cs.len();
            l_star += li + s;
            weights.push(Rational::from(inst.class_proc(*i)) - li);
        }
        let y = f_free - l_star;
        if y.is_negative() {
            return None; // even the obligatory pieces cannot fit outside
        }
        let items: Vec<CkItem> = istar
            .iter()
            .zip(&weights)
            .map(|(&(i, _), &w)| CkItem {
                profit: inst.setup(i),
                weight: w,
            })
            .collect();
        let sol = continuous_knapsack(&items, y);
        for (idx, &(i, _)) in istar.iter().enumerate() {
            if sol.x[idx].is_zero() {
                l_pmtn += Rational::from(inst.setup(i)); // extra setup
            }
        }
        if t * m < l_pmtn {
            return None;
        }

        // Build the nice cheap batches and the K pieces.
        for (idx, (i, cs)) in istar.iter().enumerate() {
            let i = *i;
            let s = inst.setup(i);
            let cs_set: std::collections::HashSet<JobId> = cs.iter().copied().collect();
            let x = sol.x[idx];
            if x == Rational::ONE {
                cheap_batches.push(Batch::full(inst, i));
            } else if x.is_zero() {
                // Only the obligatory pieces j(2) go to the nice instance.
                let mut pieces = Vec::with_capacity(cs.len());
                for &j in cs {
                    let t2 = Rational::from(s + inst.job(j).time) - half;
                    pieces.push((j, t2));
                    k_pieces.push(KPiece {
                        class: i,
                        job: j,
                        len: half - s, // t(1)_j
                    });
                }
                cheap_batches.push(Batch {
                    class: i,
                    setup: s,
                    pieces,
                });
                for &j in inst.class_jobs(i) {
                    if !cs_set.contains(&j) {
                        k_pieces.push(KPiece {
                            class: i,
                            job: j,
                            len: Rational::from(inst.job(j).time),
                        });
                    }
                }
            } else {
                // The split item e: pieces per Equation (6).
                k_first_class = Some(i);
                let mut pieces = Vec::with_capacity(inst.class_jobs(i).len());
                for &j in inst.class_jobs(i) {
                    let tj = Rational::from(inst.job(j).time);
                    let t2 = if cs_set.contains(&j) {
                        let t1 = half - s;
                        let t2_obl = Rational::from(s) + tj - half;
                        x * t1 + t2_obl
                    } else {
                        x * tj
                    };
                    pieces.push((j, t2));
                    let rest = tj - t2;
                    if rest.is_positive() {
                        k_pieces.push(KPiece {
                            class: i,
                            job: j,
                            len: rest,
                        });
                    }
                }
                cheap_batches.push(Batch {
                    class: i,
                    setup: s,
                    pieces,
                });
            }
        }
        // Light-cheap classes without big jobs go entirely to the bottom.
        for &i in &cls.ichp_minus {
            if !istar_set.contains(&i) {
                for &j in inst.class_jobs(i) {
                    k_pieces.push(KPiece {
                        class: i,
                        job: j,
                        len: Rational::from(inst.job(j).time),
                    });
                }
            }
        }
    } else {
        // ---- Case 3.b: everything I*chp fits outside; greedy split. ----
        if t * m < l_pmtn {
            return None;
        }
        for &(i, _) in &istar {
            cheap_batches.push(Batch::full(inst, i));
        }
        let mut remaining = f_free - istar_full;
        let mut split_done = false;
        for &i in &cls.ichp_minus {
            if istar_set.contains(&i) {
                continue;
            }
            let s = inst.setup(i);
            let need = Rational::from(s + inst.class_proc(i));
            if !split_done && need <= remaining {
                cheap_batches.push(Batch::full(inst, i));
                remaining -= need;
            } else if !split_done && remaining > Rational::from(s) {
                // Split this class's jobs fractionally to land exactly.
                split_done = true;
                k_first_class = Some(i);
                let mut budget = remaining - s;
                let mut pieces = Vec::new();
                for &j in inst.class_jobs(i) {
                    let tj = Rational::from(inst.job(j).time);
                    if budget.is_positive() {
                        let take = tj.min(budget);
                        pieces.push((j, take));
                        budget -= take;
                        if take < tj {
                            k_pieces.push(KPiece {
                                class: i,
                                job: j,
                                len: tj - take,
                            });
                        }
                    } else {
                        k_pieces.push(KPiece {
                            class: i,
                            job: j,
                            len: tj,
                        });
                    }
                }
                cheap_batches.push(Batch {
                    class: i,
                    setup: s,
                    pieces,
                });
                remaining = Rational::ZERO;
            } else {
                split_done = true;
                for &j in inst.class_jobs(i) {
                    k_pieces.push(KPiece {
                        class: i,
                        job: j,
                        len: Rational::from(inst.job(j).time),
                    });
                }
            }
        }
    }

    Some(Plan {
        cls,
        counts,
        cheap_batches,
        k_pieces,
        k_first_class,
    })
}

/// The dual test of Theorem 5 (with `mode` selecting α′ or γ machine counts).
#[must_use]
pub fn accepts(inst: &Instance, t: Rational, mode: CountMode) -> bool {
    prepare(inst, t, mode).is_some()
}

/// The general preemptive 3/2-dual: `None` = rejected (`T < OPT`),
/// `Some(schedule)` is preemptive-feasible with makespan `<= 3T/2`.
#[must_use]
pub fn dual(inst: &Instance, t: Rational, mode: CountMode, trace: &mut Trace) -> Option<Schedule> {
    let plan = prepare(inst, t, mode)?;
    let m = inst.machines();
    let half = t.half();
    let quarter = half.half();
    let l = plan.cls.iexp_zero.len();
    let mut out = Schedule::new(m);

    // Step 1: large machines — each I0exp batch starts at T/2 (Lemma 11).
    for (u, &i) in plan.cls.iexp_zero.iter().enumerate() {
        let s = Rational::from(inst.setup(i));
        out.push_setup(u, half, s, i);
        let mut at = half + s;
        for &j in inst.class_jobs(i) {
            let len = Rational::from(inst.job(j).time);
            out.push_piece(u, at, len, j, i);
            at += len;
        }
        debug_assert!(at <= t * Rational::new(3, 2));
    }
    trace.snap("step 1: large machines", &out);

    // Split K into big (K+) and small (K−) pieces.
    let mut kplus: Vec<&KPiece> = Vec::new();
    let mut kminus: Vec<&KPiece> = Vec::new();
    for p in &plan.k_pieces {
        if p.len > quarter {
            kplus.push(p);
        } else {
            kminus.push(p);
        }
    }
    // Not enough large-machine room is excluded by Theorem 5 when the tests
    // pass; treat it defensively as a rejection.
    if kplus.len() > l || (l == 0 && !plan.k_pieces.is_empty()) {
        return None;
    }

    // K+ : one piece at the bottom of each of the first l' large machines.
    let l_prime = kplus.len();
    for (u, p) in kplus.iter().enumerate() {
        let s = Rational::from(inst.setup(p.class));
        debug_assert!(s + p.len <= half, "Note 3: s + t <= T/2");
        out.push_setup(u, Rational::ZERO, s, p.class);
        out.push_piece(u, s, p.len, p.job, p.class);
    }

    // K− : wrapped over the remaining large machines below T/2.
    if !kminus.is_empty() {
        if l_prime >= l {
            return None;
        }
        // Group by class, split-item class first (its setup leads the wrap).
        kminus.sort_by_key(|p| ((Some(p.class) != plan.k_first_class) as u8, p.class, p.job));
        let mut q = WrapSequence::new();
        let mut current: Option<ClassId> = None;
        for p in kminus {
            if current != Some(p.class) {
                q.push_setup(p.class, Rational::from(inst.setup(p.class)));
                current = Some(p.class);
            }
            q.push_piece(p.class, p.job, p.len);
        }
        let mut runs = vec![GapRun::single(l_prime, Rational::ZERO, half)];
        if l - l_prime > 1 {
            runs.push(GapRun {
                first_machine: l_prime + 1,
                count: l - l_prime - 1,
                a: quarter,
                b: half,
            });
        }
        let template = Template::new(runs);
        let placed = wrap(&q, &template, inst.setups(), m).ok()?;
        out.absorb(placed.expand());
    }
    trace.snap("step 2: bottom of large machines (K)", &out);

    // Step 3: the nice residual instance on machines [l, m).
    let parts = NiceParts {
        plus: plan
            .cls
            .iexp_plus
            .iter()
            .zip(&plan.counts)
            .map(|(&i, &a)| (Batch::full(inst, i), a))
            .collect(),
        minus: plan
            .cls
            .iexp_minus
            .iter()
            .map(|&i| Batch::full(inst, i))
            .collect(),
        cheap: plan.cheap_batches.clone(),
    };
    build_nice(inst, t, mode, &parts, l, m - l, &mut out).ok()?;
    trace.snap("step 3: nice residual instance", &out);

    debug_assert!(
        out.makespan() <= t * Rational::new(3, 2),
        "makespan {} > 3T/2 at T={t}",
        out.makespan()
    );
    Some(out)
}

#[cfg(test)]
mod tests {
    use bss_instance::{InstanceBuilder, Variant};
    use bss_schedule::validate;

    use super::super::nice::tmin;
    use super::*;

    fn check_at(inst: &Instance, t: Rational, mode: CountMode) -> bool {
        match dual(inst, t, mode, &mut Trace::disabled()) {
            None => false,
            Some(s) => {
                let v = validate(&s, inst, Variant::Preemptive);
                assert!(v.is_empty(), "mode {mode:?}, T={t}: {v:?}");
                assert!(
                    s.makespan() <= t * Rational::new(3, 2),
                    "mode {mode:?}, T={t}: makespan {}",
                    s.makespan()
                );
                true
            }
        }
    }

    #[test]
    fn accepts_at_twice_tmin() {
        for seed in 0..25 {
            let inst = bss_gen::uniform(60, 8, 4, seed);
            let t2 = tmin(&inst) * 2u64;
            assert!(
                check_at(&inst, t2, CountMode::AlphaPrime),
                "2·Tmin must be accepted (seed {seed})"
            );
            assert!(check_at(&inst, t2, CountMode::Gamma), "gamma (seed {seed})");
        }
    }

    #[test]
    fn paper_fig3_instance_with_trace() {
        let inst = bss_gen::paper::fig3_general_preemptive();
        let t2 = tmin(&inst) * 2u64;
        let mut trace = Trace::enabled();
        if let Some(s) = dual(&inst, t2, CountMode::AlphaPrime, &mut trace) {
            assert!(validate(&s, &inst, Variant::Preemptive).is_empty());
            assert_eq!(trace.steps().len(), 3);
        }
    }

    /// Sweep guesses that force I0exp non-empty and the knapsack branch.
    #[test]
    fn knapsack_branch_instances() {
        let inst = bss_gen::paper::fig3_general_preemptive();
        let lo = tmin(&inst);
        for k in 20..=40i128 {
            let t = lo * Rational::new(k, 20);
            check_at(&inst, t, CountMode::AlphaPrime);
            check_at(&inst, t, CountMode::Gamma);
        }
    }

    #[test]
    fn expensive_heavy_instances() {
        for seed in 0..15 {
            let inst = bss_gen::expensive_setups(40, 5, seed);
            let lo = tmin(&inst);
            for k in [20i128, 26, 33, 40] {
                let t = lo * Rational::new(k, 20);
                check_at(&inst, t, CountMode::AlphaPrime);
                check_at(&inst, t, CountMode::Gamma);
            }
        }
    }

    #[test]
    fn single_job_batches_sweep() {
        for seed in 0..10 {
            let inst = bss_gen::single_job_batches(30, 4, seed);
            let lo = tmin(&inst);
            for k in [20i128, 30, 40] {
                let t = lo * Rational::new(k, 20);
                check_at(&inst, t, CountMode::AlphaPrime);
            }
        }
    }

    #[test]
    fn uniform_dense_sweep_validates() {
        for seed in 0..15 {
            let inst = bss_gen::uniform(50, 10, 5, seed);
            let lo = tmin(&inst);
            for k in 20..=40i128 {
                let t = lo * Rational::new(k, 20);
                check_at(&inst, t, CountMode::AlphaPrime);
            }
        }
    }

    #[test]
    fn rejects_below_trivial_bound() {
        let mut b = InstanceBuilder::new(2);
        b.add_batch(10, &[25]);
        let inst = b.build().unwrap();
        assert!(!accepts(
            &inst,
            Rational::from(34u64),
            CountMode::AlphaPrime
        ));
    }

    #[test]
    fn single_machine_instance() {
        let mut b = InstanceBuilder::new(1);
        b.add_batch(3, &[4, 2]);
        b.add_batch(2, &[5]);
        let inst = b.build().unwrap();
        // N = 16; at T = 16 the single machine holds everything.
        assert!(check_at(
            &inst,
            Rational::from(16u64),
            CountMode::AlphaPrime
        ));
    }
}
