//! The general preemptive 3/2-dual approximation (Algorithm 3, Theorem 5).
//!
//! 1. Every `I⁰_exp` class gets its own *large machine*, its batch starting
//!    at `T/2` (sound by Lemmas 10 and 11).
//! 2. Big jobs of light-cheap classes (`C*_i`, `s_i + t_j > T/2`) are split
//!    into `j(1)` (length `T/2 - s_i`) and `j(2)` (length `s_i + t_j - T/2`):
//!    by Lemma 4, at least `j(2)` must run outside the large machines.
//! 3. If the free time `F` outside the large machines cannot hold all of
//!    `I*_chp` (case 3.a), a **continuous knapsack** picks the classes that
//!    are scheduled entirely outside (profit `s_i`, weight `P(C_i) - L*_i`,
//!    capacity `Y = F - L*`); the rest contribute only their obligatory
//!    pieces to the *nice* residual instance and their light remainder `K`
//!    goes to the bottom (`[0, T/2]` band) of the large machines — big `K⁺`
//!    jobs one per machine, small `K⁻` jobs wrapped over `[T/4, T/2)` gaps
//!    (Figure 4). Otherwise (case 3.b) a greedy split fills the nice
//!    instance exactly and the remainder is handled the same way.
//!
//! The band discipline (`K` below `T/2`, cheap nice load above `T/2`) is what
//! keeps split jobs from running in parallel with themselves.

use bss_instance::{ClassId, Instance};
use bss_knapsack::{continuous_knapsack_in, CkItem};
use bss_rational::{Rational, RawRational};
use bss_schedule::Schedule;
use bss_wrap::{wrap_into, GapRun};

use crate::classify::classify_into;
use crate::workspace::{DualWorkspace, IstarAgg, KPiece};
use crate::Trace;

use super::nice::{build_nice, Batch, BatchJobs, NiceParts};
use super::CountMode;

/// The probe aggregates of Theorem 5, computed allocation-free into the
/// workspace. Exposed crate-internally so the Class-Jumping finishing move
/// can reuse the load evaluation instead of re-deriving it.
pub(crate) struct Aggregates {
    pub half: Rational,
    /// Free time `F` outside the large machines (Equation 3).
    pub f_free: RawRational,
    /// `Σ_{I*chp} (s_i + P(C_i))`.
    pub istar_full: RawRational,
    /// `L_pmtn` including the knapsack zero-set setups (case 3.a).
    pub l_pmtn: RawRational,
    /// `true` iff case 3.a applies (`F < Σ`); then `ws.ck_x` holds the
    /// knapsack solution aligned with `ws.istar` — unless `y` is negative,
    /// in which case the guess is rejected before the knapsack runs.
    pub case_a: bool,
    /// In case 3.a, the knapsack capacity `Y = F - L*`. A negative value is
    /// a rejection (the obligatory pieces alone exceed the free time), but
    /// it is reported rather than swallowed so the Class-Jumping finishing
    /// move can locate the `Y = 0` crossing. Zero outside case 3.a.
    pub y: RawRational,
    /// `Σ |C*_i|` over `I*_chp` — each obligatory big piece shortens by
    /// `1/2` per unit of `T`, so this is the slope contribution of `L*` to
    /// `Y` within a partition-stable bracket.
    pub big_total: u64,
}

impl Aggregates {
    /// The accept test of Theorem 5 at guess `t` on `m` machines.
    pub(crate) fn feasible(&self, t: Rational, m: usize) -> bool {
        !(self.case_a && self.y.is_negative()) && self.l_pmtn <= t * m
    }
}

/// Computes the accept-test aggregates at `t`, filling `ws.cls`, `ws.counts`,
/// `ws.istar` and (in case 3.a) `ws.ck_x`. `None` when `t` is structurally
/// infeasible: below the trivial bound or machine demand `m' > m`. A
/// negative knapsack capacity (`Y < 0`, the obligatory pieces alone exceed
/// the free time) is also a rejection but is reported through
/// [`Aggregates::y`] so searches can locate its crossing.
///
/// After workspace warm-up this performs zero heap allocations.
pub(crate) fn aggregates_in(
    ws: &mut DualWorkspace,
    inst: &Instance,
    t: Rational,
    mode: CountMode,
) -> Option<Aggregates> {
    if t < Rational::from(inst.max_setup_plus_tmax()) {
        return None;
    }
    ws.prepare_for(inst);
    let m = inst.machines();
    let half = t.half();
    classify_into(inst, t, &mut ws.cls);
    let l = ws.cls.iexp_zero.len();

    // Machine requirement m' (Theorem 5).
    for &i in &ws.cls.iexp_plus {
        let count = mode.count(inst, t, i);
        ws.counts.push(count);
    }
    let m_req = l + ws.counts.iter().sum::<usize>() + ws.cls.iexp_minus.len().div_ceil(2);
    if m_req > m {
        return None;
    }

    // Big-job aggregates of the light-cheap classes (C*_i): count and
    // processing sum suffice for the test — no job lists, no hash sets.
    for &i in &ws.cls.ichp_minus {
        let s = inst.setup(i);
        let mut big_count = 0u64;
        let mut big_proc = 0u64;
        for &j in inst.class_jobs(i) {
            let tj = inst.job(j).time;
            if Rational::from(s + tj) > half {
                big_count += 1;
                big_proc += tj;
            }
        }
        if big_count > 0 {
            ws.istar.push(IstarAgg {
                class: i,
                big_count,
                big_proc,
            });
        }
    }

    // Free time F outside the large machines (Equation 3).
    let mut base_load = RawRational::ZERO;
    for (&i, &a) in ws.cls.iexp_plus.iter().zip(&ws.counts) {
        base_load += inst.setup(i) * a as u64 + inst.class_proc(i);
    }
    for &i in ws.cls.iexp_minus.iter().chain(ws.cls.ichp_plus.iter()) {
        base_load += inst.setup(i) + inst.class_proc(i);
    }
    let mut f_free = RawRational::from(t * (m - l));
    f_free -= base_load;
    let mut istar_full = RawRational::ZERO;
    for e in &ws.istar {
        istar_full += inst.setup(e.class) + inst.class_proc(e.class);
    }

    // Common part of L_pmtn: P(J) + Σ_plus a_i s_i + Σ_{[c] \ I+exp} s_i,
    // rearranged as P(J) + Σ_all s_i + Σ_plus (a_i − 1) s_i to avoid a
    // membership set.
    let mut l_pmtn = RawRational::from(inst.total_proc());
    for i in 0..inst.num_classes() {
        l_pmtn += inst.setup(i);
    }
    for (&i, &a) in ws.cls.iexp_plus.iter().zip(&ws.counts) {
        l_pmtn += inst.setup(i) * a as u64;
        l_pmtn -= inst.setup(i);
    }

    let big_total: u64 = ws.istar.iter().map(|e| e.big_count).sum();
    let case_a = f_free < istar_full;
    let mut y = RawRational::ZERO;
    if case_a {
        // ---- Case 3.a: knapsack over I*chp. ----
        // Obligatory outside-load L*_i = P(C*_i) - |C*_i| (T/2 - s_i).
        let mut l_star = RawRational::ZERO;
        for e in &ws.istar {
            let s = inst.setup(e.class);
            let li = Rational::from(e.big_proc) - (half - Rational::from(s)) * e.big_count;
            l_star += li;
            l_star += s;
            ws.ck_items.push(CkItem {
                profit: s,
                weight: Rational::from(inst.class_proc(e.class)) - li,
            });
        }
        y = f_free;
        y -= l_star;
        if y.is_negative() {
            // Even the obligatory pieces cannot fit outside: rejected, with
            // the deficit reported (`l_pmtn` then lacks the zero-set setups,
            // which is fine — the guess never builds).
            return Some(Aggregates {
                half,
                f_free,
                istar_full,
                l_pmtn,
                case_a,
                y,
                big_total,
            });
        }
        continuous_knapsack_in(&ws.ck_items, y.reduce(), &mut ws.ck_order, &mut ws.ck_x);
        for (e, x) in ws.istar.iter().zip(&ws.ck_x) {
            if x.is_zero() {
                l_pmtn += inst.setup(e.class); // extra setup
            }
        }
    }

    Some(Aggregates {
        half,
        f_free,
        istar_full,
        l_pmtn,
        case_a,
        y,
        big_total,
    })
}

/// Plan facts beyond the workspace buffers.
struct PlanMeta {
    /// Class whose pieces lead the `K⁻` wrap (the knapsack split item /
    /// greedy split class).
    k_first_class: Option<ClassId>,
}

/// The planning phase of [`dual_in`]: runs the accept test and, on
/// acceptance, fills `ws.cheap`/`ws.arena`/`ws.k_pieces` with the nice
/// residual batches and bottom-band pieces.
fn prepare_in(
    ws: &mut DualWorkspace,
    inst: &Instance,
    t: Rational,
    mode: CountMode,
) -> Option<PlanMeta> {
    let agg = aggregates_in(ws, inst, t, mode)?;
    if !agg.feasible(t, inst.machines()) {
        return None;
    }
    let half = agg.half;

    ws.class_mark.reset(inst.num_classes());
    for e in &ws.istar {
        ws.class_mark.mark(e.class);
    }
    for &i in &ws.cls.ichp_plus {
        ws.cheap.push(Batch::full(inst, i));
    }
    let mut k_first_class = None;

    if agg.case_a {
        // Build the nice cheap batches and the K pieces from the knapsack.
        for idx in 0..ws.istar.len() {
            let IstarAgg { class: i, .. } = ws.istar[idx];
            let x = ws.ck_x[idx];
            let s = inst.setup(i);
            let is_big = |tj: u64| Rational::from(s + tj) > half;
            if x == Rational::ONE {
                ws.cheap.push(Batch::full(inst, i));
            } else if x.is_zero() {
                // Only the obligatory pieces j(2) go to the nice instance.
                let start = ws.arena.len();
                for &j in inst.class_jobs(i) {
                    let tj = inst.job(j).time;
                    if is_big(tj) {
                        let t2 = Rational::from(s + tj) - half;
                        ws.arena.push((j, t2));
                        ws.k_pieces.push(KPiece {
                            class: i,
                            job: j,
                            len: half - Rational::from(s), // t(1)_j
                        });
                    }
                }
                ws.cheap.push(Batch {
                    class: i,
                    setup: s,
                    jobs: BatchJobs::Pieces {
                        start,
                        end: ws.arena.len(),
                    },
                });
                for &j in inst.class_jobs(i) {
                    let tj = inst.job(j).time;
                    if !is_big(tj) {
                        ws.k_pieces.push(KPiece {
                            class: i,
                            job: j,
                            len: Rational::from(tj),
                        });
                    }
                }
            } else {
                // The split item e: pieces per Equation (6).
                k_first_class = Some(i);
                let start = ws.arena.len();
                for &j in inst.class_jobs(i) {
                    let tj = Rational::from(inst.job(j).time);
                    let t2 = if is_big(inst.job(j).time) {
                        let t1 = half - Rational::from(s);
                        let t2_obl = Rational::from(s) + tj - half;
                        x * t1 + t2_obl
                    } else {
                        x * tj
                    };
                    ws.arena.push((j, t2));
                    let rest = tj - t2;
                    if rest.is_positive() {
                        ws.k_pieces.push(KPiece {
                            class: i,
                            job: j,
                            len: rest,
                        });
                    }
                }
                ws.cheap.push(Batch {
                    class: i,
                    setup: s,
                    jobs: BatchJobs::Pieces {
                        start,
                        end: ws.arena.len(),
                    },
                });
            }
        }
        // Light-cheap classes without big jobs go entirely to the bottom.
        for &i in &ws.cls.ichp_minus {
            if !ws.class_mark.is_marked(i) {
                for &j in inst.class_jobs(i) {
                    ws.k_pieces.push(KPiece {
                        class: i,
                        job: j,
                        len: Rational::from(inst.job(j).time),
                    });
                }
            }
        }
    } else {
        // ---- Case 3.b: everything I*chp fits outside; greedy split. ----
        for idx in 0..ws.istar.len() {
            let i = ws.istar[idx].class;
            ws.cheap.push(Batch::full(inst, i));
        }
        let mut remaining = agg.f_free;
        remaining -= agg.istar_full;
        let mut split_done = false;
        for ci in 0..ws.cls.ichp_minus.len() {
            let i = ws.cls.ichp_minus[ci];
            if ws.class_mark.is_marked(i) {
                continue;
            }
            let s = inst.setup(i);
            let need = Rational::from(s + inst.class_proc(i));
            if !split_done && remaining >= need {
                ws.cheap.push(Batch::full(inst, i));
                remaining -= need;
            } else if !split_done && remaining > Rational::from(s) {
                // Split this class's jobs fractionally to land exactly.
                split_done = true;
                k_first_class = Some(i);
                let mut budget = remaining.reduce() - s;
                let start = ws.arena.len();
                for &j in inst.class_jobs(i) {
                    let tj = Rational::from(inst.job(j).time);
                    if budget.is_positive() {
                        let take = tj.min(budget);
                        ws.arena.push((j, take));
                        budget -= take;
                        if take < tj {
                            ws.k_pieces.push(KPiece {
                                class: i,
                                job: j,
                                len: tj - take,
                            });
                        }
                    } else {
                        ws.k_pieces.push(KPiece {
                            class: i,
                            job: j,
                            len: tj,
                        });
                    }
                }
                ws.cheap.push(Batch {
                    class: i,
                    setup: s,
                    jobs: BatchJobs::Pieces {
                        start,
                        end: ws.arena.len(),
                    },
                });
                remaining = RawRational::ZERO;
            } else {
                split_done = true;
                for &j in inst.class_jobs(i) {
                    ws.k_pieces.push(KPiece {
                        class: i,
                        job: j,
                        len: Rational::from(inst.job(j).time),
                    });
                }
            }
        }
    }

    Some(PlanMeta { k_first_class })
}

/// The dual test of Theorem 5 (with `mode` selecting α′ or γ machine counts).
#[must_use]
pub fn accepts(inst: &Instance, t: Rational, mode: CountMode) -> bool {
    accepts_in(&mut DualWorkspace::new(), inst, t, mode)
}

/// [`accepts`] on a reusable workspace — allocation-free after warm-up.
#[must_use]
pub fn accepts_in(ws: &mut DualWorkspace, inst: &Instance, t: Rational, mode: CountMode) -> bool {
    match aggregates_in(ws, inst, t, mode) {
        Some(agg) => agg.feasible(t, inst.machines()),
        None => false,
    }
}

/// The general preemptive 3/2-dual: `None` = rejected (`T < OPT`),
/// `Some(schedule)` is preemptive-feasible with makespan `<= 3T/2`.
#[must_use]
pub fn dual(inst: &Instance, t: Rational, mode: CountMode, trace: &mut Trace) -> Option<Schedule> {
    dual_in(&mut DualWorkspace::new(), inst, t, mode, trace)
}

/// [`dual`] on a reusable workspace: the probe and plan buffers are borrowed
/// from `ws`, so a search reuses one allocation footprint across guesses.
#[must_use]
pub fn dual_in(
    ws: &mut DualWorkspace,
    inst: &Instance,
    t: Rational,
    mode: CountMode,
    trace: &mut Trace,
) -> Option<Schedule> {
    let mut out = Schedule::new(inst.machines());
    dual_into(ws, inst, t, mode, trace, &mut out).then_some(out)
}

/// [`dual_in`] that streams the schedule into a caller-provided `out`
/// (reset at entry) instead of allocating a fresh one — the compact-first
/// build path: every wrap result is emitted exactly once, directly into the
/// final destination, and a warm workspace build performs **zero** heap
/// allocations beyond `out`'s own growth.
///
/// Returns `false` on rejection (`T < OPT`); `out` then holds a partial
/// schedule the caller must discard (or reset).
#[must_use]
pub fn dual_into(
    ws: &mut DualWorkspace,
    inst: &Instance,
    t: Rational,
    mode: CountMode,
    trace: &mut Trace,
    out: &mut Schedule,
) -> bool {
    let m = inst.machines();
    out.reset(m);
    let Some(plan) = prepare_in(ws, inst, t, mode) else {
        return false;
    };
    let half = t.half();
    let quarter = half.half();
    let l = ws.cls.iexp_zero.len();

    // Step 1: large machines — each I0exp batch starts at T/2 (Lemma 11).
    for (u, &i) in ws.cls.iexp_zero.iter().enumerate() {
        let s = Rational::from(inst.setup(i));
        out.push_setup(u, half, s, i);
        let mut at = half + s;
        for &j in inst.class_jobs(i) {
            let len = Rational::from(inst.job(j).time);
            out.push_piece(u, at, len, j, i);
            at += len;
        }
        debug_assert!(at <= t * Rational::new(3, 2));
    }
    trace.snap("step 1: large machines", out);

    // Split K into big (K+) and small (K−) pieces, as indices into the
    // workspace-owned piece buffer.
    ws.k_big.clear();
    ws.k_small.clear();
    for (idx, p) in ws.k_pieces.iter().enumerate() {
        if p.len > quarter {
            ws.k_big.push(idx);
        } else {
            ws.k_small.push(idx);
        }
    }
    // Not enough large-machine room is excluded by Theorem 5 when the tests
    // pass; treat it defensively as a rejection.
    if ws.k_big.len() > l || (l == 0 && !ws.k_pieces.is_empty()) {
        return false;
    }

    // K+ : one piece at the bottom of each of the first l' large machines.
    let l_prime = ws.k_big.len();
    for (u, &pi) in ws.k_big.iter().enumerate() {
        let p: &KPiece = &ws.k_pieces[pi];
        let s = Rational::from(inst.setup(p.class));
        debug_assert!(s + p.len <= half, "Note 3: s + t <= T/2");
        out.push_setup(u, Rational::ZERO, s, p.class);
        out.push_piece(u, s, p.len, p.job, p.class);
    }

    // K− : wrapped over the remaining large machines below T/2.
    if !ws.k_small.is_empty() {
        if l_prime >= l {
            return false;
        }
        // Group by class, split-item class first (its setup leads the wrap).
        let k_first_class = plan.k_first_class;
        ws.k_small.sort_unstable_by_key(|&pi| {
            let p = &ws.k_pieces[pi];
            ((Some(p.class) != k_first_class) as u8, p.class, p.job)
        });
        ws.scratch.clear();
        let mut current: Option<ClassId> = None;
        for &pi in &ws.k_small {
            let p = &ws.k_pieces[pi];
            if current != Some(p.class) {
                ws.scratch
                    .seq
                    .push_setup(p.class, Rational::from(inst.setup(p.class)));
                current = Some(p.class);
            }
            ws.scratch.seq.push_piece(p.class, p.job, p.len);
        }
        ws.scratch
            .runs
            .push(GapRun::single(l_prime, Rational::ZERO, half));
        if l - l_prime > 1 {
            ws.scratch.runs.push(GapRun {
                first_machine: l_prime + 1,
                count: l - l_prime - 1,
                a: quarter,
                b: half,
            });
        }
        if wrap_into(&ws.scratch.seq, &ws.scratch.runs, inst.setups(), out).is_err() {
            return false;
        }
    }
    trace.snap("step 2: bottom of large machines (K)", out);

    // Step 3: the nice residual instance on machines [l, m).
    let parts = NiceParts {
        plus_classes: &ws.cls.iexp_plus,
        plus_counts: &ws.counts,
        minus_classes: &ws.cls.iexp_minus,
        cheap: &ws.cheap,
        arena: &ws.arena,
    };
    if build_nice(inst, t, mode, parts, l, m - l, &mut ws.scratch, out).is_err() {
        return false;
    }
    trace.snap("step 3: nice residual instance", out);

    debug_assert!(
        out.makespan() <= t * Rational::new(3, 2),
        "makespan {} > 3T/2 at T={t}",
        out.makespan()
    );
    true
}

#[cfg(test)]
mod tests {
    use bss_instance::{InstanceBuilder, Variant};
    use bss_schedule::validate;

    use super::super::nice::tmin;
    use super::*;

    fn check_at(inst: &Instance, t: Rational, mode: CountMode) -> bool {
        match dual(inst, t, mode, &mut Trace::disabled()) {
            None => false,
            Some(s) => {
                let v = validate(&s, inst, Variant::Preemptive);
                assert!(v.is_empty(), "mode {mode:?}, T={t}: {v:?}");
                assert!(
                    s.makespan() <= t * Rational::new(3, 2),
                    "mode {mode:?}, T={t}: makespan {}",
                    s.makespan()
                );
                true
            }
        }
    }

    #[test]
    fn accepts_at_twice_tmin() {
        for seed in 0..25 {
            let inst = bss_gen::uniform(60, 8, 4, seed);
            let t2 = tmin(&inst) * 2u64;
            assert!(
                check_at(&inst, t2, CountMode::AlphaPrime),
                "2·Tmin must be accepted (seed {seed})"
            );
            assert!(check_at(&inst, t2, CountMode::Gamma), "gamma (seed {seed})");
        }
    }

    #[test]
    fn paper_fig3_instance_with_trace() {
        let inst = bss_gen::paper::fig3_general_preemptive();
        let t2 = tmin(&inst) * 2u64;
        let mut trace = Trace::enabled();
        if let Some(s) = dual(&inst, t2, CountMode::AlphaPrime, &mut trace) {
            assert!(validate(&s, &inst, Variant::Preemptive).is_empty());
            assert_eq!(trace.steps().len(), 3);
        }
    }

    /// Sweep guesses that force I0exp non-empty and the knapsack branch.
    #[test]
    fn knapsack_branch_instances() {
        let inst = bss_gen::paper::fig3_general_preemptive();
        let lo = tmin(&inst);
        for k in 20..=40i128 {
            let t = lo * Rational::new(k, 20);
            check_at(&inst, t, CountMode::AlphaPrime);
            check_at(&inst, t, CountMode::Gamma);
        }
    }

    #[test]
    fn expensive_heavy_instances() {
        for seed in 0..15 {
            let inst = bss_gen::expensive_setups(40, 5, seed);
            let lo = tmin(&inst);
            for k in [20i128, 26, 33, 40] {
                let t = lo * Rational::new(k, 20);
                check_at(&inst, t, CountMode::AlphaPrime);
                check_at(&inst, t, CountMode::Gamma);
            }
        }
    }

    #[test]
    fn single_job_batches_sweep() {
        for seed in 0..10 {
            let inst = bss_gen::single_job_batches(30, 4, seed);
            let lo = tmin(&inst);
            for k in [20i128, 30, 40] {
                let t = lo * Rational::new(k, 20);
                check_at(&inst, t, CountMode::AlphaPrime);
            }
        }
    }

    #[test]
    fn uniform_dense_sweep_validates() {
        for seed in 0..15 {
            let inst = bss_gen::uniform(50, 10, 5, seed);
            let lo = tmin(&inst);
            for k in 20..=40i128 {
                let t = lo * Rational::new(k, 20);
                check_at(&inst, t, CountMode::AlphaPrime);
            }
        }
    }

    #[test]
    fn rejects_below_trivial_bound() {
        let mut b = InstanceBuilder::new(2);
        b.add_batch(10, &[25]);
        let inst = b.build().unwrap();
        assert!(!accepts(
            &inst,
            Rational::from(34u64),
            CountMode::AlphaPrime
        ));
    }

    #[test]
    fn single_machine_instance() {
        let mut b = InstanceBuilder::new(1);
        b.add_batch(3, &[4, 2]);
        b.add_batch(2, &[5]);
        let inst = b.build().unwrap();
        // N = 16; at T = 16 the single machine holds everything.
        assert!(check_at(
            &inst,
            Rational::from(16u64),
            CountMode::AlphaPrime
        ));
    }
}
